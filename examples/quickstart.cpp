/**
 * @file
 * Quickstart: a guided tour of the guarded-pointer library.
 *
 * Walks through the core API — minting pointers, deriving them with
 * LEA/SUBSEG/RESTRICT, taking faults on violations, and running a
 * first program on the simulated M-Machine — with commentary printed
 * along the way. Start here.
 */

#include <cstdio>

#include "gp/ops.h"
#include "os/kernel.h"

using namespace gp;

namespace {

void
section(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

void
show(const char *label, Word w)
{
    std::printf("  %-28s %s\n", label, toString(w).c_str());
}

void
show(const char *label, Fault f)
{
    std::printf("  %-28s fault: %s\n", label,
                std::string(faultName(f)).c_str());
}

} // namespace

int
main()
{
    std::printf("Guarded pointers quickstart (Carter/Keckler/Dally, "
                "ASPLOS '94)\n");

    // ------------------------------------------------------------
    section("1. A guarded pointer is a 64-bit word + tag");
    // perm | log2 length | 54-bit address, tag bit out of band.
    Word p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    show("rw pointer, 4KB segment:", p);
    show("as an integer (tag gone):", p.asInt());

    // ------------------------------------------------------------
    section("2. Derivation is checked by a masked comparator");
    show("lea +0x800:", lea(p, 0x800).value);
    show("lea +0x1000 (escape!):", lea(p, 0x1000).fault);
    show("leab 0 (segment base):", leab(p, 0).value);

    // ------------------------------------------------------------
    section("3. User code can only narrow, never widen");
    Word ro = restrictPerm(p, Perm::ReadOnly).value;
    show("restrict -> read-only:", ro);
    show("widen back to rw:", restrictPerm(ro, Perm::ReadWrite).fault);
    Word line = subseg(p, 6).value;
    show("subseg -> 64B view:", line);
    show("store via read-only:", checkAccess(ro, Access::Store, 8));
    Word key = restrictPerm(p, Perm::Key).value;
    show("restrict -> key (token):", key);
    show("load via key:", checkAccess(key, Access::Load, 8));

    // ------------------------------------------------------------
    section("4. A program on the simulated M-Machine");
    os::Kernel kernel;
    auto seg = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto prog = kernel.loadAssembly(R"(
        movi r2, 0          ; i = 0
        movi r3, 10         ; n = 10
        mov r4, r1          ; cursor = segment pointer
        loop:
        st r2, 0(r4)        ; a[i] = i   (checked, no tables)
        leai r4, r4, 8      ; cursor++   (bounds-checked LEA)
        addi r2, r2, 1
        bne r2, r3, loop
        halt
    )");
    isa::Thread *t =
        kernel.spawn(prog.value.execPtr, {{1, seg.value}});
    kernel.machine().run();
    std::printf("  thread state: %s after %llu instructions, "
                "%llu machine cycles\n",
                t->state() == isa::ThreadState::Halted ? "halted"
                                                       : "faulted",
                (unsigned long long)t->instsRetired(),
                (unsigned long long)kernel.machine().cycle());
    std::printf("  a[7] = %llu (read back through the pointer)\n",
                (unsigned long long)kernel.mem()
                    .peekWord(PointerView(seg.value).segmentBase() +
                              7 * 8)
                    .bits());

    // ------------------------------------------------------------
    section("5. Forgery is impossible");
    auto forger = kernel.loadAssembly(R"(
        ld r3, 0(r1)        ; r1 holds only an *integer* copy
        halt
    )");
    isa::Thread *evil = kernel.spawn(
        forger.value.execPtr, {{1, Word::fromInt(seg.value.bits())}});
    kernel.machine().run();
    std::printf("  forged-pointer load: %s\n",
                std::string(faultName(evil->faultRecord().fault))
                    .c_str());

    std::printf("\nNext: examples/filesystem.cpp (protected "
                "subsystems), examples/multithread_sharing.cpp, "
                "examples/revocation_gc.cpp\n");
    return 0;
}
