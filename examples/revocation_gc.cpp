/**
 * @file
 * Segment lifecycle: grant, revoke, relocate, and garbage-collect the
 * virtual address space (paper §4.3).
 *
 * Capabilities-in-pointers make granting trivially cheap but make
 * *taking back* interesting: this example walks through the paper's
 * answers — revocation by page unmapping (with its page-granularity
 * collateral), relocation with pointer invalidation, and the
 * tag-bit-driven address-space garbage collector.
 */

#include <cstdio>

#include "gp/ops.h"
#include "os/gc.h"
#include "os/kernel.h"

using namespace gp;

namespace {

void
section(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

} // namespace

int
main()
{
    std::printf("Revocation, relocation, and address-space GC "
                "(paper SS4.3)\n");
    os::Kernel kernel;

    // ------------------------------------------------------------
    section("1. Grant: sharing is just copying a word");
    auto doc = kernel.segments().allocate(4096, Perm::ReadWrite);
    kernel.mem().pokeWord(PointerView(doc.value).segmentBase(),
                          Word::fromInt(0x5ec3e7));
    auto grant = restrictPerm(doc.value, Perm::ReadOnly);
    std::printf("  owner holds  %s\n", toString(doc.value).c_str());
    std::printf("  grantee gets %s\n", toString(grant.value).c_str());

    auto reader = kernel.loadAssembly("ld r2, 0(r1)\nhalt");
    isa::Thread *t =
        kernel.spawn(reader.value.execPtr, {{1, grant.value}});
    kernel.machine().run();
    std::printf("  grantee reads 0x%llx through its copy\n",
                (unsigned long long)t->reg(2).bits());

    // ------------------------------------------------------------
    section("2. Revoke: unmap the pages; every copy dies at once");
    kernel.segments().revoke(PointerView(doc.value).segmentBase());
    isa::Thread *t2 =
        kernel.spawn(reader.value.execPtr, {{1, grant.value}});
    kernel.machine().run();
    std::printf("  grantee's copy now: %s\n",
                std::string(faultName(t2->faultRecord().fault))
                    .c_str());
    isa::Thread *t3 =
        kernel.spawn(reader.value.execPtr, {{1, doc.value}});
    kernel.machine().run();
    std::printf("  even the owner's:   %s  (possession-based "
                "revocation cannot discriminate)\n",
                std::string(faultName(t3->faultRecord().fault))
                    .c_str());
    kernel.segments().reinstate(PointerView(doc.value).segmentBase());
    std::printf("  ...reinstated; data intact: 0x%llx\n",
                (unsigned long long)kernel.mem()
                    .peekWord(PointerView(doc.value).segmentBase())
                    .bits());

    // ------------------------------------------------------------
    section("3. Relocate: move the bits, strand the old pointers");
    auto fresh = kernel.segments().relocate(
        PointerView(doc.value).segmentBase(), Perm::ReadWrite);
    std::printf("  new location %s\n", toString(fresh.value).c_str());
    std::printf("  data moved:  0x%llx\n",
                (unsigned long long)kernel.mem()
                    .peekWord(PointerView(fresh.value).segmentBase())
                    .bits());
    isa::Thread *t4 =
        kernel.spawn(reader.value.execPtr, {{1, doc.value}});
    kernel.machine().run();
    std::printf("  old pointer: %s  (fault handler would patch it "
                "to the new segment)\n",
                std::string(faultName(t4->faultRecord().fault))
                    .c_str());

    // ------------------------------------------------------------
    section("4. GC: the tag bit finds every live segment");
    // Build a little object graph, then drop some roots.
    auto a = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto b = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto c = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto d = kernel.segments().allocate(4096, Perm::ReadWrite);
    // a -> b -> c; d is garbage; plus an integer lookalike of d.
    kernel.mem().pokeWord(PointerView(a.value).segmentBase(), b.value);
    kernel.mem().pokeWord(PointerView(b.value).segmentBase(), c.value);
    kernel.mem().pokeWord(PointerView(a.value).segmentBase() + 8,
                          Word::fromInt(d.value.bits()));

    const size_t before = kernel.segments().segments().size();
    os::AddressSpaceGc gc(kernel.mem(), kernel.segments());
    // Roots: the relocated doc and a. (b, c reachable; d is not —
    // its lookalike integer in a must not retain it.)
    auto stats = gc.collect({fresh.value, a.value});
    std::printf("  segments before: %zu, scanned: %llu, freed: %llu "
                "(incl. code segments & the stranded original)\n",
                before, (unsigned long long)stats.segmentsScanned,
                (unsigned long long)stats.segmentsFreed);
    std::printf("  d retained by its integer lookalike? %s\n",
                kernel.segments()
                        .segmentContaining(PointerView(d.value).addr())
                        .has_value()
                    ? "yes (BUG)"
                    : "no — the tag bit keeps GC exact");

    std::printf("\nLifecycle complete: grant, revoke, reinstate, "
                "relocate, collect — all without per-process tables.\n");
    return 0;
}
