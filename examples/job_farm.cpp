/**
 * @file
 * A job farm: many more protection domains than hardware threads.
 *
 * 64 independent jobs — each a separate protection domain with its
 * own segment — are multiplexed onto the MAP's 16 hardware thread
 * slots by the software scheduler. Each worker reports through a
 * *one-word* result slot: an 8-byte SUBSEG of a shared results
 * array, so no worker can touch any other worker's slot — protection
 * at the granularity of a single word, which no page-based scheme
 * can express. Some jobs are buggy and fault; the farm shrugs:
 * faults are confined to the faulting domain.
 */

#include <cstdio>

#include "gp/ops.h"
#include "os/kernel.h"
#include "os/scheduler.h"

using namespace gp;

int
main()
{
    std::printf("Job farm: 64 domains on 16 hardware threads\n\n");

    os::Kernel kernel;
    os::Scheduler sched(kernel);

    // The shared results array: 64 words. Workers never see this
    // pointer — each gets an 8-byte subsegment of exactly its slot.
    auto results = kernel.segments().allocate(64 * 8, Perm::ReadWrite);
    if (!results) {
        std::printf("setup failed\n");
        return 1;
    }
    const uint64_t results_base =
        PointerView(results.value).segmentBase();

    // The worker: compute sum(0..n-1) into its private segment, then
    // publish a READ-ONLY grant of that segment through its one-word
    // result slot. Registers: r1=n, r2=private segment, r13=slot.
    auto worker = kernel.loadAssembly(R"(
        movi r3, 0          ; i
        movi r4, 0          ; sum
        loop:
        add r4, r4, r3
        addi r3, r3, 1
        bne r3, r1, loop
        st r4, 0(r2)        ; result into the private segment
        movi r5, 2
        restrict r6, r2, r5 ; read-only grant
        st r6, 0(r13)       ; publish through the 8-byte slot
        halt
    )");

    // A buggy worker that dereferences an integer... and a nosy one
    // that tries to read its neighbour's slot.
    auto buggy = kernel.loadAssembly("ld r3, 0(r4)\nhalt");
    auto nosy = kernel.loadAssembly("ld r3, 8(r13)\nhalt");
    if (!worker || !buggy || !nosy) {
        std::printf("assembly failed\n");
        return 1;
    }

    for (uint64_t i = 0; i < 64; ++i) {
        // Mint the worker's slot: an 8-byte view of results[i].
        auto at = lea(results.value, int64_t(i) * 8);
        auto slot = subseg(at.value, 3);
        if (i % 9 == 8) { // every ninth job is buggy
            sched.submit(os::Job{buggy.value.execPtr,
                                 {{13, slot.value}},
                                 i});
            continue;
        }
        if (i == 30) { // one worker tries to escape its slot
            sched.submit(os::Job{nosy.value.execPtr,
                                 {{13, slot.value}},
                                 i});
            continue;
        }
        auto seg = kernel.segments().allocate(256, Perm::ReadWrite);
        sched.submit(os::Job{worker.value.execPtr,
                             {{1, Word::fromInt(10 + i)},
                              {2, seg.value},
                              {13, slot.value}},
                             i});
    }

    const uint64_t cycles = sched.runAll();

    uint64_t ok = 0, faulted = 0;
    bool nosy_caught = false;
    for (const os::JobResult &r : sched.results()) {
        (r.faulted ? faulted : ok)++;
        if (r.id == 30)
            nosy_caught = r.faulted &&
                          r.fault == Fault::BoundsViolation;
    }

    // Harvest: each written slot holds a read-only capability into
    // some worker's private segment.
    uint64_t grants = 0, sum_of_sums = 0;
    bool all_readonly = true;
    for (uint64_t i = 0; i < 64; ++i) {
        const Word w = kernel.mem().peekWord(results_base + i * 8);
        if (!w.isPointer())
            continue;
        grants++;
        all_readonly &= PointerView(w).perm() == Perm::ReadOnly;
        sum_of_sums +=
            kernel.mem().peekWord(PointerView(w).segmentBase()).bits();
    }

    std::printf("jobs completed: %llu, faulted (by design): %llu, "
                "cycles: %llu\n",
                (unsigned long long)ok, (unsigned long long)faulted,
                (unsigned long long)cycles);
    std::printf("nosy worker caught escaping its 8-byte slot: %s\n",
                nosy_caught ? "yes (bounds-violation)" : "NO");
    std::printf("result grants received: %llu/56 (all read-only: "
                "%s)\n",
                (unsigned long long)grants,
                all_readonly ? "yes" : "NO");
    std::printf("sum of all job results: %llu\n",
                (unsigned long long)sum_of_sums);

    std::printf(
        "\nDispatching a new protection domain = loading registers. "
        "The scheduler has no page tables to swap,\nno ASIDs to "
        "allocate, no TLB to shoot down — 64 domains cost the same "
        "per-switch as 64 function calls.\n");
    return 0;
}
