; RESTRICT in action: shrink the read/write data capability to a
; read-only view, read back through the view, and prove the original
; capability still writes. gpverify certifies this program strictly
; clean — every offset and permission is statically known.
        movi r3, 42
        st   r3, 0(r1)      ; data[0] = 42 via the RW capability
        movi r4, 2          ; Perm::ReadOnly
        restrict r5, r1, r4 ; r5 = read-only view of the segment
        ld   r6, 0(r5)      ; read through the narrowed view
        st   r6, 8(r1)      ; copy via the original RW capability
        halt
