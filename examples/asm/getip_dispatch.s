; Position-independent dispatch: derive a jump target from the current
; instruction pointer with GETIP + LEAI and hop over a poison store.
; gpverify resolves the jump statically (the pointer provably targets
; this code segment at a known offset), proves the poison store dead,
; and certifies the program clean.
        getip r3            ; r3 = execute pointer at this instruction
        leai r3, r3, 32     ; + 4 instructions -> "landing"
        jmp  r3
        st   r0, 0(r0)      ; skipped: would fault (r0 is an integer)
        movi r4, 1          ; landing point
        st   r4, 0(r1)
        halt
