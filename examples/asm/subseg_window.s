; SUBSEG in action: carve a 64-byte window out of the 4 KiB data
; segment and touch its first and last slots. A store at offset 64
; would be a statically-provable bounds escape; gpverify certifies
; this program strictly clean as written.
        movi r3, 6          ; log2(64)
        subseg r4, r1, r3   ; r4 = 64-byte sub-segment at offset 0
        movi r5, 7
        st   r5, 0(r4)      ; first slot of the window
        st   r5, 56(r4)     ; last slot of the window
        ld   r6, 0(r4)
        st   r6, 128(r1)    ; parent capability still spans 4 KiB
        halt
