; Fill the first eight slots of the thread's data segment with 0..7,
; then sum them back with a second loop and store the total in slot 0.
;
; Entry convention (gpsim): r1 = read/write data segment (4 KiB),
; r2 = integer thread index. Verified clean by gpverify (the loop
; cursors keep 8-byte alignment, so only may-fault bounds warnings
; remain, no errors).
        movi r3, 0          ; i
        movi r4, 8          ; n
        mov  r5, r1         ; write cursor
fill:   st   r3, 0(r5)      ; data[i] = i
        leai r5, r5, 8
        addi r3, r3, 1
        bne  r3, r4, fill
        movi r3, 0
        mov  r5, r1         ; read cursor
        movi r6, 0          ; sum
acc:    ld   r7, 0(r5)
        add  r6, r6, r7
        leai r5, r5, 8
        addi r3, r3, 1
        bne  r3, r4, acc
        st   r6, 0(r1)      ; data[0] = 0+1+...+7 = 28
        halt
