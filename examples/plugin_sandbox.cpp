/**
 * @file
 * Sandboxed plugins with two-way protection (paper Fig. 4) and
 * fault-driven lazy relocation (paper §4.3).
 *
 * A host application calls an untrusted "plugin" subsystem with full
 * two-way protection built from the call-gate ABI (os/call_gate.h):
 * the plugin cannot reach the host's private data even while running
 * *in the host's own thread*, and the host's pointers come back
 * intact. Afterwards, the host's data segment is relocated and a
 * software fault handler transparently patches the host's stale
 * pointers on first use — the event-driven relocation story of §4.3.
 */

#include <cstdio>

#include "gp/ops.h"
#include "os/call_gate.h"
#include "os/kernel.h"

using namespace gp;

int
main()
{
    std::printf("Plugin sandboxing with two-way protection "
                "(Fig. 4 + SS4.3)\n\n");

    os::Kernel kernel;

    // Host-private state: a secret the plugin must never see.
    auto secret = kernel.segments().allocate(4096, Perm::ReadWrite);
    kernel.mem().pokeWord(PointerView(secret.value).segmentBase(),
                          Word::fromInt(0x5EC12E7));

    // The untrusted plugin. It gets an input value in r6, returns a
    // result in r9 — and, being nosy, tries to find the host's data
    // in its registers first. Everything it can see is r1 (its own
    // entry), r3 (the opaque gate), r6 (the argument).
    auto plugin = kernel.buildSubsystem(R"(
        ; "useful work": double the argument
        add r9, r6, r6
        ; snoop attempt 1: r4 was scrubbed by the host
        isptr r10, r4
        ; snoop attempt 2: the gate is opaque (checked in a separate
        ; run below; here we stay polite and return)
        jmp r3
    )",
                                        {});

    auto gate = os::buildReturnSegment(kernel);
    if (!plugin || !gate || !secret) {
        std::printf("setup failed\n");
        return 1;
    }

    // The host: spill continuation + secret + gate pointer, scrub,
    // call, use the restored secret afterwards.
    auto host = kernel.loadAssembly(R"(
        movi r6, 21          ; plugin argument
        getip r14
        leai r14, r14, 72
        st r14, 0(r2)        ; slot 0: continuation
        st r4, 8(r2)         ; slot 1: the secret pointer
        st r2, 48(r2)        ; slot 6: the gate's own RW pointer
        movi r14, 0
        movi r4, 0
        movi r2, 0
        jmp r1
        ; --- back, with r4 and r2 restored by the gate stub ---
        ld r11, 0(r4)        ; use the secret again
        halt
    )");

    isa::Thread *t = kernel.spawn(host.value.execPtr,
                                  {{1, plugin.value.enterPtr},
                                   {2, gate.value.rwPtr},
                                   {3, gate.value.enterPtr},
                                   {4, secret.value}});
    kernel.machine().run();

    std::printf("host called plugin(21):\n");
    std::printf("  plugin result (r9):           %llu\n",
                (unsigned long long)t->reg(9).bits());
    std::printf("  plugin saw host's pointer?    %s (isptr r4 = "
                "%llu)\n",
                t->reg(10).bits() ? "YES (BUG)" : "no",
                (unsigned long long)t->reg(10).bits());
    std::printf("  host's secret after return:   0x%llx\n",
                (unsigned long long)t->reg(11).bits());

    // A hostile plugin run: try to read through the gate.
    auto hostile = kernel.buildSubsystem("ld r9, 0(r3)\njmp r3", {});
    auto simple_caller = kernel.loadAssembly("jmp r1");
    isa::Thread *h = kernel.spawn(simple_caller.value.execPtr,
                                  {{1, hostile.value.enterPtr},
                                   {3, gate.value.enterPtr}});
    kernel.machine().run();
    std::printf("  hostile plugin reading gate:  %s\n\n",
                std::string(faultName(h->faultRecord().fault))
                    .c_str());

    // ------------------------------------------------------------
    // Act 2: relocate the secret segment; a fault handler patches
    // stale pointers lazily, exactly as §4.3 sketches.
    const uint64_t old_base = PointerView(secret.value).segmentBase();
    auto moved = kernel.segments().relocate(old_base, Perm::ReadWrite);
    const uint64_t new_base =
        PointerView(moved.value).segmentBase();
    std::printf("relocated secret segment 0x%llx -> 0x%llx\n",
                (unsigned long long)old_base,
                (unsigned long long)new_base);

    unsigned patched = 0;
    kernel.machine().setFaultHandler(
        [&](isa::Thread &thread, const isa::FaultRecord &rec) {
            if (rec.fault != Fault::UnmappedAddress)
                return isa::FaultAction::Terminate;
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                const Word w = thread.reg(r);
                if (!w.isPointer() ||
                    PointerView(w).segmentBase() != old_base)
                    continue;
                auto fixed =
                    makePointer(PointerView(w).perm(),
                                PointerView(w).lenLog2(),
                                new_base + PointerView(w).offset());
                thread.setReg(r, fixed.value);
                patched++;
            }
            return patched ? isa::FaultAction::Retry
                           : isa::FaultAction::Terminate;
        });

    // A thread still holding the OLD pointer:
    auto reader = kernel.loadAssembly("ld r2, 0(r1)\nhalt");
    isa::Thread *stale =
        kernel.spawn(reader.value.execPtr, {{1, secret.value}});
    kernel.machine().run();
    std::printf("stale-pointer read after relocation: value=0x%llx "
                "(%u register(s) patched by the fault handler, "
                "thread %s)\n",
                (unsigned long long)stale->reg(2).bits(), patched,
                stale->state() == isa::ThreadState::Halted
                    ? "completed normally"
                    : "faulted");

    std::printf("\nThe plugin ran in the host's own hardware thread, "
                "in the same address space, with zero kernel\n"
                "involvement per call — isolation came entirely from "
                "which pointers crossed the gate.\n");
    return 0;
}
