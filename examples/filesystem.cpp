/**
 * @file
 * A file system as an unprivileged protected subsystem (paper §2.3).
 *
 * The paper's motivating example: "Modules of an operating system,
 * e.g., the file-system, can be implemented as unprivileged protected
 * subsystems that contain pointers to appropriate data structures."
 *
 * Here a tiny key-value "file table" lives in a segment whose only
 * pointer sits in the subsystem's capability table. Clients hold
 * nothing but an enter pointer: they can call write/read operations,
 * but no client instruction sequence can touch the table directly —
 * demonstrated at the end by a malicious client.
 *
 * Calling convention (all in registers, Fig. 3 style):
 *   r5 = opcode (1 = write, 2 = read)
 *   r6 = file key (nonzero integer)
 *   r7 = value in (write) / value out (read)
 *   r14 = RETIP
 *   r15 = status out (1 = ok, 0 = not found / table full)
 */

#include <cstdio>

#include "gp/ops.h"
#include "os/kernel.h"

using namespace gp;

namespace {

/** The subsystem: linear-probe key-value store over 16 slots. */
constexpr const char *kFsSource = R"(
    ; locate the private file table through our own code segment
    getip r2
    leabi r2, r2, 0      ; capability table at segment base
    ld r3, 0(r2)         ; file-table pointer (clients never see it)
    movi r8, 0           ; slot index
    movi r9, 16          ; slot count
    scan:
    ld r4, 0(r3)         ; slot key
    beq r4, r6, found    ; existing file
    movi r15, 1
    bne r5, r15, next    ; reads keep scanning
    movi r15, 0
    beq r4, r15, found   ; writes may claim an empty slot
    next:
    leai r3, r3, 16
    addi r8, r8, 1
    bne r8, r9, scan
    ; not found / table full
    movi r7, 0
    movi r15, 0
    jmp r14
    found:
    movi r2, 2
    beq r5, r2, do_read
    st r6, 0(r3)         ; write: store key and value
    st r7, 8(r3)
    movi r15, 1
    jmp r14
    do_read:
    ld r7, 8(r3)         ; read: fetch value
    movi r15, 1
    jmp r14
)";

/** An honest client: write file 42, read it back, read missing 99. */
constexpr const char *kClientSource = R"(
    movi r5, 1           ; write(42, 1234)
    movi r6, 42
    movi r7, 1234
    getip r14
    leai r14, r14, 24
    jmp r1
    mov r10, r15         ; status of the write (r10-r13 survive
                         ; the subsystem, which clobbers r2-r4,r8,r9)

    movi r5, 2           ; read(42)
    movi r6, 42
    movi r7, 0
    getip r14
    leai r14, r14, 24
    jmp r1
    mov r11, r7          ; value read back
    mov r12, r15

    movi r5, 2           ; read(99) - no such file
    movi r6, 99
    getip r14
    leai r14, r14, 24
    jmp r1
    mov r13, r15
    halt
)";

/** A malicious client: try to read the capability table directly. */
constexpr const char *kEvilSource = R"(
    ld r3, -8(r1)        ; reach behind the entry point
    halt
)";

} // namespace

int
main()
{
    std::printf("Protected file-system subsystem (paper SS2.3)\n\n");

    os::Kernel kernel;

    // The file table: 16 slots of (key, value); 512B with headroom
    // for the scan cursor. Only the subsystem ever holds this pointer.
    auto table = kernel.segments().allocate(512, Perm::ReadWrite);
    auto fs = kernel.buildSubsystem(kFsSource, {table.value});
    if (!table || !fs) {
        std::printf("setup failed\n");
        return 1;
    }
    std::printf("file-system subsystem at %s\n",
                toString(fs.value.enterPtr).c_str());
    std::printf("clients receive ONLY the enter pointer above.\n\n");

    // Honest client session.
    auto client = kernel.loadAssembly(kClientSource);
    isa::Thread *t =
        kernel.spawn(client.value.execPtr, {{1, fs.value.enterPtr}});
    kernel.machine().run();
    std::printf("honest client:\n");
    std::printf("  write(42, 1234)  -> status %llu\n",
                (unsigned long long)t->reg(10).bits());
    std::printf("  read(42)         -> value %llu, status %llu\n",
                (unsigned long long)t->reg(11).bits(),
                (unsigned long long)t->reg(12).bits());
    std::printf("  read(99)         -> status %llu (no such file)\n",
                (unsigned long long)t->reg(13).bits());

    // Malicious client session.
    auto evil = kernel.loadAssembly(kEvilSource);
    isa::Thread *e =
        kernel.spawn(evil.value.execPtr, {{1, fs.value.enterPtr}});
    kernel.machine().run();
    std::printf("\nmalicious client:\n");
    std::printf("  ld -8(enter_ptr) -> %s\n",
                std::string(faultName(e->faultRecord().fault))
                    .c_str());

    // The kernel can still inspect the table (it kept the pointer).
    const uint64_t base = PointerView(table.value).segmentBase();
    std::printf("\nkernel view of the file table (slot 0): key=%llu "
                "value=%llu\n",
                (unsigned long long)kernel.mem().peekWord(base).bits(),
                (unsigned long long)kernel.mem()
                    .peekWord(base + 8)
                    .bits());

    std::printf("\nNo kernel call happened on the request path: the "
                "enter pointer is the entire access-control system.\n");
    return 0;
}
