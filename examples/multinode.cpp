/**
 * @file
 * The multicomputer (paper §3): guarded pointers across a 3-D mesh.
 *
 * Four MAP nodes, each a full machine, share the 54-bit global
 * address space. A capability minted on one node is dereferenced on
 * another, code is fetched across the mesh, and a protected
 * subsystem on node 0 serves a caller on node 2 — all with the same
 * 64-bit words and zero per-node protection state.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "gp/ops.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "isa/machine.h"
#include "noc/node_memory.h"

using namespace gp;
using namespace gp::noc;

namespace {

struct Cluster4
{
    Mesh mesh{MeshConfig{}};
    GlobalMemory global;
    std::vector<std::unique_ptr<NodeMemory>> mems;
    std::vector<std::unique_ptr<isa::Machine>> machines;

    Cluster4()
    {
        mem::MemConfig cfg;
        cfg.cache.setsPerBank = 64;
        isa::MachineConfig mcfg;
        mcfg.clusters = 1;
        for (unsigned n = 0; n < 4; ++n) {
            mems.push_back(std::make_unique<NodeMemory>(n, mesh,
                                                        global, cfg));
            machines.push_back(
                std::make_unique<isa::Machine>(mcfg, *mems[n]));
        }
    }

    void
    runAll()
    {
        for (int c = 0; c < 500000; ++c) {
            bool any = false;
            for (auto &m : machines) {
                if (!m->allDone()) {
                    m->step();
                    any = true;
                }
            }
            if (!any)
                return;
        }
    }
};

} // namespace

int
main()
{
    std::printf("Four MAP nodes, one 54-bit global space "
                "(paper SS3)\n\n");
    Cluster4 c;

    // Act 1: node 0 mints a capability; node 2 dereferences it.
    auto data = makePointer(Perm::ReadWrite, 12,
                            nodeBase(0) + 0x10000);
    c.mems[0]->pokeWord(nodeBase(0) + 0x10000, Word::fromInt(0xCAFE));
    std::printf("capability minted on node 0: %s\n",
                toString(data.value).c_str());
    auto ld = c.mems[2]->load(data.value, 8);
    std::printf("node 2 dereferences the SAME word: 0x%llx "
                "(latency %llu cycles, %u mesh hops)\n\n",
                (unsigned long long)ld.data.bits(),
                (unsigned long long)ld.latency(), c.mesh.hops(2, 0));

    // Act 2: a protected counter service on node 0, called from
    // node 2 through nothing but an enter pointer.
    isa::Assembly body = isa::assemble(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)      ; private counter pointer (node 0 memory)
        ld r4, 0(r3)
        addi r4, r4, 1
        st r4, 0(r3)
        mov r5, r4        ; return the new value
        jmp r14
    )");
    if (!body.ok) {
        std::printf("asm error: %s\n", body.error.c_str());
        return 1;
    }
    auto counter = makePointer(Perm::ReadWrite, 12,
                               nodeBase(0) + 0x20000);
    c.mems[0]->pokeWord(nodeBase(0) + 0x20000, Word::fromInt(100));
    std::vector<Word> words{counter.value};
    words.insert(words.end(), body.words.begin(), body.words.end());
    auto image = isa::loadProgram(*c.mems[0], nodeBase(0) + 0x30000,
                                  words);
    auto enter = makePointer(Perm::EnterUser, image.lenLog2,
                             nodeBase(0) + 0x30000 + 8);

    isa::Assembly caller = isa::assemble(R"(
        getip r14
        leai r14, r14, 24
        jmp r1
        halt
    )");
    auto caller_img = isa::loadProgram(*c.mems[2],
                                       nodeBase(2) + 0x40000,
                                       caller.words);
    isa::Thread *t = c.machines[2]->spawn(caller_img.execPtr);
    t->setReg(1, enter.value);
    c.runAll();

    std::printf("node 2 called the protected counter service ON "
                "node 0:\n");
    std::printf("  service returned %llu; counter in node 0 memory "
                "is now %llu\n",
                (unsigned long long)t->reg(5).bits(),
                (unsigned long long)c.mems[0]
                    ->peekWord(nodeBase(0) + 0x20000)
                    .bits());
    std::printf("  node 2's remote misses: %llu (code + data fetched "
                "across the mesh, then cached)\n",
                (unsigned long long)c.mems[2]->stats().get(
                    "remote_misses"));

    // Act 3: the caller still can't touch the service's private data.
    isa::Assembly snoop = isa::assemble("ld r2, 0(r1)\nhalt");
    auto snoop_img = isa::loadProgram(*c.mems[2],
                                      nodeBase(2) + 0x50000,
                                      snoop.words);
    isa::Thread *s = c.machines[2]->spawn(snoop_img.execPtr);
    s->setReg(1, enter.value);
    c.runAll();
    std::printf("  caller reading through the enter pointer: %s\n",
                std::string(faultName(s->faultRecord().fault))
                    .c_str());

    std::printf("\nmesh traffic: %llu messages, %llu flits\n",
                (unsigned long long)c.mesh.stats().get("messages"),
                (unsigned long long)c.mesh.stats().get("flits"));
    std::printf("\nNo per-node capability tables, no proxies, no "
                "marshalling: a pointer is a pointer everywhere.\n");
    return 0;
}
