/**
 * @file
 * Cycle-by-cycle multithreading across protection domains (paper §3).
 *
 * Sixteen threads in sixteen distinct protection domains run
 * simultaneously on the 4-cluster MAP: a pipeline of producers and
 * consumers connected by shared ring segments, where each stage only
 * holds the pointers it needs (read-only on its input ring,
 * read/write on its output ring). The machine interleaves them
 * cycle-by-cycle with zero protection state — the scenario that
 * motivated the paper.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "gp/ops.h"
#include "os/kernel.h"

using namespace gp;

namespace {

/**
 * Stage i: wait for the sequence number in its input cell, add its
 * stamp, publish to its output cell. Registers:
 *   r1 = input cell (read-only), r2 = output cell (read/write)
 *   r3 = expected input value
 */
constexpr const char *kStageSource = R"(
    wait:
    ld r4, 0(r1)
    bne r4, r3, wait
    addi r4, r4, 1       ; stamp: increment through the stage
    st r4, 0(r2)
    halt
)";

} // namespace

int
main()
{
    std::printf("16 protection domains, one machine, zero-cost "
                "interleaving (paper SS3)\n\n");

    os::Kernel kernel;
    constexpr int kStages = 16;

    // A chain of 17 single-word cells; stage i reads cell i and
    // writes cell i+1.
    std::vector<Word> cells;
    for (int i = 0; i <= kStages; ++i) {
        auto c = kernel.segments().allocate(64, Perm::ReadWrite);
        cells.push_back(c.value);
    }

    auto stage = kernel.loadAssembly(kStageSource);
    std::vector<isa::Thread *> threads;
    for (int i = 0; i < kStages; ++i) {
        // Each stage's protection domain: read-only on its input,
        // read/write on its output — nothing else.
        auto input_ro = restrictPerm(cells[i], Perm::ReadOnly);
        isa::Thread *t = kernel.spawn(
            stage.value.execPtr,
            {{1, input_ro.value},
             {2, cells[i + 1]},
             {3, Word::fromInt(uint64_t(i) + 100)}});
        if (!t) {
            std::printf("out of thread slots\n");
            return 1;
        }
        threads.push_back(t);
    }

    // Light the fuse: write 100 into cell 0. Every stage is already
    // live and spinning — all 16 domains share the machine right now.
    kernel.mem().pokeWord(PointerView(cells[0]).segmentBase(),
                          Word::fromInt(100));

    const uint64_t cycles = kernel.machine().run(2'000'000);

    int halted = 0;
    for (auto *t : threads)
        halted += t->state() == isa::ThreadState::Halted;
    const uint64_t result =
        kernel.mem()
            .peekWord(PointerView(cells[kStages]).segmentBase())
            .bits();

    std::printf("pipeline result: %llu (expected %d)\n",
                (unsigned long long)result, 100 + kStages);
    std::printf("stages completed: %d/16 in %llu cycles\n", halted,
                (unsigned long long)cycles);
    std::printf("faults: %zu\n", kernel.machine().faultLog().size());

    std::printf("\nmachine stats:\n");
    std::printf("  instructions : %llu\n",
                (unsigned long long)kernel.machine().stats().get(
                    "instructions"));
    std::printf("  cache hits   : %llu\n",
                (unsigned long long)kernel.mem().stats().get("hits"));
    std::printf("  cache misses : %llu\n",
                (unsigned long long)kernel.mem().stats().get(
                    "misses"));
    std::printf("  TLB walks    : %llu (translation only on miss)\n",
                (unsigned long long)kernel.mem().tlb().stats().get(
                    "misses"));

    std::printf(
        "\nNote what is absent: no per-thread page tables, no ASIDs, "
        "no TLB or cache flushes, no protection-table\nlookups — 16 "
        "mutually untrusting domains interleaved cycle-by-cycle, "
        "isolated purely by which pointers each holds.\n");

    // Coda: prove the isolation is real. A 17th thread gets NO
    // pointers and tries to write cell 16's address as an integer.
    auto thief = kernel.loadAssembly("st r2, 0(r1)\nhalt");
    isa::Thread *bad = kernel.spawn(
        thief.value.execPtr,
        {{1, Word::fromInt(cells[kStages].bits())}});
    kernel.machine().run();
    std::printf("\nthief with integer address of the result cell: "
                "%s\n",
                std::string(faultName(bad->faultRecord().fault))
                    .c_str());
    return 0;
}
