/**
 * @file
 * gpasm — assembler front-end.
 *
 * Assembles a source file (or stdin with "-") and prints the encoded
 * words as a hex listing with disassembly and label annotations.
 * Exit status 0 on success, 1 on assembly errors (message on
 * stderr), so it doubles as a syntax checker in build scripts.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "isa/assembler.h"

using namespace gp;

namespace {

std::string
readSource(const std::string &path)
{
    if (path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "gpasm: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <prog.s | ->\n", argv[0]);
        return 2;
    }

    const isa::Assembly assembly = isa::assemble(readSource(argv[1]));
    if (!assembly.ok) {
        std::fprintf(stderr, "gpasm: %s\n", assembly.error.c_str());
        return 1;
    }

    // Invert the label map for per-instruction annotations.
    std::map<size_t, std::string> labels_at;
    for (const auto &[name, index] : assembly.labels) {
        auto &slot = labels_at[index];
        if (!slot.empty())
            slot += ", ";
        slot += name;
    }

    for (size_t i = 0; i < assembly.words.size(); ++i) {
        if (auto it = labels_at.find(i); it != labels_at.end())
            std::printf("%s:\n", it->second.c_str());
        auto inst = isa::decodeInst(assembly.words[i]);
        std::printf("  %04zx: %016llx  %s\n", i * 8,
                    (unsigned long long)assembly.words[i].bits(),
                    inst ? isa::toString(*inst).c_str() : "???");
    }
    std::printf("; %zu instruction(s), %zu byte(s)\n",
                assembly.words.size(), assembly.words.size() * 8);
    return 0;
}
