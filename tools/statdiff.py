#!/usr/bin/env python3
"""Diff two gpsim --stats-json exports, two bench --json reports, or
two gpsim --profile-out exports (gpprof profiles).

Usage:
    statdiff.py BASE.json NEW.json [--all] [--threshold PCT]

Stats exports ({"groups": [...]}): prints one line per counter that
changed between the two runs, with absolute and relative deltas, and
summarises histogram changes by count/mean/p99. Groups appearing in
only one file are reported as added/removed.

Bench reports ({"bench": ..., "tables": [...]}, as written by the
experiment binaries with --json, e.g. bench_x1_fault_coverage):
diffs tables by title and rows by their key columns, printing one
line per changed cell — numeric cells with absolute/relative deltas,
text cells as before -> after. This is how CI compares fault-coverage
campaigns across commits.

Profile exports ({"kind": "gpprof-profile", ...}, as written by gpsim
--profile-out): diffs the CPI stack per component — absolute
cluster-cycle deltas plus the per-instruction (CPI) change, which is
the number that matters when instruction counts differ between the
runs — the verifier-elision check split (checks_elided /
checks_executed), and the per-domain cycle/instruction attribution by
domain name. This is how profiling regressions (e.g. a change that
moves cycles from compute into gate crossings) are caught in CI.

Sharded-mesh exports: a stats export written by a --mesh run carries
per-shard groups ("shard0", "shard1", ...) with the SIMULATED work
each host shard executed. statdiff reports the busy-cycle imbalance
(max/min ratio across shards) of each file as informational lines —
a ratio far above 1.0 means the contiguous node partition is lopsided
and host scaling will disappoint. Imbalance lines never affect the
exit status; only actual counter differences do.

Exit status is 1 when anything differs (useful as a regression
tripwire in CI), 0 otherwise; 2 when an input file is missing, not
valid JSON, or the two files are different kinds of export.
"""

import argparse
import json
import re
import sys


def die(message):
    print(f"statdiff: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg})")
    if not isinstance(doc, dict):
        die(f"{path} is not a stats or bench JSON export "
            "(expected a JSON object)")
    if doc.get("kind") == "gpprof-profile":
        return doc, "profile", None
    if "tables" in doc:
        return doc, None, None
    counters = {}
    hists = {}
    for group in doc.get("groups", []):
        gname = group.get("name", "?")
        for cname, value in group.get("counters", {}).items():
            key = f"{gname}.{cname}"
            counters[key] = counters.get(key, 0) + value
        for hname, summary in group.get("histograms", {}).items():
            key = f"{gname}.{hname}"
            hists[key] = summary
    return doc, counters, hists


def fmt_delta(base, new):
    delta = new - base
    if base == 0:
        rel = "new" if new else "0%"
    else:
        rel = f"{100.0 * delta / base:+.1f}%"
    return f"{base} -> {new} ({delta:+d}, {rel})"


def is_number(text):
    try:
        float(text)
        return True
    except ValueError:
        return False


def table_rows(table):
    """Index a bench table's rows by their non-numeric key columns."""
    header = table.get("header", [])
    rows = table.get("rows", [])
    # Key = every non-numeric cell (site names, config labels, ecc
    # modes, ...); numeric cells are the measurements being diffed.
    # Duplicate keys get a #n suffix so rows never shadow each other.
    indexed = {}
    for row in rows:
        cells = [c for c in row if not is_number(c)] or row[:1] or ["?"]
        key = " / ".join(cells)
        if key in indexed:
            n = 2
            while f"{key} #{n}" in indexed:
                n += 1
            key = f"{key} #{n}"
        indexed[key] = row
    return header, indexed


def diff_tables(base_doc, new_doc, show_all):
    """Diff two bench --json reports table by table. Returns the
    number of differing cells/rows/tables."""
    base_tables = {t.get("title", "?"): t
                   for t in base_doc.get("tables", [])}
    new_tables = {t.get("title", "?"): t
                  for t in new_doc.get("tables", [])}
    changed = 0
    for title in sorted(set(base_tables) | set(new_tables)):
        if title not in base_tables:
            print(f"~ table [added]: {title}")
            changed += 1
            continue
        if title not in new_tables:
            print(f"~ table [removed]: {title}")
            changed += 1
            continue
        header, base_rows = table_rows(base_tables[title])
        _, new_rows = table_rows(new_tables[title])
        for key in sorted(set(base_rows) | set(new_rows)):
            if key not in base_rows:
                print(f"~ {title} :: {key} [row added]")
                changed += 1
                continue
            if key not in new_rows:
                print(f"~ {title} :: {key} [row removed]")
                changed += 1
                continue
            b_row, n_row = base_rows[key], new_rows[key]
            for c in range(max(len(b_row), len(n_row))):
                b = b_row[c] if c < len(b_row) else ""
                n = n_row[c] if c < len(n_row) else ""
                if b == n:
                    continue
                col = header[c] if c < len(header) else f"col{c}"
                if is_number(b) and is_number(n):
                    fb, fn = float(b), float(n)
                    rel = ("new" if fb == 0 else
                           f"{100.0 * (fn - fb) / fb:+.1f}%")
                    print(f"~ {title} :: {key} :: {col} "
                          f"{b} -> {n} ({rel})")
                else:
                    print(f"~ {title} :: {key} :: {col} "
                          f"{b} -> {n}")
                changed += 1
        if show_all and changed == 0:
            print(f"  {title} (unchanged)")
    return changed


def diff_profiles(base, new, show_all):
    """Diff two gpprof profiles. Returns the number of differences."""
    changed = 0
    for field in ("clusters", "cycles", "instructions",
                  "checks_elided", "checks_executed"):
        b, n = base.get(field, 0), new.get(field, 0)
        if b != n:
            print(f"~ {field} {fmt_delta(b, n)}")
            changed += 1
        elif show_all:
            print(f"  {field} {b} (unchanged)")

    b_insts = base.get("instructions", 0) or 1
    n_insts = new.get("instructions", 0) or 1
    b_comp = base.get("components", {})
    n_comp = new.get("components", {})
    for name in sorted(set(b_comp) | set(n_comp)):
        b, n = b_comp.get(name, 0), n_comp.get(name, 0)
        b_cpi, n_cpi = b / b_insts, n / n_insts
        if b == n:
            if show_all:
                print(f"  cpi.{name} {b} (unchanged)")
            continue
        print(f"~ cpi.{name} {fmt_delta(b, n)} "
              f"CPI {b_cpi:.4f} -> {n_cpi:.4f}")
        changed += 1

    b_dom = {d.get("name", "?"): d for d in base.get("domains", [])}
    n_dom = {d.get("name", "?"): d for d in new.get("domains", [])}
    for name in sorted(set(b_dom) | set(n_dom)):
        if name not in b_dom:
            print(f"~ domain {name} [added] "
                  f"cycles={n_dom[name].get('cycles', 0)}")
            changed += 1
            continue
        if name not in n_dom:
            print(f"~ domain {name} [removed] "
                  f"cycles={b_dom[name].get('cycles', 0)}")
            changed += 1
            continue
        for field in ("cycles", "instructions", "enters"):
            b = b_dom[name].get(field, 0)
            n = n_dom[name].get(field, 0)
            if b != n:
                print(f"~ domain {name}.{field} {fmt_delta(b, n)}")
                changed += 1
    return changed


def diff_campaign_tables(base_ctr, new_ctr, show_all):
    """Dedicated outcome-class tables for fault-campaign exports.

    A gpfault --stats-json export carries a "campaign" (single
    machine) or "mesh_campaign" (multi-node fail-stop) group whose
    outcome.* counters are the five-way classification the campaign
    exists to pin. Rendering them as an aligned table with run-share
    percentages makes a coverage shift reviewable at a glance (e.g.
    detected-fault runs turning into silent-data-corruption). The
    outcome.* keys are consumed here so the generic counter walk does
    not report them a second time. Returns the number of changed
    outcome classes."""
    pat = re.compile(r"(campaign|mesh_campaign)\.outcome\.(.+)")
    groups = sorted({m.group(1)
                     for k in set(base_ctr) | set(new_ctr)
                     if (m := pat.fullmatch(k))})
    changed = 0
    for g in groups:
        prefix = f"{g}.outcome."
        keys = sorted(k for k in set(base_ctr) | set(new_ctr)
                      if k.startswith(prefix))
        rows = [(k[len(prefix):], base_ctr.get(k, 0),
                 new_ctr.get(k, 0)) for k in keys]
        differs = any(b != n for _, b, n in rows)
        if differs or show_all:
            b_runs = base_ctr.get(f"{g}.runs", 0)
            n_runs = new_ctr.get(f"{g}.runs", 0)
            print(f"campaign outcome table [{g}] "
                  f"(runs {b_runs} -> {n_runs}):")
            for cls, b, n in rows:
                bp = 100.0 * b / b_runs if b_runs else 0.0
                np = 100.0 * n / n_runs if n_runs else 0.0
                mark = "~" if b != n else " "
                print(f"{mark}   {cls:<24} {b:>6} ({bp:5.1f}%) -> "
                      f"{n:>6} ({np:5.1f}%)")
        changed += sum(1 for _, b, n in rows if b != n)
        for k in keys:
            base_ctr.pop(k, None)
            new_ctr.pop(k, None)
    return changed


def report_shard_imbalance(label, counters):
    """Info lines for a merged multi-shard stats export: per-shard
    busy cycles and the max/min ratio. Silent for exports with fewer
    than two shard groups."""
    shards = {}
    for key, value in counters.items():
        m = re.fullmatch(r"shard(\d+)\.busy_cycles", key)
        if m:
            shards[int(m.group(1))] = value
    if len(shards) < 2:
        return
    busy = [shards[s] for s in sorted(shards)]
    lo, hi = min(busy), max(busy)
    ratio = hi / lo if lo else float("inf")
    cells = " ".join(f"shard{s}={shards[s]}" for s in sorted(shards))
    print(f"i {label}: {len(shards)} shards, busy-cycle imbalance "
          f"max/min = {ratio:.2f} ({cells})")


def main():
    ap = argparse.ArgumentParser(
        description="diff two gpsim --stats-json exports or two "
                    "bench --json table reports")
    ap.add_argument("base")
    ap.add_argument("new")
    ap.add_argument("--all", action="store_true",
                    help="also print unchanged counters")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="only report counters whose relative change "
                         "exceeds PCT (absolute changes from zero "
                         "always report)")
    args = ap.parse_args()

    base_doc, base_ctr, base_hist = load(args.base)
    new_doc, new_ctr, new_hist = load(args.new)

    base_kind = ("profile" if base_ctr == "profile"
                 else "bench" if base_ctr is None else "stats")
    new_kind = ("profile" if new_ctr == "profile"
                else "bench" if new_ctr is None else "stats")
    if base_kind != new_kind:
        die(f"cannot diff a {base_kind} export against a "
            f"{new_kind} export")
    if base_kind == "profile":
        changed = diff_profiles(base_doc, new_doc, args.all)
        if changed == 0:
            print("no differences")
        return 1 if changed else 0
    if base_kind == "bench":
        changed = diff_tables(base_doc, new_doc, args.all)
        if changed == 0:
            print("no differences")
        return 1 if changed else 0

    report_shard_imbalance(args.base, base_ctr)
    report_shard_imbalance(args.new, new_ctr)

    changed = diff_campaign_tables(base_ctr, new_ctr, args.all)
    for key in sorted(set(base_ctr) | set(new_ctr)):
        b = base_ctr.get(key, 0)
        n = new_ctr.get(key, 0)
        if b == n:
            if args.all:
                print(f"  {key} {b} (unchanged)")
            continue
        if b and args.threshold:
            rel = abs(100.0 * (n - b) / b)
            if rel < args.threshold:
                continue
        tag = ""
        if key not in base_ctr:
            tag = " [added]"
        elif key not in new_ctr:
            tag = " [removed]"
        print(f"~ {key} {fmt_delta(b, n)}{tag}")
        changed += 1

    for key in sorted(set(base_hist) | set(new_hist)):
        b = base_hist.get(key)
        n = new_hist.get(key)
        if b is None:
            print(f"~ {key} histogram [added] count={n['count']}")
            changed += 1
            continue
        if n is None:
            print(f"~ {key} histogram [removed] count={b['count']}")
            changed += 1
            continue
        if (b["count"], b["mean"], b["p99"],
            b.get("p999")) == (n["count"], n["mean"], n["p99"],
                               n.get("p999")):
            continue
        print(f"~ {key} count {b['count']} -> {n['count']}, "
              f"mean {b['mean']:.2f} -> {n['mean']:.2f}, "
              f"p99 {b['p99']} -> {n['p99']}, "
              f"p999 {b.get('p999')} -> {n.get('p999')}")
        changed += 1

    if changed == 0:
        print("no differences")
    return 1 if changed else 0


if __name__ == "__main__":
    sys.exit(main())
