#!/usr/bin/env python3
"""Diff two gpsim --stats-json exports.

Usage:
    statdiff.py BASE.json NEW.json [--all] [--threshold PCT]

Prints one line per counter that changed between the two runs, with
absolute and relative deltas, and summarises histogram changes by
count/mean/p99. Groups appearing in only one file are reported as
added/removed. Exit status is 1 when any counter differs (useful as a
regression tripwire in CI), 0 otherwise; 2 when an input file is
missing or not valid stats JSON.
"""

import argparse
import json
import sys


def die(message):
    print(f"statdiff: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg})")
    if not isinstance(doc, dict):
        die(f"{path} is not a gpsim --stats-json export "
            "(expected a JSON object with 'groups')")
    counters = {}
    hists = {}
    for group in doc.get("groups", []):
        gname = group.get("name", "?")
        for cname, value in group.get("counters", {}).items():
            key = f"{gname}.{cname}"
            counters[key] = counters.get(key, 0) + value
        for hname, summary in group.get("histograms", {}).items():
            key = f"{gname}.{hname}"
            hists[key] = summary
    return counters, hists


def fmt_delta(base, new):
    delta = new - base
    if base == 0:
        rel = "new" if new else "0%"
    else:
        rel = f"{100.0 * delta / base:+.1f}%"
    return f"{base} -> {new} ({delta:+d}, {rel})"


def main():
    ap = argparse.ArgumentParser(
        description="diff two gpsim --stats-json exports")
    ap.add_argument("base")
    ap.add_argument("new")
    ap.add_argument("--all", action="store_true",
                    help="also print unchanged counters")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="only report counters whose relative change "
                         "exceeds PCT (absolute changes from zero "
                         "always report)")
    args = ap.parse_args()

    base_ctr, base_hist = load(args.base)
    new_ctr, new_hist = load(args.new)

    changed = 0
    for key in sorted(set(base_ctr) | set(new_ctr)):
        b = base_ctr.get(key, 0)
        n = new_ctr.get(key, 0)
        if b == n:
            if args.all:
                print(f"  {key} {b} (unchanged)")
            continue
        if b and args.threshold:
            rel = abs(100.0 * (n - b) / b)
            if rel < args.threshold:
                continue
        tag = ""
        if key not in base_ctr:
            tag = " [added]"
        elif key not in new_ctr:
            tag = " [removed]"
        print(f"~ {key} {fmt_delta(b, n)}{tag}")
        changed += 1

    for key in sorted(set(base_hist) | set(new_hist)):
        b = base_hist.get(key)
        n = new_hist.get(key)
        if b is None:
            print(f"~ {key} histogram [added] count={n['count']}")
            changed += 1
            continue
        if n is None:
            print(f"~ {key} histogram [removed] count={b['count']}")
            changed += 1
            continue
        if (b["count"], b["mean"], b["p99"]) == \
           (n["count"], n["mean"], n["p99"]):
            continue
        print(f"~ {key} count {b['count']} -> {n['count']}, "
              f"mean {b['mean']:.2f} -> {n['mean']:.2f}, "
              f"p99 {b['p99']} -> {n['p99']}")
        changed += 1

    if changed == 0:
        print("no differences")
    return 1 if changed else 0


if __name__ == "__main__":
    sys.exit(main())
