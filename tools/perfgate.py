#!/usr/bin/env python3
"""Gate a bench_p1_simspeed --json report against the committed baseline.

Usage:
    perfgate.py BASELINE.json NEW.json [--warn-band PCT]
                [--select SUBSTR]

The P1 report contains two kinds of tables (see bench_p1_simspeed.cc):

  - Tables whose title contains "deterministic": every cell is a pure
    function of the simulator (simulated cycles, instruction counts,
    campaign outcome classes). Any drift from the baseline means a
    change was NOT observationally invisible — perfgate HARD-FAILS
    (exit 1) and prints each differing cell. An intentional behaviour
    change must re-bless the baseline in the same commit
    (bench/BENCH_PERF.json), which makes the change reviewable.

  - Tables whose title contains "host-dependent": wall times and
    derived rates. Machines differ, so derived-rate cells are
    WARN-ONLY: cells that regress by more than --warn-band percent
    (default 25) are printed as warnings, but never fail the gate.
    Wall-time cells get a SOFT RATIO GATE: a run slower than the
    blessed baseline warns above 1.3x and fails above 2x — loose
    enough to absorb machine-to-machine variance, tight enough to
    catch an accidental order-of-magnitude interpreter regression.
    The committed baseline documents the reference machine's numbers.

The report also carries two in-run contracts that need no baseline:
the fig5-elide row (elide-on cycles <= elide-off, saved > 0) and the
fig5-superblock/fig5-fast rows (superblock cycles == legacy cycles,
hits > 0, and the fig5-fast host rate >= 2x the fig5-memsys host rate
measured in the SAME run, so the speedup check is host-independent).

Exit status: 0 = gate passed (warnings allowed), 1 = deterministic
drift / wall-time blowout / contract violation, 2 = bad input
(missing file, invalid JSON, missing table).
"""

import argparse
import json
import re
import sys


def die(message):
    print(f"perfgate: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg})")
    if not isinstance(doc, dict) or "tables" not in doc:
        die(f"{path} is not a bench --json report")
    return doc


def tables_by_title(doc):
    return {t.get("title", "?"): t for t in doc.get("tables", [])}


def rows_by_key(table):
    """Index rows by their first column (the arm name)."""
    out = {}
    for row in table.get("rows", []):
        out[row[0] if row else "?"] = row
    return out


def parse_number(cell):
    """First numeric token in a cell, or None ("3.27", "12.5 runs/s")."""
    m = re.match(r"\s*([-+]?\d+(?:\.\d+)?)", cell)
    return float(m.group(1)) if m else None


def gate_deterministic(title, base, new):
    """Hard gate: every cell must match exactly. Returns #violations."""
    header = base.get("header", [])
    base_rows, new_rows = rows_by_key(base), rows_by_key(new)
    bad = 0
    for key in sorted(set(base_rows) | set(new_rows)):
        if key not in base_rows or key not in new_rows:
            print(f"FAIL {title} :: {key} "
                  f"[row {'added' if key not in base_rows else 'removed'}]")
            bad += 1
            continue
        b_row, n_row = base_rows[key], new_rows[key]
        for c in range(max(len(b_row), len(n_row))):
            b = b_row[c] if c < len(b_row) else ""
            n = n_row[c] if c < len(n_row) else ""
            if b != n:
                col = header[c] if c < len(header) else f"col{c}"
                print(f"FAIL {title} :: {key} :: {col} {b} -> {n}")
                bad += 1
    return bad


def check_elide_contract(new_tables):
    """Sanity-gate the fig5-elide row of the new report: elide-on
    cycles must not exceed the elide-off cycles recorded in its extra
    column, and the arm must have elided something (saved > 0).
    Returns #violations; absent row (older reports) checks nothing."""
    bad = 0
    for title, table in new_tables.items():
        if "deterministic" not in title:
            continue
        row = rows_by_key(table).get("fig5-elide")
        if row is None or len(row) < 4:
            continue
        cycles = parse_number(row[1])
        m_off = re.search(r"off=(\d+)", row[3])
        m_saved = re.search(r"saved=(\d+)", row[3])
        if cycles is None or not m_off or not m_saved:
            print(f"FAIL {title} :: fig5-elide :: unparseable row")
            bad += 1
            continue
        if cycles > float(m_off.group(1)):
            print(f"FAIL {title} :: fig5-elide :: elide-on cycles "
                  f"{row[1]} exceed elide-off {m_off.group(1)}")
            bad += 1
        if int(m_saved.group(1)) == 0:
            print(f"FAIL {title} :: fig5-elide :: saved=0 "
                  "(the proof discharged nothing)")
            bad += 1
    return bad


def gate_host(title, base, new, warn_band):
    """Host-speed gate. Derived-rate cells are warn-only (band in
    percent). Wall-time cells are a soft ratio gate: new/base > 1.3
    warns, > 2.0 fails — slow enough growth to ride out machine
    differences, but a 2x wall-time blowout on the reference workload
    means the interpreter itself regressed. Returns
    (warnings, failures)."""
    header = base.get("header", [])
    base_rows, new_rows = rows_by_key(base), rows_by_key(new)
    warned = failed = 0
    for key in sorted(set(base_rows) & set(new_rows)):
        b_row, n_row = base_rows[key], new_rows[key]
        for c in range(1, min(len(b_row), len(n_row))):
            b, n = parse_number(b_row[c]), parse_number(n_row[c])
            if b is None or n is None or b == 0:
                continue
            col = header[c] if c < len(header) else f"col{c}"
            is_wall = "ms" in col or "wall" in col
            if is_wall:
                ratio = n / b
                if ratio > 2.0:
                    print(f"FAIL {title} :: {key} :: {col} "
                          f"{b_row[c].strip()} -> {n_row[c].strip()} "
                          f"({ratio:.2f}x > 2x blessed wall time)")
                    failed += 1
                elif ratio > 1.3:
                    print(f"WARN {title} :: {key} :: {col} "
                          f"{b_row[c].strip()} -> {n_row[c].strip()} "
                          f"({ratio:.2f}x > 1.3x blessed wall time)")
                    warned += 1
                continue
            rel = 100.0 * (n - b) / b
            if rel < -warn_band:
                print(f"WARN {title} :: {key} :: {col} "
                      f"{b_row[c].strip()} -> {n_row[c].strip()} "
                      f"({rel:+.1f}%)")
                warned += 1
    return warned, failed


def check_superblock_contract(new_tables):
    """Sanity-gate the superblock rows of the new report. In the
    deterministic table, fig5-superblock cycles must equal the legacy
    cycles recorded in its extra column (the trace engine must be
    observationally invisible) and the arm must actually have entered
    traces (hits > 0). In the host table, the fig5-fast rate must be
    >= 2x the fig5-memsys rate FROM THE SAME RUN — a same-host ratio,
    so the check holds on any machine. Returns #violations; absent
    rows (older reports) check nothing."""
    bad = 0
    sb_present = False
    for title, table in new_tables.items():
        if "deterministic" not in title:
            continue
        row = rows_by_key(table).get("fig5-superblock")
        if row is None or len(row) < 4:
            continue
        sb_present = True
        cycles = parse_number(row[1])
        m_off = re.search(r"off=(\d+)", row[3])
        m_hits = re.search(r"hits=(\d+)", row[3])
        if cycles is None or not m_off or not m_hits:
            print(f"FAIL {title} :: fig5-superblock :: unparseable "
                  "row")
            bad += 1
            continue
        if cycles != float(m_off.group(1)):
            print(f"FAIL {title} :: fig5-superblock :: superblock-on "
                  f"cycles {row[1]} differ from legacy "
                  f"{m_off.group(1)} (traces must be timing-neutral)")
            bad += 1
        if int(m_hits.group(1)) == 0:
            print(f"FAIL {title} :: fig5-superblock :: hits=0 "
                  "(the trace engine never ran)")
            bad += 1
    if not sb_present:
        return bad
    for title, table in new_tables.items():
        if "host-dependent" not in title:
            continue
        rows = rows_by_key(table)
        fast = rows.get("fig5-fast")
        memsys = rows.get("fig5-memsys")
        if fast is None or memsys is None:
            continue
        f_rate = parse_number(fast[2]) if len(fast) > 2 else None
        m_rate = parse_number(memsys[2]) if len(memsys) > 2 else None
        if f_rate is None or m_rate is None or m_rate == 0:
            print(f"FAIL {title} :: fig5-fast :: unparseable rate")
            bad += 1
            continue
        if f_rate < 2.0 * m_rate:
            print(f"FAIL {title} :: fig5-fast :: {f_rate:.2f} "
                  f"Minst/s is below 2x fig5-memsys "
                  f"({m_rate:.2f} Minst/s) in the same run")
            bad += 1
    return bad


def main():
    ap = argparse.ArgumentParser(
        description="gate bench_p1_simspeed --json output against the "
                    "committed bench/BENCH_PERF.json baseline")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--warn-band", type=float, default=25.0,
                    help="host-speed warn threshold in percent "
                         "(default 25; never fails the gate)")
    ap.add_argument("--select", default=None, metavar="SUBSTR",
                    help="gate only tables whose title contains "
                         "SUBSTR; lets one baseline file carry "
                         "tables from several benches (e.g. P1 and "
                         "F6) without each run tripping the "
                         "added/removed-table check")
    args = ap.parse_args()

    base_tables = tables_by_title(load(args.baseline))
    new_tables = tables_by_title(load(args.new))
    if args.select is not None:
        base_tables = {t: v for t, v in base_tables.items()
                       if args.select in t}
        new_tables = {t: v for t, v in new_tables.items()
                      if args.select in t}
        if not base_tables and not new_tables:
            die(f"--select {args.select!r} matches no table in "
                "either report")

    failures = warnings = 0
    saw_deterministic = False
    for title in sorted(set(base_tables) | set(new_tables)):
        if title not in base_tables or title not in new_tables:
            print(f"FAIL table {'added' if title not in base_tables else 'removed'}: {title}")
            failures += 1
            continue
        if "deterministic" in title:
            saw_deterministic = True
            failures += gate_deterministic(
                title, base_tables[title], new_tables[title])
        elif "host-dependent" in title:
            w, f = gate_host(title, base_tables[title],
                             new_tables[title], args.warn_band)
            warnings += w
            failures += f
    if not saw_deterministic:
        die("no deterministic table found; is this a P1 report?")
    failures += check_elide_contract(new_tables)
    failures += check_superblock_contract(new_tables)

    if failures:
        print(f"perfgate: FAILED — {failures} violation(s): "
              "deterministic drift, a >2x wall-time blowout, or a "
              "broken in-run contract. A perf change must not change "
              "simulated behaviour; if the change is intentional, "
              "re-bless bench/BENCH_PERF.json in the same commit.")
        return 1
    print(f"perfgate: OK (deterministic signature matches; "
          f"{warnings} host-speed warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
