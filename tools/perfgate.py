#!/usr/bin/env python3
"""Gate a bench_p1_simspeed --json report against the committed baseline.

Usage:
    perfgate.py BASELINE.json NEW.json [--warn-band PCT]
                [--select SUBSTR]

The P1 report contains two kinds of tables (see bench_p1_simspeed.cc):

  - Tables whose title contains "deterministic": every cell is a pure
    function of the simulator (simulated cycles, instruction counts,
    campaign outcome classes). Any drift from the baseline means a
    change was NOT observationally invisible — perfgate HARD-FAILS
    (exit 1) and prints each differing cell. An intentional behaviour
    change must re-bless the baseline in the same commit
    (bench/BENCH_PERF.json), which makes the change reviewable.

  - Tables whose title contains "host-dependent": wall times and
    derived rates. Machines differ, so these are WARN-ONLY: cells that
    regress by more than --warn-band percent (default 25) are printed
    as warnings, but never fail the gate. The committed baseline
    documents the reference machine's numbers.

Exit status: 0 = gate passed (warnings allowed), 1 = deterministic
drift, 2 = bad input (missing file, invalid JSON, missing table).
"""

import argparse
import json
import re
import sys


def die(message):
    print(f"perfgate: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg})")
    if not isinstance(doc, dict) or "tables" not in doc:
        die(f"{path} is not a bench --json report")
    return doc


def tables_by_title(doc):
    return {t.get("title", "?"): t for t in doc.get("tables", [])}


def rows_by_key(table):
    """Index rows by their first column (the arm name)."""
    out = {}
    for row in table.get("rows", []):
        out[row[0] if row else "?"] = row
    return out


def parse_number(cell):
    """First numeric token in a cell, or None ("3.27", "12.5 runs/s")."""
    m = re.match(r"\s*([-+]?\d+(?:\.\d+)?)", cell)
    return float(m.group(1)) if m else None


def gate_deterministic(title, base, new):
    """Hard gate: every cell must match exactly. Returns #violations."""
    header = base.get("header", [])
    base_rows, new_rows = rows_by_key(base), rows_by_key(new)
    bad = 0
    for key in sorted(set(base_rows) | set(new_rows)):
        if key not in base_rows or key not in new_rows:
            print(f"FAIL {title} :: {key} "
                  f"[row {'added' if key not in base_rows else 'removed'}]")
            bad += 1
            continue
        b_row, n_row = base_rows[key], new_rows[key]
        for c in range(max(len(b_row), len(n_row))):
            b = b_row[c] if c < len(b_row) else ""
            n = n_row[c] if c < len(n_row) else ""
            if b != n:
                col = header[c] if c < len(header) else f"col{c}"
                print(f"FAIL {title} :: {key} :: {col} {b} -> {n}")
                bad += 1
    return bad


def check_elide_contract(new_tables):
    """Sanity-gate the fig5-elide row of the new report: elide-on
    cycles must not exceed the elide-off cycles recorded in its extra
    column, and the arm must have elided something (saved > 0).
    Returns #violations; absent row (older reports) checks nothing."""
    bad = 0
    for title, table in new_tables.items():
        if "deterministic" not in title:
            continue
        row = rows_by_key(table).get("fig5-elide")
        if row is None or len(row) < 4:
            continue
        cycles = parse_number(row[1])
        m_off = re.search(r"off=(\d+)", row[3])
        m_saved = re.search(r"saved=(\d+)", row[3])
        if cycles is None or not m_off or not m_saved:
            print(f"FAIL {title} :: fig5-elide :: unparseable row")
            bad += 1
            continue
        if cycles > float(m_off.group(1)):
            print(f"FAIL {title} :: fig5-elide :: elide-on cycles "
                  f"{row[1]} exceed elide-off {m_off.group(1)}")
            bad += 1
        if int(m_saved.group(1)) == 0:
            print(f"FAIL {title} :: fig5-elide :: saved=0 "
                  "(the proof discharged nothing)")
            bad += 1
    return bad


def gate_host(title, base, new, warn_band):
    """Warn-only: flag rate cells that regressed beyond the band."""
    header = base.get("header", [])
    base_rows, new_rows = rows_by_key(base), rows_by_key(new)
    warned = 0
    for key in sorted(set(base_rows) & set(new_rows)):
        b_row, n_row = base_rows[key], new_rows[key]
        for c in range(1, min(len(b_row), len(n_row))):
            b, n = parse_number(b_row[c]), parse_number(n_row[c])
            if b is None or n is None or b == 0:
                continue
            col = header[c] if c < len(header) else f"col{c}"
            # "wall ms" regresses upward; rates regress downward.
            going_up_is_bad = "ms" in col or "wall" in col
            rel = 100.0 * (n - b) / b
            regressed = rel > warn_band if going_up_is_bad \
                else rel < -warn_band
            if regressed:
                print(f"WARN {title} :: {key} :: {col} "
                      f"{b_row[c].strip()} -> {n_row[c].strip()} "
                      f"({rel:+.1f}%)")
                warned += 1
    return warned


def main():
    ap = argparse.ArgumentParser(
        description="gate bench_p1_simspeed --json output against the "
                    "committed bench/BENCH_PERF.json baseline")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--warn-band", type=float, default=25.0,
                    help="host-speed warn threshold in percent "
                         "(default 25; never fails the gate)")
    ap.add_argument("--select", default=None, metavar="SUBSTR",
                    help="gate only tables whose title contains "
                         "SUBSTR; lets one baseline file carry "
                         "tables from several benches (e.g. P1 and "
                         "F6) without each run tripping the "
                         "added/removed-table check")
    args = ap.parse_args()

    base_tables = tables_by_title(load(args.baseline))
    new_tables = tables_by_title(load(args.new))
    if args.select is not None:
        base_tables = {t: v for t, v in base_tables.items()
                       if args.select in t}
        new_tables = {t: v for t, v in new_tables.items()
                      if args.select in t}
        if not base_tables and not new_tables:
            die(f"--select {args.select!r} matches no table in "
                "either report")

    failures = warnings = 0
    saw_deterministic = False
    for title in sorted(set(base_tables) | set(new_tables)):
        if title not in base_tables or title not in new_tables:
            print(f"FAIL table {'added' if title not in base_tables else 'removed'}: {title}")
            failures += 1
            continue
        if "deterministic" in title:
            saw_deterministic = True
            failures += gate_deterministic(
                title, base_tables[title], new_tables[title])
        elif "host-dependent" in title:
            warnings += gate_host(title, base_tables[title],
                                  new_tables[title], args.warn_band)
    if not saw_deterministic:
        die("no deterministic table found; is this a P1 report?")
    failures += check_elide_contract(new_tables)

    if failures:
        print(f"perfgate: FAILED — {failures} deterministic cell(s) "
              "drifted. A perf change must not change simulated "
              "behaviour; if the change is intentional, re-bless "
              "bench/BENCH_PERF.json in the same commit.")
        return 1
    print(f"perfgate: OK (deterministic signature matches; "
          f"{warnings} host-speed warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
