#!/usr/bin/env python3
"""Analyse a gpsim --profile-out JSON export (gpprof profiles).

Usage:
    gpprof.py PROFILE.json                  # CPI-stack + domain summary
    gpprof.py PROFILE.json --check          # validate schema + identities
    gpprof.py PROFILE.json --flamegraph     # collapsed call-gate stacks
    gpprof.py PROFILE.json --top N          # N hottest PCs, symbolised
    gpprof.py PROFILE.json --intervals      # per-interval time series

The profile attributes every simulated cluster-cycle to one CPI-stack
component (see docs/OBSERVABILITY.md, "Profiling"); --check verifies
the exact accounting identity sum(components) == cluster_cycles ==
clusters * cycles, which CI uses as the schema gate.

--flamegraph emits collapsed-stack lines ("domainA;domainB cycles"),
the input format of flamegraph.pl and speedscope, for profiles
recorded with the stacks mode (gpsim --profile=stacks or bare
--profile). Frames are protection domains entered through call gates.

Exit status: 0 on success, 1 when --check finds a violation, 2 on
unreadable/invalid input.
"""

import argparse
import json
import sys

COMPONENTS = [
    "issue", "compute", "check", "ifetch", "dcache", "tlbwalk",
    "noc", "ecc", "retransmit", "gate", "faulttrap", "empty",
    "otherstall",
]


def die(message):
    print(f"gpprof: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg})")
    if not isinstance(doc, dict) or doc.get("kind") != "gpprof-profile":
        die(f"{path} is not a gpprof profile "
            '(expected {"kind": "gpprof-profile", ...})')
    return doc


def domain_name(doc, idx):
    domains = doc.get("domains", [])
    if 0 <= idx < len(domains):
        d = domains[idx]
        return d.get("name") or f"domain@{d.get('base', 0):#x}"
    return f"domain#{idx}"


def check(doc):
    """Validate schema and the exact accounting identities."""
    errors = []
    for field in ("clusters", "cycles", "cluster_cycles",
                  "instructions", "components", "domains"):
        if field not in doc:
            errors.append(f"missing field: {field}")
    if errors:
        return errors

    comp = doc["components"]
    for name in COMPONENTS:
        if name not in comp:
            errors.append(f"missing CPI component: {name}")
        elif not isinstance(comp[name], int) or comp[name] < 0:
            errors.append(f"component {name} is not a non-negative "
                          f"integer: {comp[name]!r}")
    if errors:
        return errors

    total = sum(comp[name] for name in COMPONENTS)
    if total != doc["cluster_cycles"]:
        errors.append(
            f"CPI components sum to {total}, expected cluster_cycles "
            f"= {doc['cluster_cycles']}")
    if doc["clusters"] * doc["cycles"] != doc["cluster_cycles"]:
        errors.append(
            f"clusters*cycles = {doc['clusters'] * doc['cycles']} "
            f"!= cluster_cycles = {doc['cluster_cycles']}")

    # Per-domain cycles are the non-empty cluster-cycles, so they must
    # sum to cluster_cycles minus the empty component; instructions
    # must sum exactly.
    dom_cycles = sum(d.get("cycles", 0) for d in doc["domains"])
    busy = doc["cluster_cycles"] - comp["empty"]
    if doc["domains"] and dom_cycles != busy:
        errors.append(
            f"domain cycles sum to {dom_cycles}, expected "
            f"cluster_cycles - empty = {busy}")
    dom_insts = sum(d.get("instructions", 0) for d in doc["domains"])
    if doc["domains"] and dom_insts != doc["instructions"]:
        errors.append(
            f"domain instructions sum to {dom_insts}, expected "
            f"{doc['instructions']}")

    for i, pc in enumerate(doc.get("pcs", [])):
        pc_total = sum(pc["components"].get(n, 0) for n in COMPONENTS)
        if pc_total != pc.get("cycles", 0):
            errors.append(
                f"pcs[{i}] (pc={pc.get('pc')}) components sum to "
                f"{pc_total}, expected cycles = {pc.get('cycles')}")

    for i, st in enumerate(doc.get("stacks", [])):
        for frame in st.get("frames", []):
            if not 0 <= frame < len(doc["domains"]):
                errors.append(f"stacks[{i}] frame {frame} out of "
                              f"domain range")
    return errors


def summary(doc):
    total = doc["cluster_cycles"] or 1
    insts = doc["instructions"]
    print(f"gpprof: {doc['clusters']} clusters, {doc['cycles']} "
          f"cycles, {insts} instructions "
          f"(IPC {insts / (doc['cycles'] or 1):.3f})")
    print(f"{'component':<12}{'cluster-cycles':>16}{'share':>9}"
          f"{'CPI':>10}")
    for name in COMPONENTS:
        v = doc["components"].get(name, 0)
        if v == 0:
            continue
        cpi = v / insts if insts else 0.0
        print(f"{name:<12}{v:>16}{100.0 * v / total:>8.2f}%"
              f"{cpi:>10.4f}")
    if doc.get("domains"):
        print("\nper-domain attribution:")
        print(f"{'domain':<24}{'cycles':>14}{'insts':>12}"
              f"{'enters':>9}")
        for d in doc["domains"]:
            name = d.get("name") or f"@{d.get('base', 0):#x}"
            print(f"{name:<24}{d['cycles']:>14}"
                  f"{d['instructions']:>12}{d['enters']:>9}")


def symbolise(doc):
    """Map of sorted (addr, name) for nearest-preceding-symbol lookup."""
    syms = sorted((s["addr"], s["name"])
                  for s in doc.get("symbols", []))
    def lookup(pc):
        best = None
        for addr, name in syms:
            if addr > pc:
                break
            best = (addr, name)
        if best is None:
            return f"{pc:#x}"
        off = pc - best[0]
        return best[1] if off == 0 else f"{best[1]}+{off:#x}"
    return lookup


def top(doc, n):
    pcs = doc.get("pcs")
    if pcs is None:
        die("profile has no per-PC data (record with --profile=pc)")
    lookup = symbolise(doc)
    ranked = sorted(pcs, key=lambda p: p["cycles"], reverse=True)[:n]
    total = sum(p["cycles"] for p in pcs) or 1
    print(f"{'pc':<18}{'symbol':<24}{'cycles':>12}{'share':>9}"
          f"{'insts':>10}  dominant")
    for p in ranked:
        comps = [(v, k) for k, v in p["components"].items() if v]
        dominant = max(comps)[1] if comps else "-"
        print(f"{p['pc']:<#18x}{lookup(p['pc']):<24}"
              f"{p['cycles']:>12}{100.0 * p['cycles'] / total:>8.2f}%"
              f"{p['instructions']:>10}  {dominant}")


def flamegraph(doc, out):
    stacks = doc.get("stacks")
    if stacks is None:
        die("profile has no call-gate stacks "
            "(record with --profile=stacks)")
    for st in stacks:
        if st["cycles"] == 0:
            continue
        frames = ";".join(domain_name(doc, f) for f in st["frames"])
        if frames:
            print(f"{frames} {st['cycles']}", file=out)


def intervals(doc):
    ivs = doc.get("intervals")
    if ivs is None:
        die("profile has no interval data "
            "(record with --profile=interval)")
    period = doc.get("interval_cycles", 0)
    print(f"interval period: {period} cycles")
    print(f"{'cycle':>12}{'insts':>10}  " +
          "".join(f"{n:>11}" for n in COMPONENTS))
    for iv in ivs:
        print(f"{iv['cycle']:>12}{iv['instructions']:>10}  " +
              "".join(f"{iv['components'].get(n, 0):>11}"
                      for n in COMPONENTS))


def main():
    ap = argparse.ArgumentParser(
        description="analyse a gpsim --profile-out JSON export")
    ap.add_argument("profile")
    ap.add_argument("--check", action="store_true",
                    help="validate schema and accounting identities")
    ap.add_argument("--flamegraph", action="store_true",
                    help="emit collapsed call-gate stacks "
                         "(flamegraph.pl / speedscope input)")
    ap.add_argument("--top", type=int, metavar="N",
                    help="print the N hottest PCs")
    ap.add_argument("--intervals", action="store_true",
                    help="print the interval time series")
    args = ap.parse_args()

    doc = load(args.profile)

    if args.check:
        errors = check(doc)
        if errors:
            for e in errors:
                print(f"gpprof: CHECK FAILED: {e}", file=sys.stderr)
            return 1
        print(f"gpprof: OK ({doc['cluster_cycles']} cluster-cycles "
              f"exactly attributed across {len(COMPONENTS)} "
              f"components)")
        return 0
    if args.flamegraph:
        flamegraph(doc, sys.stdout)
        return 0
    if args.top is not None:
        top(doc, args.top)
        return 0
    if args.intervals:
        intervals(doc)
        return 0
    summary(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
