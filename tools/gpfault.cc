/**
 * @file
 * gpfault — deterministic fault-injection campaign driver.
 *
 * Runs the standard campaign workload (see src/fault/campaign.cc)
 * many times under per-run derived seeds, injecting hardware faults
 * at the configured sites/rates, and prints the five-way coverage
 * table {masked, corrected, detected-fault, silent-data-corruption,
 * crash-hang}. The whole campaign is a pure function of the
 * configuration and master seed: same flags, same table, bit for bit.
 *
 * Usage:
 *   gpfault [--runs N] [--seed N] [--iterations N]
 *           [--ecc=off|parity|secded] [--walk-retries N]
 *           [--rate SITE=R]... [--burst-max-bits N]
 *           [--watchdog-cycles N] [--stats-json=FILE]
 *           [--elide-checks] [--verbose] [--list-sites]
 *           [--expect-zero-sdc] [--expect-detected]
 *
 * The --expect-* flags turn the driver into a CI tripwire: the
 * headline result of the paper's tag-bit design is that a flipped
 * tag *faults* instead of forging a capability, so
 *   gpfault --rate mem-tag-bit=2e-4 --expect-detected
 * must find detections, and with SECDED armed
 *   gpfault --ecc=secded --rate mem-data-bit=2e-4 --expect-zero-sdc
 * must classify zero runs as silent data corruption.
 *
 * The mesh arm (--mesh X,Y,Z) runs the multi-node campaign instead:
 * fail-stop node deaths and persistent link failures over the
 * sharded mesh engine, classified {masked, degraded-but-correct,
 * detected-fault, silent-data-corruption, hang}. The printed
 * "mesh campaign signature" is bit-identical for every --threads
 * value — CI cross-checks --threads 1 against --threads 4.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "fault/campaign.h"
#include "fault/mesh_campaign.h"
#include "mem/ecc.h"
#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/stats_registry.h"

using namespace gp;

namespace {

struct Options
{
    fault::CampaignConfig campaign;
    std::string statsJson;
    bool verbose = false;
    bool expectZeroSdc = false;
    bool expectDetected = false;
    bool mesh = false; //!< --mesh X,Y,Z given: run the mesh campaign
    fault::MeshCampaignConfig meshCampaign;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --runs N           injected runs (default 100)\n"
        "  --seed N           master seed (default 1)\n"
        "  --iterations N     workload loop iterations (default 150)\n"
        "  --ecc=MODE         off | parity | secded (default off)\n"
        "  --walk-retries N   transient page-walk retries (default 0)\n"
        "  --rate SITE=R      per-opportunity fault rate at SITE\n"
        "                     (repeatable; see --list-sites)\n"
        "  --burst-max-bits N max bits per cache-line burst (default 4)\n"
        "  --watchdog-cycles N  per-run hang budget (default 300000)\n"
        "  --stats-json=FILE  export the campaign stat group as JSON\n"
        "  --elide-checks     arm verifier-driven check elision; the\n"
        "                     outcome table must match the elide-off\n"
        "                     campaign bit for bit (injected runs\n"
        "                     auto-disable elision)\n"
        "  --verbose          one line per run\n"
        "  --list-sites       print the fault-site names and exit\n"
        "  --expect-zero-sdc  exit 1 if any run is classified SDC\n"
        "  --expect-detected  exit 1 if no run is detected-fault\n"
        "mesh campaign (multi-node fail-stop resilience):\n"
        "  --mesh X,Y,Z       run the mesh campaign on an XxYxZ mesh\n"
        "                     (sites: node-fail-stop, link-down, plus\n"
        "                     the noc-* transients)\n"
        "  --threads N        host threads per run (default 1); the\n"
        "                     printed campaign signature is identical\n"
        "                     for every value\n"
        "  --max-cycles N     per-run cycle budget (default 400000)\n"
        "  --mesh-watchdog N  mesh quiescence window (default 20000)\n"
        "  --no-retrans       disable the end-to-end retry protocol\n",
        argv0);
}

void
listSites()
{
    for (unsigned i = 0; i < sim::kFaultSiteCount; ++i) {
        std::printf("%s\n",
                    std::string(sim::faultSiteName(
                                    static_cast<sim::FaultSite>(i)))
                        .c_str());
    }
}

bool
parseRate(const std::string &spec, sim::FaultConfig &fc)
{
    const size_t eq = spec.find('=');
    if (eq == std::string::npos)
        return false;
    const std::string name = spec.substr(0, eq);
    const sim::FaultSite site = sim::faultSiteFromName(name);
    if (site == sim::FaultSite::Count) {
        std::fprintf(stderr, "gpfault: unknown fault site '%s' "
                             "(try --list-sites)\n",
                     name.c_str());
        return false;
    }
    fc.rate[static_cast<unsigned>(site)] =
        std::stod(spec.substr(eq + 1));
    return true;
}

bool
parseArgs(int argc, char **argv, Options &opts, bool &exitEarly)
{
    exitEarly = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto valueOf = [&](const char *name,
                           std::string &out) -> bool {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) {
                out = arg.substr(prefix.size());
                return true;
            }
            if (arg == name) {
                const char *v = next();
                if (v)
                    out = v;
                return !out.empty();
            }
            return false;
        };
        std::string value;
        if (arg == "--list-sites") {
            listSites();
            exitEarly = true;
            return true;
        }
        if (arg == "--verbose") {
            opts.verbose = true;
            continue;
        }
        if (arg == "--expect-zero-sdc") {
            opts.expectZeroSdc = true;
            continue;
        }
        if (arg == "--expect-detected") {
            opts.expectDetected = true;
            continue;
        }
        if (arg == "--elide-checks" ||
            arg == "--elide-checks=verified") {
            opts.campaign.elideChecks = true;
            continue;
        }
        if (valueOf("--runs", value)) {
            opts.campaign.runs = unsigned(std::stoul(value));
            opts.meshCampaign.runs = opts.campaign.runs;
            continue;
        }
        if (valueOf("--seed", value)) {
            opts.campaign.seed = std::stoull(value);
            opts.meshCampaign.seed = opts.campaign.seed;
            continue;
        }
        if (valueOf("--iterations", value)) {
            opts.campaign.iterations = std::stoull(value);
            opts.meshCampaign.iterations = opts.campaign.iterations;
            continue;
        }
        if (valueOf("--walk-retries", value)) {
            opts.campaign.walkRetries = unsigned(std::stoul(value));
            continue;
        }
        if (valueOf("--burst-max-bits", value)) {
            opts.campaign.faults.burstMaxBits = std::stoull(value);
            continue;
        }
        if (valueOf("--watchdog-cycles", value)) {
            opts.campaign.watchdogCycles = std::stoull(value);
            continue;
        }
        if (valueOf("--stats-json", value)) {
            opts.statsJson = value;
            continue;
        }
        if (valueOf("--rate", value)) {
            if (!parseRate(value, opts.campaign.faults))
                return false;
            opts.meshCampaign.faults = opts.campaign.faults;
            continue;
        }
        if (valueOf("--mesh", value)) {
            unsigned x = 0, y = 0, z = 0;
            if (std::sscanf(value.c_str(), "%u,%u,%u", &x, &y, &z) !=
                    3 ||
                x == 0 || y == 0 || z == 0) {
                std::fprintf(stderr,
                             "gpfault: bad --mesh geometry: %s\n",
                             value.c_str());
                return false;
            }
            opts.mesh = true;
            opts.meshCampaign.dimX = x;
            opts.meshCampaign.dimY = y;
            opts.meshCampaign.dimZ = z;
            continue;
        }
        if (valueOf("--threads", value)) {
            opts.meshCampaign.hostThreads =
                unsigned(std::stoul(value));
            continue;
        }
        if (valueOf("--max-cycles", value)) {
            opts.meshCampaign.maxCycles = std::stoull(value);
            continue;
        }
        if (valueOf("--mesh-watchdog", value)) {
            opts.meshCampaign.meshWatchdogCycles =
                std::stoull(value);
            continue;
        }
        if (arg == "--no-retrans") {
            opts.meshCampaign.retrans.enabled = false;
            continue;
        }
        if (valueOf("--ecc", value)) {
            if (value == "off" || value == "none") {
                opts.campaign.ecc = mem::EccMode::None;
            } else if (value == "parity") {
                opts.campaign.ecc = mem::EccMode::Parity;
            } else if (value == "secded") {
                opts.campaign.ecc = mem::EccMode::Secded;
            } else {
                std::fprintf(stderr, "gpfault: bad --ecc mode: %s\n",
                             value.c_str());
                return false;
            }
            continue;
        }
        std::fprintf(stderr, "gpfault: unknown option: %s\n",
                     arg.c_str());
        return false;
    }
    return true;
}

/** The multi-node fail-stop arm of the driver (--mesh X,Y,Z). */
int
runMeshCampaign(const Options &opts)
{
    fault::MeshCampaignRunner runner(opts.meshCampaign);
    const fault::MeshCampaignTotals totals = runner.runAll();

    if (opts.verbose) {
        const auto &results = runner.results();
        for (size_t i = 0; i < results.size(); ++i) {
            const fault::MeshRunResult &r = results[i];
            std::printf(
                "run %4zu: %-23s cycles=%-7llu inj=%-3llu "
                "dead=%llu links=%llu detours=%llu unreach=%llu "
                "fault=%s\n",
                i, std::string(meshOutcomeName(r.outcome)).c_str(),
                (unsigned long long)r.cycles,
                (unsigned long long)r.injections,
                (unsigned long long)r.deadNodes,
                (unsigned long long)r.downLinks,
                (unsigned long long)r.detours,
                (unsigned long long)r.unreachableFaults,
                std::string(faultName(r.firstFault)).c_str());
        }
    }

    const auto &mc = opts.meshCampaign;
    std::printf("gpfault: mesh %ux%ux%u campaign, %llu runs, "
                "%llu injections, %u host thread(s), retrans=%s, "
                "golden=%llu cycles\n",
                mc.dimX, mc.dimY, mc.dimZ,
                (unsigned long long)totals.runs,
                (unsigned long long)totals.totalInjections,
                mc.hostThreads, mc.retrans.enabled ? "on" : "off",
                (unsigned long long)totals.goldenCycles);
    std::printf("  dead-nodes=%llu down-links=%llu detours=%llu "
                "unreachable-faults=%llu\n",
                (unsigned long long)totals.totalDeadNodes,
                (unsigned long long)totals.totalDownLinks,
                (unsigned long long)totals.totalDetours,
                (unsigned long long)totals.totalUnreachableFaults);
    for (unsigned o = 0; o < fault::kMeshOutcomeCount; ++o) {
        const uint64_t n = totals.perOutcome[o];
        std::printf("  %-23s %6llu  (%5.1f%%)\n",
                    std::string(
                        meshOutcomeName(fault::MeshOutcome(o)))
                        .c_str(),
                    (unsigned long long)n,
                    totals.runs
                        ? 100.0 * double(n) / double(totals.runs)
                        : 0.0);
    }
    std::printf("gpfault: mesh campaign signature %016llx\n",
                (unsigned long long)runner.campaignSignature());

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson, std::ios::trunc);
        if (!out)
            sim::fatal("cannot open stats file %s",
                       opts.statsJson.c_str());
        sim::StatRegistry::instance().exportJson(out);
    }

    const uint64_t sdc = totals.outcome(fault::MeshOutcome::Sdc);
    const uint64_t detected =
        totals.outcome(fault::MeshOutcome::DetectedFault);
    if (opts.expectZeroSdc && sdc != 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected zero silent data "
                     "corruption, saw %llu run(s)\n",
                     (unsigned long long)sdc);
        return 1;
    }
    if (opts.expectDetected && detected == 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected detected-fault runs, "
                     "saw none\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bool exitEarly = false;
    if (!parseArgs(argc, argv, opts, exitEarly)) {
        usage(argv[0]);
        return 2;
    }
    if (exitEarly)
        return 0;

    if (opts.mesh)
        return runMeshCampaign(opts);

    fault::CampaignRunner runner(opts.campaign);
    const fault::CampaignTotals totals = runner.runAll();

    if (opts.verbose) {
        const auto &results = runner.results();
        for (size_t i = 0; i < results.size(); ++i) {
            const fault::RunResult &r = results[i];
            std::printf(
                "run %4zu: %-23s cycles=%-7llu inj=%-3llu "
                "eccC=%llu eccD=%llu walkT=%llu fault=%s\n",
                i, std::string(outcomeName(r.outcome)).c_str(),
                (unsigned long long)r.cycles,
                (unsigned long long)r.injections,
                (unsigned long long)r.eccCorrected,
                (unsigned long long)r.eccDetected,
                (unsigned long long)r.walkTransients,
                std::string(faultName(r.firstFault)).c_str());
        }
    }

    std::printf("gpfault: %llu runs, %llu injections, ecc=%s, "
                "walk-retries=%u%s, golden=%llu cycles\n",
                (unsigned long long)totals.runs,
                (unsigned long long)totals.totalInjections,
                std::string(mem::eccModeName(opts.campaign.ecc))
                    .c_str(),
                opts.campaign.walkRetries,
                opts.campaign.elideChecks ? ", elide-checks" : "",
                (unsigned long long)totals.goldenCycles);
    for (unsigned o = 0; o < fault::kOutcomeCount; ++o) {
        const uint64_t n = totals.perOutcome[o];
        std::printf("  %-23s %6llu  (%5.1f%%)\n",
                    std::string(outcomeName(fault::Outcome(o)))
                        .c_str(),
                    (unsigned long long)n,
                    totals.runs ? 100.0 * double(n) /
                                      double(totals.runs)
                                : 0.0);
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson, std::ios::trunc);
        if (!out)
            sim::fatal("cannot open stats file %s",
                       opts.statsJson.c_str());
        sim::StatRegistry::instance().exportJson(out);
    }

    const uint64_t sdc = totals.outcome(fault::Outcome::Sdc);
    const uint64_t detected =
        totals.outcome(fault::Outcome::DetectedFault);
    if (opts.expectZeroSdc && sdc != 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected zero silent data "
                     "corruption, saw %llu run(s)\n",
                     (unsigned long long)sdc);
        return 1;
    }
    if (opts.expectDetected && detected == 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected detected-fault runs, "
                     "saw none\n");
        return 1;
    }
    return 0;
}
