/**
 * @file
 * gpfault — deterministic fault-injection campaign driver.
 *
 * Runs the standard campaign workload (see src/fault/campaign.cc)
 * many times under per-run derived seeds, injecting hardware faults
 * at the configured sites/rates, and prints the five-way coverage
 * table {masked, corrected, detected-fault, silent-data-corruption,
 * crash-hang}. The whole campaign is a pure function of the
 * configuration and master seed: same flags, same table, bit for bit.
 *
 * Usage:
 *   gpfault [--runs N] [--seed N] [--iterations N]
 *           [--ecc=off|parity|secded] [--walk-retries N]
 *           [--rate SITE=R]... [--burst-max-bits N]
 *           [--watchdog-cycles N] [--stats-json=FILE]
 *           [--elide-checks] [--verbose] [--list-sites]
 *           [--expect-zero-sdc] [--expect-detected]
 *
 * The --expect-* flags turn the driver into a CI tripwire: the
 * headline result of the paper's tag-bit design is that a flipped
 * tag *faults* instead of forging a capability, so
 *   gpfault --rate mem-tag-bit=2e-4 --expect-detected
 * must find detections, and with SECDED armed
 *   gpfault --ecc=secded --rate mem-data-bit=2e-4 --expect-zero-sdc
 * must classify zero runs as silent data corruption.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "fault/campaign.h"
#include "mem/ecc.h"
#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/stats_registry.h"

using namespace gp;

namespace {

struct Options
{
    fault::CampaignConfig campaign;
    std::string statsJson;
    bool verbose = false;
    bool expectZeroSdc = false;
    bool expectDetected = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --runs N           injected runs (default 100)\n"
        "  --seed N           master seed (default 1)\n"
        "  --iterations N     workload loop iterations (default 150)\n"
        "  --ecc=MODE         off | parity | secded (default off)\n"
        "  --walk-retries N   transient page-walk retries (default 0)\n"
        "  --rate SITE=R      per-opportunity fault rate at SITE\n"
        "                     (repeatable; see --list-sites)\n"
        "  --burst-max-bits N max bits per cache-line burst (default 4)\n"
        "  --watchdog-cycles N  per-run hang budget (default 300000)\n"
        "  --stats-json=FILE  export the campaign stat group as JSON\n"
        "  --elide-checks     arm verifier-driven check elision; the\n"
        "                     outcome table must match the elide-off\n"
        "                     campaign bit for bit (injected runs\n"
        "                     auto-disable elision)\n"
        "  --verbose          one line per run\n"
        "  --list-sites       print the fault-site names and exit\n"
        "  --expect-zero-sdc  exit 1 if any run is classified SDC\n"
        "  --expect-detected  exit 1 if no run is detected-fault\n",
        argv0);
}

void
listSites()
{
    for (unsigned i = 0; i < sim::kFaultSiteCount; ++i) {
        std::printf("%s\n",
                    std::string(sim::faultSiteName(
                                    static_cast<sim::FaultSite>(i)))
                        .c_str());
    }
}

bool
parseRate(const std::string &spec, sim::FaultConfig &fc)
{
    const size_t eq = spec.find('=');
    if (eq == std::string::npos)
        return false;
    const std::string name = spec.substr(0, eq);
    const sim::FaultSite site = sim::faultSiteFromName(name);
    if (site == sim::FaultSite::Count) {
        std::fprintf(stderr, "gpfault: unknown fault site '%s' "
                             "(try --list-sites)\n",
                     name.c_str());
        return false;
    }
    fc.rate[static_cast<unsigned>(site)] =
        std::stod(spec.substr(eq + 1));
    return true;
}

bool
parseArgs(int argc, char **argv, Options &opts, bool &exitEarly)
{
    exitEarly = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto valueOf = [&](const char *name,
                           std::string &out) -> bool {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) {
                out = arg.substr(prefix.size());
                return true;
            }
            if (arg == name) {
                const char *v = next();
                if (v)
                    out = v;
                return !out.empty();
            }
            return false;
        };
        std::string value;
        if (arg == "--list-sites") {
            listSites();
            exitEarly = true;
            return true;
        }
        if (arg == "--verbose") {
            opts.verbose = true;
            continue;
        }
        if (arg == "--expect-zero-sdc") {
            opts.expectZeroSdc = true;
            continue;
        }
        if (arg == "--expect-detected") {
            opts.expectDetected = true;
            continue;
        }
        if (arg == "--elide-checks" ||
            arg == "--elide-checks=verified") {
            opts.campaign.elideChecks = true;
            continue;
        }
        if (valueOf("--runs", value)) {
            opts.campaign.runs = unsigned(std::stoul(value));
            continue;
        }
        if (valueOf("--seed", value)) {
            opts.campaign.seed = std::stoull(value);
            continue;
        }
        if (valueOf("--iterations", value)) {
            opts.campaign.iterations = std::stoull(value);
            continue;
        }
        if (valueOf("--walk-retries", value)) {
            opts.campaign.walkRetries = unsigned(std::stoul(value));
            continue;
        }
        if (valueOf("--burst-max-bits", value)) {
            opts.campaign.faults.burstMaxBits = std::stoull(value);
            continue;
        }
        if (valueOf("--watchdog-cycles", value)) {
            opts.campaign.watchdogCycles = std::stoull(value);
            continue;
        }
        if (valueOf("--stats-json", value)) {
            opts.statsJson = value;
            continue;
        }
        if (valueOf("--rate", value)) {
            if (!parseRate(value, opts.campaign.faults))
                return false;
            continue;
        }
        if (valueOf("--ecc", value)) {
            if (value == "off" || value == "none") {
                opts.campaign.ecc = mem::EccMode::None;
            } else if (value == "parity") {
                opts.campaign.ecc = mem::EccMode::Parity;
            } else if (value == "secded") {
                opts.campaign.ecc = mem::EccMode::Secded;
            } else {
                std::fprintf(stderr, "gpfault: bad --ecc mode: %s\n",
                             value.c_str());
                return false;
            }
            continue;
        }
        std::fprintf(stderr, "gpfault: unknown option: %s\n",
                     arg.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bool exitEarly = false;
    if (!parseArgs(argc, argv, opts, exitEarly)) {
        usage(argv[0]);
        return 2;
    }
    if (exitEarly)
        return 0;

    fault::CampaignRunner runner(opts.campaign);
    const fault::CampaignTotals totals = runner.runAll();

    if (opts.verbose) {
        const auto &results = runner.results();
        for (size_t i = 0; i < results.size(); ++i) {
            const fault::RunResult &r = results[i];
            std::printf(
                "run %4zu: %-23s cycles=%-7llu inj=%-3llu "
                "eccC=%llu eccD=%llu walkT=%llu fault=%s\n",
                i, std::string(outcomeName(r.outcome)).c_str(),
                (unsigned long long)r.cycles,
                (unsigned long long)r.injections,
                (unsigned long long)r.eccCorrected,
                (unsigned long long)r.eccDetected,
                (unsigned long long)r.walkTransients,
                std::string(faultName(r.firstFault)).c_str());
        }
    }

    std::printf("gpfault: %llu runs, %llu injections, ecc=%s, "
                "walk-retries=%u%s, golden=%llu cycles\n",
                (unsigned long long)totals.runs,
                (unsigned long long)totals.totalInjections,
                std::string(mem::eccModeName(opts.campaign.ecc))
                    .c_str(),
                opts.campaign.walkRetries,
                opts.campaign.elideChecks ? ", elide-checks" : "",
                (unsigned long long)totals.goldenCycles);
    for (unsigned o = 0; o < fault::kOutcomeCount; ++o) {
        const uint64_t n = totals.perOutcome[o];
        std::printf("  %-23s %6llu  (%5.1f%%)\n",
                    std::string(outcomeName(fault::Outcome(o)))
                        .c_str(),
                    (unsigned long long)n,
                    totals.runs ? 100.0 * double(n) /
                                      double(totals.runs)
                                : 0.0);
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson, std::ios::trunc);
        if (!out)
            sim::fatal("cannot open stats file %s",
                       opts.statsJson.c_str());
        sim::StatRegistry::instance().exportJson(out);
    }

    const uint64_t sdc = totals.outcome(fault::Outcome::Sdc);
    const uint64_t detected =
        totals.outcome(fault::Outcome::DetectedFault);
    if (opts.expectZeroSdc && sdc != 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected zero silent data "
                     "corruption, saw %llu run(s)\n",
                     (unsigned long long)sdc);
        return 1;
    }
    if (opts.expectDetected && detected == 0) {
        std::fprintf(stderr,
                     "gpfault: FAIL: expected detected-fault runs, "
                     "saw none\n");
        return 1;
    }
    return 0;
}
