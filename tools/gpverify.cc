/**
 * @file
 * gpverify — static capability-flow verification from the command
 * line.
 *
 * Assembles a program (file or stdin with "-") and runs the gp_verify
 * dataflow analysis over it, printing compiler-style diagnostics with
 * file:line locations from the assembler's source map.
 *
 * Exit status:
 *   0  no must-fault errors (warnings allowed unless --strict)
 *   1  capability violations found (any diagnostic under --strict)
 *   2  usage or assembly error
 *
 * Usage:
 *   gpverify prog.s [--strict] [--privileged] [--data BYTES] [--quiet]
 *                   [--emit-proofs FILE] [--base ADDR]
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "isa/assembler.h"
#include "isa/elide.h"
#include "verify/verifier.h"

using namespace gp;

namespace {

struct Options
{
    std::string source;
    bool strict = false;     //!< warnings are fatal too
    bool privileged = false; //!< analyze as privileged code
    bool quiet = false;      //!< suppress the diagnostic report
    uint64_t dataBytes = 4096;
    std::string emitProofs;  //!< elision-proof sidecar path ("" = off)
    uint64_t base = 0;       //!< load base recorded in the sidecar
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <prog.s | -> [options]\n"
        "  --strict       treat may-fault warnings as fatal\n"
        "  --privileged   analyze as privileged code (SETPTR legal)\n"
        "  --data BYTES   size of the r1 data segment assumed at entry "
        "(default 4096)\n"
        "  --quiet        suppress the diagnostic report (the exit\n"
        "                 status still reflects the verdict)\n"
        "  --emit-proofs FILE  write the per-instruction elision\n"
        "                 verdict bitmap as a versioned 'gpproof'\n"
        "                 sidecar (consumed by gpsim --elide-checks)\n"
        "  --base ADDR    load base recorded in the sidecar (default 0;\n"
        "                 consumers rebase to the actual load address)\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2)
        return false;
    opts.source = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--strict") {
            opts.strict = true;
        } else if (arg == "--privileged") {
            opts.privileged = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--data") {
            if (i + 1 >= argc)
                return false;
            opts.dataBytes = std::stoull(argv[++i]);
        } else if (arg == "--emit-proofs") {
            if (i + 1 >= argc)
                return false;
            opts.emitProofs = argv[++i];
        } else if (arg.rfind("--emit-proofs=", 0) == 0) {
            opts.emitProofs = arg.substr(14);
        } else if (arg == "--base") {
            if (i + 1 >= argc)
                return false;
            opts.base = std::stoull(argv[++i], nullptr, 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage(argv[0]);
        return 2;
    }

    std::string source;
    if (opts.source == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        source = ss.str();
    } else {
        std::ifstream in(opts.source);
        if (!in) {
            std::fprintf(stderr, "gpverify: cannot open %s\n",
                         opts.source.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }

    const isa::Assembly assembly = isa::assemble(source);
    if (!assembly.ok) {
        std::fprintf(stderr, "gpverify: %s: %s\n", opts.source.c_str(),
                     assembly.error.c_str());
        return 2;
    }

    verify::VerifyOptions vopts;
    vopts.privileged = opts.privileged;
    vopts.entryRegs = verify::defaultEntryRegs(opts.dataBytes);

    const verify::VerifyResult result =
        verify::verifyProgram(assembly, vopts);

    if (!opts.emitProofs.empty()) {
        // Export the elision verdicts even for a failing program: a
        // may-fault instruction simply carries verdict 0, so the
        // sidecar is conservative by construction.
        const isa::ElideProof proof = verify::makeElideProof(
            result, assembly.words, opts.privileged, opts.base);
        std::ofstream out(opts.emitProofs, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "gpverify: cannot open %s\n",
                         opts.emitProofs.c_str());
            return 2;
        }
        out << isa::serializeProof(proof);
    }

    const bool fail =
        opts.strict ? !result.clean() : !result.ok();
    // --quiet suppresses the report unconditionally; the exit status
    // alone carries the verdict. (It used to leak the report whenever
    // any diagnostic existed, making --quiet useless in scripts that
    // tolerate warnings.)
    if (!opts.quiet)
        std::fputs(result.report(opts.source, &assembly).c_str(),
                   stdout);
    return fail ? 1 : 0;
}
