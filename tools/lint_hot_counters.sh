#!/usr/bin/env bash
# lint_hot_counters.sh — flag string-keyed stat lookups on hot paths.
#
# Convention (docs/OBSERVABILITY.md, "Stat handles"): per-event code
# must increment cached Counter*/Histogram* handles registered once at
# construction. Calling StatGroup::counter("name") or
# histogram("name") inside a per-event path performs a string-keyed
# std::map lookup per simulated event, which dominated the simulator
# profile before the handles existed.
#
# This lint greps the hot-path source trees (src/mem, src/isa,
# src/noc) for direct counter()/histogram() calls. The one blessed
# pattern — taking the address of the returned reference to register a
# handle, e.g. `hits_ = &stats_.counter("hits");` — is excluded, as
# are comments. Anything else fails the lint: either hoist the call
# into the constructor as a handle, or (for genuinely cold paths)
# move the code out of the hot-path trees.

set -u
cd "$(dirname "$0")/.."

dirs="src/mem src/isa src/noc"

viol=$(grep -rnE '\.(counter|histogram)\(' $dirs \
           --include='*.cc' --include='*.h' \
       | grep -vE '&[A-Za-z_][A-Za-z0-9_]*\.(counter|histogram)\(' \
       | grep -vE ':[0-9]+: *(//|\*|/\*)' || true)

if [ -n "$viol" ]; then
    echo "lint_hot_counters: string-keyed stat lookup(s) in hot-path sources:" >&2
    echo "$viol" >&2
    echo >&2
    echo "Register a cached handle in the constructor instead:" >&2
    echo "    hits_ = &stats_.counter(\"hits\");   // once" >&2
    echo "    (*hits_)++;                          // per event" >&2
    exit 1
fi

# The same discipline for the profiler: hot-path attribution calls
# (accSeg/accBase/attr*/beginInst/...) take enum components and
# integer lengths only. Passing a string literal to any Profiler call
# from the hot-path trees means a per-event string construction or a
# name-keyed lookup — registration (registerDomain/registerSymbol)
# belongs in cold loader code (src/os, tools), not here.
profviol=$(grep -rnE 'Profiler::instance\(\)\.[A-Za-z_]+\([^)]*"' $dirs \
               --include='*.cc' --include='*.h' \
           | grep -vE ':[0-9]+: *(//|\*|/\*)' || true)

if [ -n "$profviol" ]; then
    echo "lint_hot_counters: string argument(s) to Profiler calls in hot-path sources:" >&2
    echo "$profviol" >&2
    echo >&2
    echo "Hot-path profiler hooks must pass enum components and" >&2
    echo "integer lengths only; move name registration to the" >&2
    echo "loader (src/os) or the tool driver." >&2
    exit 1
fi

# Check-elision discipline (docs/VERIFIER.md, "Proof export & check
# elision"): the proof sidecar is consulted exactly once per static
# instruction, on a predecode miss, where its verdict byte is baked
# into the cache slot. The per-executed-instruction hot loop must
# never scan the proof tables — a sidecar walk per retired
# instruction would hand back the very cycles elision exists to save.
# Blessed patterns: the proofVerdict() definition and declaration,
# the registration/clear/cold-guard accessors, the definition's own
# scan loop, and the single `? proofVerdict(...)` miss-path consult.
elideviol=$(grep -rnE '(proofVerdict|elideProofs_)' $dirs \
                --include='*.cc' --include='*.h' \
            | grep -vE ':[0-9]+: *(//|\*|/\*|///)' \
            | grep -vE 'Machine::proofVerdict' \
            | grep -vE 'uint8_t proofVerdict' \
            | grep -vE 'std::vector<ElideProof> elideProofs_;' \
            | grep -vE 'elideProofs_\.(push_back|clear|empty)\(' \
            | grep -vE 'for \(const ElideProof &p : elideProofs_\)' \
            | grep -vE '\? proofVerdict\(' || true)

if [ -n "$elideviol" ]; then
    echo "lint_hot_counters: proof-sidecar consultation outside the predecode-miss path:" >&2
    echo "$elideviol" >&2
    echo >&2
    echo "Elision verdicts are baked into the predecode slot on a" >&2
    echo "miss; per-executed-instruction code must read the baked" >&2
    echo "verdict byte, never proofVerdict()/elideProofs_." >&2
    exit 1
fi
# Threaded-dispatch discipline (docs/ARCHITECTURE.md, "Threaded
# dispatch & superblocks"): the superblock dispatch loop exists to
# strip per-instruction host overhead, so a string-keyed lookup
# inside it — StatGroup::get("name") included — defeats the whole
# engine one map probe at a time. The hot trees must read counters
# through cached handles everywhere; genuinely cold uses (once-per-run
# exports and the like) carry an explicit
# `// statgroup-get: cold path` annotation on the same line.
getviol=$(grep -rnE '(stats\(\)|stats_)\.get\(' $dirs \
              --include='*.cc' --include='*.h' \
          | grep -vE ':[0-9]+: *(//|\*|/\*)' \
          | grep -vE '// statgroup-get: cold path' || true)

if [ -n "$getviol" ]; then
    echo "lint_hot_counters: string-keyed StatGroup::get() in hot-path sources:" >&2
    echo "$getviol" >&2
    echo >&2
    echo "The dispatch loop and everything it calls must use cached" >&2
    echo "Counter* handles. If the call site is genuinely cold" >&2
    echo "(once per run), annotate it:" >&2
    echo "    x = stats().get(\"n\"); // statgroup-get: cold path" >&2
    exit 1
fi
echo "lint_hot_counters: OK (no string-keyed stat/profile lookups or hot-path proof consults in $dirs)"
