/**
 * @file
 * gpsim — command-line driver for the guarded-pointer machine.
 *
 * Assembles a program from a file (or stdin with "-"), loads it on
 * the simulated MAP, gives each spawned thread a private read/write
 * data segment in r1, runs to completion, and reports final state
 * and statistics. The smallest path from "I wrote some assembly" to
 * "I watched it run under capability protection".
 *
 * Usage:
 *   gpsim prog.s [--threads N] [--data BYTES] [--clusters N]
 *                [--issue-width N] [--max-cycles N]
 *                [--ecc=off|parity|secded] [--walk-retries N]
 *                [--trace[=CATS]] [--trace-out=FILE]
 *                [--flight-recorder=N] [--stats-json=FILE]
 *                [--profile[=MODES]] [--profile-out=FILE]
 *                [--profile-interval=N]
 *                [--dump-regs] [--dump-stats] [--privileged]
 *
 * Robustness: --max-cycles arms the machine watchdog, so a hung or
 * livelocked program dies with a structured WatchdogTimeout fault
 * (and a flight-recorder dump when one is armed) instead of just
 * running out the budget silently; gpsim exits 3 in that case.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gp/ops.h"
#include "isa/assembler.h"
#include "isa/elide.h"
#include "isa/loader.h"
#include "mem/ecc.h"
#include "noc/shard.h"
#include "os/kernel.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "sim/stats_registry.h"
#include "sim/trace.h"
#include "verify/verifier.h"

using namespace gp;

namespace {

struct Options
{
    std::string source;
    unsigned threads = 1;
    bool threadsSet = false;
    bool mesh = false;            //!< sharded multicomputer mode
    unsigned meshX = 0, meshY = 0, meshZ = 0;
    uint64_t epochHorizon = 0;    //!< 0 = derive from link latency
    bool profileIntervalSet = false;
    uint64_t dataBytes = 4096;
    unsigned clusters = 4;
    unsigned issueWidth = 1;
    uint64_t maxCycles = 10'000'000;
    mem::EccMode ecc = mem::EccMode::None;
    unsigned walkRetries = 0;
    bool dumpRegs = false;
    bool dumpStats = false;
    bool privileged = false;
    uint32_t traceMask = 0;       //!< text-sink categories (0 = off)
    std::string traceOut;         //!< Chrome trace-event JSON path
    size_t flightRecorder = 0;    //!< ring depth (0 = disarmed)
    uint64_t meshWatchdog = 0;    //!< mesh quiescence window (0 = off)
    std::string statsJson;        //!< stats JSON export path
    bool verify = false;          //!< run gpverify before executing
    bool verifyStrict = false;    //!< ... and make warnings fatal
    bool elideChecks = false;     //!< skip verifier-proven checks
    std::string proofsFile;       //!< gpproof sidecar ("" = verify here)
    bool profile = false;         //!< arm the cycle profiler
    sim::ProfileConfig profileConfig; //!< aggregation modes
    std::string profileOut;       //!< gpprof JSON export path
    bool superblocks = false;     //!< threaded superblock dispatch
    bool fastMode = false;        //!< functional-only memory port
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <prog.s | -> [options]\n"
        "  --threads N      spawn N copies of the program (default 1);\n"
        "                   with --mesh, N is the HOST thread count\n"
        "                   simulating the mesh (results identical for\n"
        "                   every N; N=1 is today's serial path)\n"
        "  --mesh X,Y,Z     multicomputer mode: load the program on\n"
        "                   every node of an X*Y*Z mesh (one thread\n"
        "                   per node, r1 = full-space RW pointer,\n"
        "                   r2 = node id) under the sharded epoch\n"
        "                   engine; prints a deterministic signature\n"
        "  --epoch-horizon N  cycles per epoch in --mesh mode\n"
        "                   (default/max: the mesh lookahead)\n"
        "  --mesh-watchdog N  distributed quiescence watchdog: trip\n"
        "                   (with a post-mortem) after N cycles of\n"
        "                   zero mesh-wide progress (requires --mesh)\n"
        "  --data BYTES     size of each thread's r1 data segment "
        "(default 4096)\n"
        "  --clusters N     hardware clusters (default 4)\n"
        "  --issue-width N  instructions/cluster/cycle (default 1)\n"
        "  --max-cycles N   cycle budget; arms the machine watchdog,\n"
        "                   so hangs die with WatchdogTimeout and\n"
        "                   exit status 3 (default 10M)\n"
        "  --ecc=MODE       memory protection over stored words:\n"
        "                   off | parity | secded (default off)\n"
        "  --walk-retries N retry transient page-walk failures up to\n"
        "                   N times (default 0)\n"
        "  --privileged     load as privileged code\n"
        "  --superblocks    cache straight-line traces over the\n"
        "                   predecoded stream and run them through\n"
        "                   the threaded-code dispatcher (identical\n"
        "                   cycles, faults, and results; faster host\n"
        "                   execution)\n"
        "  --fast           functional-only mode: skip the timing\n"
        "                   model entirely (implies --superblocks;\n"
        "                   identical registers, faults, and memory,\n"
        "                   but no cycle accounting — never use for\n"
        "                   timing measurements)\n"
        "  --verify[=strict] statically verify capability safety\n"
        "                   before running; abort on errors (strict:\n"
        "                   abort on warnings too)\n"
        "  --elide-checks=verified  skip runtime checks the verifier\n"
        "                   proves can never fire (identical\n"
        "                   architectural outcomes, fewer cycles);\n"
        "                   verifies the program at load unless\n"
        "                   --proofs supplies a sidecar\n"
        "  --proofs=FILE    gpproof sidecar from gpverify\n"
        "                   --emit-proofs, rebased to the actual load\n"
        "                   address (requires --elide-checks)\n"
        "  --trace[=CATS]   structured event trace to stdout; CATS is\n"
        "                   'all' or a comma list of exec,mem,cache,\n"
        "                   tlb,fault,gate,noc,sched (default exec)\n"
        "  --trace-out=FILE write a Chrome trace-event JSON (all\n"
        "                   categories; open in Perfetto)\n"
        "  --flight-recorder=N  keep the last N events and dump them\n"
        "                   when a thread dies on an unhandled fault\n"
        "  --stats-json=FILE    export every stat group as JSON\n"
        "  --profile[=MODES]    attribute every cycle to a CPI-stack\n"
        "                   component; MODES is a comma list of\n"
        "                   pc,domain,interval,stacks (default all).\n"
        "                   Prints a CPI-stack summary after the run\n"
        "  --profile-out=FILE   write the profile as gpprof JSON\n"
        "                   (analyse with tools/gpprof.py)\n"
        "  --profile-interval=N time-series snapshot period in\n"
        "                   cycles (default 4096)\n"
        "  --dump-regs      print final registers of every thread\n"
        "  --dump-stats     print statistics from every component\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2)
        return false;
    opts.source = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        // "--name=value" handling for the observability flags.
        auto valueOf = [&](const char *name,
                           std::string &out) -> bool {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) {
                out = arg.substr(prefix.size());
                return true;
            }
            if (arg == name) {
                const char *v = next();
                if (v)
                    out = v;
                return !out.empty();
            }
            return false;
        };
        std::string value;
        if (valueOf("--ecc", value)) {
            if (value == "off" || value == "none") {
                opts.ecc = mem::EccMode::None;
            } else if (value == "parity") {
                opts.ecc = mem::EccMode::Parity;
            } else if (value == "secded") {
                opts.ecc = mem::EccMode::Secded;
            } else {
                std::fprintf(stderr, "bad --ecc mode: %s\n",
                             value.c_str());
                return false;
            }
            continue;
        }
        if (valueOf("--walk-retries", value)) {
            opts.walkRetries = unsigned(std::stoul(value));
            continue;
        }
        if (arg == "--verify" || arg == "--verify=strict") {
            opts.verify = true;
            opts.verifyStrict = arg == "--verify=strict";
            continue;
        }
        if (arg == "--elide-checks" ||
            arg == "--elide-checks=verified") {
            opts.elideChecks = true;
            continue;
        }
        if (arg.rfind("--elide-checks=", 0) == 0) {
            std::fprintf(stderr, "bad --elide-checks mode: %s "
                         "(only 'verified' is supported)\n",
                         arg.c_str() + 15);
            return false;
        }
        if (valueOf("--proofs", value)) {
            opts.proofsFile = value;
            continue;
        }
        if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
            const std::string spec =
                arg == "--trace" ? "exec" : arg.substr(8);
            auto mask = sim::parseTraceMask(spec);
            if (!mask) {
                std::fprintf(stderr, "bad trace categories: %s\n",
                             spec.c_str());
                return false;
            }
            opts.traceMask = *mask;
            continue;
        }
        if (valueOf("--trace-out", value)) {
            opts.traceOut = value;
            continue;
        }
        if (valueOf("--flight-recorder", value)) {
            opts.flightRecorder = std::stoull(value);
            continue;
        }
        if (valueOf("--mesh-watchdog", value)) {
            opts.meshWatchdog = std::stoull(value);
            continue;
        }
        if (valueOf("--stats-json", value)) {
            opts.statsJson = value;
            continue;
        }
        if (arg == "--profile" || arg.rfind("--profile=", 0) == 0) {
            opts.profile = true;
            const std::string spec =
                arg == "--profile" ? "pc,domain,interval,stacks"
                                   : arg.substr(10);
            size_t pos = 0;
            while (pos <= spec.size()) {
                const size_t comma = spec.find(',', pos);
                const std::string mode = spec.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                if (mode == "pc") {
                    opts.profileConfig.pc = true;
                } else if (mode == "domain") {
                    opts.profileConfig.domain = true;
                } else if (mode == "interval") {
                    opts.profileConfig.interval = true;
                } else if (mode == "stacks") {
                    opts.profileConfig.stacks = true;
                } else {
                    std::fprintf(stderr, "bad profile mode: %s\n",
                                 mode.c_str());
                    return false;
                }
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            continue;
        }
        if (valueOf("--profile-out", value)) {
            opts.profile = true;
            opts.profileOut = value;
            continue;
        }
        if (valueOf("--profile-interval", value)) {
            opts.profileConfig.intervalCycles = std::stoull(value);
            opts.profileIntervalSet = true;
            continue;
        }
        if (valueOf("--mesh", value)) {
            unsigned x = 0, y = 0, z = 0;
            if (std::sscanf(value.c_str(), "%u,%u,%u", &x, &y, &z) !=
                    3 ||
                x == 0 || y == 0 || z == 0) {
                std::fprintf(stderr,
                             "bad --mesh geometry: %s (want X,Y,Z "
                             "with all dimensions > 0)\n",
                             value.c_str());
                return false;
            }
            opts.mesh = true;
            opts.meshX = x;
            opts.meshY = y;
            opts.meshZ = z;
            continue;
        }
        if (valueOf("--epoch-horizon", value)) {
            opts.epochHorizon = std::stoull(value);
            continue;
        }
        if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            opts.threads = unsigned(std::stoul(v));
            opts.threadsSet = true;
        } else if (arg == "--data") {
            const char *v = next();
            if (!v)
                return false;
            opts.dataBytes = std::stoull(v);
        } else if (arg == "--clusters") {
            const char *v = next();
            if (!v)
                return false;
            opts.clusters = unsigned(std::stoul(v));
        } else if (arg == "--issue-width") {
            const char *v = next();
            if (!v)
                return false;
            opts.issueWidth = unsigned(std::stoul(v));
        } else if (arg == "--max-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opts.maxCycles = std::stoull(v);
        } else if (arg == "--dump-regs") {
            opts.dumpRegs = true;
        } else if (arg == "--dump-stats") {
            opts.dumpStats = true;
        } else if (arg == "--privileged") {
            opts.privileged = true;
        } else if (arg == "--superblocks") {
            opts.superblocks = true;
        } else if (arg == "--fast") {
            opts.fastMode = true;
            opts.superblocks = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/**
 * Reject mutually inconsistent flag combinations up front with a
 * clear diagnostic, instead of silently degrading mid-run. Returns
 * nullptr when the options are coherent.
 */
const char *
validateOptions(const Options &opts)
{
    if (opts.threads == 0)
        return "--threads must be at least 1";
    if (opts.clusters == 0)
        return "--clusters must be at least 1";
    if (opts.issueWidth == 0)
        return "--issue-width must be at least 1";
    if (!opts.proofsFile.empty() && !opts.elideChecks)
        return "--proofs requires --elide-checks";
    if (opts.profileIntervalSet && !opts.profile)
        return "--profile-interval requires --profile";
    if (opts.epochHorizon != 0 && !opts.mesh)
        return "--epoch-horizon requires --mesh";
    if (opts.meshWatchdog != 0 && !opts.mesh)
        return "--mesh-watchdog requires --mesh";
    if (opts.fastMode) {
        if (opts.mesh)
            return "--fast is functional-only and cannot drive the "
                   "mesh timing model; drop --fast or --mesh";
        if (opts.profile)
            return "--fast skips the timing model, so there are no "
                   "cycles to profile; drop --fast or --profile";
        if (opts.ecc != mem::EccMode::None)
            return "--fast cannot model ECC (storage-cycle timing); "
                   "drop --fast or use --ecc=off";
    }
    if (opts.superblocks && opts.mesh)
        return "--superblocks is not mesh-aware yet; drop one of "
               "the two flags";
    if (opts.mesh) {
        // The verifier pipeline is single-machine: it assumes one
        // Machine owns the process-wide singleton state, which a
        // sharded mesh does not satisfy.
        if (opts.profile && opts.threads > 1)
            return "--profile aggregates into a process-wide "
                   "singleton and is only available in mesh mode "
                   "with --threads 1 (results are identical)";
        if (opts.profile && opts.profileIntervalSet)
            return "--profile-interval snapshots are per-machine "
                   "and not mesh-aware; drop --profile-interval";
        if (opts.verify || opts.elideChecks)
            return "--verify/--elide-checks analyse a single-machine "
                   "entry state and are not available with --mesh";
        if (opts.threads > 1) {
            // The trace sinks and flight recorder are process-wide
            // singletons with no shard-local buffering: multiple
            // host threads would interleave writes nondeterministically.
            if (opts.traceMask != 0 || !opts.traceOut.empty())
                return "--trace/--trace-out are not shard-aware; use "
                       "--threads 1 (results are identical)";
            if (opts.flightRecorder > 0)
                return "--flight-recorder is not shard-aware; use "
                       "--threads 1 (results are identical)";
        }
    }
    return nullptr;
}

/**
 * Multicomputer mode: the program runs on every node of the mesh
 * under the sharded epoch engine. One hardware thread per node,
 * r1 = full-space RW pointer, r2 = node id.
 */
int
runMesh(const Options &opts, const std::string &source)
{
    noc::ShardConfig scfg;
    scfg.mesh.dimX = opts.meshX;
    scfg.mesh.dimY = opts.meshY;
    scfg.mesh.dimZ = opts.meshZ;
    scfg.node.ecc = opts.ecc;
    scfg.node.walkRetries = opts.walkRetries;
    scfg.machine.clusters = opts.clusters;
    scfg.machine.issueWidth = opts.issueWidth;
    scfg.machine.watchdogCycles = opts.maxCycles;
    scfg.hostThreads = opts.threads;
    scfg.epochHorizon = opts.epochHorizon;
    scfg.meshWatchdogCycles = opts.meshWatchdog;
    noc::ShardedMesh shard(scfg);

    // Mesh profiling (single host thread only — validateOptions
    // rejects --threads > 1): every node machine ticks the
    // process-wide profiler, so the summary aggregates across nodes
    // by (cluster, thread slot). Interval snapshots are forced off —
    // N machines advancing the singleton's cycle clock would
    // interleave the time series meaninglessly.
    if (opts.profile) {
        sim::ProfileConfig pcfg = opts.profileConfig;
        pcfg.interval = false;
        sim::Profiler::instance().arm(
            scfg.machine.clusters,
            scfg.machine.clusters * scfg.machine.threadsPerCluster,
            pcfg);
    }

    const isa::Assembly assembly = isa::assemble(source);
    if (!assembly.ok) {
        std::fprintf(stderr, "gpsim: %s: %s\n", opts.source.c_str(),
                     assembly.error.c_str());
        return 1;
    }

    auto full = makePointer(Perm::ReadWrite, 54, 0);
    if (!full)
        sim::fatal("cannot build the full-space data pointer");

    std::vector<isa::Thread *> threads;
    for (unsigned n = 0; n < shard.nodeCount(); ++n) {
        auto prog =
            isa::loadProgram(shard.node(n), noc::nodeBase(n) + 0x20000,
                             assembly.words, opts.privileged);
        isa::Thread *t = shard.machine(n).spawn(prog.execPtr);
        if (!t)
            sim::fatal("node %u: out of hardware thread slots", n);
        t->setReg(1, full.value);
        t->setReg(2, Word::fromInt(n));
        threads.push_back(t);
    }

    sim::TraceManager &tracer = sim::TraceManager::instance();
    if (opts.traceMask != 0)
        tracer.setTextSink(&std::cout, opts.traceMask);
    if (!opts.traceOut.empty() && !tracer.openJson(opts.traceOut))
        sim::fatal("cannot open trace file %s", opts.traceOut.c_str());
    if (opts.flightRecorder > 0)
        tracer.setFlightRecorder(opts.flightRecorder);

    const uint64_t cycles = shard.run(opts.maxCycles + 1000);

    int halted = 0, faulted = 0;
    uint64_t instructions = 0;
    for (unsigned n = 0; n < shard.nodeCount(); ++n) {
        isa::Thread *t = threads[n];
        if (t->state() == isa::ThreadState::Halted)
            halted++;
        if (t->state() == isa::ThreadState::Faulted) {
            faulted++;
            std::printf("  node %u FAULT: %s at %s\n", n,
                        std::string(faultName(t->faultRecord().fault))
                            .c_str(),
                        toString(t->faultRecord().ip).c_str());
        }
        instructions += shard.machine(n).stats().get("instructions");
    }
    std::printf("gpsim: mesh %ux%ux%u (%u nodes, %u host threads, "
                "epoch %llu): %d halted, %d faulted; %llu cycles, "
                "%llu instructions\n",
                opts.meshX, opts.meshY, opts.meshZ, shard.nodeCount(),
                shard.hostThreads(),
                (unsigned long long)shard.epochHorizon(), halted,
                faulted, (unsigned long long)cycles,
                (unsigned long long)instructions);
    std::printf("gpsim: mesh signature %016llx\n",
                (unsigned long long)shard.signature());

    if (opts.dumpRegs) {
        for (unsigned n = 0; n < shard.nodeCount(); ++n) {
            std::printf("  node %u registers:\n", n);
            for (unsigned r = 0; r < isa::kNumRegs; ++r)
                std::printf("    r%-2u = %s\n", r,
                            toString(threads[n]->reg(r)).c_str());
        }
    }
    if (opts.dumpStats) {
        std::printf("\n");
        sim::StatRegistry::instance().dumpAll(std::cout);
    }
    if (opts.profile) {
        sim::Profiler::instance().disarm();
        sim::Profiler::instance().summary(std::cout);
        if (!opts.profileOut.empty()) {
            std::ofstream out(opts.profileOut, std::ios::trunc);
            if (!out)
                sim::fatal("cannot open profile file %s",
                           opts.profileOut.c_str());
            sim::Profiler::instance().exportJson(out);
        }
    }
    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson, std::ios::trunc);
        if (!out)
            sim::fatal("cannot open stats file %s",
                       opts.statsJson.c_str());
        sim::StatRegistry::instance().exportJson(out);
    }

    tracer.closeJson();
    if (shard.watchdogTripped() || shard.meshWatchdogTripped()) {
        std::fprintf(stderr,
                     "gpsim: watchdog tripped after %llu cycles "
                     "(hang or livelock)\n",
                     (unsigned long long)cycles);
        // The flight-recorder-style mesh post-mortem: failure set,
        // degraded-routing tallies, and every unfinished survivor's
        // thread states — the first thing to read after a mesh hang.
        shard.postMortem(std::cerr);
        return 3;
    }
    return faulted ? 1 : 0;
}

std::string
readSource(const std::string &path)
{
    if (path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path);
    if (!in) {
        sim::fatal("cannot open %s", path.c_str());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage(argv[0]);
        return 2;
    }

    if (const char *err = validateOptions(opts)) {
        std::fprintf(stderr, "gpsim: %s\n", err);
        return 2;
    }

    if (opts.mesh)
        return runMesh(opts, readSource(opts.source));

    os::KernelConfig kcfg;
    kcfg.machine.clusters = opts.clusters;
    kcfg.machine.issueWidth = opts.issueWidth;
    kcfg.machine.elideChecks = opts.elideChecks;
    kcfg.machine.superblocks = opts.superblocks;
    kcfg.machine.fastMode = opts.fastMode;
    kcfg.machine.mem.ecc = opts.ecc;
    kcfg.machine.mem.walkRetries = opts.walkRetries;
    // The cycle budget doubles as the watchdog: if the program is
    // still running at --max-cycles the machine converts the hang
    // into structured WatchdogTimeout faults (dumping the flight
    // recorder when one is armed) rather than timing out silently.
    kcfg.machine.watchdogCycles = opts.maxCycles;
    os::Kernel kernel(kcfg);

    // Arm the profiler before loading: the kernel registers domain
    // and symbol names as each program image lands.
    if (opts.profile) {
        sim::Profiler::instance().arm(
            kcfg.machine.clusters,
            kcfg.machine.clusters * kcfg.machine.threadsPerCluster,
            opts.profileConfig);
    }

    const std::string source = readSource(opts.source);

    if (opts.verify) {
        // Opt-in pre-run pass: prove the program respects the rights
        // lattice before a single instruction executes.
        const isa::Assembly assembly = isa::assemble(source);
        if (!assembly.ok) {
            std::fprintf(stderr, "gpsim: %s: %s\n",
                         opts.source.c_str(), assembly.error.c_str());
            return 1;
        }
        verify::VerifyOptions vopts;
        vopts.privileged = opts.privileged;
        vopts.entryRegs = verify::defaultEntryRegs(opts.dataBytes);
        const verify::VerifyResult vres =
            verify::verifyProgram(assembly, vopts);
        if (!vres.clean()) {
            std::fputs(vres.report(opts.source, &assembly).c_str(),
                       stderr);
        }
        if (opts.verifyStrict ? !vres.clean() : !vres.ok()) {
            std::fprintf(stderr,
                         "gpsim: --verify: refusing to run\n");
            return 1;
        }
    }

    auto prog = kernel.loadAssembly(source, opts.privileged);
    if (!prog) {
        std::fprintf(stderr, "assembly failed (see warning above)\n");
        return 1;
    }

    if (opts.elideChecks) {
        isa::ElideProof proof;
        if (!opts.proofsFile.empty()) {
            std::ifstream in(opts.proofsFile);
            if (!in)
                sim::fatal("cannot open proof sidecar %s",
                           opts.proofsFile.c_str());
            std::ostringstream ss;
            ss << in.rdbuf();
            std::string perr;
            if (!isa::parseProof(ss.str(), proof, &perr))
                sim::fatal("bad proof sidecar %s: %s",
                           opts.proofsFile.c_str(), perr.c_str());
            // Rebase to where the kernel actually put the image. The
            // verdicts are position-independent (the verifier works on
            // instruction indices); the bits binding still guarantees
            // a verdict only applies to the exact word it was proven
            // for.
            proof.base = prog.value.base;
        } else {
            // No sidecar: establish the proof here, under the same
            // entry-state assumptions the spawn loop below sets up
            // (r1 = RW data segment of --data bytes, r2 = integer).
            const isa::Assembly assembly = isa::assemble(source);
            verify::VerifyOptions vopts;
            vopts.privileged = opts.privileged;
            vopts.entryRegs = verify::defaultEntryRegs(opts.dataBytes);
            const verify::VerifyResult vres =
                verify::verifyProgram(assembly, vopts);
            proof = verify::makeElideProof(vres, assembly.words,
                                           opts.privileged,
                                           prog.value.base);
        }
        kernel.machine().registerElideProof(proof);
    }

    // Attach the requested trace sinks before any thread runs.
    sim::TraceManager &tracer = sim::TraceManager::instance();
    if (opts.traceMask != 0)
        tracer.setTextSink(&std::cout, opts.traceMask);
    if (!opts.traceOut.empty() && !tracer.openJson(opts.traceOut))
        sim::fatal("cannot open trace file %s", opts.traceOut.c_str());
    if (opts.flightRecorder > 0)
        tracer.setFlightRecorder(opts.flightRecorder);

    std::vector<isa::Thread *> threads;
    for (unsigned i = 0; i < opts.threads; ++i) {
        auto seg = kernel.segments().allocate(opts.dataBytes,
                                              Perm::ReadWrite);
        if (!seg)
            sim::fatal("data segment allocation failed");
        isa::Thread *t =
            kernel.spawn(prog.value.execPtr,
                         {{1, seg.value},
                          {2, Word::fromInt(i)}});
        if (!t)
            sim::fatal("out of hardware thread slots (16)");
        // Label the thread's Perfetto track with what it runs, so
        // exported traces read "prog copy 3" instead of "thread 3".
        if (!opts.traceOut.empty())
            tracer.setTrackName(sim::TraceCat::Exec, t->id(),
                                opts.source + " copy " +
                                    std::to_string(i));
        threads.push_back(t);
    }

    // Run slightly past the watchdog budget so the trip (and its
    // flight-recorder dump) happens inside the machine, not here.
    const uint64_t cycles =
        kernel.machine().run(opts.maxCycles + 1000);

    int halted = 0, faulted = 0;
    for (isa::Thread *t : threads) {
        if (t->state() == isa::ThreadState::Halted)
            halted++;
        if (t->state() == isa::ThreadState::Faulted)
            faulted++;
    }
    std::printf("gpsim: %u thread(s): %d halted, %d faulted; %llu "
                "cycles, %llu instructions\n",
                opts.threads, halted, faulted,
                (unsigned long long)cycles,
                (unsigned long long)kernel.machine().stats().get(
                    "instructions"));
    if (opts.elideChecks) {
        sim::StatGroup &ms = kernel.machine().stats();
        std::printf("gpsim: elide: %llu checks elided, %llu executed, "
                    "%llu cycles saved\n",
                    (unsigned long long)ms.get("elide_checks_elided"),
                    (unsigned long long)ms.get("elide_checks_executed"),
                    (unsigned long long)ms.get("elide_cycles_saved"));
    }

    for (size_t i = 0; i < threads.size(); ++i) {
        isa::Thread *t = threads[i];
        if (t->state() == isa::ThreadState::Faulted) {
            std::printf("  thread %zu FAULT: %s at %s\n", i,
                        std::string(
                            faultName(t->faultRecord().fault))
                            .c_str(),
                        toString(t->faultRecord().ip).c_str());
        }
        if (opts.dumpRegs) {
            std::printf("  thread %zu registers:\n", i);
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                std::printf("    r%-2u = %s\n", r,
                            toString(t->reg(r)).c_str());
            }
        }
    }

    if (opts.dumpStats) {
        // Every component registers its StatGroup with the process-wide
        // registry, so one call covers machine, memory, cache, TLB,
        // pointer ops, kernel, and anything added later.
        std::printf("\n");
        sim::StatRegistry::instance().dumpAll(std::cout);
    }

    if (opts.profile) {
        sim::Profiler::instance().disarm();
        sim::Profiler::instance().summary(std::cout);
        if (!opts.profileOut.empty()) {
            std::ofstream out(opts.profileOut, std::ios::trunc);
            if (!out)
                sim::fatal("cannot open profile file %s",
                           opts.profileOut.c_str());
            sim::Profiler::instance().exportJson(out);
        }
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson, std::ios::trunc);
        if (!out)
            sim::fatal("cannot open stats file %s",
                       opts.statsJson.c_str());
        sim::StatRegistry::instance().exportJson(out);
    }

    tracer.closeJson();
    if (kernel.machine().watchdogTripped()) {
        std::fprintf(stderr,
                     "gpsim: watchdog tripped after %llu cycles "
                     "(hang or livelock); see WatchdogTimeout "
                     "faults above\n",
                     (unsigned long long)cycles);
        return 3;
    }
    return faulted ? 1 : 0;
}
