/**
 * @file
 * gpsim — command-line driver for the guarded-pointer machine.
 *
 * Assembles a program from a file (or stdin with "-"), loads it on
 * the simulated MAP, gives each spawned thread a private read/write
 * data segment in r1, runs to completion, and reports final state
 * and statistics. The smallest path from "I wrote some assembly" to
 * "I watched it run under capability protection".
 *
 * Usage:
 *   gpsim prog.s [--threads N] [--data BYTES] [--clusters N]
 *                [--issue-width N] [--max-cycles N]
 *                [--dump-regs] [--dump-stats] [--privileged]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gp/ops.h"
#include "os/kernel.h"
#include "sim/log.h"

using namespace gp;

namespace {

struct Options
{
    std::string source;
    unsigned threads = 1;
    uint64_t dataBytes = 4096;
    unsigned clusters = 4;
    unsigned issueWidth = 1;
    uint64_t maxCycles = 10'000'000;
    bool dumpRegs = false;
    bool dumpStats = false;
    bool privileged = false;
    bool trace = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <prog.s | -> [options]\n"
        "  --threads N      spawn N copies of the program (default 1)\n"
        "  --data BYTES     size of each thread's r1 data segment "
        "(default 4096)\n"
        "  --clusters N     hardware clusters (default 4)\n"
        "  --issue-width N  instructions/cluster/cycle (default 1)\n"
        "  --max-cycles N   cycle budget (default 10M)\n"
        "  --privileged     load as privileged code\n"
        "  --trace          print every instruction as it executes\n"
        "  --dump-regs      print final registers of every thread\n"
        "  --dump-stats     print machine and memory statistics\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2)
        return false;
    opts.source = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            opts.threads = unsigned(std::stoul(v));
        } else if (arg == "--data") {
            const char *v = next();
            if (!v)
                return false;
            opts.dataBytes = std::stoull(v);
        } else if (arg == "--clusters") {
            const char *v = next();
            if (!v)
                return false;
            opts.clusters = unsigned(std::stoul(v));
        } else if (arg == "--issue-width") {
            const char *v = next();
            if (!v)
                return false;
            opts.issueWidth = unsigned(std::stoul(v));
        } else if (arg == "--max-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opts.maxCycles = std::stoull(v);
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--dump-regs") {
            opts.dumpRegs = true;
        } else if (arg == "--dump-stats") {
            opts.dumpStats = true;
        } else if (arg == "--privileged") {
            opts.privileged = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

std::string
readSource(const std::string &path)
{
    if (path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path);
    if (!in) {
        sim::fatal("cannot open %s", path.c_str());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage(argv[0]);
        return 2;
    }

    os::KernelConfig kcfg;
    kcfg.machine.clusters = opts.clusters;
    kcfg.machine.issueWidth = opts.issueWidth;
    os::Kernel kernel(kcfg);

    auto prog = kernel.loadAssembly(readSource(opts.source),
                                    opts.privileged);
    if (!prog) {
        std::fprintf(stderr, "assembly failed (see warning above)\n");
        return 1;
    }

    if (opts.trace) {
        const uint64_t base = prog.value.base;
        kernel.machine().setTraceHook(
            [base](const isa::Thread &t, const isa::Inst &inst,
                   uint64_t cycle) {
                std::printf("[%6llu] t%-2u +%04llx  %s\n",
                            (unsigned long long)cycle, t.id(),
                            (unsigned long long)(t.ip().addr() -
                                                 base),
                            isa::toString(inst).c_str());
            });
    }

    std::vector<isa::Thread *> threads;
    for (unsigned i = 0; i < opts.threads; ++i) {
        auto seg = kernel.segments().allocate(opts.dataBytes,
                                              Perm::ReadWrite);
        if (!seg)
            sim::fatal("data segment allocation failed");
        isa::Thread *t =
            kernel.spawn(prog.value.execPtr,
                         {{1, seg.value},
                          {2, Word::fromInt(i)}});
        if (!t)
            sim::fatal("out of hardware thread slots (16)");
        threads.push_back(t);
    }

    const uint64_t cycles = kernel.machine().run(opts.maxCycles);

    int halted = 0, faulted = 0;
    for (isa::Thread *t : threads) {
        if (t->state() == isa::ThreadState::Halted)
            halted++;
        if (t->state() == isa::ThreadState::Faulted)
            faulted++;
    }
    std::printf("gpsim: %u thread(s): %d halted, %d faulted; %llu "
                "cycles, %llu instructions\n",
                opts.threads, halted, faulted,
                (unsigned long long)cycles,
                (unsigned long long)kernel.machine().stats().get(
                    "instructions"));

    for (size_t i = 0; i < threads.size(); ++i) {
        isa::Thread *t = threads[i];
        if (t->state() == isa::ThreadState::Faulted) {
            std::printf("  thread %zu FAULT: %s at %s\n", i,
                        std::string(
                            faultName(t->faultRecord().fault))
                            .c_str(),
                        toString(t->faultRecord().ip).c_str());
        }
        if (opts.dumpRegs) {
            std::printf("  thread %zu registers:\n", i);
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                std::printf("    r%-2u = %s\n", r,
                            toString(t->reg(r)).c_str());
            }
        }
    }

    if (opts.dumpStats) {
        std::printf("\n");
        kernel.machine().stats().dump(std::cout);
        kernel.mem().stats().dump(std::cout);
        kernel.mem().cache().stats().dump(std::cout);
        kernel.mem().tlb().stats().dump(std::cout);
    }
    return faulted ? 1 : 0;
}
