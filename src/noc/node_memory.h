/**
 * @file
 * Per-node memory system of the multicomputer (paper §3).
 *
 * The M-Machine's 54-bit space is global across nodes: the high
 * address bits name the home node, and a guarded pointer to remote
 * memory is *exactly* the same 64-bit word as a local one — no proxy
 * objects, no message-passing stubs, no per-node capability tables.
 *
 * Each node has its own banked virtually-addressed cache and LTLB;
 * the page table and tagged physical storage are global (the home
 * node owns the data; the model keeps them in one shared structure).
 * A miss whose line lives on a remote home pays a mesh round trip —
 * one request flit out, a cache line of flits back — on top of the
 * remote memory access.
 *
 * Modelling note: the per-node cache is behavioural (timing) only;
 * data functionally reads and writes the global store, so stores are
 * immediately visible to every node as if write-through with ideal
 * coherence. Coherence-protocol *timing* (invalidations, upgrades)
 * is outside this reproduction's scope — the paper predates and is
 * orthogonal to it.
 */

#ifndef GP_NOC_NODE_MEMORY_H
#define GP_NOC_NODE_MEMORY_H

#include <cstdint>

#include "gp/ops.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "noc/retransmit.h"

namespace gp::noc {

/// VA bits 53..48 name the home node of an address.
inline constexpr unsigned kNodeShift = 48;
inline constexpr uint64_t kNodeMask = 0x3f;

/** @return the home node id encoded in a virtual address. */
inline unsigned
homeNode(uint64_t vaddr)
{
    return unsigned((vaddr >> kNodeShift) & kNodeMask);
}

/** @return the base virtual address of a node's partition. */
inline uint64_t
nodeBase(unsigned node)
{
    return uint64_t(node) << kNodeShift;
}

/** Globally shared backing state: one space, one translation. */
struct GlobalMemory
{
    mem::PageTable pageTable{4096};
    mem::TaggedMemory phys;
};

/** One node's cache/TLB view of the global space. */
class NodeMemory : public mem::MemoryPort
{
  public:
    NodeMemory(unsigned node, Mesh &mesh, GlobalMemory &global,
               const mem::MemConfig &config = mem::MemConfig{},
               const RetransConfig &retrans = RetransConfig{});

    /** Timed load through a guarded pointer (local or remote);
     * elide_check skips the guarded-pointer access check under a
     * verifier proof (translation/NoC behaviour unchanged). */
    mem::MemAccess load(Word ptr, unsigned size, uint64_t now = 0,
                        bool elide_check = false);

    /** Timed store through a guarded pointer (local or remote). */
    mem::MemAccess store(Word ptr, Word value, unsigned size,
                         uint64_t now = 0, bool elide_check = false);

    /** Timed instruction fetch (local or remote code!). */
    mem::MemAccess fetch(Word ip, uint64_t now = 0);

    // MemoryPort interface — a Machine runs against a node directly.
    mem::MemAccess
    portLoad(Word ptr, unsigned size, uint64_t now,
             bool elide_check = false) override
    {
        return load(ptr, size, now, elide_check);
    }
    mem::MemAccess
    portStore(Word ptr, Word value, unsigned size, uint64_t now,
              bool elide_check = false) override
    {
        return store(ptr, value, size, now, elide_check);
    }
    mem::MemAccess
    portFetch(Word ip, uint64_t now) override
    {
        return fetch(ip, now);
    }
    void
    portPoke(uint64_t vaddr, Word w) override
    {
        pokeWord(vaddr, w);
    }
    Word
    portPeek(uint64_t vaddr) override
    {
        return peekWord(vaddr);
    }

    /** Untimed functional write (loader/host use). */
    void pokeWord(uint64_t vaddr, Word w);

    /** Untimed functional read. */
    Word peekWord(uint64_t vaddr);

    unsigned node() const { return node_; }
    mem::Cache &cache() { return cache_; }
    mem::Tlb &tlb() { return tlb_; }
    Retransmitter &retransmitter() { return retrans_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    mem::MemAccess access(Word ptr, Access kind, unsigned size,
                          uint64_t now, Word store_value,
                          bool elide_check = false);

    unsigned node_;
    Mesh &mesh_;
    GlobalMemory &global_;
    mem::MemConfig config_;
    mem::Cache cache_;
    mem::Tlb tlb_;
    Retransmitter retrans_;
    sim::StatGroup stats_;

    // Cached stat handles (stable for the life of stats_): access()
    // is the per-reference hot path of every multicomputer run, so it
    // pays plain increments, never string-keyed map lookups
    // (docs/OBSERVABILITY.md).
    sim::Counter *hits_ = nullptr;
    sim::Counter *localMisses_ = nullptr;
    sim::Counter *remoteMisses_ = nullptr;
    sim::Counter *remoteLatency_ = nullptr;
    sim::Counter *loads_ = nullptr;
    sim::Counter *stores_ = nullptr;
    sim::Counter *fetches_ = nullptr;
    sim::Counter *accessFaults_ = nullptr;
    sim::Counter *unmappedFaults_ = nullptr;
    sim::Counter *staleUnmappedFaults_ = nullptr;
    sim::Counter *nocDeliveryFailures_ = nullptr;
    sim::Counter *nocHangs_ = nullptr;
    sim::Counter *nocReplyCorruptions_ = nullptr;
    sim::Counter *eccCorrected_ = nullptr;
    sim::Counter *eccDetected_ = nullptr;
};

} // namespace gp::noc

#endif // GP_NOC_NODE_MEMORY_H
