/**
 * @file
 * Per-node memory system of the multicomputer (paper §3).
 *
 * The M-Machine's 54-bit space is global across nodes: the high
 * address bits name the home node, and a guarded pointer to remote
 * memory is *exactly* the same 64-bit word as a local one — no proxy
 * objects, no message-passing stubs, no per-node capability tables.
 *
 * Each node has its own banked virtually-addressed cache and LTLB;
 * the page table and tagged physical storage are global (the home
 * node owns the data; the model keeps them in one shared structure).
 * A miss whose line lives on a remote home pays a mesh round trip —
 * one request flit out, a cache line of flits back — on top of the
 * remote memory access.
 *
 * Modelling note: the per-node cache is behavioural (timing) only;
 * data functionally reads and writes the global store, so stores are
 * immediately visible to every node as if write-through with ideal
 * coherence. Coherence-protocol *timing* (invalidations, upgrades)
 * is outside this reproduction's scope — the paper predates and is
 * orthogonal to it.
 */

#ifndef GP_NOC_NODE_MEMORY_H
#define GP_NOC_NODE_MEMORY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gp/ops.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "noc/retransmit.h"

namespace gp::noc {

/// VA bits 53..48 name the home node of an address.
inline constexpr unsigned kNodeShift = 48;
inline constexpr uint64_t kNodeMask = 0x3f;

/** @return the home node id encoded in a virtual address. */
inline unsigned
homeNode(uint64_t vaddr)
{
    return unsigned((vaddr >> kNodeShift) & kNodeMask);
}

/** @return the base virtual address of a node's partition. */
inline uint64_t
nodeBase(unsigned node)
{
    return uint64_t(node) << kNodeShift;
}

/**
 * Globally shared backing state: one 54-bit space, partitioned by
 * home node. Each home node owns a slice (its page table + tagged
 * physical storage), matching the paper's model where the home node
 * owns the data. The split also removes every cross-node write to
 * shared translation state, which is what lets the sharded mesh
 * engine simulate nodes on different host threads: a node only
 * touches a remote slice at the epoch barrier (single-threaded,
 * canonical order), never during the parallel phase.
 *
 * Slices are created lazily; creation is mutex-guarded and the slice
 * pointer is published with release/acquire so a pre-created slice
 * can be read from any thread.
 */
class GlobalMemory
{
  public:
    /// One home node's share of the space.
    struct Slice
    {
        mem::PageTable pageTable{4096};
        mem::TaggedMemory phys;
    };

    GlobalMemory() = default;
    GlobalMemory(const GlobalMemory &) = delete;
    GlobalMemory &operator=(const GlobalMemory &) = delete;

    ~GlobalMemory()
    {
        for (auto &s : slices_)
            delete s.load(std::memory_order_acquire);
    }

    /** The slice of the home node owning @p vaddr. */
    Slice &sliceFor(uint64_t vaddr) { return slice(homeNode(vaddr)); }

    /** The slice of home node @p home (created on first use). */
    Slice &
    slice(unsigned home)
    {
        Slice *s = slices_[home & kNodeMask].load(
            std::memory_order_acquire);
        if (s != nullptr)
            return *s;
        return makeSlice(home & unsigned(kNodeMask));
    }

    /** Hardening code applied to every slice, existing and future. */
    void
    setEccMode(mem::EccMode mode)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ecc_ = mode;
        for (auto &s : slices_)
            if (Slice *p = s.load(std::memory_order_acquire))
                p->phys.setEccMode(mode);
    }

  private:
    Slice &
    makeSlice(unsigned home)
    {
        std::lock_guard<std::mutex> lock(mu_);
        Slice *s = slices_[home].load(std::memory_order_relaxed);
        if (s == nullptr) {
            s = new Slice;
            s->phys.setEccMode(ecc_);
            slices_[home].store(s, std::memory_order_release);
        }
        return *s;
    }

    std::array<std::atomic<Slice *>, kNodeMask + 1> slices_{};
    std::mutex mu_;
    mem::EccMode ecc_ = mem::EccMode::None;
};

/**
 * One deferred cross-shard memory access, parked in the epoch
 * exchange until the barrier resolves it. Carries everything
 * NodeMemory::resolveDeferred() needs to run the access exactly as
 * the synchronous path would have at the issue cycle.
 */
struct DeferredAccess
{
    uint64_t ticket = 0; //!< unique per issuing node
    unsigned node = 0;   //!< issuing node
    uint64_t cycle = 0;  //!< issue cycle (canonical sort key)
    Word ptr;            //!< already-checked guarded pointer
    Access kind = Access::Load;
    unsigned size = 0;
    Word value; //!< store payload
};

/**
 * Two-phase message exchange of the sharded mesh engine. During the
 * parallel phase each node appends its cross-shard accesses to its
 * own lane (no sharing, no locks); at the epoch barrier drain()
 * returns everything in the canonical (issue cycle, node, ticket)
 * order, which is what makes results independent of the host-thread
 * count.
 */
class EpochExchange
{
  public:
    explicit EpochExchange(unsigned nodes) : lanes_(nodes) {}

    void post(const DeferredAccess &op) { lanes_[op.node].push_back(op); }

    bool
    empty() const
    {
        for (const auto &lane : lanes_)
            if (!lane.empty())
                return false;
        return true;
    }

    /** Move out every posted access in canonical order. */
    std::vector<DeferredAccess> drain();

  private:
    std::vector<std::vector<DeferredAccess>> lanes_;
};

/** One node's cache/TLB view of the global space. */
class NodeMemory : public mem::MemoryPort
{
  public:
    NodeMemory(unsigned node, Mesh &mesh, GlobalMemory &global,
               const mem::MemConfig &config = mem::MemConfig{},
               const RetransConfig &retrans = RetransConfig{});

    /** Timed load through a guarded pointer (local or remote);
     * elide_check skips the guarded-pointer access check under a
     * verifier proof (translation/NoC behaviour unchanged). */
    mem::MemAccess load(Word ptr, unsigned size, uint64_t now = 0,
                        bool elide_check = false);

    /** Timed store through a guarded pointer (local or remote). */
    mem::MemAccess store(Word ptr, Word value, unsigned size,
                         uint64_t now = 0, bool elide_check = false);

    /** Timed instruction fetch (local or remote code!); elide_check
     * skips the per-fetch pointer check under a caller's span proof
     * (superblock entry verification). */
    mem::MemAccess fetch(Word ip, uint64_t now = 0,
                         bool elide_check = false);

    // MemoryPort interface — a Machine runs against a node directly.
    mem::MemAccess
    portLoad(Word ptr, unsigned size, uint64_t now,
             bool elide_check = false) override
    {
        return load(ptr, size, now, elide_check);
    }
    mem::MemAccess
    portStore(Word ptr, Word value, unsigned size, uint64_t now,
              bool elide_check = false) override
    {
        return store(ptr, value, size, now, elide_check);
    }
    mem::MemAccess
    portFetch(Word ip, uint64_t now, bool elide_check = false) override
    {
        return fetch(ip, now, elide_check);
    }
    void
    portPoke(uint64_t vaddr, Word w) override
    {
        pokeWord(vaddr, w);
    }
    Word
    portPeek(uint64_t vaddr) override
    {
        return peekWord(vaddr);
    }

    /** Untimed functional write (loader/host use). */
    void pokeWord(uint64_t vaddr, Word w);

    /** Untimed functional read. */
    Word peekWord(uint64_t vaddr);

    unsigned node() const { return node_; }
    mem::Cache &cache() { return cache_; }
    mem::Tlb &tlb() { return tlb_; }
    Retransmitter &retransmitter() { return retrans_; }
    sim::StatGroup &stats() { return stats_; }

    /** Accesses that faulted NodeUnreachable (dead home / no route). */
    uint64_t unreachableFaults() const { return unreachableFaults_; }

    /**
     * Attach (or detach, with nullptr) the sharded mesh engine's
     * epoch exchange. With an exchange attached, any timed access
     * whose home is a different node is posted to the exchange and
     * returned as deferred instead of executing; the engine resolves
     * it at the epoch barrier via resolveDeferred(). Without one
     * (the default) remote accesses execute synchronously as before.
     */
    void attachExchange(EpochExchange *exchange)
    {
        exchange_ = exchange;
    }

    /**
     * Execute a previously deferred access (epoch barrier only).
     * Runs the post-check access path at the recorded issue cycle —
     * the pre-issue pointer check was already consumed at issue time
     * and is not repeated.
     */
    mem::MemAccess resolveDeferred(const DeferredAccess &op);

  private:
    mem::MemAccess access(Word ptr, Access kind, unsigned size,
                          uint64_t now, Word store_value,
                          bool elide_check = false);

    /** Timed access after the pre-issue check: cache, translation,
     * NoC legs, functional data — shared by the synchronous path and
     * resolveDeferred(). */
    mem::MemAccess accessBody(Word ptr, Access kind, unsigned size,
                              uint64_t now, Word store_value);

    unsigned node_;
    Mesh &mesh_;
    GlobalMemory &global_;
    EpochExchange *exchange_ = nullptr;
    uint64_t nextTicket_ = 0;
    mem::MemConfig config_;
    mem::Cache cache_;
    mem::Tlb tlb_;
    Retransmitter retrans_;
    sim::StatGroup stats_;

    // Cached stat handles (stable for the life of stats_): access()
    // is the per-reference hot path of every multicomputer run, so it
    // pays plain increments, never string-keyed map lookups
    // (docs/OBSERVABILITY.md).
    sim::Counter *hits_ = nullptr;
    sim::Counter *localMisses_ = nullptr;
    sim::Counter *remoteMisses_ = nullptr;
    sim::Counter *remoteLatency_ = nullptr;
    sim::Counter *loads_ = nullptr;
    sim::Counter *stores_ = nullptr;
    sim::Counter *fetches_ = nullptr;
    sim::Counter *accessFaults_ = nullptr;
    sim::Counter *unmappedFaults_ = nullptr;
    sim::Counter *staleUnmappedFaults_ = nullptr;
    sim::Counter *nocDeliveryFailures_ = nullptr;
    sim::Counter *nocHangs_ = nullptr;
    sim::Counter *nocReplyCorruptions_ = nullptr;
    sim::Counter *eccCorrected_ = nullptr;
    sim::Counter *eccDetected_ = nullptr;
    /// Registered lazily on the first NodeUnreachable (cold path):
    /// the sharded-mesh signature mixes every node counter, so a
    /// failure-free run must expose exactly the counter set the
    /// blessed baselines were pinned to.
    sim::Counter *statUnreachableFaults_ = nullptr;
    uint64_t unreachableFaults_ = 0;
};

} // namespace gp::noc

#endif // GP_NOC_NODE_MEMORY_H
