#include "noc/node_memory.h"

#include <algorithm>

#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/profile.h"

namespace gp::noc {

std::vector<DeferredAccess>
EpochExchange::drain()
{
    std::vector<DeferredAccess> ops;
    for (auto &lane : lanes_) {
        ops.insert(ops.end(), lane.begin(), lane.end());
        lane.clear();
    }
    // Canonical order: issue cycle, then issuing node, then posting
    // order within the node. Identical for every host-thread count.
    std::sort(ops.begin(), ops.end(),
              [](const DeferredAccess &a, const DeferredAccess &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.ticket < b.ticket;
              });
    return ops;
}

NodeMemory::NodeMemory(unsigned node, Mesh &mesh, GlobalMemory &global,
                       const mem::MemConfig &config,
                       const RetransConfig &retrans)
    : node_(node),
      mesh_(mesh),
      global_(global),
      config_(config),
      cache_(config.cache),
      tlb_(config.tlbEntries),
      retrans_(mesh, retrans,
               "node" + std::to_string(node) + "_retrans"),
      stats_("node" + std::to_string(node))
{
    if (node >= mesh.nodeCount())
        sim::fatal("node id %u outside the mesh", node);
    // Pre-create this node's own slice: under the sharded engine the
    // parallel phase may read the slice pointer from any host thread,
    // so it must exist before the workers start.
    global_.slice(node);
    // Cache the stat handles once; access() below runs per memory
    // reference and must never pay a string-keyed map lookup
    // (docs/OBSERVABILITY.md).
    hits_ = &stats_.counter("hits");
    localMisses_ = &stats_.counter("local_misses");
    remoteMisses_ = &stats_.counter("remote_misses");
    remoteLatency_ = &stats_.counter("remote_latency");
    loads_ = &stats_.counter("loads");
    stores_ = &stats_.counter("stores");
    fetches_ = &stats_.counter("fetches");
    accessFaults_ = &stats_.counter("access_faults");
    unmappedFaults_ = &stats_.counter("unmapped_faults");
    staleUnmappedFaults_ = &stats_.counter("stale_unmapped_faults");
    nocDeliveryFailures_ = &stats_.counter("noc_delivery_failures");
    nocHangs_ = &stats_.counter("noc_hangs");
    nocReplyCorruptions_ = &stats_.counter("noc_reply_corruptions");
    eccCorrected_ = &stats_.counter("ecc_corrected");
    eccDetected_ = &stats_.counter("ecc_detected");
}

mem::MemAccess
NodeMemory::access(Word ptr, Access kind, unsigned size, uint64_t now,
                   Word store_value, bool elide_check)
{
    // Identical pre-issue check to the single-node machine: the
    // pointer alone, no tables — and crucially no distinction between
    // local and remote addresses. Skipped only under a verifier proof
    // that the check cannot fire. Runs at issue time even when the
    // access itself is deferred below: a fault costs zero memory
    // cycles and never leaves the issuing shard.
    if (!elide_check) {
        const Fault f = checkAccess(ptr, kind, size);
        if (f != Fault::None) {
            mem::MemAccess acc;
            acc.fault = f;
            acc.startCycle = now;
            acc.completeCycle = now;
            (*accessFaults_)++;
            return acc;
        }
    }

    // Sharded mesh engine: an access whose home is another node may
    // touch that node's slice (and the shared mesh links), so it is
    // parked in the epoch exchange and resolved at the barrier in
    // canonical order — the issuing thread sees a split transaction.
    if (exchange_ != nullptr && homeNode(ptr.addr()) != node_) {
        DeferredAccess op;
        op.ticket = ++nextTicket_;
        op.node = node_;
        op.cycle = now;
        op.ptr = ptr;
        op.kind = kind;
        op.size = size;
        op.value = store_value;
        exchange_->post(op);
        mem::MemAccess acc;
        acc.deferred = true;
        acc.ticket = op.ticket;
        acc.startCycle = now;
        acc.completeCycle = now;
        return acc;
    }

    return accessBody(ptr, kind, size, now, store_value);
}

mem::MemAccess
NodeMemory::resolveDeferred(const DeferredAccess &op)
{
    mem::MemAccess acc =
        accessBody(op.ptr, op.kind, op.size, op.cycle, op.value);
    // The load/store/fetch wrappers skipped their success counters
    // when the access deferred; account for the real outcome here.
    if (acc.fault == Fault::None) {
        switch (op.kind) {
          case Access::Load:
            (*loads_)++;
            break;
          case Access::Store:
            (*stores_)++;
            break;
          case Access::InstFetch:
            (*fetches_)++;
            break;
        }
    }
    return acc;
}

mem::MemAccess
NodeMemory::accessBody(Word ptr, Access kind, unsigned size,
                       uint64_t now, Word store_value)
{
    mem::MemAccess acc;
    acc.startCycle = now;

    const uint64_t vaddr = ptr.addr();
    GlobalMemory::Slice &home_slice = global_.sliceFor(vaddr);
    const bool is_write = kind == Access::Store;
    bool corrupt_reply = false;
    uint64_t t = now + config_.timing.cacheHit;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accBase(config_.timing.cacheHit);

    // Combined probe + hit-update: one tag search instead of two,
    // with zero state change on a miss so fault paths below leave the
    // cache exactly as a probe would have.
    if (cache_.accessHit(vaddr, is_write)) {
        acc.cacheHit = true;
        (*hits_)++;
    } else {
        // Translate (local LTLB; the page table is the home slice's).
        const uint64_t vpn = home_slice.pageTable.vpn(vaddr);
        t += config_.timing.tlbLookup;
        if (sim::Profiler::armed())
            sim::Profiler::instance().accSeg(
                sim::ProfComp::TlbWalk, config_.timing.tlbLookup);
        if (!tlb_.lookup(vpn)) {
            t += config_.timing.ptWalk;
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::TlbWalk, config_.timing.ptWalk);
            auto pa = home_slice.pageTable.translateAddr(vaddr);
            if (!pa) {
                acc.fault = Fault::UnmappedAddress;
                acc.completeCycle = t;
                (*unmappedFaults_)++;
                return acc;
            }
            tlb_.insert(vpn, *pa >> home_slice.pageTable.pageShift());
        }

        const unsigned home = homeNode(vaddr);
        if (home == node_) {
            t += config_.timing.extMemAccess;
            if (sim::Profiler::armed())
                sim::Profiler::instance().accBase(
                    config_.timing.extMemAccess);
            (*localMisses_)++;
        } else {
            // Request flit to the home node, memory access there,
            // line-sized reply back — each leg through the link
            // protocol engine (exactly Mesh::send when the protocol
            // is off and no campaign is armed).
            const unsigned line_flits = config_.cache.lineBytes / 8;
            const bool reliable = retrans_.config().enabled;

            // Retry timeouts are itemised as Retransmit inside
            // transfer(); the rest of each leg is mesh flight time
            // (Noc), recovered as leg-minus-retransmit here.
            uint64_t mark = 0;
            if (sim::Profiler::armed())
                mark = sim::Profiler::instance().accTotal();
            const Delivery rq = retrans_.transfer(node_, home, t, 1);
            if (sim::Profiler::armed()) {
                auto &prof = sim::Profiler::instance();
                const uint64_t retr = prof.accTotal() - mark;
                const uint64_t leg = rq.cycle - t;
                prof.accSeg(sim::ProfComp::Noc,
                            leg > retr ? leg - retr : 0);
            }
            if (rq.unreachable) {
                // No surviving route to the home node (fail-stop
                // death or a partitioning link failure). The network
                // interface *knows* — with the protocol on, the full
                // timeout/backoff retry budget was burned first; raw
                // links learn from the route table immediately. A
                // typed fault either way, never a hang.
                acc.fault = Fault::NodeUnreachable;
                acc.completeCycle = rq.cycle;
                unreachableFaults_++;
                if (!statUnreachableFaults_)
                    statUnreachableFaults_ =
                        &stats_.counter("node_unreachable_faults");
                (*statUnreachableFaults_)++;
                return acc;
            }
            if (!rq.delivered || (!reliable && rq.corrupted)) {
                // The request never reaches (or never parses at)
                // the home node. With the protocol on this is a
                // *detected* failure; without it, nothing will ever
                // answer — the access hangs.
                acc.completeCycle = rq.cycle;
                if (reliable) {
                    acc.fault = Fault::MemoryIntegrity;
                    (*nocDeliveryFailures_)++;
                } else {
                    acc.hang = true;
                    (*nocHangs_)++;
                }
                return acc;
            }

            const uint64_t served =
                rq.cycle + config_.timing.extMemAccess;
            if (sim::Profiler::armed()) {
                sim::Profiler::instance().accBase(
                    config_.timing.extMemAccess);
                mark = sim::Profiler::instance().accTotal();
            }
            const Delivery rp =
                retrans_.transfer(home, node_, served, line_flits);
            if (sim::Profiler::armed()) {
                auto &prof = sim::Profiler::instance();
                const uint64_t retr = prof.accTotal() - mark;
                const uint64_t leg = rp.cycle - served;
                prof.accSeg(sim::ProfComp::Noc,
                            leg > retr ? leg - retr : 0);
            }
            if (rp.unreachable) {
                // The reply found no surviving route back (the
                // failure landed mid-access). Same typed error as a
                // dead home: the requester's end-to-end timeout is
                // what detects it.
                acc.fault = Fault::NodeUnreachable;
                acc.completeCycle = rp.cycle;
                unreachableFaults_++;
                if (!statUnreachableFaults_)
                    statUnreachableFaults_ =
                        &stats_.counter("node_unreachable_faults");
                (*statUnreachableFaults_)++;
                return acc;
            }
            if (!rp.delivered) {
                acc.completeCycle = rp.cycle;
                if (reliable) {
                    acc.fault = Fault::MemoryIntegrity;
                    (*nocDeliveryFailures_)++;
                } else {
                    acc.hang = true;
                    (*nocHangs_)++;
                }
                return acc;
            }
            if (!reliable && rp.corrupted && kind != Access::Store) {
                // Mangled reply payload on an unprotected link:
                // silent corruption of the loaded word, applied
                // after the functional read below.
                corrupt_reply = true;
            }
            t = rp.cycle;
            (*remoteMisses_)++;
            (*remoteLatency_) += t - now;
        }
        // Install the line only now that the fill actually arrived.
        // A fetch that died on the NoC (unreachable home, lost
        // delivery) must leave the cache untouched — a resident line
        // would make the next access to the dead home silently "hit"
        // and bypass the typed-unreachable path entirely.
        cache_.access(vaddr, is_write);
    }

    // Functional data access against the home slice's backing store.
    auto pa = home_slice.pageTable.translateAddr(vaddr);
    if (!pa) {
        // A line can legitimately stay resident in this node's cache
        // after the home node unmapped/revoked the page — there is
        // no cross-node invalidation in this model. That is a stale
        // mapping, not a simulator bug: surface it as a detected
        // integrity fault on the access.
        acc.fault = Fault::MemoryIntegrity;
        acc.completeCycle = t;
        (*staleUnmappedFaults_)++;
        return acc;
    }
    if (kind == Access::Store) {
        if (size == 8)
            home_slice.phys.writeWord(*pa, store_value);
        else
            home_slice.phys.writeBytes(*pa, size, store_value.bits());
    } else {
        if (home_slice.phys.eccMode() != mem::EccMode::None &&
            size == 8) {
            const mem::CheckedWord cw =
                home_slice.phys.readWordChecked(*pa);
            if (cw.status == mem::EccStatus::Detected) {
                acc.fault = Fault::MemoryIntegrity;
                acc.completeCycle = t;
                (*eccDetected_)++;
                return acc;
            }
            if (cw.status == mem::EccStatus::Corrected)
                (*eccCorrected_)++;
            acc.data = cw.word;
        } else {
            acc.data =
                size == 8
                    ? home_slice.phys.readWord(*pa)
                    : Word::fromInt(home_slice.phys.readBytes(*pa,
                                                              size));
        }
        if (corrupt_reply) {
            // One bit of the delivered word flips in flight; bit 64
            // is the tag — the NoC capability-forgery channel.
            auto &inj = sim::FaultInjector::instance();
            const unsigned bit = unsigned(
                inj.drawBelow(sim::FaultSite::NocCorrupt, 65));
            const uint64_t bits =
                bit < 64 ? acc.data.bits() ^ (uint64_t(1) << bit)
                         : acc.data.bits();
            const bool tag = bit == 64 ? !acc.data.isPointer()
                                       : acc.data.isPointer();
            acc.data = tag ? Word::fromRawPointerBits(bits)
                           : Word::fromInt(bits);
            (*nocReplyCorruptions_)++;
        }
    }

    acc.completeCycle = t;
    return acc;
}

mem::MemAccess
NodeMemory::load(Word ptr, unsigned size, uint64_t now,
                 bool elide_check)
{
    mem::MemAccess acc =
        access(ptr, Access::Load, size, now, Word{}, elide_check);
    if (acc.fault == Fault::None && !acc.deferred)
        (*loads_)++;
    return acc;
}

mem::MemAccess
NodeMemory::store(Word ptr, Word value, unsigned size, uint64_t now,
                  bool elide_check)
{
    mem::MemAccess acc =
        access(ptr, Access::Store, size, now, value, elide_check);
    if (acc.fault == Fault::None && !acc.deferred)
        (*stores_)++;
    return acc;
}

mem::MemAccess
NodeMemory::fetch(Word ip, uint64_t now, bool elide_check)
{
    mem::MemAccess acc =
        access(ip, Access::InstFetch, 8, now, Word{}, elide_check);
    if (acc.fault == Fault::None && !acc.deferred)
        (*fetches_)++;
    return acc;
}

void
NodeMemory::pokeWord(uint64_t vaddr, Word w)
{
    GlobalMemory::Slice &home_slice = global_.sliceFor(vaddr);
    auto pa = home_slice.pageTable.translateAddr(vaddr);
    if (!pa)
        sim::fatal("pokeWord: unmapped global address");
    home_slice.phys.writeWord(*pa, w);
}

Word
NodeMemory::peekWord(uint64_t vaddr)
{
    GlobalMemory::Slice &home_slice = global_.sliceFor(vaddr);
    auto pa = home_slice.pageTable.translateAddr(vaddr);
    return pa ? home_slice.phys.readWord(*pa) : Word{};
}

} // namespace gp::noc
