#include "noc/node_memory.h"

#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/profile.h"

namespace gp::noc {

NodeMemory::NodeMemory(unsigned node, Mesh &mesh, GlobalMemory &global,
                       const mem::MemConfig &config,
                       const RetransConfig &retrans)
    : node_(node),
      mesh_(mesh),
      global_(global),
      config_(config),
      cache_(config.cache),
      tlb_(config.tlbEntries),
      retrans_(mesh, retrans,
               "node" + std::to_string(node) + "_retrans"),
      stats_("node" + std::to_string(node))
{
    if (node >= mesh.nodeCount())
        sim::fatal("node id %u outside the mesh", node);
    // Cache the stat handles once; access() below runs per memory
    // reference and must never pay a string-keyed map lookup
    // (docs/OBSERVABILITY.md).
    hits_ = &stats_.counter("hits");
    localMisses_ = &stats_.counter("local_misses");
    remoteMisses_ = &stats_.counter("remote_misses");
    remoteLatency_ = &stats_.counter("remote_latency");
    loads_ = &stats_.counter("loads");
    stores_ = &stats_.counter("stores");
    fetches_ = &stats_.counter("fetches");
    accessFaults_ = &stats_.counter("access_faults");
    unmappedFaults_ = &stats_.counter("unmapped_faults");
    staleUnmappedFaults_ = &stats_.counter("stale_unmapped_faults");
    nocDeliveryFailures_ = &stats_.counter("noc_delivery_failures");
    nocHangs_ = &stats_.counter("noc_hangs");
    nocReplyCorruptions_ = &stats_.counter("noc_reply_corruptions");
    eccCorrected_ = &stats_.counter("ecc_corrected");
    eccDetected_ = &stats_.counter("ecc_detected");
}

mem::MemAccess
NodeMemory::access(Word ptr, Access kind, unsigned size, uint64_t now,
                   Word store_value, bool elide_check)
{
    mem::MemAccess acc;
    acc.startCycle = now;

    // Identical pre-issue check to the single-node machine: the
    // pointer alone, no tables — and crucially no distinction between
    // local and remote addresses. Skipped only under a verifier proof
    // that the check cannot fire.
    if (!elide_check) {
        acc.fault = checkAccess(ptr, kind, size);
        if (acc.fault != Fault::None) {
            acc.completeCycle = now;
            (*accessFaults_)++;
            return acc;
        }
    }

    const uint64_t vaddr = ptr.addr();
    const bool is_write = kind == Access::Store;
    bool corrupt_reply = false;
    uint64_t t = now + config_.timing.cacheHit;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accBase(config_.timing.cacheHit);

    // Combined probe + hit-update: one tag search instead of two,
    // with zero state change on a miss so fault paths below leave the
    // cache exactly as a probe would have.
    if (cache_.accessHit(vaddr, is_write)) {
        acc.cacheHit = true;
        (*hits_)++;
    } else {
        // Translate (local LTLB; the page table is global).
        const uint64_t vpn = global_.pageTable.vpn(vaddr);
        t += config_.timing.tlbLookup;
        if (sim::Profiler::armed())
            sim::Profiler::instance().accSeg(
                sim::ProfComp::TlbWalk, config_.timing.tlbLookup);
        if (!tlb_.lookup(vpn)) {
            t += config_.timing.ptWalk;
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::TlbWalk, config_.timing.ptWalk);
            auto pa = global_.pageTable.translateAddr(vaddr);
            if (!pa) {
                acc.fault = Fault::UnmappedAddress;
                acc.completeCycle = t;
                (*unmappedFaults_)++;
                return acc;
            }
            tlb_.insert(vpn, *pa >> global_.pageTable.pageShift());
        }

        cache_.access(vaddr, is_write);
        const unsigned home = homeNode(vaddr);
        if (home == node_) {
            t += config_.timing.extMemAccess;
            if (sim::Profiler::armed())
                sim::Profiler::instance().accBase(
                    config_.timing.extMemAccess);
            (*localMisses_)++;
        } else {
            // Request flit to the home node, memory access there,
            // line-sized reply back — each leg through the link
            // protocol engine (exactly Mesh::send when the protocol
            // is off and no campaign is armed).
            const unsigned line_flits = config_.cache.lineBytes / 8;
            const bool reliable = retrans_.config().enabled;

            // Retry timeouts are itemised as Retransmit inside
            // transfer(); the rest of each leg is mesh flight time
            // (Noc), recovered as leg-minus-retransmit here.
            uint64_t mark = 0;
            if (sim::Profiler::armed())
                mark = sim::Profiler::instance().accTotal();
            const Delivery rq = retrans_.transfer(node_, home, t, 1);
            if (sim::Profiler::armed()) {
                auto &prof = sim::Profiler::instance();
                const uint64_t retr = prof.accTotal() - mark;
                const uint64_t leg = rq.cycle - t;
                prof.accSeg(sim::ProfComp::Noc,
                            leg > retr ? leg - retr : 0);
            }
            if (!rq.delivered || (!reliable && rq.corrupted)) {
                // The request never reaches (or never parses at)
                // the home node. With the protocol on this is a
                // *detected* failure; without it, nothing will ever
                // answer — the access hangs.
                acc.completeCycle = rq.cycle;
                if (reliable) {
                    acc.fault = Fault::MemoryIntegrity;
                    (*nocDeliveryFailures_)++;
                } else {
                    acc.hang = true;
                    (*nocHangs_)++;
                }
                return acc;
            }

            const uint64_t served =
                rq.cycle + config_.timing.extMemAccess;
            if (sim::Profiler::armed()) {
                sim::Profiler::instance().accBase(
                    config_.timing.extMemAccess);
                mark = sim::Profiler::instance().accTotal();
            }
            const Delivery rp =
                retrans_.transfer(home, node_, served, line_flits);
            if (sim::Profiler::armed()) {
                auto &prof = sim::Profiler::instance();
                const uint64_t retr = prof.accTotal() - mark;
                const uint64_t leg = rp.cycle - served;
                prof.accSeg(sim::ProfComp::Noc,
                            leg > retr ? leg - retr : 0);
            }
            if (!rp.delivered) {
                acc.completeCycle = rp.cycle;
                if (reliable) {
                    acc.fault = Fault::MemoryIntegrity;
                    (*nocDeliveryFailures_)++;
                } else {
                    acc.hang = true;
                    (*nocHangs_)++;
                }
                return acc;
            }
            if (!reliable && rp.corrupted && kind != Access::Store) {
                // Mangled reply payload on an unprotected link:
                // silent corruption of the loaded word, applied
                // after the functional read below.
                corrupt_reply = true;
            }
            t = rp.cycle;
            (*remoteMisses_)++;
            (*remoteLatency_) += t - now;
        }
    }

    // Functional data access against the global backing store.
    auto pa = global_.pageTable.translateAddr(vaddr);
    if (!pa) {
        // A line can legitimately stay resident in this node's cache
        // after the home node unmapped/revoked the page — there is
        // no cross-node invalidation in this model. That is a stale
        // mapping, not a simulator bug: surface it as a detected
        // integrity fault on the access.
        acc.fault = Fault::MemoryIntegrity;
        acc.completeCycle = t;
        (*staleUnmappedFaults_)++;
        return acc;
    }
    if (kind == Access::Store) {
        if (size == 8)
            global_.phys.writeWord(*pa, store_value);
        else
            global_.phys.writeBytes(*pa, size, store_value.bits());
    } else {
        if (global_.phys.eccMode() != mem::EccMode::None &&
            size == 8) {
            const mem::CheckedWord cw =
                global_.phys.readWordChecked(*pa);
            if (cw.status == mem::EccStatus::Detected) {
                acc.fault = Fault::MemoryIntegrity;
                acc.completeCycle = t;
                (*eccDetected_)++;
                return acc;
            }
            if (cw.status == mem::EccStatus::Corrected)
                (*eccCorrected_)++;
            acc.data = cw.word;
        } else {
            acc.data =
                size == 8
                    ? global_.phys.readWord(*pa)
                    : Word::fromInt(global_.phys.readBytes(*pa,
                                                           size));
        }
        if (corrupt_reply) {
            // One bit of the delivered word flips in flight; bit 64
            // is the tag — the NoC capability-forgery channel.
            auto &inj = sim::FaultInjector::instance();
            const unsigned bit = unsigned(
                inj.drawBelow(sim::FaultSite::NocCorrupt, 65));
            const uint64_t bits =
                bit < 64 ? acc.data.bits() ^ (uint64_t(1) << bit)
                         : acc.data.bits();
            const bool tag = bit == 64 ? !acc.data.isPointer()
                                       : acc.data.isPointer();
            acc.data = tag ? Word::fromRawPointerBits(bits)
                           : Word::fromInt(bits);
            (*nocReplyCorruptions_)++;
        }
    }

    acc.completeCycle = t;
    return acc;
}

mem::MemAccess
NodeMemory::load(Word ptr, unsigned size, uint64_t now,
                 bool elide_check)
{
    mem::MemAccess acc =
        access(ptr, Access::Load, size, now, Word{}, elide_check);
    if (acc.fault == Fault::None)
        (*loads_)++;
    return acc;
}

mem::MemAccess
NodeMemory::store(Word ptr, Word value, unsigned size, uint64_t now,
                  bool elide_check)
{
    mem::MemAccess acc =
        access(ptr, Access::Store, size, now, value, elide_check);
    if (acc.fault == Fault::None)
        (*stores_)++;
    return acc;
}

mem::MemAccess
NodeMemory::fetch(Word ip, uint64_t now)
{
    mem::MemAccess acc =
        access(ip, Access::InstFetch, 8, now, Word{});
    if (acc.fault == Fault::None)
        (*fetches_)++;
    return acc;
}

void
NodeMemory::pokeWord(uint64_t vaddr, Word w)
{
    auto pa = global_.pageTable.translateAddr(vaddr);
    if (!pa)
        sim::fatal("pokeWord: unmapped global address");
    global_.phys.writeWord(*pa, w);
}

Word
NodeMemory::peekWord(uint64_t vaddr)
{
    auto pa = global_.pageTable.translateAddr(vaddr);
    return pa ? global_.phys.readWord(*pa) : Word{};
}

} // namespace gp::noc
