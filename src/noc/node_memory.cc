#include "noc/node_memory.h"

#include "sim/log.h"

namespace gp::noc {

NodeMemory::NodeMemory(unsigned node, Mesh &mesh, GlobalMemory &global,
                       const mem::MemConfig &config)
    : node_(node),
      mesh_(mesh),
      global_(global),
      config_(config),
      cache_(config.cache),
      tlb_(config.tlbEntries),
      stats_("node" + std::to_string(node))
{
    if (node >= mesh.nodeCount())
        sim::fatal("node id %u outside the mesh", node);
}

mem::MemAccess
NodeMemory::access(Word ptr, Access kind, unsigned size, uint64_t now,
                   Word store_value)
{
    mem::MemAccess acc;
    acc.startCycle = now;

    // Identical pre-issue check to the single-node machine: the
    // pointer alone, no tables — and crucially no distinction between
    // local and remote addresses.
    acc.fault = checkAccess(ptr, kind, size);
    if (acc.fault != Fault::None) {
        acc.completeCycle = now;
        stats_.counter("access_faults")++;
        return acc;
    }

    const uint64_t vaddr = ptr.addr();
    const bool is_write = kind == Access::Store;
    uint64_t t = now + config_.timing.cacheHit;

    if (cache_.probe(vaddr)) {
        cache_.access(vaddr, is_write);
        acc.cacheHit = true;
        stats_.counter("hits")++;
    } else {
        // Translate (local LTLB; the page table is global).
        const uint64_t vpn = global_.pageTable.vpn(vaddr);
        t += config_.timing.tlbLookup;
        if (!tlb_.lookup(vpn)) {
            t += config_.timing.ptWalk;
            auto pa = global_.pageTable.translateAddr(vaddr);
            if (!pa) {
                acc.fault = Fault::UnmappedAddress;
                acc.completeCycle = t;
                stats_.counter("unmapped_faults")++;
                return acc;
            }
            tlb_.insert(vpn, *pa >> global_.pageTable.pageShift());
        }

        cache_.access(vaddr, is_write);
        const unsigned home = homeNode(vaddr);
        if (home == node_) {
            t += config_.timing.extMemAccess;
            stats_.counter("local_misses")++;
        } else {
            // Request flit to the home node, memory access there,
            // line-sized reply back.
            const unsigned line_flits = config_.cache.lineBytes / 8;
            const uint64_t arrive = mesh_.send(node_, home, t, 1);
            const uint64_t served =
                arrive + config_.timing.extMemAccess;
            t = mesh_.send(home, node_, served, line_flits);
            stats_.counter("remote_misses")++;
            stats_.counter("remote_latency") += t - now;
        }
    }

    // Functional data access against the global backing store.
    auto pa = global_.pageTable.translateAddr(vaddr);
    if (!pa)
        sim::panic("node memory: cached but unmapped address");
    if (kind == Access::Store) {
        if (size == 8)
            global_.phys.writeWord(*pa, store_value);
        else
            global_.phys.writeBytes(*pa, size, store_value.bits());
    } else {
        acc.data = size == 8
                       ? global_.phys.readWord(*pa)
                       : Word::fromInt(global_.phys.readBytes(*pa,
                                                              size));
    }

    acc.completeCycle = t;
    return acc;
}

mem::MemAccess
NodeMemory::load(Word ptr, unsigned size, uint64_t now)
{
    mem::MemAccess acc = access(ptr, Access::Load, size, now, Word{});
    if (acc.fault == Fault::None)
        stats_.counter("loads")++;
    return acc;
}

mem::MemAccess
NodeMemory::store(Word ptr, Word value, unsigned size, uint64_t now)
{
    mem::MemAccess acc = access(ptr, Access::Store, size, now, value);
    if (acc.fault == Fault::None)
        stats_.counter("stores")++;
    return acc;
}

mem::MemAccess
NodeMemory::fetch(Word ip, uint64_t now)
{
    mem::MemAccess acc =
        access(ip, Access::InstFetch, 8, now, Word{});
    if (acc.fault == Fault::None)
        stats_.counter("fetches")++;
    return acc;
}

void
NodeMemory::pokeWord(uint64_t vaddr, Word w)
{
    auto pa = global_.pageTable.translateAddr(vaddr);
    if (!pa)
        sim::fatal("pokeWord: unmapped global address");
    global_.phys.writeWord(*pa, w);
}

Word
NodeMemory::peekWord(uint64_t vaddr)
{
    auto pa = global_.pageTable.translateAddr(vaddr);
    return pa ? global_.phys.readWord(*pa) : Word{};
}

} // namespace gp::noc
