#include "noc/shard.h"

#include <algorithm>
#include <ostream>

#include "sim/faultinject.h"
#include "sim/log.h"

namespace gp::noc {

ShardedMesh::ShardedMesh(const ShardConfig &config)
    : config_(config),
      mesh_(config.mesh),
      exchange_(mesh_.nodeCount())
{
    const unsigned nodes = mesh_.nodeCount();
    if (nodes == 0)
        sim::fatal("sharded mesh: empty mesh");

    global_.setEccMode(config_.node.ecc);

    // The engine owns injector ticking (one central tick per
    // simulated cycle at the barrier); machines must not also tick.
    isa::MachineConfig mcfg = config_.machine;
    mcfg.externalInjectorTick = true;

    nodes_.reserve(nodes);
    machines_.reserve(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        nodes_.push_back(std::make_unique<NodeMemory>(
            n, mesh_, global_, config_.node, config_.retrans));
        nodes_.back()->attachExchange(&exchange_);
        machines_.push_back(
            std::make_unique<isa::Machine>(mcfg, *nodes_.back()));
    }

    // Lookahead: an epoch may not exceed the minimum inter-node
    // message latency, or a message could be due before the barrier
    // that delivers it.
    const uint64_t lookahead =
        std::max<uint64_t>(1, mesh_.minMessageLatency());
    horizon_ = config_.epochHorizon == 0
                   ? lookahead
                   : std::min(config_.epochHorizon, lookahead);

    hostThreads_ = std::max(1u, std::min(config_.hostThreads, nodes));

    // Contiguous node ranges per shard, sized as evenly as possible.
    // Contiguity matters: VA bits 53..48 are the home node, so a
    // shard is also a contiguous slice of the address space.
    const unsigned base = nodes / hostThreads_;
    const unsigned rem = nodes % hostThreads_;
    unsigned first = 0;
    for (unsigned s = 0; s < hostThreads_; ++s) {
        const unsigned len = base + (s < rem ? 1 : 0);
        shardRange_.emplace_back(first, first + len);
        first += len;
    }

    live_.assign(nodes, 1);
    tallies_.resize(hostThreads_);
    for (unsigned s = 0; s < hostThreads_; ++s) {
        shardStats_.push_back(std::make_unique<sim::StatGroup>(
            "shard" + std::to_string(s)));
        sim::StatGroup &g = *shardStats_.back();
        shardCounters_.push_back({&g.counter("nodes"),
                                  &g.counter("busy_cycles"),
                                  &g.counter("instructions"),
                                  &g.counter("mesh_messages"),
                                  &g.counter("mesh_flits"),
                                  &g.counter("mesh_link_stall_cycles"),
                                  &g.counter("mesh_hops")});
    }
    // Handles for the drain-time attribution snapshots. These are
    // the mesh's OWN counters (already in the signature); the
    // per-node tallies derived from them live outside every stat
    // group and cannot move blessed signatures.
    sim::StatGroup &ms = mesh_.stats();
    meshTrafficCounters_ = {&ms.counter("messages"),
                            &ms.counter("flits"),
                            &ms.counter("link_stall_cycles"),
                            &ms.counter("hops_traversed")};
    nodeMeshTallies_.assign(nodes, {});
    exportShardStats();

    if (hostThreads_ > 1) {
        // The caller simulates shard 0 between the barriers, so the
        // pool holds hostThreads-1 workers and each barrier counts
        // hostThreads parties.
        startBarrier_ = std::make_unique<SpinBarrier>(hostThreads_);
        endBarrier_ = std::make_unique<SpinBarrier>(hostThreads_);
        workers_.reserve(hostThreads_ - 1);
        for (unsigned s = 1; s < hostThreads_; ++s)
            workers_.emplace_back(&ShardedMesh::workerLoop, this, s);
    }
}

ShardedMesh::~ShardedMesh()
{
    if (!workers_.empty()) {
        stop_.store(true, std::memory_order_release);
        startBarrier_->arriveAndWait();
        for (std::thread &w : workers_)
            w.join();
    }
}

unsigned
ShardedMesh::shardOf(unsigned n) const
{
    for (unsigned s = 0; s < shardRange_.size(); ++s)
        if (n >= shardRange_[s].first && n < shardRange_[s].second)
            return s;
    return 0;
}

bool
ShardedMesh::allDone() const
{
    // Fail-stopped nodes are frozen mid-flight — they are neither
    // running nor waited for. The run is over when every *survivor*
    // is done (vacuously true if everything died).
    for (unsigned n = 0; n < machines_.size(); ++n)
        if (!mesh_.nodeDead(n) && !machines_[n]->allDone())
            return false;
    return true;
}

bool
ShardedMesh::watchdogTripped() const
{
    for (const auto &m : machines_)
        if (m->watchdogTripped())
            return true;
    return false;
}

void
ShardedMesh::simulateShard(unsigned shard)
{
    const auto [first, last] = shardRange_[shard];
    const uint64_t from = epochFrom_;
    const uint64_t to = epochTo_;
    // Cycle-major so every machine in the mesh executes cycle c
    // before any machine executes cycle c+1 (within the epoch the
    // shards interleave freely — the lookahead guarantees nothing
    // observable crosses shards before the barrier).
    for (uint64_t c = from; c < to; ++c)
        for (unsigned n = first; n < last; ++n)
            if (live_[n])
                machines_[n]->step();
}

void
ShardedMesh::workerLoop(unsigned shard)
{
    gp::setThreadOpTallies(&tallies_[shard]);
    for (;;) {
        startBarrier_->arriveAndWait();
        if (stop_.load(std::memory_order_acquire))
            break;
        simulateShard(shard);
        endBarrier_->arriveAndWait();
    }
    gp::setThreadOpTallies(nullptr);
}

void
ShardedMesh::refreshLive()
{
    // A done machine can never wake up on its own (no pending split
    // transactions, no ready threads), so it stops being stepped; its
    // local cycle count freezes at the epoch in which it finished.
    // A fail-stopped machine freezes the same way, mid-flight. This
    // is part of the canonical schedule: identical for every
    // host-thread count.
    for (unsigned n = 0; n < live_.size(); ++n)
        live_[n] =
            (mesh_.nodeDead(n) || machines_[n]->allDone()) ? 0 : 1;
}

void
ShardedMesh::killNode(unsigned n)
{
    if (n >= machines_.size() || mesh_.nodeDead(n))
        return;
    mesh_.failNode(n);
    // Whatever split transactions the dying node still has parked
    // will never complete (its exchange ops are dropped below and
    // nothing new is posted); mark them so post-mortems can tell
    // wedged-by-death from in-flight.
    machines_[n]->markDeferredOrphans();
    sim::warn("sharded mesh: node %u fail-stopped at cycle %llu", n,
              static_cast<unsigned long long>(cycle_));
}

void
ShardedMesh::applyMeshFaults()
{
    auto &inj = sim::FaultInjector::instance();
    const unsigned nodes = unsigned(machines_.size());

    // One opportunity per site per epoch. Victim selection draws
    // come from the same per-site stream as the Bernoulli draw, and
    // the candidate lists are id-sorted, so the failure schedule is
    // a pure function of (seed, config) — never of host threads.
    if (inj.fire(sim::FaultSite::NodeFailStop)) {
        std::vector<unsigned> alive;
        alive.reserve(nodes);
        for (unsigned n = 0; n < nodes; ++n)
            if (!mesh_.nodeDead(n))
                alive.push_back(n);
        if (!alive.empty())
            killNode(alive[inj.drawBelow(sim::FaultSite::NodeFailStop,
                                         alive.size())]);
    }
    if (inj.fire(sim::FaultSite::LinkDown)) {
        std::vector<std::pair<unsigned, unsigned>> up;
        up.reserve(size_t(nodes) * 6);
        for (unsigned n = 0; n < nodes; ++n)
            for (unsigned d = 0; d < 6; ++d)
                if (mesh_.neighbor(n, d) >= 0 && !mesh_.linkDown(n, d))
                    up.emplace_back(n, d);
        if (!up.empty()) {
            const auto [vn, vd] =
                up[inj.drawBelow(sim::FaultSite::LinkDown, up.size())];
            mesh_.failLink(vn, vd);
            sim::warn("sharded mesh: link %u/dir%u down at cycle %llu",
                      vn, vd,
                      static_cast<unsigned long long>(cycle_));
        }
    }
}

void
ShardedMesh::drainEpoch()
{
    // Central injector ticks: machines stepped cycles [from, to) and
    // each step would have ticked its post-increment cycle, i.e.
    // (from, to]. One canonical pass replaces all per-machine ticks.
    if (sim::FaultInjector::armed()) {
        auto &inj = sim::FaultInjector::instance();
        for (uint64_t c = epochFrom_; c < epochTo_; ++c)
            inj.tick(c + 1);
        // Mesh-scale fail-stop sites arm here — after the ticks,
        // before the drain — so an op already in flight to a node
        // that dies at this barrier fails *this* epoch.
        applyMeshFaults();
    }

    // Canonical drain rounds: resolving a deferred fetch decodes and
    // executes its instruction, which may immediately defer a remote
    // load/store — picked up by the next round. Ops whose issue cycle
    // lies beyond the epoch (a completion chain) still resolve at
    // this barrier, in the same canonical order; the mesh charges
    // contention from their recorded cycles either way.
    std::vector<DeferredAccess> ops = exchange_.drain();
    while (!ops.empty()) {
        for (const DeferredAccess &op : ops) {
            if (mesh_.nodeDead(op.node)) {
                // The poster fail-stopped with this op in flight:
                // nobody is waiting for the completion. Dropped, not
                // resolved — a dead node must not touch the fabric.
                deadOpsDropped_++;
                continue;
            }
            // Attribute the mesh traffic this resolution causes to
            // its POSTING node, not to the barrier in bulk: snapshot
            // the mesh counters around the resolve and bank the
            // delta. The drain order is canonical, so the per-node
            // attribution is a pure function of the simulated
            // schedule — identical for every host-thread count.
            std::array<uint64_t, kTallyCount> before;
            for (unsigned k = 0; k < kTallyCount; ++k)
                before[k] = meshTrafficCounters_[k]->value();
            const mem::MemAccess acc =
                nodes_[op.node]->resolveDeferred(op);
            for (unsigned k = 0; k < kTallyCount; ++k)
                nodeMeshTallies_[op.node][k] +=
                    meshTrafficCounters_[k]->value() - before[k];
            machines_[op.node]->completeDeferred(op.ticket, acc);
        }
        ops = exchange_.drain();
    }

    // The exchange is empty: every split transaction still parked on
    // a surviving machine is an orphan (its completion can no longer
    // arrive) and must not veto that machine's quiescence watchdog.
    // In the current protocol this only happens through fail-stop
    // drops above, but the invariant is checked unconditionally —
    // a lost op is a hang either way.
    for (unsigned n = 0; n < machines_.size(); ++n)
        if (!mesh_.nodeDead(n) && machines_[n]->hasDeferred())
            machines_[n]->markDeferredOrphans();

    refreshLive();
}

uint64_t
ShardedMesh::progressCount() const
{
    // Instructions retired + faults taken across survivors: anything
    // that counts as forward progress for the distributed watchdog.
    // Only scanned while the mesh watchdog is armed.
    uint64_t p = 0;
    for (unsigned n = 0; n < machines_.size(); ++n) {
        if (mesh_.nodeDead(n))
            continue;
        const isa::Machine &m = *machines_[n];
        for (const isa::Thread &t : m.threads())
            p += t.instsRetired();
        p += m.faultLog().size();
    }
    return p;
}

void
ShardedMesh::checkMeshWatchdog()
{
    const uint64_t progress = progressCount();
    if (progress != lastProgress_) {
        lastProgress_ = progress;
        lastProgressCycle_ = cycle_;
        return;
    }
    if (cycle_ - lastProgressCycle_ < config_.meshWatchdogCycles)
        return;
    // No survivor progressed for a full window. Spurious-trip guard:
    // a survivor stalled to a finite future cycle (long backoff) or
    // holding a genuinely in-flight park will resume on its own —
    // only trip when every survivor is quiescent for good.
    for (unsigned n = 0; n < machines_.size(); ++n)
        if (!mesh_.nodeDead(n) && !machines_[n]->allDone() &&
            !machines_[n]->quiescentNow())
            return;
    meshWatchdogTripped_ = true;
    sim::warn("sharded mesh: distributed watchdog trip at cycle %llu "
              "(%u survivors, %llu dead nodes)",
              static_cast<unsigned long long>(cycle_), survivors(),
              static_cast<unsigned long long>(mesh_.deadNodeCount()));
    for (unsigned n = 0; n < machines_.size(); ++n)
        if (!mesh_.nodeDead(n) && !machines_[n]->allDone())
            machines_[n]->forceWatchdogTrip("mesh-quiescence");
}

namespace {

const char *
threadStateName(isa::ThreadState s)
{
    switch (s) {
      case isa::ThreadState::Idle:
        return "idle";
      case isa::ThreadState::Ready:
        return "ready";
      case isa::ThreadState::Halted:
        return "halted";
      case isa::ThreadState::Faulted:
        return "faulted";
      case isa::ThreadState::Pending:
        return "pending";
    }
    return "?";
}

} // namespace

void
ShardedMesh::postMortem(std::ostream &os) const
{
    os << "=== mesh post-mortem @ cycle " << cycle_ << " ===\n"
       << "nodes=" << nodeCount() << " survivors=" << survivors()
       << " hostThreads=" << hostThreads_ << " meshWatchdog="
       << (meshWatchdogTripped_ ? "TRIPPED" : "clear") << "\n";

    if (mesh_.degraded()) {
        os << "failure set: " << mesh_.deadNodeCount()
           << " dead node(s), " << mesh_.downLinkCount()
           << " down link(s)\n";
        os << "  dead nodes:";
        for (unsigned n = 0; n < nodeCount(); ++n)
            if (mesh_.nodeDead(n))
                os << " " << n;
        os << "\n  down links (node/dir):";
        for (unsigned n = 0; n < nodeCount(); ++n)
            for (unsigned d = 0; d < 6; ++d)
                if (!mesh_.nodeDead(n) && mesh_.neighbor(n, d) >= 0 &&
                    mesh_.linkDown(n, d))
                    os << " " << n << "/" << d;
        os << "\n";
        os << "degraded routing: " << mesh_.detourCount()
           << " detoured message(s), " << mesh_.unreachableCount()
           << " unreachable attempt(s), " << deadOpsDropped_
           << " dead-poster op(s) dropped\n";
    } else {
        os << "fabric healthy (no node/link failures)\n";
    }

    for (unsigned n = 0; n < machines_.size(); ++n) {
        const isa::Machine &m = *machines_[n];
        if (mesh_.nodeDead(n)) {
            os << "node " << n << ": FAIL-STOPPED at cycle "
               << m.cycle() << "\n";
            continue;
        }
        if (m.allDone() && !m.watchdogTripped())
            continue; // finished cleanly — not interesting here
        os << "node " << n << ": cycle=" << m.cycle()
           << (m.watchdogTripped() ? " watchdog=TRIPPED" : "")
           << (m.hasDeferred() ? " orphaned-parks" : "") << "\n";
        for (const isa::Thread &t : m.threads()) {
            if (t.state() == isa::ThreadState::Idle)
                continue;
            os << "  thread " << t.id() << ": "
               << threadStateName(t.state()) << " ip=0x" << std::hex
               << t.ip().bits() << std::dec
               << " retired=" << t.instsRetired();
            if (t.stallUntil() == UINT64_MAX)
                os << " stalled=forever";
            else if (t.stallUntil() > m.cycle())
                os << " stalledUntil=" << t.stallUntil();
            os << "\n";
        }
        const auto &log = m.faultLog();
        const size_t tail = log.size() > 4 ? log.size() - 4 : 0;
        for (size_t i = tail; i < log.size(); ++i)
            os << "  fault[" << i
               << "]: " << faultName(log[i].fault) << " @ cycle "
               << log[i].cycle << "\n";
    }
    os << "=== end post-mortem ===\n";
}

uint64_t
ShardedMesh::run(uint64_t max_cycles)
{
    const uint64_t start = cycle_;
    const uint64_t limit = start + max_cycles;
    refreshLive();
    bool done = allDone();
    while (!done && cycle_ < limit) {
        epochFrom_ = cycle_;
        epochTo_ = cycle_ + std::min(horizon_, limit - cycle_);
        if (workers_.empty()) {
            simulateShard(0);
        } else {
            startBarrier_->arriveAndWait(); // release workers
            simulateShard(0);
            endBarrier_->arriveAndWait(); // wait for the epoch
        }
        cycle_ = epochTo_;
        drainEpoch();
        done = allDone();
        if (!done && config_.meshWatchdogCycles != 0)
            checkMeshWatchdog();
    }
    // Deterministic merge of the worker tallies into the real "gp"
    // counters, in shard order; totals now equal a sequential run's.
    for (unsigned s = 1; s < hostThreads_; ++s) {
        gp::mergeOpTallies(tallies_[s]);
        tallies_[s] = gp::OpTallies{};
    }
    exportShardStats();
    if (!done)
        sim::warn("sharded mesh: run() hit the %llu-cycle limit",
                  static_cast<unsigned long long>(max_cycles));
    return cycle_ - start;
}

void
ShardedMesh::exportShardStats()
{
    for (unsigned s = 0; s < hostThreads_; ++s) {
        const auto [first, last] = shardRange_[s];
        uint64_t busy = 0;
        uint64_t insts = 0;
        std::array<uint64_t, kTallyCount> traffic{};
        for (unsigned n = first; n < last; ++n) {
            isa::Machine &m = *machines_[n];
            const uint64_t cluster_cycles =
                m.cycle() * m.config().clusters;
            const uint64_t idle = m.stats().get( // statgroup-get: cold path
                "idle_cluster_cycles");
            busy += cluster_cycles > idle ? cluster_cycles - idle : 0;
            insts += m.stats().get( // statgroup-get: cold path
                "instructions");
            for (unsigned k = 0; k < kTallyCount; ++k)
                traffic[k] += nodeMeshTallies_[n][k];
        }
        shardCounters_[s].nodes->set(last - first);
        shardCounters_[s].busy->set(busy);
        shardCounters_[s].insts->set(insts);
        shardCounters_[s].meshMessages->set(traffic[kTallyMessages]);
        shardCounters_[s].meshFlits->set(traffic[kTallyFlits]);
        shardCounters_[s].meshStalls->set(traffic[kTallyStallCycles]);
        shardCounters_[s].meshHops->set(traffic[kTallyHops]);
    }
}

uint64_t
ShardedMesh::signature() const
{
    uint64_t h = 1469598103934665603ull; // FNV-1a 64 offset basis
    auto mix = [&h](uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };

    mix(cycle_);
    for (const auto &mp : machines_) {
        const isa::Machine &m = *mp;
        mix(m.cycle());
        mix(m.watchdogTripped() ? 1 : 0);
        for (const isa::FaultRecord &fr : m.faultLog()) {
            mix(uint64_t(fr.fault));
            mix(fr.cycle);
            mix(fr.ip.bits());
        }
        for (const isa::Thread &t : m.threads()) {
            mix(uint64_t(t.state()));
            mix(t.ip().bits());
            mix(t.ip().isPointer() ? 1 : 0);
            mix(t.instsRetired());
            mix(t.stallUntil() == UINT64_MAX ? 1 : 0);
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                mix(t.reg(r).bits());
                mix(t.reg(r).isPointer() ? 1 : 0);
            }
        }
    }
    // Machine, node, and retransmit counters, in each group's stable
    // (name-sorted map) order.
    for (const auto &mp : machines_)
        for (const auto &[name, ctr] :
             const_cast<isa::Machine &>(*mp).stats().counters())
            mix(ctr.value());
    for (const auto &np : nodes_)
        for (const auto &[name, ctr] : np->stats().counters())
            mix(ctr.value());
    for (const auto &[name, ctr] :
         const_cast<Mesh &>(mesh_).stats().counters())
        mix(ctr.value());
    // Failure-set state is mixed only once the fabric degrades: a
    // failure-free run hashes exactly as the pre-resilience baseline
    // (the blessed F6/fig5 signatures must not move).
    if (mesh_.degraded()) {
        mix(0xdeadfab5ull); // domain separator: degraded section
        mix(mesh_.deadNodeCount());
        mix(mesh_.downLinkCount());
        mix(mesh_.detourCount());
        mix(mesh_.unreachableCount());
        for (unsigned n = 0; n < machines_.size(); ++n)
            mix(mesh_.nodeDead(n) ? 1 : 0);
        mix(deadOpsDropped_);
        mix(meshWatchdogTripped_ ? 1 : 0);
    }
    if (sim::FaultInjector::armed())
        mix(sim::FaultInjector::instance().injectedTotal());
    return h;
}

} // namespace gp::noc
