#include "noc/mesh.h"

#include <algorithm>

#include "sim/log.h"
#include "sim/trace.h"

namespace gp::noc {

Mesh::Mesh(const MeshConfig &config) : config_(config)
{
    if (config_.dimX == 0 || config_.dimY == 0 || config_.dimZ == 0)
        sim::fatal("mesh: dimensions must be nonzero");
    messages_ = &stats_.counter("messages");
    flits_ = &stats_.counter("flits");
    linkStallCycles_ = &stats_.counter("link_stall_cycles");
    hopsTraversed_ = &stats_.counter("hops_traversed");
    // Uncontended latency for the default 4x2x2 mesh tops out around
    // 2*inject + 7 hops * hopLatency; 64 cycles of range leaves room
    // for queueing before the overflow bucket.
    deliveryLatency_ = &stats_.histogram("delivery_latency", 16, 64);
}

Coord
Mesh::coordOf(unsigned node) const
{
    Coord c;
    c.x = node % config_.dimX;
    c.y = (node / config_.dimX) % config_.dimY;
    c.z = node / (config_.dimX * config_.dimY);
    return c;
}

unsigned
Mesh::nodeAt(Coord c) const
{
    return c.x + config_.dimX * (c.y + config_.dimY * c.z);
}

unsigned
Mesh::hops(unsigned from, unsigned to) const
{
    const Coord a = coordOf(from);
    const Coord b = coordOf(to);
    auto dist = [](unsigned p, unsigned q) {
        return p > q ? p - q : q - p;
    };
    return dist(a.x, b.x) + dist(a.y, b.y) + dist(a.z, b.z);
}

uint64_t
Mesh::send(unsigned from, unsigned to, uint64_t now, unsigned flits)
{
    if (from >= nodeCount() || to >= nodeCount())
        sim::fatal("mesh: node id out of range");
    if (from == to)
        return now;

    (*messages_)++;
    (*flits_) += flits;

    uint64_t t = now + config_.injectLatency;

    // Dimension-order routing: X, then Y, then Z. At each hop the
    // message occupies the outgoing link for `flits` cycles.
    Coord cur = coordOf(from);
    const Coord dst = coordOf(to);
    while (cur.x != dst.x || cur.y != dst.y || cur.z != dst.z) {
        unsigned direction;
        Coord next = cur;
        if (cur.x != dst.x) {
            direction = cur.x < dst.x ? 0 : 1;
            next.x += cur.x < dst.x ? 1 : -1;
        } else if (cur.y != dst.y) {
            direction = cur.y < dst.y ? 2 : 3;
            next.y += cur.y < dst.y ? 1 : -1;
        } else {
            direction = cur.z < dst.z ? 4 : 5;
            next.z += cur.z < dst.z ? 1 : -1;
        }

        const uint64_t link = linkId(nodeAt(cur), direction);
        auto &busy = linkBusy_[link];
        const uint64_t start = std::max(t, busy);
        if (start > t)
            (*linkStallCycles_) += start - t;
        busy = start + flits; // link occupied for the message length
        t = start + config_.hopLatency;
        cur = next;
        (*hopsTraversed_)++;
    }

    const uint64_t done = t + config_.injectLatency + flits - 1;
    deliveryLatency_->sample(done - now);
    GP_TRACE(NoC, now, from, "send",
             "dst=%u flits=%u hops=%u latency=%llu", to, flits,
             hops(from, to),
             static_cast<unsigned long long>(done - now));
    return done;
}

} // namespace gp::noc
