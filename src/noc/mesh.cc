#include "noc/mesh.h"

#include <algorithm>
#include <deque>

#include "sim/log.h"
#include "sim/trace.h"

namespace gp::noc {

Mesh::Mesh(const MeshConfig &config) : config_(config)
{
    if (config_.dimX == 0 || config_.dimY == 0 || config_.dimZ == 0)
        sim::fatal("mesh: dimensions must be nonzero");
    messages_ = &stats_.counter("messages");
    flits_ = &stats_.counter("flits");
    linkStallCycles_ = &stats_.counter("link_stall_cycles");
    hopsTraversed_ = &stats_.counter("hops_traversed");
    // Uncontended latency for the default 4x2x2 mesh tops out around
    // 2*inject + 7 hops * hopLatency; 64 cycles of range leaves room
    // for queueing before the overflow bucket.
    deliveryLatency_ = &stats_.histogram("delivery_latency", 16, 64);
}

Coord
Mesh::coordOf(unsigned node) const
{
    Coord c;
    c.x = node % config_.dimX;
    c.y = (node / config_.dimX) % config_.dimY;
    c.z = node / (config_.dimX * config_.dimY);
    return c;
}

unsigned
Mesh::nodeAt(Coord c) const
{
    return c.x + config_.dimX * (c.y + config_.dimY * c.z);
}

unsigned
Mesh::hops(unsigned from, unsigned to) const
{
    const Coord a = coordOf(from);
    const Coord b = coordOf(to);
    auto dist = [](unsigned p, unsigned q) {
        return p > q ? p - q : q - p;
    };
    return dist(a.x, b.x) + dist(a.y, b.y) + dist(a.z, b.z);
}

uint64_t
Mesh::chargeHop(uint64_t link, uint64_t t, unsigned flits)
{
    auto &busy = linkBusy_[link];
    const uint64_t start = std::max(t, busy);
    if (start > t)
        (*linkStallCycles_) += start - t;
    busy = start + flits; // link occupied for the message length
    (*hopsTraversed_)++;
    return start + config_.hopLatency;
}

uint64_t
Mesh::send(unsigned from, unsigned to, uint64_t now, unsigned flits)
{
    if (from >= nodeCount() || to >= nodeCount())
        sim::fatal("mesh: node id out of range");
    if (from == to)
        return now;

    (*messages_)++;
    (*flits_) += flits;

    uint64_t t = now + config_.injectLatency;

    // Dimension-order routing: X, then Y, then Z. At each hop the
    // message occupies the outgoing link for `flits` cycles.
    Coord cur = coordOf(from);
    const Coord dst = coordOf(to);
    while (cur.x != dst.x || cur.y != dst.y || cur.z != dst.z) {
        unsigned direction;
        Coord next = cur;
        if (cur.x != dst.x) {
            direction = cur.x < dst.x ? 0 : 1;
            next.x += cur.x < dst.x ? 1 : -1;
        } else if (cur.y != dst.y) {
            direction = cur.y < dst.y ? 2 : 3;
            next.y += cur.y < dst.y ? 1 : -1;
        } else {
            direction = cur.z < dst.z ? 4 : 5;
            next.z += cur.z < dst.z ? 1 : -1;
        }

        t = chargeHop(linkId(nodeAt(cur), direction), t, flits);
        cur = next;
    }

    const uint64_t done = t + config_.injectLatency + flits - 1;
    deliveryLatency_->sample(done - now);
    GP_TRACE(NoC, now, from, "send",
             "dst=%u flits=%u hops=%u latency=%llu", to, flits,
             hops(from, to),
             static_cast<unsigned long long>(done - now));
    return done;
}

int
Mesh::neighbor(unsigned node, unsigned direction) const
{
    Coord c = coordOf(node);
    switch (direction) {
      case 0:
        if (c.x + 1 >= config_.dimX)
            return -1;
        c.x++;
        break;
      case 1:
        if (c.x == 0)
            return -1;
        c.x--;
        break;
      case 2:
        if (c.y + 1 >= config_.dimY)
            return -1;
        c.y++;
        break;
      case 3:
        if (c.y == 0)
            return -1;
        c.y--;
        break;
      case 4:
        if (c.z + 1 >= config_.dimZ)
            return -1;
        c.z++;
        break;
      case 5:
        if (c.z == 0)
            return -1;
        c.z--;
        break;
      default:
        return -1;
    }
    return int(nodeAt(c));
}

void
Mesh::failNode(unsigned node)
{
    if (node >= nodeCount())
        sim::fatal("mesh: failNode id out of range");
    if (deadNodes_.empty())
        deadNodes_.assign(nodeCount(), 0);
    if (deadNodes_[node])
        return;
    deadNodes_[node] = 1;
    deadNodeCount_++;
    degraded_ = true;
    // The node's own links die with it; routing also refuses to pass
    // *through* a dead node, so inbound links are implicitly dead.
    for (unsigned d = 0; d < 6; ++d)
        if (neighbor(node, d) >= 0)
            failLink(node, d);
    GP_TRACE(NoC, 0, node, "node-fail-stop", "node %u dead", node);
}

void
Mesh::failLink(unsigned node, unsigned direction)
{
    if (node >= nodeCount() || direction >= 6 ||
        neighbor(node, direction) < 0)
        sim::fatal("mesh: failLink names no physical link");
    if (downLinks_.empty())
        downLinks_.assign(size_t(nodeCount()) * 6, 0);
    auto &down = downLinks_[linkId(node, direction)];
    if (down)
        return;
    down = 1;
    downLinkCount_++;
    degraded_ = true;
    GP_TRACE(NoC, 0, node, "link-down", "node %u dir %u", node,
             direction);
}

bool
Mesh::dimOrderRoute(
    unsigned from, unsigned to,
    std::vector<std::pair<uint64_t, unsigned>> &hops_out) const
{
    Coord cur = coordOf(from);
    const Coord dst = coordOf(to);
    unsigned at = from;
    while (cur.x != dst.x || cur.y != dst.y || cur.z != dst.z) {
        unsigned direction;
        Coord next = cur;
        if (cur.x != dst.x) {
            direction = cur.x < dst.x ? 0 : 1;
            next.x += cur.x < dst.x ? 1 : -1;
        } else if (cur.y != dst.y) {
            direction = cur.y < dst.y ? 2 : 3;
            next.y += cur.y < dst.y ? 1 : -1;
        } else {
            direction = cur.z < dst.z ? 4 : 5;
            next.z += cur.z < dst.z ? 1 : -1;
        }
        const unsigned next_id = nodeAt(next);
        if (linkDown(at, direction) ||
            (next_id != to && nodeDead(next_id)))
            return false;
        hops_out.emplace_back(linkId(at, direction), next_id);
        at = next_id;
        cur = next;
    }
    return true;
}

bool
Mesh::detourRoute(
    unsigned from, unsigned to,
    std::vector<std::pair<uint64_t, unsigned>> &hops_out) const
{
    // Breadth-first over live nodes and up links, expanding neighbors
    // in the fixed +x/-x/+y/-y/+z/-z order, so the route — and thus
    // the timing of everything behind it — is a pure function of the
    // failure set, never of host iteration order.
    const unsigned n = nodeCount();
    std::vector<int> parent(n, -1);     // previous node on the path
    std::vector<int8_t> via(n, -1);     // direction taken into node
    std::vector<char> seen(n, 0);
    std::deque<unsigned> frontier;
    seen[from] = 1;
    frontier.push_back(from);
    while (!frontier.empty() && !seen[to]) {
        const unsigned at = frontier.front();
        frontier.pop_front();
        for (unsigned d = 0; d < 6; ++d) {
            const int next = neighbor(at, d);
            if (next < 0 || seen[next] || linkDown(at, d))
                continue;
            if (unsigned(next) != to && nodeDead(unsigned(next)))
                continue;
            seen[next] = 1;
            parent[next] = int(at);
            via[next] = int8_t(d);
            frontier.push_back(unsigned(next));
        }
    }
    if (!seen[to])
        return false;
    const size_t base = hops_out.size();
    for (unsigned at = to; at != from; at = unsigned(parent[at]))
        hops_out.emplace_back(
            linkId(unsigned(parent[at]), unsigned(via[at])), at);
    std::reverse(hops_out.begin() + ptrdiff_t(base), hops_out.end());
    return true;
}

Mesh::SendOutcome
Mesh::trySend(unsigned from, unsigned to, uint64_t now, unsigned flits)
{
    if (!degraded_)
        return SendOutcome{true, send(from, to, now, flits), false};

    if (from >= nodeCount() || to >= nodeCount())
        sim::fatal("mesh: node id out of range");
    if (nodeDead(from) || nodeDead(to)) {
        unreachable_++;
        return SendOutcome{};
    }
    if (from == to)
        return SendOutcome{true, now, false};

    // Prefer the dimension-order route when it survived: pairs whose
    // traffic never touches the failure get exactly the healthy
    // fabric's path and occupancy pattern.
    std::vector<std::pair<uint64_t, unsigned>> route;
    if (!dimOrderRoute(from, to, route)) {
        route.clear();
        if (!detourRoute(from, to, route)) {
            unreachable_++;
            GP_TRACE(NoC, now, from, "unreachable", "dst=%u", to);
            return SendOutcome{};
        }
    }

    (*messages_)++;
    (*flits_) += flits;
    const unsigned manhattan = hops(from, to);
    const bool detoured = route.size() > manhattan;
    uint64_t t = now + config_.injectLatency;
    for (const auto &[link, next] : route) {
        t = chargeHop(link, t, flits);
        (void)next;
    }
    if (detoured) {
        t += (route.size() - manhattan) * config_.detourPenalty;
        detours_++;
    }
    const uint64_t done = t + config_.injectLatency + flits - 1;
    deliveryLatency_->sample(done - now);
    GP_TRACE(NoC, now, from, "send",
             "dst=%u flits=%u hops=%zu%s latency=%llu", to, flits,
             route.size(), detoured ? " (detour)" : "",
             static_cast<unsigned long long>(done - now));
    return SendOutcome{true, done, detoured};
}

} // namespace gp::noc
