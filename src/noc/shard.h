/**
 * @file
 * Sharded 3-D mesh execution engine: deterministic, barrier-
 * synchronized epochs across host threads.
 *
 * The multicomputer simulator's scalability wall is single-threaded
 * execution: a 64-node mesh steps 64 machines on one host core. This
 * engine partitions the mesh into contiguous node shards, runs each
 * shard on its own host thread, and keeps results bit-identical for
 * ANY host-thread count — including one — by construction:
 *
 *  - Epoch horizon. The mesh's minimum inter-node message latency
 *    (Mesh::minMessageLatency()) bounds how soon a message injected
 *    "now" can be observed anywhere else, so every shard can simulate
 *    that many cycles with no inter-shard communication (conservative
 *    lookahead, as in classic conservative parallel discrete-event
 *    simulation).
 *
 *  - Two-phase exchange. During the parallel phase a node executes
 *    own-home accesses synchronously and posts every remote-home
 *    access to the EpochExchange (its own lane — no locks); the
 *    issuing hardware thread parks as a split transaction. At the
 *    epoch barrier the engine drains the exchange in the canonical
 *    (issue cycle, node, ticket) order on one thread and delivers
 *    each outcome back via Machine::completeDeferred().
 *
 *  - Singleton discipline. Worker threads count pointer ops into
 *    thread-local tallies merged deterministically at run end
 *    (gp::setThreadOpTallies); the FaultInjector is ticked centrally
 *    at the barrier, once per simulated cycle, with the per-machine
 *    tick suppressed (MachineConfig::externalInjectorTick), so fault
 *    draws happen in one canonical order; per-node/per-machine
 *    StatGroups are only ever touched by their owning shard or the
 *    barrier thread.
 *
 * The schedule the engine executes is therefore a fixed function of
 * the configuration and programs alone: thread count only changes
 * which host thread does the work, never its order. Note this
 * canonical schedule is the engine's own reference — it defers ALL
 * remote-home accesses to the barrier, which a free-running
 * round-robin interleaving (tests stepping machines by hand, no
 * exchange attached) does not; see docs/ARCHITECTURE.md.
 */

#ifndef GP_NOC_SHARD_H
#define GP_NOC_SHARD_H

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <thread>
#include <vector>

#include "isa/machine.h"
#include "noc/mesh.h"
#include "noc/node_memory.h"
#include "noc/retransmit.h"

namespace gp::noc {

/** Configuration of a sharded mesh run. */
struct ShardConfig
{
    MeshConfig mesh;                //!< geometry and link costs
    mem::MemConfig node;            //!< per-node cache/TLB/timing
    isa::MachineConfig machine;     //!< per-node machine (mem ignored)
    RetransConfig retrans;          //!< NoC link protocol
    /** Host threads simulating the mesh. 1 (default) runs everything
     * on the calling thread; clamped to the node count. Results are
     * identical for every value. */
    unsigned hostThreads = 1;
    /** Cycles per epoch; 0 derives Mesh::minMessageLatency(). Must
     * not exceed the derived lookahead — larger values are clamped.
     * Smaller values are legal but change the canonical schedule
     * (split transactions complete at barriers), so the horizon is
     * part of the configuration a signature is pinned to; for any
     * fixed horizon results stay identical across thread counts. */
    uint64_t epochHorizon = 0;
    /** Distributed (mesh-wide) quiescence watchdog: when nonzero,
     * trip once no surviving node has made progress (retired an
     * instruction or taken a fault) for this many simulated cycles
     * AND every surviving machine is genuinely quiescent (no finite
     * scheduled wake-up, no in-flight split transaction). The trip
     * converts every surviving live thread into a WatchdogTimeout
     * fault and records a post-mortem (postMortem()). Checked at
     * epoch barriers only, so it is a pure function of simulated
     * state — identical for every host-thread count. 0 = off. */
    uint64_t meshWatchdogCycles = 0;
};

/**
 * A full mesh of machines + node memories under the epoch engine.
 * Construction wires every node; the caller loads programs / spawns
 * threads through node(n)/machine(n), then run()s the whole mesh.
 */
class ShardedMesh
{
  public:
    explicit ShardedMesh(const ShardConfig &config);
    ~ShardedMesh();

    ShardedMesh(const ShardedMesh &) = delete;
    ShardedMesh &operator=(const ShardedMesh &) = delete;

    unsigned nodeCount() const { return unsigned(nodes_.size()); }
    unsigned hostThreads() const { return hostThreads_; }
    uint64_t epochHorizon() const { return horizon_; }

    /** Shard index simulating node @p n (contiguous node ranges). */
    unsigned shardOf(unsigned n) const;

    Mesh &mesh() { return mesh_; }
    GlobalMemory &global() { return global_; }
    NodeMemory &node(unsigned n) { return *nodes_[n]; }
    isa::Machine &machine(unsigned n) { return *machines_[n]; }

    /** Global simulated cycle (every live machine is in lockstep). */
    uint64_t cycle() const { return cycle_; }

    /**
     * Run epochs until every machine is done or @p max_cycles more
     * cycles elapse. Also merges worker op tallies and refreshes the
     * per-shard stat groups before returning.
     * @return cycles executed by this call.
     */
    uint64_t run(uint64_t max_cycles = 1'000'000);

    /** @return true when every *surviving* machine has finished
     * (fail-stopped nodes are frozen, not waited for). */
    bool allDone() const;

    /** @return true if any machine's watchdog fired. */
    bool watchdogTripped() const;

    /** @return true if the distributed mesh watchdog fired. */
    bool meshWatchdogTripped() const { return meshWatchdogTripped_; }

    /**
     * Fail-stop death of node @p n, effective at the next epoch
     * barrier boundary: its mesh links go down, its machine freezes
     * as-is (never stepped again, excluded from allDone()), its
     * still-parked split transactions are orphaned, and any exchange
     * ops it posted are dropped. Idempotent. Also the entry point
     * the NodeFailStop fault site uses.
     */
    void killNode(unsigned n);

    /** @return true once node @p n has fail-stopped. */
    bool nodeDead(unsigned n) const { return mesh_.nodeDead(n); }

    /** Surviving (not fail-stopped) node count. */
    unsigned
    survivors() const
    {
        return nodeCount() - unsigned(mesh_.deadNodeCount());
    }

    /** Exchange ops dropped because their poster fail-stopped. */
    uint64_t deadOpsDropped() const { return deadOpsDropped_; }

    /**
     * Flight-recorder-style post-mortem of the mesh: failure set,
     * degraded-routing tallies, and the state of every surviving
     * machine that had not finished (thread states, IPs, recent
     * faults, orphaned parks). Written by gpsim when a mesh run
     * trips a watchdog; cheap enough to call any time.
     */
    void postMortem(std::ostream &os) const;

    /**
     * Deterministic digest of the architectural outcome: FNV-1a over
     * every machine's cycle count, fault log, and final thread state
     * (state, IP, registers, retired instructions), every node's
     * counters, and the mesh counters. Byte-identical across host
     * thread counts and repeated runs.
     */
    uint64_t signature() const;

    /** Index into a node's mesh-traffic attribution array. */
    enum MeshTally : unsigned
    {
        kTallyMessages = 0,
        kTallyFlits,
        kTallyStallCycles,
        kTallyHops,
        kTallyCount
    };

    /**
     * Mesh traffic attributed to node @p n as the *poster* of the
     * remote accesses that caused it: messages, flits, link stall
     * cycles, and hops, accumulated at resolve time in the canonical
     * drain order. A pure function of the simulated schedule —
     * identical for every host-thread count (unlike the per-shard
     * sums, which follow the shard boundaries).
     */
    const std::array<uint64_t, kTallyCount> &
    nodeMeshTraffic(unsigned n) const
    {
        return nodeMeshTallies_[n];
    }

  private:
    /** Sense-reversing spin barrier (small party counts, short
     * epochs: spinning beats futex wake latency; std::atomic keeps
     * it TSan-clean). */
    class SpinBarrier
    {
      public:
        explicit SpinBarrier(unsigned parties) : parties_(parties) {}

        void
        arriveAndWait()
        {
            const uint64_t gen = gen_.load(std::memory_order_acquire);
            if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                parties_) {
                arrived_.store(0, std::memory_order_relaxed);
                gen_.fetch_add(1, std::memory_order_release);
            } else {
                unsigned spins = 0;
                while (gen_.load(std::memory_order_acquire) == gen) {
                    if (++spins > 4096) {
                        std::this_thread::yield();
                        spins = 0;
                    }
                }
            }
        }

      private:
        const unsigned parties_;
        std::atomic<unsigned> arrived_{0};
        std::atomic<uint64_t> gen_{0};
    };

    /** Step every live machine of @p shard through the epoch window
     * [epochFrom_, epochTo_), cycle-major so the whole mesh stays in
     * lockstep. */
    void simulateShard(unsigned shard);

    /** Worker thread main loop (shards 1..hostThreads-1; shard 0
     * runs on the caller between the barriers). */
    void workerLoop(unsigned shard);

    /** Barrier phase: central injector ticks for the finished epoch,
     * then per-epoch mesh fault arming, then canonical drain of the
     * exchange (rounds, because a completed remote fetch may
     * immediately defer a remote load). */
    void drainEpoch();

    /** One Bernoulli opportunity per epoch for each mesh-scale
     * fault site (NodeFailStop, LinkDown), with victims drawn from
     * the id-sorted live-node / up-link lists — a pure function of
     * (seed, epoch index, failure set), independent of host
     * threads. Runs on the barrier thread before the drain so ops
     * already in flight to a just-dead node fail this epoch. */
    void applyMeshFaults();

    /** Distributed quiescence watchdog (see ShardConfig), checked
     * at the barrier after the drain. */
    void checkMeshWatchdog();

    /** Progress metric for the mesh watchdog: instructions retired
     * plus faults taken across surviving machines. */
    uint64_t progressCount() const;

    /** Recompute live_ (machines still needing steps). */
    void refreshLive();

    /** Update the per-shard stat groups from machine stats. */
    void exportShardStats();

    ShardConfig config_;
    Mesh mesh_;
    GlobalMemory global_;
    EpochExchange exchange_;
    std::vector<std::unique_ptr<NodeMemory>> nodes_;
    std::vector<std::unique_ptr<isa::Machine>> machines_;
    unsigned hostThreads_ = 1;
    uint64_t horizon_ = 1;
    uint64_t cycle_ = 0;
    /// [first, last) node range per shard.
    std::vector<std::pair<unsigned, unsigned>> shardRange_;
    /// live_[n]: machine n still needs stepping (recomputed at each
    /// barrier; read by workers under barrier happens-before).
    std::vector<char> live_;

    // Worker pool (empty when hostThreads == 1). Workers park on
    // startBarrier_ between epochs; the epoch window is published in
    // epochFrom_/epochTo_ before the start barrier and read after it.
    std::vector<std::thread> workers_;
    std::unique_ptr<SpinBarrier> startBarrier_;
    std::unique_ptr<SpinBarrier> endBarrier_;
    std::atomic<bool> stop_{false};
    uint64_t epochFrom_ = 0;
    uint64_t epochTo_ = 0;

    /// Per-shard pointer-op tallies (index 0 unused: shard 0 runs on
    /// the caller and counts directly).
    std::vector<gp::OpTallies> tallies_;

    // Mesh-resilience state (raw members, not stat counters: a
    // disarmed run's signature must stay byte-identical to the
    // pre-resilience baselines; signature() mixes these only once
    // the fabric is degraded).
    uint64_t deadOpsDropped_ = 0;
    bool meshWatchdogTripped_ = false;
    uint64_t lastProgress_ = 0;
    uint64_t lastProgressCycle_ = 0;

    /// Per-shard simulated-load stat groups ("shard0", "shard1", ...)
    /// for tools/statdiff.py imbalance reporting. busy_cycles is
    /// SIMULATED work (cluster-cycles minus idle), so the export
    /// stays deterministic — no host time.
    std::vector<std::unique_ptr<sim::StatGroup>> shardStats_;
    /// Cached handles into shardStats_ (nodes, busy_cycles,
    /// instructions, and the mesh-traffic attribution counters),
    /// registered once at construction.
    struct ShardCounters
    {
        sim::Counter *nodes;
        sim::Counter *busy;
        sim::Counter *insts;
        sim::Counter *meshMessages;
        sim::Counter *meshFlits;
        sim::Counter *meshStalls;
        sim::Counter *meshHops;
    };
    std::vector<ShardCounters> shardCounters_;

    /// Cached handles into the mesh's own counters, snapshotted
    /// around each drain resolution to attribute the delta.
    std::array<sim::Counter *, kTallyCount> meshTrafficCounters_{};
    /// Per-node poster-attributed mesh traffic (see
    /// nodeMeshTraffic()); summed over each shard's node range by
    /// exportShardStats().
    std::vector<std::array<uint64_t, kTallyCount>> nodeMeshTallies_;
};

} // namespace gp::noc

#endif // GP_NOC_SHARD_H
