#include "noc/retransmit.h"

#include <algorithm>

#include "sim/faultinject.h"
#include "sim/profile.h"
#include "sim/trace.h"

namespace gp::noc {

using sim::FaultInjector;
using sim::FaultSite;

Retransmitter::Retransmitter(Mesh &mesh, const RetransConfig &config,
                             const std::string &statName)
    : mesh_(mesh), cfg_(config), stats_(statName)
{
    // Cache the stat handles once; transfer() runs under every NoC
    // memory reference (docs/OBSERVABILITY.md).
    statRawDrops_ = &stats_.counter("raw_drops");
    statRawCorruptions_ = &stats_.counter("raw_corruptions");
    statRawDuplicates_ = &stats_.counter("raw_duplicates");
    statRetransmissions_ = &stats_.counter("retransmissions");
    statCrcDiscards_ = &stats_.counter("crc_discards");
    statDupSuppressed_ = &stats_.counter("duplicates_suppressed");
    statAcks_ = &stats_.counter("acks");
    statAckLosses_ = &stats_.counter("ack_losses");
    statAbandoned_ = &stats_.counter("abandoned");
    statUnreachable_ = &stats_.counter("unreachable");
}

uint64_t
Retransmitter::timeoutFor(unsigned attempt) const
{
    // Exponential backoff, capped so a long campaign cannot overflow.
    const unsigned shift = std::min(attempt, 8u);
    return cfg_.timeout << shift;
}

Delivery
Retransmitter::transfer(unsigned from, unsigned to, uint64_t now,
                        unsigned flits)
{
    // Fast path: bit-identical to the unprotected baseline. A
    // degraded fabric (failed nodes/links — possible even with the
    // injector disarmed, e.g. tests failing hardware directly) must
    // take the fault-aware path so dead routes are noticed.
    if (!cfg_.enabled && !FaultInjector::armed() && !mesh_.degraded())
        return Delivery{true, false, mesh_.send(from, to, now, flits),
                        1};
    return cfg_.enabled ? reliableTransfer(from, to, now, flits)
                        : rawTransfer(from, to, now, flits);
}

Delivery
Retransmitter::rawTransfer(unsigned from, unsigned to, uint64_t now,
                           unsigned flits)
{
    auto &inj = FaultInjector::instance();

    uint64_t extra = 0;
    if (inj.fire(FaultSite::NocDelay))
        extra = inj.drawBelow(FaultSite::NocDelay,
                              inj.config().nocDelayMax) +
                1;

    if (inj.fire(FaultSite::NocDrop)) {
        // The message vanishes; no protocol exists to notice.
        (*statRawDrops_)++;
        GP_TRACE(NoC, now, from, "drop", "dst=%u flits=%u", to,
                 flits);
        return Delivery{false, false, now, 1};
    }

    Delivery d;
    d.delivered = true;
    d.corrupted = inj.fire(FaultSite::NocCorrupt);
    if (d.corrupted) {
        (*statRawCorruptions_)++;
        GP_TRACE(NoC, now, from, "corrupt", "dst=%u", to);
    }

    if (inj.fire(FaultSite::NocDuplicate)) {
        // A second copy traverses (and occupies) the same route.
        (*statRawDuplicates_)++;
        mesh_.trySend(from, to, now, flits);
    }

    const Mesh::SendOutcome out = mesh_.trySend(from, to, now, flits);
    if (!out.delivered) {
        // No surviving route and no protocol to retry: the message
        // dies at the network interface. Unlike a drop the sender's
        // NI *knows* — the failure is typed, not silent.
        unreachableFails_++;
        (*statUnreachable_)++;
        GP_TRACE(NoC, now, from, "unreachable", "dst=%u", to);
        return Delivery{false, false, now, 1, true};
    }
    d.cycle = out.cycle + extra;
    return d;
}

Delivery
Retransmitter::reliableTransfer(unsigned from, unsigned to,
                                uint64_t now, unsigned flits)
{
    auto &inj = FaultInjector::instance();
    const uint32_t chan = (uint32_t(from) << 8) | uint32_t(to);
    nextSeq_[chan]++; // sequence-number side of the protocol state

    uint64_t t = now;
    bool sawUnreachable = false;
    for (unsigned attempt = 1; attempt <= cfg_.maxAttempts;
         ++attempt) {
        const uint64_t attemptStart = t;

        uint64_t extra = 0;
        if (FaultInjector::armed() &&
            inj.fire(FaultSite::NocDelay))
            extra = inj.drawBelow(FaultSite::NocDelay,
                                  inj.config().nocDelayMax) +
                    1;

        // Data message loss: either a genuine drop or a CRC-detected
        // corruption (the receiver discards the mangled copy).
        if (FaultInjector::armed() && inj.fire(FaultSite::NocDrop)) {
            retransmissions_++;
            (*statRetransmissions_)++;
            GP_TRACE(NoC, attemptStart, from, "retry-drop",
                     "dst=%u attempt=%u", to, attempt);
            t = attemptStart + timeoutFor(attempt - 1);
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::Retransmit, t - attemptStart);
            continue;
        }
        if (FaultInjector::armed() &&
            inj.fire(FaultSite::NocCorrupt)) {
            crcDiscards_++;
            retransmissions_++;
            (*statCrcDiscards_)++;
            (*statRetransmissions_)++;
            GP_TRACE(NoC, attemptStart, from, "retry-crc",
                     "dst=%u attempt=%u", to, attempt);
            t = attemptStart + timeoutFor(attempt - 1);
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::Retransmit, t - attemptStart);
            continue;
        }

        // No surviving route to the destination: the data message
        // dies in the fabric and no ack ever comes back, so the
        // sender burns the full timeout exactly as for a drop. The
        // end-to-end timeout/backoff/bounded-retry sequence is what
        // converts a dead home into a *typed* failure.
        const Mesh::SendOutcome data =
            mesh_.trySend(from, to, attemptStart, flits);
        if (!data.delivered) {
            sawUnreachable = true;
            retransmissions_++;
            (*statRetransmissions_)++;
            GP_TRACE(NoC, attemptStart, from, "retry-unreachable",
                     "dst=%u attempt=%u", to, attempt);
            t = attemptStart + timeoutFor(attempt - 1);
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::Retransmit, t - attemptStart);
            continue;
        }
        const uint64_t dataArrive = data.cycle + extra;

        // Duplicate in flight: receiver's sequence check drops it.
        if (FaultInjector::armed() &&
            inj.fire(FaultSite::NocDuplicate)) {
            dupSuppressed_++;
            (*statDupSuppressed_)++;
            mesh_.trySend(from, to, attemptStart, flits);
        }

        // Positive ack back to the sender, on the same mesh. An ack
        // with no surviving return route behaves exactly like a lost
        // ack: the sender times out and resends.
        (*statAcks_)++;
        const Mesh::SendOutcome ack =
            mesh_.trySend(to, from, dataArrive, cfg_.ackFlits);
        if (!ack.delivered) {
            sawUnreachable = true;
            retransmissions_++;
            dupSuppressed_++;
            (*statAckLosses_)++;
            (*statRetransmissions_)++;
            (*statDupSuppressed_)++;
            GP_TRACE(NoC, attemptStart, from, "retry-ack-unreachable",
                     "dst=%u attempt=%u", to, attempt);
            t = attemptStart + timeoutFor(attempt - 1);
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::Retransmit, t - attemptStart);
            continue;
        }

        // A lost/mangled ack forces one more data round; the
        // receiver suppresses the duplicate data and re-acks.
        if (FaultInjector::armed() &&
            (inj.fire(FaultSite::NocDrop) ||
             inj.fire(FaultSite::NocCorrupt))) {
            retransmissions_++;
            dupSuppressed_++;
            (*statAckLosses_)++;
            (*statRetransmissions_)++;
            (*statDupSuppressed_)++;
            GP_TRACE(NoC, attemptStart, from, "retry-ack",
                     "dst=%u attempt=%u", to, attempt);
            t = attemptStart + timeoutFor(attempt - 1);
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::Retransmit, t - attemptStart);
            continue;
        }

        return Delivery{true, false, dataArrive, attempt};
    }

    // Retry budget exhausted: a *detected* delivery failure — the
    // caller surfaces it as a memory-integrity fault (or, when the
    // cause was a dead route, the typed NodeUnreachable) — never
    // silent.
    abandoned_++;
    (*statAbandoned_)++;
    if (sawUnreachable) {
        unreachableFails_++;
        (*statUnreachable_)++;
    }
    GP_TRACE(NoC, now, from, "abandoned", "dst=%u attempts=%u", to,
             cfg_.maxAttempts);
    return Delivery{false, false, t, cfg_.maxAttempts, sawUnreachable};
}

} // namespace gp::noc
