/**
 * @file
 * Link-level reliable delivery for the 3-D mesh (ISSUE 4).
 *
 * The baseline mesh model assumes perfect links: every message sent
 * arrives intact, exactly once. Under the fault campaign that
 * assumption breaks — messages can be dropped, duplicated, delayed,
 * or have payload bits flipped in flight. A dropped memory request
 * hangs the issuing thread forever; a flipped bit in a cache-line
 * reply is a silent-data-corruption (and, for a tagged word, a
 * capability-forgery) channel.
 *
 * The hardening knob is a classic link-level retransmission
 * protocol, cost-modelled through the existing mesh timing:
 *
 *  - per-(src,dst) sequence numbers on every message;
 *  - a CRC per message, so in-flight payload corruption is detected
 *    and the copy discarded (equivalent to a drop);
 *  - positive acks (an ackFlits-sized message back over the mesh,
 *    occupying links like any other traffic);
 *  - sender timeout with exponential backoff, bounded attempts;
 *  - receiver duplicate suppression by sequence number.
 *
 * With the protocol disabled and no campaign armed, transfer() is
 * exactly Mesh::send() — bit-identical timing, zero extra state.
 */

#ifndef GP_NOC_RETRANSMIT_H
#define GP_NOC_RETRANSMIT_H

#include <cstdint>
#include <unordered_map>

#include "noc/mesh.h"
#include "sim/stats.h"

namespace gp::noc {

/** Link-level protocol configuration. */
struct RetransConfig
{
    /** Master enable; false = baseline unprotected links. */
    bool enabled = false;
    /** Base sender timeout before the first retransmission. */
    uint64_t timeout = 64;
    /** Total send attempts before the transfer is abandoned. */
    unsigned maxAttempts = 5;
    /** Size of an ack message in flits. */
    unsigned ackFlits = 1;
};

/** Outcome of one end-to-end transfer attempt sequence. */
struct Delivery
{
    /** Payload reached the destination (possibly after retries). */
    bool delivered = false;
    /**
     * Payload arrived with flipped bits (only possible with the
     * protocol disabled — a CRC-protected link discards instead).
     * The caller decides what a corrupted message means: a mangled
     * request header is a loss, a mangled reply is silent data
     * corruption.
     */
    bool corrupted = false;
    /** Delivery cycle (or the give-up cycle when !delivered). */
    uint64_t cycle = 0;
    /** Data-message send attempts consumed. */
    unsigned attempts = 1;
    /**
     * At least one attempt found no surviving route (dead home node,
     * or the failure set partitioned the pair). Set together with
     * !delivered once the retry budget is exhausted: the caller
     * surfaces it as the typed NodeUnreachable fault rather than the
     * generic MemoryIntegrity delivery failure.
     */
    bool unreachable = false;
};

/**
 * Sender-side protocol engine bound to one mesh. Sequence-number
 * state is per (src,dst) pair, so one engine may serve any number
 * of nodes (NodeMemory instances share the one owned by their
 * campaign wiring, or default-construct a disabled one).
 */
class Retransmitter
{
  public:
    explicit Retransmitter(Mesh &mesh,
                           const RetransConfig &config = {},
                           const std::string &statName = "retrans");

    /**
     * Move one message of @p flits flits from @p from to @p to
     * starting at cycle @p now, under whatever fault campaign is
     * armed. Fast path (protocol disabled, injector disarmed) is
     * exactly Mesh::send.
     */
    Delivery transfer(unsigned from, unsigned to, uint64_t now,
                      unsigned flits);

    const RetransConfig &config() const { return cfg_; }
    sim::StatGroup &stats() { return stats_; }

    uint64_t retransmissions() const { return retransmissions_; }
    uint64_t duplicatesSuppressed() const { return dupSuppressed_; }
    uint64_t crcDiscards() const { return crcDiscards_; }
    uint64_t abandoned() const { return abandoned_; }
    /** Transfers that failed with no surviving route (subset of the
     * raw failures / abandoned transfers). */
    uint64_t unreachableFailures() const { return unreachableFails_; }

    /** Give-up cycle of a transfer whose every attempt timed out:
     * now + the full backoff sequence. Exposed so tests can pin the
     * exhaustion boundary exactly. */
    uint64_t
    exhaustionCycle(uint64_t now) const
    {
        uint64_t t = now;
        for (unsigned a = 0; a < cfg_.maxAttempts; ++a)
            t += timeoutFor(a);
        return t;
    }

  private:
    /** Protocol-off transfer: raw link, faults land on the caller. */
    Delivery rawTransfer(unsigned from, unsigned to, uint64_t now,
                         unsigned flits);

    /** Protocol-on transfer: retries until acked or exhausted. */
    Delivery reliableTransfer(unsigned from, unsigned to,
                              uint64_t now, unsigned flits);

    uint64_t timeoutFor(unsigned attempt) const;

    Mesh &mesh_;
    RetransConfig cfg_;
    /** Next sequence number per (src<<8|dst) channel. */
    std::unordered_map<uint32_t, uint64_t> nextSeq_;
    uint64_t retransmissions_ = 0;
    uint64_t dupSuppressed_ = 0;
    uint64_t crcDiscards_ = 0;
    uint64_t abandoned_ = 0;
    uint64_t unreachableFails_ = 0;
    sim::StatGroup stats_;

    // Cached stat handles: transfer() sits under every NoC memory
    // reference, so the protocol paths pay plain increments, never
    // string-keyed map lookups (docs/OBSERVABILITY.md).
    sim::Counter *statRawDrops_ = nullptr;
    sim::Counter *statRawCorruptions_ = nullptr;
    sim::Counter *statRawDuplicates_ = nullptr;
    sim::Counter *statRetransmissions_ = nullptr;
    sim::Counter *statCrcDiscards_ = nullptr;
    sim::Counter *statDupSuppressed_ = nullptr;
    sim::Counter *statAcks_ = nullptr;
    sim::Counter *statAckLosses_ = nullptr;
    sim::Counter *statAbandoned_ = nullptr;
    sim::Counter *statUnreachable_ = nullptr;
};

} // namespace gp::noc

#endif // GP_NOC_RETRANSMIT_H
