/**
 * @file
 * 3-D mesh interconnect model (paper §3: "The M-Machine is a
 * multicomputer with a 3-dimensional mesh interconnect").
 *
 * Dimension-order (XYZ) routing with per-link serialization: each
 * unidirectional link carries one flit per cycle, so concurrent
 * messages crossing the same link queue behind each other. The model
 * is cycle-approximate in the same spirit as the memory system — it
 * supplies hop latency and contention, not flit-level detail.
 */

#ifndef GP_NOC_MESH_H
#define GP_NOC_MESH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/stats.h"

namespace gp::noc {

/** Mesh geometry and per-hop costs. */
struct MeshConfig
{
    unsigned dimX = 4;        //!< nodes per X row
    unsigned dimY = 2;        //!< nodes per Y column
    unsigned dimZ = 2;        //!< Z planes
    uint64_t hopLatency = 2;  //!< router + wire traversal per hop
    uint64_t injectLatency = 1; //!< network interface entry/exit
    /** Extra cycles charged per hop a detour route takes beyond the
     * Manhattan distance (adaptive-routing table lookup + the longer
     * path's occupancy). Only reachable once the fabric is degraded —
     * a healthy mesh never detours. */
    uint64_t detourPenalty = 1;
};

/** Node coordinates. */
struct Coord
{
    unsigned x = 0, y = 0, z = 0;
};

/** The mesh: routing, latency, and link contention. */
class Mesh
{
  public:
    explicit Mesh(const MeshConfig &config = MeshConfig{});

    unsigned nodeCount() const
    {
        return config_.dimX * config_.dimY * config_.dimZ;
    }

    /** Linear node id -> coordinates. */
    Coord coordOf(unsigned node) const;

    /** Coordinates -> linear node id. */
    unsigned nodeAt(Coord c) const;

    /** Manhattan hop count between two nodes. */
    unsigned hops(unsigned from, unsigned to) const;

    /**
     * Send a message of `flits` flits at cycle `now` over a healthy
     * fabric. @return the delivery cycle, accounting for link queuing
     * along the dimension-order route. Ignores failure state — once
     * the fabric is degraded() callers must use trySend() instead.
     */
    uint64_t send(unsigned from, unsigned to, uint64_t now,
                  unsigned flits = 1);

    /** Outcome of a fault-aware send attempt. */
    struct SendOutcome
    {
        bool delivered = false; //!< false: no surviving route
        uint64_t cycle = 0;     //!< delivery cycle when delivered
        bool detoured = false;  //!< route was longer than Manhattan
    };

    /**
     * Fault-aware send. On a healthy fabric this is exactly send()
     * (same accounting, byte-identical timing). Once degraded, the
     * message takes the dimension-order route when it survives, or
     * the deterministic shortest detour around dead links/nodes
     * (breadth-first, fixed +x/-x/+y/-y/+z/-z direction order)
     * charging detourPenalty extra cycles per hop beyond the
     * Manhattan distance. A dead endpoint or a partitioned pair is
     * returned as not delivered — the typed-unreachable signal the
     * end-to-end retry protocol converts into a NodeUnreachable
     * fault.
     */
    SendOutcome trySend(unsigned from, unsigned to, uint64_t now,
                        unsigned flits = 1);

    /** Fail-stop node death: every link touching @p node goes down
     * with it. Permanent for the life of the mesh. */
    void failNode(unsigned node);

    /** Take down the unidirectional link leaving @p node in
     * @p direction (0..5 = +x,-x,+y,-y,+z,-z). Permanent. */
    void failLink(unsigned node, unsigned direction);

    /** @return true once any node or link has failed. */
    bool degraded() const { return degraded_; }

    bool nodeDead(unsigned node) const
    {
        // Empty checks matter: the vectors are sized on the FIRST
        // failure of their kind, so a link-only failure set leaves
        // deadNodes_ empty (and vice versa).
        return degraded_ && !deadNodes_.empty() &&
               deadNodes_[node] != 0;
    }

    bool linkDown(unsigned node, unsigned direction) const
    {
        return degraded_ && !downLinks_.empty() &&
               downLinks_[linkId(node, direction)] != 0;
    }

    /** Neighbor of @p node in @p direction, or -1 at the mesh edge.
     * Directions as failLink(). */
    int neighbor(unsigned node, unsigned direction) const;

    uint64_t deadNodeCount() const { return deadNodeCount_; }
    uint64_t downLinkCount() const { return downLinkCount_; }
    /** Messages delivered over a longer-than-Manhattan route. */
    uint64_t detourCount() const { return detours_; }
    /** trySend() attempts that found no surviving route. */
    uint64_t unreachableCount() const { return unreachable_; }

    /**
     * Lower bound on the latency of ANY inter-node message: one
     * single-flit hop between adjacent nodes with no contention.
     * This is the lookahead of the sharded mesh engine — a message
     * injected during an epoch of this many cycles cannot be
     * observed by another node before the epoch ends, so shards can
     * simulate an epoch independently and exchange traffic at the
     * barrier without reordering anything observable.
     */
    uint64_t
    minMessageLatency() const
    {
        return 2 * config_.injectLatency + config_.hopLatency;
    }

    /** Latency of an uncontended message (for analysis/printing). */
    uint64_t
    uncontendedLatency(unsigned from, unsigned to,
                       unsigned flits = 1) const
    {
        if (from == to)
            return 0;
        return 2 * config_.injectLatency +
               uint64_t(hops(from, to)) * config_.hopLatency + flits -
               1;
    }

    const MeshConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    /** Unique id of the link leaving `node` in `direction` (0..5). */
    uint64_t
    linkId(unsigned node, unsigned direction) const
    {
        return uint64_t(node) * 6 + direction;
    }

    /** Charge one hop over @p link starting no earlier than @p t:
     * link occupancy, stall accounting, hop latency. @return the
     * cycle the head flit leaves the link. Shared by send() and the
     * degraded trySend() path so both charge contention the same
     * way. */
    uint64_t chargeHop(uint64_t link, uint64_t t, unsigned flits);

    /** Dimension-order route from @p from to @p to; @return false if
     * it crosses a down link or dead node (degraded fabric only). On
     * success appends the (linkId, nextNode) hops to @p hops_out. */
    bool dimOrderRoute(unsigned from, unsigned to,
                       std::vector<std::pair<uint64_t, unsigned>>
                           &hops_out) const;

    /** Deterministic BFS shortest route avoiding dead links/nodes
     * (fixed direction order). @return false when partitioned. */
    bool detourRoute(unsigned from, unsigned to,
                     std::vector<std::pair<uint64_t, unsigned>>
                         &hops_out) const;

    MeshConfig config_;
    /// per-link busy-until cycle
    std::unordered_map<uint64_t, uint64_t> linkBusy_;
    sim::StatGroup stats_{"mesh"};

    // Failure state. Both vectors stay empty until the first
    // failNode/failLink call (degraded_ flips then), so the healthy
    // fast path costs one bool test. Raw members, not stat counters:
    // the sharded-mesh signature mixes every mesh counter, and a
    // disarmed run must hash byte-identically to the pre-resilience
    // baselines (ShardedMesh::signature mixes these separately, only
    // once the fabric is degraded).
    bool degraded_ = false;
    std::vector<char> deadNodes_;  //!< by node id (sized on demand)
    std::vector<char> downLinks_;  //!< by linkId (sized on demand)
    uint64_t deadNodeCount_ = 0;
    uint64_t downLinkCount_ = 0;
    uint64_t detours_ = 0;
    uint64_t unreachable_ = 0;

    // Cached stat handles so send() pays increments, not map lookups.
    sim::Counter *messages_ = nullptr;
    sim::Counter *flits_ = nullptr;
    sim::Counter *linkStallCycles_ = nullptr;
    sim::Counter *hopsTraversed_ = nullptr;
    sim::Histogram *deliveryLatency_ = nullptr;
};

} // namespace gp::noc

#endif // GP_NOC_MESH_H
