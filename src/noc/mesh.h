/**
 * @file
 * 3-D mesh interconnect model (paper §3: "The M-Machine is a
 * multicomputer with a 3-dimensional mesh interconnect").
 *
 * Dimension-order (XYZ) routing with per-link serialization: each
 * unidirectional link carries one flit per cycle, so concurrent
 * messages crossing the same link queue behind each other. The model
 * is cycle-approximate in the same spirit as the memory system — it
 * supplies hop latency and contention, not flit-level detail.
 */

#ifndef GP_NOC_MESH_H
#define GP_NOC_MESH_H

#include <cstdint>
#include <unordered_map>

#include "sim/stats.h"

namespace gp::noc {

/** Mesh geometry and per-hop costs. */
struct MeshConfig
{
    unsigned dimX = 4;        //!< nodes per X row
    unsigned dimY = 2;        //!< nodes per Y column
    unsigned dimZ = 2;        //!< Z planes
    uint64_t hopLatency = 2;  //!< router + wire traversal per hop
    uint64_t injectLatency = 1; //!< network interface entry/exit
};

/** Node coordinates. */
struct Coord
{
    unsigned x = 0, y = 0, z = 0;
};

/** The mesh: routing, latency, and link contention. */
class Mesh
{
  public:
    explicit Mesh(const MeshConfig &config = MeshConfig{});

    unsigned nodeCount() const
    {
        return config_.dimX * config_.dimY * config_.dimZ;
    }

    /** Linear node id -> coordinates. */
    Coord coordOf(unsigned node) const;

    /** Coordinates -> linear node id. */
    unsigned nodeAt(Coord c) const;

    /** Manhattan hop count between two nodes. */
    unsigned hops(unsigned from, unsigned to) const;

    /**
     * Send a message of `flits` flits at cycle `now`.
     * @return the delivery cycle, accounting for link queuing along
     * the dimension-order route.
     */
    uint64_t send(unsigned from, unsigned to, uint64_t now,
                  unsigned flits = 1);

    /**
     * Lower bound on the latency of ANY inter-node message: one
     * single-flit hop between adjacent nodes with no contention.
     * This is the lookahead of the sharded mesh engine — a message
     * injected during an epoch of this many cycles cannot be
     * observed by another node before the epoch ends, so shards can
     * simulate an epoch independently and exchange traffic at the
     * barrier without reordering anything observable.
     */
    uint64_t
    minMessageLatency() const
    {
        return 2 * config_.injectLatency + config_.hopLatency;
    }

    /** Latency of an uncontended message (for analysis/printing). */
    uint64_t
    uncontendedLatency(unsigned from, unsigned to,
                       unsigned flits = 1) const
    {
        if (from == to)
            return 0;
        return 2 * config_.injectLatency +
               uint64_t(hops(from, to)) * config_.hopLatency + flits -
               1;
    }

    const MeshConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    /** Unique id of the link leaving `node` in `direction` (0..5). */
    uint64_t
    linkId(unsigned node, unsigned direction) const
    {
        return uint64_t(node) * 6 + direction;
    }

    MeshConfig config_;
    /// per-link busy-until cycle
    std::unordered_map<uint64_t, uint64_t> linkBusy_;
    sim::StatGroup stats_{"mesh"};

    // Cached stat handles so send() pays increments, not map lookups.
    sim::Counter *messages_ = nullptr;
    sim::Counter *flits_ = nullptr;
    sim::Counter *linkStallCycles_ = nullptr;
    sim::Counter *hopsTraversed_ = nullptr;
    sim::Histogram *deliveryLatency_ = nullptr;
};

} // namespace gp::noc

#endif // GP_NOC_MESH_H
