/**
 * @file
 * gpverify — static capability-flow verification for guarded-pointer
 * programs.
 *
 * The paper's central claim (§2.2) is that guarded pointers make
 * capability safety machine-checkable: arithmetic can never forge a
 * pointer, RESTRICT/SUBSEG only shrink rights, and every dereference
 * is bounds-checked by a masked comparator. This module exploits that
 * discipline *statically*: it decodes an assembled image into a CFG,
 * runs a forward dataflow fixpoint in which every register holds an
 * abstract value over the Perm rights lattice, and reports capability
 * violations that are provable before the program ever runs.
 *
 * Verdict semantics (see docs/VERIFIER.md for the soundness argument):
 *  - An **error** diagnostic is a must-fault: every concretization of
 *    the abstract state faults at that instruction, with a kind drawn
 *    from the diagnostic's fault mask.
 *  - A **warning** is a may-fault: some concretization faults, some
 *    does not (unknown offsets, joined permissions, values loaded
 *    from memory).
 *  - A program with no diagnostics at all is *strictly clean*: no
 *    execution from the declared entry state can raise a capability
 *    fault. The differential harness (tests/verify) checks this
 *    verdict against the gp_isa machine's fault taxonomy.
 */

#ifndef GP_VERIFY_VERIFIER_H
#define GP_VERIFY_VERIFIER_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gp/fault.h"
#include "gp/permission.h"
#include "gp/word.h"
#include "isa/assembler.h"
#include "isa/elide.h"

namespace gp::verify {

/**
 * Abstract value of one register: an element of the lattice
 *
 *          Any (top)
 *         /        \
 *       Int        Ptr{perm set, geometry facts}
 *         \        /
 *          Bottom
 *
 * Int may carry a known constant (needed to decide RESTRICT/SUBSEG
 * operands statically); Ptr carries a *may*-set of permissions over
 * the rights lattice plus optional segment-length, offset, and
 * alignment facts used by the bounds and alignment checks.
 */
struct AbsVal
{
    enum class Kind : uint8_t
    {
        Bottom, //!< unreachable / no information yet
        Int,    //!< definitely untagged
        Ptr,    //!< definitely tagged
        Any,    //!< may be either
    };

    Kind kind = Kind::Bottom;

    // --- Int facts ---
    bool intKnown = false; //!< constant value is known
    uint64_t intVal = 0;
    /// Still the all-zero value a thread slot starts with, i.e. the
    /// register was never written on any path (use-before-define).
    bool neverWritten = false;

    // --- Ptr facts ---
    /// May-set of the 4-bit permission encodings (bit p = raw perm p).
    uint16_t perms = 0;
    bool lenKnown = false;
    uint8_t lenLog2 = 0;
    bool offKnown = false;
    uint64_t offset = 0;   //!< byte offset within the segment
    /// When the offset is unknown, it is still a multiple of
    /// 2^alignLog2 (congruence fact, carries alignment through loops).
    uint8_t alignLog2 = 0;
    /// Must-fact: points into this program's own code segment with
    /// `offset` = byte offset from the code base (enables static
    /// resolution of GETIP/LEA-derived jump targets).
    bool isCode = false;

    static AbsVal bottom() { return AbsVal{}; }

    static AbsVal
    top()
    {
        AbsVal v;
        v.kind = Kind::Any;
        return v;
    }

    static AbsVal
    intConst(uint64_t value)
    {
        AbsVal v;
        v.kind = Kind::Int;
        v.intKnown = true;
        v.intVal = value;
        return v;
    }

    static AbsVal
    intUnknown()
    {
        AbsVal v;
        v.kind = Kind::Int;
        return v;
    }

    /** The entry value of an uninitialized register: integer zero. */
    static AbsVal
    entryZero()
    {
        AbsVal v = intConst(0);
        v.neverWritten = true;
        return v;
    }

    /** A pointer with one known permission and known geometry. */
    static AbsVal
    pointer(Perm perm, uint64_t len_log2, uint64_t off = 0)
    {
        AbsVal v;
        v.kind = Kind::Ptr;
        v.perms = uint16_t(1u << unsigned(perm));
        v.lenKnown = true;
        v.lenLog2 = uint8_t(len_log2);
        v.offKnown = true;
        v.offset = off;
        return v;
    }

    /** A pointer about which only the permission may-set is known. */
    static AbsVal
    pointerAnyGeom(uint16_t perm_mask)
    {
        AbsVal v;
        v.kind = Kind::Ptr;
        v.perms = perm_mask;
        return v;
    }

    bool operator==(const AbsVal &other) const = default;
};

/** Least upper bound of two abstract values (CFG merge points). */
AbsVal joinVal(const AbsVal &a, const AbsVal &b);

/** Diagnostic taxonomy: the statically-detected violation classes. */
enum class DiagKind : uint8_t
{
    UseBeforeDefPointer,    //!< never-written register used as pointer
    DerefNotPointer,        //!< load/store/jump base is an integer
    DerefNoAccess,          //!< rights set forbids the access kind
    DerefInvalidPerm,       //!< None or undefined permission encoding
    PointerImmutable,       //!< LEA/LEAB/PTOI on an enter/key pointer
    RestrictNotSubset,      //!< RESTRICT target not a strict subset
    RestrictInvalidPerm,    //!< RESTRICT to an undefined encoding
    SubsegNotSmaller,       //!< SUBSEG does not shrink the segment
    JumpNotExecutable,      //!< jump through non-execute/enter value
    PrivilegeRequired,      //!< SETPTR (or exec-priv jump) in user mode
    TaggedInstruction,      //!< tagged word in the instruction stream
    UndecodableInstruction, //!< bad opcode or register encoding
    BoundsEscape,           //!< derivation/branch escapes the segment
    RunOffEnd,              //!< control flow runs off the code segment
    MisalignedAccess,       //!< access not naturally aligned
    UnknownValue,           //!< operation on a value the analysis lost
};

/** @return a stable name for a diagnostic kind. */
std::string_view diagKindName(DiagKind kind);

/** Must-fault (error) vs. may-fault (warning). */
enum class Severity : uint8_t
{
    Error,
    Warning,
};

/** Bit for a fault kind inside Diag::faults. */
constexpr uint16_t
faultBit(Fault f)
{
    return uint16_t(1u << unsigned(f));
}

/** One reported violation, tied back to the source via the line. */
struct Diag
{
    DiagKind kind = DiagKind::UnknownValue;
    Severity sev = Severity::Warning;
    uint32_t index = 0;  //!< instruction index in the image
    int line = 0;        //!< 1-based source line (0 when unmapped)
    uint16_t faults = 0; //!< mask of possible gp::Fault kinds
    std::string message;

    /** @return true when every concretization faults here. */
    bool mustFault() const { return sev == Severity::Error; }
};

/** @return "kind-a|kind-b" rendering of a fault mask. */
std::string faultMaskNames(uint16_t mask);

/** A basic block of the decoded program. */
struct BasicBlock
{
    uint32_t first = 0; //!< index of the leader instruction
    uint32_t last = 0;  //!< index of the final instruction (inclusive)
    /// Statically-known successor leaders (branch targets and
    /// fall-throughs; indirect JMP successors are resolved during the
    /// dataflow pass, not here).
    std::vector<uint32_t> succs;
};

/** Control-flow graph over the assembled image. */
struct Cfg
{
    std::vector<BasicBlock> blocks;
};

/** Analysis entry-state and mode configuration. */
struct VerifyOptions
{
    /// Program runs with an execute-privileged instruction pointer
    /// (gpsim --privileged): SETPTR is legal, GETIP yields
    /// execute-privileged pointers.
    bool privileged = false;

    /// Entry register values. When empty, defaultEntryRegs(4096) is
    /// used — the gpsim convention (r1 = read/write data segment,
    /// r2 = integer thread index, others zero).
    std::map<unsigned, AbsVal> entryRegs;

    /// Log2 length of the code segment the image is loaded into.
    /// 0 = derive with isa::segLenFor(8 * words), the loader default.
    uint64_t codeLenLog2 = 0;

    /// Extra basic-block leader indices (assembler label metadata);
    /// verifyProgram fills this from Assembly::labels.
    std::vector<uint32_t> leaderHints;
};

/**
 * gpsim's spawn convention: r1 = read/write pointer to a private data
 * segment of the given size, r2 = untagged thread index, everything
 * else the architectural zero.
 */
std::map<unsigned, AbsVal> defaultEntryRegs(uint64_t data_bytes = 4096);

/** Full analysis result: diagnostics plus CFG/fixpoint metadata. */
struct VerifyResult
{
    std::vector<Diag> diags;
    Cfg cfg;
    uint32_t instructions = 0; //!< words in the image
    uint32_t reachable = 0;    //!< instructions reached by the fixpoint
    uint32_t iterations = 0;   //!< worklist pops until the fixpoint

    /**
     * Per-instruction elision verdict byte (isa::kElide* bits): the
     * complement of the union of every fault kind the record pass
     * found reachable at that instruction. Unreached instructions and
     * undecodable/tagged words get 0 (no proof). kElideNeverFaults is
     * set only when *no* capability fault of any kind is reachable —
     * the bit that licenses the machine's unchecked datapath.
     */
    std::vector<uint8_t> verdicts;

    size_t
    errorCount() const
    {
        size_t n = 0;
        for (const Diag &d : diags)
            n += d.sev == Severity::Error;
        return n;
    }

    size_t warningCount() const { return diags.size() - errorCount(); }

    /** @return true when no must-fault diagnostics were found. */
    bool ok() const { return errorCount() == 0; }

    /**
     * @return true when there are no diagnostics at all — the strong
     * verdict the differential harness holds against the machine: no
     * execution from the entry state raises a capability fault.
     */
    bool clean() const { return diags.empty(); }

    /** The first diagnostic at an instruction index, if any. */
    const Diag *at(uint32_t index) const;

    /**
     * Render a compiler-style report ("file:line: error: ...") with
     * source echo lines taken from the assembly's source map.
     */
    std::string report(std::string_view file,
                       const isa::Assembly *source = nullptr) const;
};

/**
 * Verify a raw instruction image. @param src_map optional
 * per-instruction source locations for file:line diagnostics.
 */
VerifyResult verifyWords(const std::vector<Word> &words,
                         const VerifyOptions &opts = {},
                         const std::vector<isa::SourceLoc> *src_map =
                             nullptr);

/** Verify an assembled program, wiring up its source map. */
VerifyResult verifyProgram(const isa::Assembly &assembly,
                           const VerifyOptions &opts = {});

/**
 * Package a verification result as the machine-consumable proof
 * sidecar: verdict bytes bound to the exact instruction bits and the
 * load base / privilege mode they were established for. @param words
 * must be the image passed to verifyWords; @param privileged must
 * match the VerifyOptions the result came from, @param base the
 * address the image will be loaded at.
 */
isa::ElideProof makeElideProof(const VerifyResult &result,
                               const std::vector<Word> &words,
                               bool privileged, uint64_t base);

} // namespace gp::verify

#endif // GP_VERIFY_VERIFIER_H
