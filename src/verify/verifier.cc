/**
 * @file
 * The gpverify dataflow engine: forward abstract interpretation of an
 * assembled image over the guarded-pointer rights lattice.
 *
 * The transfer functions mirror src/isa/machine.cc and src/gp/ops.cc
 * *exactly* — every must-fault (error) verdict is held against the
 * runtime by the differential harness, so the order and kind of each
 * check below matches the machine's:
 *   - LD/ST with a non-zero displacement derive the effective pointer
 *     with a bounds-checked LEA first (Immutable for enter/key bases),
 *     then run the access check (PermissionDenied for rights misses).
 *   - checkAccess order: decode -> rights -> alignment -> bounds.
 *   - Branch deltas are 1 + imm instructions; IP advance is a LEA over
 *     the code segment, so escaping control flow is a BoundsViolation.
 *
 * Soundness posture: Error is claimed only when *every* concretization
 * of the abstract state faults with a kind in the diagnostic's mask;
 * anything uncertain (unknown offsets or lengths, joined permissions,
 * values loaded from memory, wrap-around corner cases) degrades to a
 * Warning. Unresolvable JMPs are modeled by a one-time "havoc": top is
 * joined into every instruction's entry state, a sound stand-in for an
 * external callee that shares the register file and may re-enter the
 * program anywhere.
 */

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "isa/inst.h"
#include "isa/loader.h"
#include "verify/verifier.h"

namespace gp::verify {

namespace {

using isa::Inst;
using isa::Op;
using Kind = AbsVal::Kind;

/// Perm encodings whose address field LEA/LEAB may modify.
constexpr uint16_t kMutableMask =
    uint16_t((1u << unsigned(Perm::ReadOnly)) |
             (1u << unsigned(Perm::ReadWrite)) |
             (1u << unsigned(Perm::ExecuteUser)) |
             (1u << unsigned(Perm::ExecutePrivileged)));

/** Effective alignment (log2) of a pointer value's offset. */
uint8_t
alignEffOf(const AbsVal &v)
{
    if (v.offKnown)
        return v.offset == 0 ? 63 : uint8_t(std::countr_zero(v.offset));
    return v.alignLog2;
}

/**
 * Must/may fault summary of one abstract operation. `faults` is the
 * mask of gp::Fault kinds some concretization raises; `mayOk` is true
 * when at least one concretization does not fault.
 */
struct Outcome
{
    uint16_t faults = 0;
    bool mayOk = true;

    void add(Fault f) { faults |= faultBit(f); }

    static Outcome
    must(Fault f)
    {
        Outcome o;
        o.add(f);
        o.mayOk = false;
        return o;
    }
};

/** Outcome plus the result value on the fault-free paths. */
struct XferOut
{
    Outcome o;
    AbsVal res;
};

/** Which instruction family a diagnostic comes from (kind mapping). */
enum class Ctx
{
    Lea,      //!< LEA/LEAB/PTOI/ITOP and displacement derivation
    Access,   //!< the load/store rights + geometry check
    Restrict, //!< RESTRICT
    Subseg,   //!< SUBSEG
    Jump,     //!< JMP
};

/** Pick the dominant diagnostic kind for a fault mask in a context. */
DiagKind
kindFor(uint16_t mask, Ctx ctx, const AbsVal &operand)
{
    if (mask & faultBit(Fault::NotAPointer)) {
        return operand.kind == Kind::Int && operand.neverWritten
                   ? DiagKind::UseBeforeDefPointer
                   : DiagKind::DerefNotPointer;
    }
    if (mask & faultBit(Fault::InvalidPermission)) {
        return ctx == Ctx::Restrict ? DiagKind::RestrictInvalidPerm
                                    : DiagKind::DerefInvalidPerm;
    }
    if (mask & faultBit(Fault::Immutable))
        return DiagKind::PointerImmutable;
    if (mask & faultBit(Fault::PermissionDenied)) {
        return ctx == Ctx::Jump ? DiagKind::JumpNotExecutable
                                : DiagKind::DerefNoAccess;
    }
    if (mask & faultBit(Fault::NotSubset))
        return DiagKind::RestrictNotSubset;
    if (mask & faultBit(Fault::NotSmaller))
        return DiagKind::SubsegNotSmaller;
    if (mask & faultBit(Fault::PrivilegeViolation))
        return DiagKind::PrivilegeRequired;
    if (mask & faultBit(Fault::Misaligned))
        return DiagKind::MisalignedAccess;
    if (mask & faultBit(Fault::BoundsViolation))
        return DiagKind::BoundsEscape;
    return DiagKind::UnknownValue;
}

/** One-line human text per diagnostic kind. */
const char *
kindText(DiagKind k)
{
    switch (k) {
      case DiagKind::UseBeforeDefPointer:
        return "register used as a pointer but never written";
      case DiagKind::DerefNotPointer:
        return "pointer operand is an untagged integer";
      case DiagKind::DerefNoAccess:
        return "permission does not allow this access";
      case DiagKind::DerefInvalidPerm:
        return "pointer carries an undefined permission encoding";
      case DiagKind::PointerImmutable:
        return "enter/key pointers may not be modified";
      case DiagKind::RestrictNotSubset:
        return "restrict target is not a strict rights subset";
      case DiagKind::RestrictInvalidPerm:
        return "restrict target is not a defined permission";
      case DiagKind::SubsegNotSmaller:
        return "subseg does not shrink the segment";
      case DiagKind::JumpNotExecutable:
        return "jump target is not an executable pointer";
      case DiagKind::PrivilegeRequired:
        return "privileged operation in user mode";
      case DiagKind::TaggedInstruction:
        return "tagged word in the instruction stream";
      case DiagKind::UndecodableInstruction:
        return "undecodable instruction word";
      case DiagKind::BoundsEscape:
        return "address arithmetic escapes the segment";
      case DiagKind::RunOffEnd:
        return "control flow runs off the end of the program";
      case DiagKind::MisalignedAccess:
        return "access is not naturally aligned";
      case DiagKind::UnknownValue:
        return "operand value unknown to the analysis";
      default:
        return "capability violation";
    }
}

/**
 * Geometry result of an address derivation (LEA/LEAB/ITOP or a
 * displacement-addressed memory operand).
 */
struct Geom
{
    Outcome o;
    bool offKnown = false;
    uint64_t offset = 0;
    uint8_t align = 0;
};

/**
 * The masked comparator (paper Fig. 2) in the abstract. Must-fault is
 * claimed only for |delta| < 2^53 and segment lengths <= 53 bits, where
 * mod-2^54 wrap-around cannot bring the address back into the segment.
 */
Geom
leaGeom(const AbsVal &v, bool rebase, bool delta_known, int64_t delta)
{
    Geom g;
    const bool base_known = rebase || v.offKnown;
    const uint64_t base_off = rebase ? 0 : v.offset;

    if (delta_known && base_known) {
        const __int128 no = __int128(base_off) + delta;
        const bool small_delta = delta > -(int64_t(1) << 53) &&
                                 delta < (int64_t(1) << 53);
        if (no < 0) {
            g.o.add(Fault::BoundsViolation);
            // Negative offsets escape below the segment base; certain
            // only when the length is known small enough that the
            // comparator has fixed bits to trip on.
            g.o.mayOk =
                !(small_delta && v.lenKnown && v.lenLog2 <= 53);
            return g;
        }
        if (v.lenKnown) {
            if (no >= (__int128(1) << v.lenLog2)) {
                g.o.add(Fault::BoundsViolation);
                g.o.mayOk = !(small_delta && v.lenLog2 <= 53);
                return g;
            }
            g.offKnown = true;
            g.offset = uint64_t(no);
            return g;
        }
        // Known offset, unknown length: may exceed it.
        g.o.add(Fault::BoundsViolation);
        g.offKnown = true;
        g.offset = uint64_t(no);
        return g;
    }

    // Unknown delta and/or base offset: may fault, and only a
    // congruence fact survives.
    g.o.add(Fault::BoundsViolation);
    const uint8_t base_align = rebase ? 63 : alignEffOf(v);
    const uint8_t delta_align =
        delta_known
            ? (delta == 0 ? 63
                          : uint8_t(std::countr_zero(uint64_t(delta))))
            : 0;
    g.align = std::min(base_align, delta_align);
    return g;
}

/** Abstract gp::lea / gp::leab (decodeMutable + masked comparator). */
XferOut
leaXfer(const AbsVal &v, bool rebase, bool delta_known, int64_t delta)
{
    XferOut x;
    if (v.kind == Kind::Bottom || v.kind == Kind::Int) {
        x.o = Outcome::must(Fault::NotAPointer);
        return x;
    }
    if (v.kind == Kind::Any) {
        x.o.add(Fault::NotAPointer);
        x.o.add(Fault::InvalidPermission);
        x.o.add(Fault::Immutable);
        x.o.add(Fault::BoundsViolation);
        x.res = AbsVal::pointerAnyGeom(kMutableMask);
        return x;
    }

    const Geom g = leaGeom(v, rebase, delta_known, delta);
    uint16_t faults = 0;
    uint16_t ok_perms = 0;
    bool ok_seen = false;
    for (unsigned p = 0; p < 16; ++p) {
        if (!(v.perms & (1u << p)))
            continue;
        if (!permValid(p)) {
            faults |= faultBit(Fault::InvalidPermission);
            continue;
        }
        if (!addressMutable(Perm(p))) {
            faults |= faultBit(Fault::Immutable);
            continue;
        }
        faults |= g.o.faults;
        if (g.o.mayOk) {
            ok_seen = true;
            ok_perms |= uint16_t(1u << p);
        }
    }
    x.o.faults = faults;
    x.o.mayOk = ok_seen;
    if (ok_seen) {
        x.res.kind = Kind::Ptr;
        x.res.perms = ok_perms;
        x.res.lenKnown = v.lenKnown;
        x.res.lenLog2 = v.lenLog2;
        x.res.offKnown = g.offKnown;
        x.res.offset = g.offset;
        x.res.alignLog2 = g.offKnown ? 0 : g.align;
        x.res.isCode = v.isCode;
    }
    return x;
}

/** Geometry half of checkAccess: alignment then segment-size bound. */
Outcome
accessGeom(const AbsVal &v, unsigned size)
{
    Outcome o;
    if (size == 1)
        return o; // byte accesses never fault on geometry
    const unsigned log_size = unsigned(std::countr_zero(size));
    if (v.lenKnown) {
        if (v.lenLog2 < log_size) {
            // Segment smaller than the access: faults Misaligned or
            // BoundsViolation depending on the (unknown) base address.
            o.add(Fault::Misaligned);
            o.add(Fault::BoundsViolation);
            o.mayOk = false;
        } else if (v.offKnown) {
            if (v.offset & (size - 1)) {
                o.add(Fault::Misaligned);
                o.mayOk = false;
            }
        } else if (alignEffOf(v) < log_size) {
            o.add(Fault::Misaligned);
        }
    } else {
        o.add(Fault::Misaligned);
        o.add(Fault::BoundsViolation);
        if (v.offKnown && (v.offset & (size - 1)))
            o.mayOk = false;
    }
    return o;
}

/** Abstract gp::checkAccess: decode -> rights -> geometry. */
Outcome
accessXfer(const AbsVal &v, bool is_store, unsigned size)
{
    if (v.kind == Kind::Bottom || v.kind == Kind::Int)
        return Outcome::must(Fault::NotAPointer);
    if (v.kind == Kind::Any) {
        Outcome o;
        o.add(Fault::NotAPointer);
        o.add(Fault::InvalidPermission);
        o.add(Fault::PermissionDenied);
        o.add(Fault::Misaligned);
        o.add(Fault::BoundsViolation);
        return o;
    }

    const Outcome g = accessGeom(v, size);
    const uint32_t needed = is_store ? RightWrite : RightRead;
    Outcome o;
    uint16_t faults = 0;
    bool ok_seen = false;
    for (unsigned p = 0; p < 16; ++p) {
        if (!(v.perms & (1u << p)))
            continue;
        if (!permValid(p)) {
            faults |= faultBit(Fault::InvalidPermission);
            continue;
        }
        if ((rightsOf(Perm(p)) & needed) != needed) {
            faults |= faultBit(Fault::PermissionDenied);
            continue;
        }
        faults |= g.faults;
        if (g.mayOk)
            ok_seen = true;
    }
    o.faults = faults;
    o.mayOk = ok_seen;
    return o;
}

/** Abstract gp::restrictPerm. */
XferOut
restrictXfer(const AbsVal &v, bool t_known, unsigned target)
{
    XferOut x;
    if (v.kind == Kind::Bottom || v.kind == Kind::Int) {
        x.o = Outcome::must(Fault::NotAPointer);
        return x;
    }
    if (v.kind == Kind::Any) {
        x.o.add(Fault::NotAPointer);
        x.o.add(Fault::InvalidPermission);
        x.o.add(Fault::Immutable);
        x.o.add(Fault::NotSubset);
        x.res = AbsVal::pointerAnyGeom(
            t_known ? uint16_t(1u << (target & 0xf)) : uint16_t(0xff));
        return x;
    }

    uint16_t faults = 0;
    uint16_t ok_perms = 0;
    bool ok_seen = false;
    for (unsigned p = 0; p < 16; ++p) {
        if (!(v.perms & (1u << p)))
            continue;
        if (!permValid(p)) {
            faults |= faultBit(Fault::InvalidPermission);
            continue;
        }
        const Perm cur = Perm(p);
        if (cur == Perm::Key || cur == Perm::EnterUser ||
            cur == Perm::EnterPrivileged) {
            faults |= faultBit(Fault::Immutable);
            continue;
        }
        if (t_known) {
            if (!permValid(target)) {
                faults |= faultBit(Fault::InvalidPermission);
            } else if (!strictSubset(cur, Perm(target))) {
                faults |= faultBit(Fault::NotSubset);
            } else {
                ok_seen = true;
                ok_perms |= uint16_t(1u << target);
            }
        } else {
            uint16_t subs = 0;
            for (unsigned t = 1; t <= 7; ++t) {
                if (strictSubset(cur, Perm(t)))
                    subs |= uint16_t(1u << t);
            }
            faults |= faultBit(Fault::NotSubset);
            faults |= faultBit(Fault::InvalidPermission);
            if (subs) {
                ok_seen = true;
                ok_perms |= subs;
            }
        }
    }
    x.o.faults = faults;
    x.o.mayOk = ok_seen;
    if (ok_seen) {
        x.res = v;
        x.res.perms = ok_perms;
    }
    return x;
}

/** Abstract gp::subseg. */
XferOut
subsegXfer(const AbsVal &v, bool t_known, unsigned t)
{
    XferOut x;
    if (v.kind == Kind::Bottom || v.kind == Kind::Int) {
        x.o = Outcome::must(Fault::NotAPointer);
        return x;
    }
    if (v.kind == Kind::Any) {
        x.o.add(Fault::NotAPointer);
        x.o.add(Fault::InvalidPermission);
        x.o.add(Fault::Immutable);
        x.o.add(Fault::NotSmaller);
        x.res = AbsVal::pointerAnyGeom(
            uint16_t(kMutableMask | (1u << unsigned(Perm::Key))));
        x.res.perms = kMutableMask;
        return x;
    }

    uint16_t faults = 0;
    uint16_t ok_perms = 0;
    bool ok_seen = false;
    for (unsigned p = 0; p < 16; ++p) {
        if (!(v.perms & (1u << p)))
            continue;
        if (!permValid(p)) {
            faults |= faultBit(Fault::InvalidPermission);
            continue;
        }
        const Perm cur = Perm(p);
        if (cur == Perm::Key || cur == Perm::EnterUser ||
            cur == Perm::EnterPrivileged) {
            faults |= faultBit(Fault::Immutable);
            continue;
        }
        if (t_known && v.lenKnown) {
            if (t >= v.lenLog2) {
                faults |= faultBit(Fault::NotSmaller);
                continue;
            }
        } else {
            faults |= faultBit(Fault::NotSmaller);
        }
        ok_seen = true;
        ok_perms |= uint16_t(1u << p);
    }
    x.o.faults = faults;
    x.o.mayOk = ok_seen;
    if (ok_seen) {
        x.res.kind = Kind::Ptr;
        x.res.perms = ok_perms;
        if (t_known) {
            x.res.lenKnown = true;
            x.res.lenLog2 = uint8_t(t);
            const uint64_t mask =
                t >= 63 ? ~uint64_t(0) : ((uint64_t(1) << t) - 1);
            if (v.offKnown) {
                x.res.offKnown = true;
                x.res.offset = v.offset & mask;
            } else {
                x.res.alignLog2 =
                    std::min<uint8_t>(alignEffOf(v), uint8_t(t));
            }
        } else {
            x.res.alignLog2 = 0;
        }
        // Offsets are now relative to the shrunk segment, not the
        // original code base: the code-offset fact is gone.
        x.res.isCode = false;
    }
    return x;
}

/** Abstract gp::ptrToInt's decodeMutable head. */
Outcome
ptoiXfer(const AbsVal &v)
{
    if (v.kind == Kind::Bottom || v.kind == Kind::Int)
        return Outcome::must(Fault::NotAPointer);
    if (v.kind == Kind::Any) {
        Outcome o;
        o.add(Fault::NotAPointer);
        o.add(Fault::InvalidPermission);
        o.add(Fault::Immutable);
        return o;
    }
    Outcome o;
    uint16_t faults = 0;
    bool ok_seen = false;
    for (unsigned p = 0; p < 16; ++p) {
        if (!(v.perms & (1u << p)))
            continue;
        if (!permValid(p))
            faults |= faultBit(Fault::InvalidPermission);
        else if (!addressMutable(Perm(p)))
            faults |= faultBit(Fault::Immutable);
        else
            ok_seen = true;
    }
    o.faults = faults;
    o.mayOk = ok_seen;
    return o;
}

/** The analysis driver: fixpoint, then a recording pass for diags. */
class Analyzer
{
  public:
    Analyzer(const std::vector<Word> &words, const VerifyOptions &opts,
             const std::vector<isa::SourceLoc> *src_map)
        : words_(words), opts_(opts), srcMap_(src_map)
    {
        progWords_ = uint32_t(words.size());
        const uint64_t min_bytes = 8 * std::max<uint64_t>(1, words.size());
        codeLen_ = opts.codeLenLog2 ? opts.codeLenLog2
                                    : isa::segLenFor(min_bytes);
        capWords_ = uint32_t((uint64_t(1) << codeLen_) / 8);
        priv_ = opts.privileged;
        insts_.reserve(progWords_);
        for (uint32_t i = 0; i < progWords_; ++i)
            insts_.push_back(isa::decodeInst(words[i]));
    }

    VerifyResult run();

  private:
    using State = std::array<AbsVal, isa::kNumRegs>;

    struct Step
    {
        State out{};
        std::vector<uint32_t> succs;
        bool havoc = false;
    };

    Step transfer(uint32_t index, const State &in);
    void addEdges(Step &step, uint32_t index,
                  const std::vector<int64_t> &targets, bool may_other);
    bool joinInto(uint32_t index, const State &state);
    void push(uint32_t index);
    void doHavoc();
    void emit(uint32_t index, DiagKind kind, Severity sev,
              uint16_t faults, std::string msg);
    void emitOutcome(uint32_t index, const Outcome &o, Ctx ctx,
                     const AbsVal &operand, const Inst &inst,
                     unsigned reg);
    Cfg buildCfg() const;

    const std::vector<Word> &words_;
    const VerifyOptions &opts_;
    const std::vector<isa::SourceLoc> *srcMap_;
    std::vector<std::optional<Inst>> insts_;
    uint32_t progWords_ = 0;
    uint32_t capWords_ = 0;
    uint64_t codeLen_ = 0;
    bool priv_ = false;

    std::vector<State> in_;
    std::vector<char> reached_;
    std::deque<uint32_t> wl_;
    std::vector<char> inWl_;
    bool havocDone_ = false;
    bool record_ = false;
    uint32_t iterations_ = 0;
    std::vector<Diag> diags_;
    /// Per-instruction union of every fault kind any diagnostic found
    /// reachable there (filled by emit() during the record pass); the
    /// complement becomes the elision verdict.
    std::vector<uint16_t> mayFaults_;
};

void
Analyzer::emit(uint32_t index, DiagKind kind, Severity sev,
               uint16_t faults, std::string msg)
{
    if (!record_)
        return;
    if (index < mayFaults_.size())
        mayFaults_[index] |= faults;
    Diag d;
    d.kind = kind;
    d.sev = sev;
    d.index = index;
    d.faults = faults;
    d.message = std::move(msg);
    if (srcMap_ && index < srcMap_->size())
        d.line = (*srcMap_)[index].line;
    diags_.push_back(std::move(d));
}

void
Analyzer::emitOutcome(uint32_t index, const Outcome &o, Ctx ctx,
                      const AbsVal &operand, const Inst &inst,
                      unsigned reg)
{
    if (!o.faults || !record_)
        return;
    const DiagKind kind = operand.kind == Kind::Any
                              ? DiagKind::UnknownValue
                              : kindFor(o.faults, ctx, operand);
    const Severity sev = o.mayOk ? Severity::Warning : Severity::Error;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s: %s (r%u)",
                  std::string(isa::opName(inst.op)).c_str(),
                  kindText(kind), reg);
    emit(index, kind, sev, o.faults, buf);
}

void
Analyzer::addEdges(Step &step, uint32_t index,
                   const std::vector<int64_t> &targets, bool may_other)
{
    unsigned ok = 0;
    bool sled = false;
    bool escape = false;
    for (int64_t t : targets) {
        if (t >= 0 && uint64_t(t) < progWords_) {
            step.succs.push_back(uint32_t(t));
            ok++;
        } else if (t >= 0 && uint64_t(t) < capWords_) {
            sled = true; // zero-filled tail of the segment: a NOP sled
        } else {
            escape = true;
        }
    }
    if (sled || escape) {
        // Escaping control flow faults BoundsViolation right here (the
        // IP advance is a LEA); an edge into the NOP sled executes the
        // zero fill and faults BoundsViolation at the segment end.
        const DiagKind kind = (escape && !sled) ? DiagKind::BoundsEscape
                                                : DiagKind::RunOffEnd;
        const Severity sev = (ok == 0 && !may_other) ? Severity::Error
                                                     : Severity::Warning;
        emit(index, kind, sev, faultBit(Fault::BoundsViolation),
             kindText(kind));
    }
}

bool
Analyzer::joinInto(uint32_t index, const State &state)
{
    bool changed = !reached_[index];
    reached_[index] = 1;
    State &dst = in_[index];
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        AbsVal joined = joinVal(dst[r], state[r]);
        if (!(joined == dst[r])) {
            dst[r] = joined;
            changed = true;
        }
    }
    return changed;
}

void
Analyzer::push(uint32_t index)
{
    if (inWl_[index])
        return;
    inWl_[index] = 1;
    wl_.push_back(index);
}

void
Analyzer::doHavoc()
{
    if (havocDone_ || record_)
        return;
    havocDone_ = true;
    State any;
    any.fill(AbsVal::top());
    for (uint32_t j = 0; j < progWords_; ++j) {
        if (joinInto(j, any))
            push(j);
    }
}

Analyzer::Step
Analyzer::transfer(uint32_t index, const State &in)
{
    Step s;
    s.out = in;

    if (words_[index].isPointer()) {
        emit(index, DiagKind::TaggedInstruction, Severity::Error,
             faultBit(Fault::InvalidInstruction),
             kindText(DiagKind::TaggedInstruction));
        return s;
    }
    if (!insts_[index]) {
        emit(index, DiagKind::UndecodableInstruction, Severity::Error,
             faultBit(Fault::InvalidInstruction),
             kindText(DiagKind::UndecodableInstruction));
        return s;
    }
    const Inst &inst = *insts_[index];

    auto setRd = [&](const AbsVal &v) { s.out[inst.rd] = v; };
    auto fall = [&]() {
        addEdges(s, index, {int64_t(index) + 1}, false);
    };
    auto known = [&](const AbsVal &v, uint64_t &out) {
        if (v.kind == Kind::Int && v.intKnown) {
            out = v.intVal;
            return true;
        }
        return false;
    };
    // ALU result when both operand payloads are known constants.
    auto alu2 = [&](uint64_t b, bool b_known) {
        uint64_t a = 0;
        if (b_known && known(in[inst.ra], a)) {
            uint64_t r = 0;
            switch (inst.op) {
              case Op::ADD:
              case Op::ADDI:
                r = a + b;
                break;
              case Op::SUB:
                r = a - b;
                break;
              case Op::MUL:
                r = a * b;
                break;
              case Op::AND:
              case Op::ANDI:
                r = a & b;
                break;
              case Op::OR:
              case Op::ORI:
                r = a | b;
                break;
              case Op::XOR:
              case Op::XORI:
                r = a ^ b;
                break;
              case Op::SHL:
              case Op::SHLI:
                r = a << (b & 63);
                break;
              case Op::SHR:
              case Op::SHRI:
                r = a >> (b & 63);
                break;
              case Op::SRA:
              case Op::SRAI:
                r = uint64_t(int64_t(a) >> (b & 63));
                break;
              case Op::SLT:
                r = int64_t(a) < int64_t(b) ? 1 : 0;
                break;
              case Op::SLTU:
                r = a < b ? 1 : 0;
                break;
              default:
                setRd(AbsVal::intUnknown());
                fall();
                return;
            }
            setRd(AbsVal::intConst(r));
        } else {
            setRd(AbsVal::intUnknown());
        }
        fall();
    };
    auto memOp = [&](bool is_store, unsigned size) {
        const AbsVal &base = in[inst.ra];
        AbsVal eff = base;
        if (inst.imm != 0) {
            XferOut x = leaXfer(base, false, true, inst.imm);
            emitOutcome(index, x.o, Ctx::Lea, base, inst, inst.ra);
            if (!x.o.mayOk)
                return; // every path faults deriving the pointer
            eff = x.res;
        }
        const Outcome o = accessXfer(eff, is_store, size);
        emitOutcome(index, o, Ctx::Access, eff, inst, inst.ra);
        if (!o.mayOk)
            return;
        if (!is_store) {
            // 8-byte loads are tag-preserving; narrow loads are
            // untagged. Memory contents are outside the domain.
            setRd(size == 8 ? AbsVal::top() : AbsVal::intUnknown());
        }
        fall();
    };
    auto leaOp = [&](bool rebase) {
        bool dk = false;
        int64_t d = 0;
        if (inst.op == Op::LEAI || inst.op == Op::LEABI) {
            dk = true;
            d = inst.imm;
        } else {
            uint64_t b = 0;
            if (known(in[inst.rb], b)) {
                dk = true;
                d = int64_t(b);
            }
        }
        XferOut x = leaXfer(in[inst.ra], rebase, dk, d);
        emitOutcome(index, x.o, Ctx::Lea, in[inst.ra], inst, inst.ra);
        if (!x.o.mayOk)
            return;
        setRd(x.res);
        fall();
    };

    switch (inst.op) {
      case Op::NOP:
        fall();
        break;
      case Op::HALT:
        break; // clean termination: no successors, no fault

      case Op::ADD:
      case Op::SUB:
      case Op::MUL:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SRA:
      case Op::SLT:
      case Op::SLTU: {
        uint64_t b = 0;
        const bool bk = known(in[inst.rb], b);
        alu2(b, bk);
        break;
      }
      case Op::ADDI:
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI:
        alu2(uint64_t(int64_t(inst.imm)), true);
        break;
      case Op::SHLI:
      case Op::SHRI:
      case Op::SRAI:
        alu2(uint64_t(uint32_t(inst.imm)), true);
        break;
      case Op::MOVI:
        setRd(AbsVal::intConst(uint64_t(int64_t(inst.imm))));
        fall();
        break;
      case Op::LUI:
        setRd(AbsVal::intConst(uint64_t(uint32_t(inst.imm)) << 32));
        fall();
        break;

      case Op::MOV:
        setRd(in[inst.ra]);
        fall();
        break;

      case Op::LD:
        memOp(false, 8);
        break;
      case Op::LDW:
        memOp(false, 4);
        break;
      case Op::LDH:
        memOp(false, 2);
        break;
      case Op::LDB:
        memOp(false, 1);
        break;
      case Op::ST:
        memOp(true, 8);
        break;
      case Op::STW:
        memOp(true, 4);
        break;
      case Op::STH:
        memOp(true, 2);
        break;
      case Op::STB:
        memOp(true, 1);
        break;

      case Op::LEA:
      case Op::LEAI:
        leaOp(false);
        break;
      case Op::LEAB:
      case Op::LEABI:
        leaOp(true);
        break;

      case Op::RESTRICT: {
        uint64_t b = 0;
        const bool bk = known(in[inst.rb], b);
        XferOut x =
            restrictXfer(in[inst.ra], bk, unsigned(b) & 0xf);
        emitOutcome(index, x.o, Ctx::Restrict, in[inst.ra], inst,
                    inst.ra);
        if (!x.o.mayOk)
            return s;
        setRd(x.res);
        fall();
        break;
      }
      case Op::SUBSEG: {
        uint64_t b = 0;
        const bool bk = known(in[inst.rb], b);
        XferOut x = subsegXfer(in[inst.ra], bk, unsigned(b) & 0x3f);
        emitOutcome(index, x.o, Ctx::Subseg, in[inst.ra], inst,
                    inst.ra);
        if (!x.o.mayOk)
            return s;
        setRd(x.res);
        fall();
        break;
      }
      case Op::SETPTR: {
        if (!priv_) {
            emit(index, DiagKind::PrivilegeRequired, Severity::Error,
                 faultBit(Fault::PrivilegeViolation),
                 "setptr: privileged operation in user mode");
            return s;
        }
        uint64_t bits = 0;
        if (known(in[inst.ra], bits)) {
            AbsVal v;
            v.kind = Kind::Ptr;
            v.perms = uint16_t(
                1u << unsigned((bits >> kPermShift) & kPermFieldMask));
            v.lenKnown = true;
            v.lenLog2 = uint8_t((bits >> kLenShift) & kLenFieldMask);
            const uint64_t mask =
                v.lenLog2 >= 63 ? ~uint64_t(0)
                                : ((uint64_t(1) << v.lenLog2) - 1);
            v.offKnown = true;
            v.offset = (bits & kAddrMask) & mask;
            setRd(v);
        } else {
            setRd(AbsVal::pointerAnyGeom(0xffff));
        }
        fall();
        break;
      }
      case Op::ISPTR:
        if (in[inst.ra].kind == Kind::Int)
            setRd(AbsVal::intConst(0));
        else if (in[inst.ra].kind == Kind::Ptr)
            setRd(AbsVal::intConst(1));
        else
            setRd(AbsVal::intUnknown());
        fall();
        break;
      case Op::PTOI: {
        const AbsVal &v = in[inst.ra];
        const Outcome o = ptoiXfer(v);
        emitOutcome(index, o, Ctx::Lea, v, inst, inst.ra);
        if (!o.mayOk)
            return s;
        if (v.kind == Kind::Ptr && v.offKnown)
            setRd(AbsVal::intConst(v.offset));
        else
            setRd(AbsVal::intUnknown());
        fall();
        break;
      }
      case Op::ITOP: {
        uint64_t b = 0;
        const bool bk = known(in[inst.rb], b);
        XferOut x = leaXfer(in[inst.ra], true, bk, int64_t(b));
        emitOutcome(index, x.o, Ctx::Lea, in[inst.ra], inst, inst.ra);
        if (!x.o.mayOk)
            return s;
        setRd(x.res);
        fall();
        break;
      }

      case Op::JMP: {
        const AbsVal &v = in[inst.ra];
        if (v.kind == Kind::Bottom || v.kind == Kind::Int) {
            emitOutcome(index, Outcome::must(Fault::NotAPointer),
                        Ctx::Jump, v, inst, inst.ra);
            return s;
        }
        if (v.kind == Kind::Any) {
            Outcome o;
            o.add(Fault::NotAPointer);
            o.add(Fault::InvalidPermission);
            o.add(Fault::PermissionDenied);
            o.add(Fault::PrivilegeViolation);
            emitOutcome(index, o, Ctx::Jump, v, inst, inst.ra);
            s.havoc = true;
            return s;
        }
        uint16_t faults = 0;
        bool ok_seen = false;
        bool internal = false;
        bool external = false;
        bool misaligned = false;
        int64_t target = -1;
        auto resolve = [&]() {
            ok_seen = true;
            if (v.isCode && v.offKnown) {
                if (v.offset % 8) {
                    misaligned = true; // fetch faults at the target
                } else {
                    internal = true;
                    target = int64_t(v.offset / 8);
                }
            } else {
                external = true;
            }
        };
        for (unsigned p = 0; p < 16; ++p) {
            if (!(v.perms & (1u << p)))
                continue;
            if (!permValid(p)) {
                faults |= faultBit(Fault::InvalidPermission);
                continue;
            }
            switch (Perm(p)) {
              case Perm::ExecuteUser:
                resolve();
                break;
              case Perm::ExecutePrivileged:
                if (!priv_)
                    faults |= faultBit(Fault::PrivilegeViolation);
                else
                    resolve();
                break;
              case Perm::EnterUser:
              case Perm::EnterPrivileged:
                // Call-gate crossing into another protection domain:
                // always modeled as an external callee.
                ok_seen = true;
                external = true;
                break;
              default: // Key, ReadOnly, ReadWrite
                faults |= faultBit(Fault::PermissionDenied);
                break;
            }
        }
        Outcome o;
        o.faults = faults;
        o.mayOk = ok_seen;
        emitOutcome(index, o, Ctx::Jump, v, inst, inst.ra);
        if (misaligned) {
            emit(index, DiagKind::MisalignedAccess, Severity::Warning,
                 faultBit(Fault::Misaligned),
                 "jmp: target is not instruction-aligned");
        }
        if (!ok_seen)
            return s;
        if (internal) {
            addEdges(s, index, {target},
                     external || misaligned || faults != 0);
        }
        if (external)
            s.havoc = true;
        break;
      }
      case Op::GETIP: {
        AbsVal v = AbsVal::pointer(priv_ ? Perm::ExecutePrivileged
                                         : Perm::ExecuteUser,
                                   codeLen_, 8ull * index);
        v.isCode = true;
        setRd(v);
        fall();
        break;
      }

      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE: {
        // Branches compare the rd and ra register operands.
        const AbsVal &x = in[inst.rd];
        const AbsVal &y = in[inst.ra];
        int fold = -1; // -1 unknown, 0 not taken, 1 taken
        if (inst.rd == inst.ra) {
            fold = (inst.op == Op::BEQ || inst.op == Op::BGE) ? 1 : 0;
        } else if (x.kind == Kind::Int && y.kind == Kind::Int &&
                   x.intKnown && y.intKnown) {
            bool taken = false;
            switch (inst.op) {
              case Op::BEQ:
                taken = x.intVal == y.intVal;
                break;
              case Op::BNE:
                taken = x.intVal != y.intVal;
                break;
              case Op::BLT:
                taken = int64_t(x.intVal) < int64_t(y.intVal);
                break;
              default:
                taken = int64_t(x.intVal) >= int64_t(y.intVal);
                break;
            }
            fold = taken ? 1 : 0;
        } else if ((x.kind == Kind::Int && y.kind == Kind::Ptr) ||
                   (x.kind == Kind::Ptr && y.kind == Kind::Int)) {
            // Tags differ, so full-word equality is decided.
            if (inst.op == Op::BEQ)
                fold = 0;
            else if (inst.op == Op::BNE)
                fold = 1;
        }
        std::vector<int64_t> targets;
        if (fold != 0)
            targets.push_back(int64_t(index) + 1 + inst.imm);
        if (fold != 1)
            targets.push_back(int64_t(index) + 1);
        addEdges(s, index, targets, false);
        break;
      }

      default:
        fall();
        break;
    }
    return s;
}

Cfg
Analyzer::buildCfg() const
{
    Cfg cfg;
    if (progWords_ == 0)
        return cfg;
    std::vector<char> leader(progWords_, 0);
    leader[0] = 1;
    for (uint32_t h : opts_.leaderHints) {
        if (h < progWords_)
            leader[h] = 1;
    }
    auto isBranch = [&](uint32_t i) {
        if (!insts_[i])
            return false;
        const Op op = insts_[i]->op;
        return op == Op::BEQ || op == Op::BNE || op == Op::BLT ||
               op == Op::BGE;
    };
    auto isTerm = [&](uint32_t i) {
        if (!insts_[i])
            return true;
        const Op op = insts_[i]->op;
        return op == Op::JMP || op == Op::HALT || isBranch(i);
    };
    for (uint32_t i = 0; i < progWords_; ++i) {
        if (isBranch(i)) {
            const int64_t t = int64_t(i) + 1 + insts_[i]->imm;
            if (t >= 0 && uint64_t(t) < progWords_)
                leader[uint64_t(t)] = 1;
        }
        if (isTerm(i) && i + 1 < progWords_)
            leader[i + 1] = 1;
    }
    for (uint32_t i = 0; i < progWords_;) {
        BasicBlock bb;
        bb.first = i;
        uint32_t j = i;
        while (j + 1 < progWords_ && !isTerm(j) && !leader[j + 1])
            j++;
        bb.last = j;
        if (isBranch(j)) {
            const int64_t t = int64_t(j) + 1 + insts_[j]->imm;
            if (t >= 0 && uint64_t(t) < progWords_)
                bb.succs.push_back(uint32_t(t));
            if (j + 1 < progWords_)
                bb.succs.push_back(j + 1);
        } else if (insts_[j] && insts_[j]->op != Op::JMP &&
                   insts_[j]->op != Op::HALT && j + 1 < progWords_) {
            bb.succs.push_back(j + 1);
        }
        cfg.blocks.push_back(std::move(bb));
        i = j + 1;
    }
    return cfg;
}

VerifyResult
Analyzer::run()
{
    VerifyResult res;
    res.instructions = progWords_;
    if (progWords_ == 0) {
        res.cfg = buildCfg();
        return res;
    }

    State entry;
    entry.fill(AbsVal::entryZero());
    const std::map<unsigned, AbsVal> regs =
        opts_.entryRegs.empty() ? defaultEntryRegs() : opts_.entryRegs;
    for (const auto &[r, v] : regs) {
        if (r < isa::kNumRegs)
            entry[r] = v;
    }

    in_.assign(progWords_, State{});
    reached_.assign(progWords_, 0);
    inWl_.assign(progWords_, 0);
    joinInto(0, entry);
    push(0);

    while (!wl_.empty()) {
        const uint32_t i = wl_.front();
        wl_.pop_front();
        inWl_[i] = 0;
        iterations_++;
        Step s = transfer(i, in_[i]);
        if (s.havoc)
            doHavoc();
        for (uint32_t t : s.succs) {
            if (joinInto(t, s.out))
                push(t);
        }
    }

    // Recording pass: re-run each reachable instruction's transfer on
    // its fixed entry state, with diagnostics enabled, so every
    // violation is reported exactly once.
    record_ = true;
    mayFaults_.assign(progWords_, 0);
    uint32_t reachable = 0;
    for (uint32_t i = 0; i < progWords_; ++i) {
        if (!reached_[i])
            continue;
        reachable++;
        transfer(i, in_[i]);
    }

    // Elision verdicts: the complement of the recorded may-fault
    // union. Any may-fact clears the corresponding safety bit, so
    // everything downstream of an unresolvable JMP (havoc joins top
    // into every state) degrades to no-elide automatically.
    constexpr uint16_t perm_faults =
        faultBit(Fault::NotAPointer) |
        faultBit(Fault::InvalidPermission) |
        faultBit(Fault::PermissionDenied) |
        faultBit(Fault::Immutable) | faultBit(Fault::NotSubset) |
        faultBit(Fault::NotSmaller) |
        faultBit(Fault::PrivilegeViolation) |
        faultBit(Fault::NotEnterPointer);
    res.verdicts.assign(progWords_, 0);
    for (uint32_t i = 0; i < progWords_; ++i) {
        if (!reached_[i])
            continue; // unreached: no proof, keep full checks
        const uint16_t m = mayFaults_[i];
        if (m & faultBit(Fault::InvalidInstruction))
            continue; // tagged/undecodable word: nothing to elide
        uint8_t v = 0;
        if (!(m & faultBit(Fault::BoundsViolation)))
            v |= isa::kElideBoundsSafe;
        if (!(m & perm_faults))
            v |= isa::kElidePermSafe;
        if (!(m & faultBit(Fault::Misaligned)))
            v |= isa::kElideAlignSafe;
        if (m == 0)
            v |= isa::kElideNeverFaults;
        res.verdicts[i] = v;
    }

    res.diags = std::move(diags_);
    res.reachable = reachable;
    res.iterations = iterations_;
    res.cfg = buildCfg();
    return res;
}

} // namespace

VerifyResult
verifyWords(const std::vector<Word> &words, const VerifyOptions &opts,
            const std::vector<isa::SourceLoc> *src_map)
{
    Analyzer analyzer(words, opts, src_map);
    return analyzer.run();
}

isa::ElideProof
makeElideProof(const VerifyResult &result,
               const std::vector<Word> &words, bool privileged,
               uint64_t base)
{
    isa::ElideProof proof;
    proof.base = base;
    proof.privileged = privileged;
    proof.bits.reserve(words.size());
    for (const Word &w : words)
        proof.bits.push_back(w.bits());
    proof.verdicts = result.verdicts;
    // A result from a shorter/older analysis never licenses elision
    // past what it proved.
    proof.verdicts.resize(words.size(), 0);
    return proof;
}

} // namespace gp::verify
