/**
 * @file
 * Abstract-domain plumbing for gpverify: the AbsVal join, diagnostic
 * naming, entry-state convention, and the human-readable report
 * renderer. The dataflow engine itself lives in verifier.cc.
 */

#include <algorithm>
#include <bit>
#include <cstdio>

#include "isa/loader.h"
#include "verify/verifier.h"

namespace gp::verify {

namespace {

/**
 * Effective alignment (log2) of a pointer's offset: exact when the
 * offset is known, otherwise the congruence fact carried by the value.
 */
uint8_t
alignEff(const AbsVal &v)
{
    if (v.offKnown)
        return v.offset == 0 ? 63 : uint8_t(std::countr_zero(v.offset));
    return v.alignLog2;
}

} // namespace

AbsVal
joinVal(const AbsVal &a, const AbsVal &b)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::Bottom)
        return b;
    if (b.kind == Kind::Bottom)
        return a;
    if (a == b)
        return a;
    if (a.kind == Kind::Any || b.kind == Kind::Any)
        return AbsVal::top();

    if (a.kind == Kind::Int && b.kind == Kind::Int) {
        AbsVal v = AbsVal::intUnknown();
        if (a.intKnown && b.intKnown && a.intVal == b.intVal) {
            v.intKnown = true;
            v.intVal = a.intVal;
        }
        v.neverWritten = a.neverWritten && b.neverWritten;
        return v;
    }

    if (a.kind == Kind::Ptr && b.kind == Kind::Ptr) {
        AbsVal v;
        v.kind = Kind::Ptr;
        v.perms = uint16_t(a.perms | b.perms);
        if (a.lenKnown && b.lenKnown && a.lenLog2 == b.lenLog2) {
            v.lenKnown = true;
            v.lenLog2 = a.lenLog2;
        }
        if (a.offKnown && b.offKnown && a.offset == b.offset) {
            v.offKnown = true;
            v.offset = a.offset;
        } else {
            v.alignLog2 = std::min(alignEff(a), alignEff(b));
        }
        v.isCode = a.isCode && b.isCode;
        return v;
    }

    // Int vs Ptr: the tag itself is unknown.
    return AbsVal::top();
}

std::string_view
diagKindName(DiagKind kind)
{
    switch (kind) {
      case DiagKind::UseBeforeDefPointer:
        return "use-before-def-pointer";
      case DiagKind::DerefNotPointer:
        return "deref-not-pointer";
      case DiagKind::DerefNoAccess:
        return "deref-no-access";
      case DiagKind::DerefInvalidPerm:
        return "deref-invalid-perm";
      case DiagKind::PointerImmutable:
        return "pointer-immutable";
      case DiagKind::RestrictNotSubset:
        return "restrict-not-subset";
      case DiagKind::RestrictInvalidPerm:
        return "restrict-invalid-perm";
      case DiagKind::SubsegNotSmaller:
        return "subseg-not-smaller";
      case DiagKind::JumpNotExecutable:
        return "jump-not-executable";
      case DiagKind::PrivilegeRequired:
        return "privilege-required";
      case DiagKind::TaggedInstruction:
        return "tagged-instruction";
      case DiagKind::UndecodableInstruction:
        return "undecodable-instruction";
      case DiagKind::BoundsEscape:
        return "bounds-escape";
      case DiagKind::RunOffEnd:
        return "run-off-end";
      case DiagKind::MisalignedAccess:
        return "misaligned-access";
      case DiagKind::UnknownValue:
        return "unknown-value";
      default:
        return "unknown";
    }
}

std::string
faultMaskNames(uint16_t mask)
{
    std::string out;
    for (unsigned i = 1; i < 16; ++i) {
        if (!(mask & (1u << i)))
            continue;
        if (!out.empty())
            out += '|';
        out += std::string(faultName(Fault(i)));
    }
    return out;
}

std::map<unsigned, AbsVal>
defaultEntryRegs(uint64_t data_bytes)
{
    std::map<unsigned, AbsVal> regs;
    regs[1] = AbsVal::pointer(Perm::ReadWrite,
                              isa::segLenFor(data_bytes));
    regs[2] = AbsVal::intUnknown(); // thread index
    return regs;
}

const Diag *
VerifyResult::at(uint32_t index) const
{
    for (const Diag &d : diags) {
        if (d.index == index)
            return &d;
    }
    return nullptr;
}

std::string
VerifyResult::report(std::string_view file,
                     const isa::Assembly *source) const
{
    std::string out;
    char buf[512];
    for (const Diag &d : diags) {
        const char *sev =
            d.sev == Severity::Error ? "error" : "warning";
        if (d.line > 0) {
            std::snprintf(buf, sizeof(buf), "%.*s:%d: %s: %s",
                          int(file.size()), file.data(), d.line, sev,
                          d.message.c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%.*s:[inst %u]: %s: %s",
                          int(file.size()), file.data(), d.index, sev,
                          d.message.c_str());
        }
        out += buf;
        out += " [";
        out += diagKindName(d.kind);
        if (d.faults) {
            out += "; may fault: ";
            out += faultMaskNames(d.faults);
        }
        out += ']';
        out += '\n';
        if (source && d.index < source->srcMap.size() &&
            !source->srcMap[d.index].text.empty()) {
            std::snprintf(buf, sizeof(buf), "  %5d | %s\n",
                          source->srcMap[d.index].line,
                          source->srcMap[d.index].text.c_str());
            out += buf;
        }
    }
    std::snprintf(buf, sizeof(buf),
                  "%zu error(s), %zu warning(s); %u/%u instructions "
                  "reachable, %u fixpoint iterations\n",
                  errorCount(), warningCount(), reachable,
                  instructions, iterations);
    out += buf;
    return out;
}

VerifyResult
verifyProgram(const isa::Assembly &assembly, const VerifyOptions &opts)
{
    VerifyOptions o = opts;
    for (const auto &[name, index] : assembly.labels) {
        if (index < assembly.words.size())
            o.leaderHints.push_back(uint32_t(index));
    }
    return verifyWords(assembly.words, o, &assembly.srcMap);
}

} // namespace gp::verify
