/**
 * @file
 * Logging and error-reporting helpers for the guarded-pointer simulator.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for unrecoverable user/configuration errors (exits),
 * warn()/inform() for status messages that never stop the simulation.
 */

#ifndef GP_SIM_LOG_H
#define GP_SIM_LOG_H

#include <cstdarg>
#include <string>

namespace gp::sim {

/** Print an error caused by a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error caused by bad user input/configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal warning about suspicious behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Globally silence warn()/inform() output (used by tests and benches that
 * intentionally exercise noisy paths). panic()/fatal() are never silenced.
 */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is currently suppressed. */
bool quiet();

} // namespace gp::sim

#endif // GP_SIM_LOG_H
