/**
 * @file
 * Deterministic fault-injection engine.
 *
 * The ISSUE-4 robustness campaign needs reproducible hardware-fault
 * scenarios: stored-bit flips in tagged memory (data, tag, or the
 * permission/length field of a guarded pointer), cache-line bursts,
 * LTLB entry corruption and spurious invalidation, transient
 * page-walk failures, and NoC message drop/duplicate/delay/corrupt.
 * The ISSUE-9 mesh-resilience arm adds two fail-stop sites —
 * NodeFailStop and LinkDown — fired once per epoch by the sharded
 * engine's barrier thread (see noc::ShardedMesh::applyMeshFaults),
 * so mesh-scale failures stay deterministic across host threads.
 *
 * Design rules:
 *
 *  - **Deterministic per seed.** Every fault site owns a private
 *    xoshiro256** stream derived from the master seed, so the draw
 *    sequence at one site is independent of activity at any other.
 *    The simulator is single-threaded, so the per-site opportunity
 *    order (and therefore the whole campaign outcome) is a pure
 *    function of (seed, workload, config).
 *
 *  - **Zero overhead when disarmed.** The only cost on the hot path
 *    is `FaultInjector::armed()` — a single inline static bool test,
 *    the same pattern the tracing layer uses. No cycle accounting,
 *    no RNG draws, no virtual calls when off. Components must guard
 *    every injection point with `if (FaultInjector::armed())`.
 *
 *  - **Pull + push sites.** Most sites are *pull* style: the
 *    component owning the state calls `fire(site)` at each natural
 *    opportunity (a memory read, a TLB fill, a NoC hop) and applies
 *    the corruption itself using detail draws from `rng(site)`.
 *    State that has no convenient opportunity point (e.g. resident
 *    words of a tagged memory) is covered by *tick targets*: hooks
 *    registered by the campaign wiring and invoked from
 *    `tick(cycle)` once per machine cycle when the site's Bernoulli
 *    draw fires. The sim layer never includes mem/noc headers; the
 *    hooks close over whatever component they corrupt.
 *
 * The injector is a process-wide singleton (like TraceManager and
 * the stats registry) because fault sites are scattered across
 * layers that share no common plumbing object.
 */

#ifndef GP_SIM_FAULTINJECT_H
#define GP_SIM_FAULTINJECT_H

#include <cstdint>
#include <functional>
#include <string_view>

#include "sim/rng.h"
#include "sim/stats.h"

namespace gp::sim {

/** Where a fault strikes. One RNG stream and one rate knob each. */
enum class FaultSite : uint8_t
{
    MemDataBit = 0,  //!< flip one payload bit of a stored word
    MemTagBit,       //!< flip the out-of-band tag bit of a stored word
    MemPermField,    //!< flip a perm/seg-length bit of a stored capability
    CacheLineBurst,  //!< multi-bit burst across one cache line
    TlbCorrupt,      //!< corrupt one live LTLB entry's frame/perms
    TlbInvalidate,   //!< spuriously drop one live LTLB entry
    PtWalkTransient, //!< transient page-walk failure (retryable)
    NocDrop,         //!< NoC message silently dropped
    NocDuplicate,    //!< NoC message delivered twice
    NocDelay,        //!< NoC message delayed by a drawn cycle count
    NocCorrupt,      //!< NoC message payload bit flipped in flight
    NodeFailStop,    //!< fail-stop death of one mesh node (permanent)
    LinkDown,        //!< one mesh link goes down (permanent)
    Count,
};

inline constexpr unsigned kFaultSiteCount =
    static_cast<unsigned>(FaultSite::Count);

/** @return stable lower-case site name (stat/CLI/JSON key). */
constexpr std::string_view
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::MemDataBit:
        return "mem-data-bit";
      case FaultSite::MemTagBit:
        return "mem-tag-bit";
      case FaultSite::MemPermField:
        return "mem-perm-field";
      case FaultSite::CacheLineBurst:
        return "cache-line-burst";
      case FaultSite::TlbCorrupt:
        return "tlb-corrupt";
      case FaultSite::TlbInvalidate:
        return "tlb-invalidate";
      case FaultSite::PtWalkTransient:
        return "ptwalk-transient";
      case FaultSite::NocDrop:
        return "noc-drop";
      case FaultSite::NocDuplicate:
        return "noc-duplicate";
      case FaultSite::NocDelay:
        return "noc-delay";
      case FaultSite::NocCorrupt:
        return "noc-corrupt";
      case FaultSite::NodeFailStop:
        return "node-fail-stop";
      case FaultSite::LinkDown:
        return "link-down";
      default:
        return "unknown";
    }
}

/** @return the FaultSite named @p name, or Count when unknown. */
FaultSite faultSiteFromName(std::string_view name);

/** Campaign-level injector configuration. */
struct FaultConfig
{
    /** Master seed; every per-site stream derives from it. */
    uint64_t seed = 1;

    /**
     * Per-opportunity Bernoulli probability for each site. 0 keeps a
     * site silent. For tick-target sites the opportunity is one
     * machine cycle; for pull sites it is one component event.
     */
    double rate[kFaultSiteCount] = {};

    /** Upper bound (exclusive) on drawn NocDelay extra cycles. */
    uint64_t nocDelayMax = 32;

    /** Maximum burst length for CacheLineBurst flips, in bits. */
    uint64_t burstMaxBits = 4;
};

/**
 * Process-wide deterministic fault injector.
 *
 * Lifecycle: `arm(config)` resets every stream and counter and turns
 * the static `armed()` flag on; `disarm()` turns it off and clears
 * tick targets. Components never observe a half-configured injector.
 */
class FaultInjector
{
  public:
    /** Hook invoked from tick() when the site's draw fires. */
    using TickHook = std::function<void(Rng &)>;

    static FaultInjector &instance();

    /** @return true when a campaign is active (inline fast path). */
    static bool armed() { return armed_; }

    /** Reset all streams/counters from @p cfg and enable injection. */
    void arm(const FaultConfig &cfg);

    /** Disable injection and drop all registered tick targets. */
    void disarm();

    /** Active configuration (meaningful only while armed). */
    const FaultConfig &config() const { return cfg_; }

    /**
     * One Bernoulli opportunity at @p site. Draws from the site's
     * private stream; counts fired injections in the stats group.
     * Always false when disarmed or the site rate is zero — but note
     * a zero-rate site still burns one draw per call while armed, so
     * outcome streams do not depend on *other* sites' rates.
     */
    bool fire(FaultSite site);

    /**
     * Detail draw in [0, bound) from @p site's stream, for picking
     * the victim bit, delay length, entry index, etc. Keeping detail
     * draws on the same stream as the Bernoulli draw preserves
     * per-site determinism.
     */
    uint64_t drawBelow(FaultSite site, uint64_t bound);

    /** Direct stream access for multi-draw corruption hooks. */
    Rng &rng(FaultSite site);

    /**
     * Register the corruption hook for a tick-scheduled site. The
     * hook is invoked from tick() with the site's stream whenever
     * the site's Bernoulli draw fires. Replaces any previous hook.
     */
    void setTickTarget(FaultSite site, TickHook hook);

    /** Drop every registered tick target. */
    void clearTickTargets();

    /**
     * One machine cycle: give every tick-target site one Bernoulli
     * opportunity. Called from Machine::step() under an armed()
     * guard so the disarmed cost is the flag test alone.
     */
    void tick(uint64_t cycle);

    /** Injections fired at @p site since arm(). */
    uint64_t injected(FaultSite site) const;

    /** Total injections fired since arm(). */
    uint64_t injectedTotal() const;

    /** The "faultinject" stat group (per-site fired counters). */
    StatGroup &stats() { return stats_; }

  private:
    FaultInjector();

    inline static bool armed_ = false;

    FaultConfig cfg_{};
    Rng streams_[kFaultSiteCount];
    TickHook hooks_[kFaultSiteCount];
    uint64_t fired_[kFaultSiteCount] = {};
    StatGroup stats_{"faultinject"};
};

} // namespace gp::sim

#endif // GP_SIM_FAULTINJECT_H
