#include "sim/faultinject.h"

#include <string>

namespace gp::sim {

namespace {

/** splitmix64 finalizer: decorrelates per-site seeds. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

FaultSite
faultSiteFromName(std::string_view name)
{
    for (unsigned i = 0; i < kFaultSiteCount; ++i) {
        const auto s = static_cast<FaultSite>(i);
        if (faultSiteName(s) == name)
            return s;
    }
    return FaultSite::Count;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector() = default;

void
FaultInjector::arm(const FaultConfig &cfg)
{
    // Hooks from a previous campaign close over dead components;
    // drop them before anything can fire.
    clearTickTargets();
    cfg_ = cfg;
    for (unsigned i = 0; i < kFaultSiteCount; ++i) {
        // Per-site streams: master seed mixed with a site-dependent
        // constant, so each site's draw sequence is independent of
        // every other site's opportunity count.
        streams_[i] = Rng(mix64(cfg.seed ^ (0x9e3779b97f4a7c15ull *
                                            (uint64_t(i) + 1))));
        fired_[i] = 0;
    }
    stats_.resetAll();
    armed_ = true;
}

void
FaultInjector::disarm()
{
    armed_ = false;
    clearTickTargets();
}

bool
FaultInjector::fire(FaultSite site)
{
    if (!armed_)
        return false;
    const auto i = static_cast<unsigned>(site);
    const double rate = cfg_.rate[i];
    // Burn exactly one draw per opportunity regardless of rate, so a
    // site's stream position depends only on its own opportunity
    // count — rates can vary across campaign arms without shifting
    // the victim-selection draws.
    const bool hit = streams_[i].uniform() < rate;
    if (hit) {
        fired_[i]++;
        stats_.counter(std::string("fired.") +
                       std::string(faultSiteName(site)))++;
    }
    return hit;
}

uint64_t
FaultInjector::drawBelow(FaultSite site, uint64_t bound)
{
    return streams_[static_cast<unsigned>(site)].below(bound);
}

Rng &
FaultInjector::rng(FaultSite site)
{
    return streams_[static_cast<unsigned>(site)];
}

void
FaultInjector::setTickTarget(FaultSite site, TickHook hook)
{
    hooks_[static_cast<unsigned>(site)] = std::move(hook);
}

void
FaultInjector::clearTickTargets()
{
    for (auto &hook : hooks_)
        hook = nullptr;
}

void
FaultInjector::tick(uint64_t cycle)
{
    (void)cycle;
    if (!armed_)
        return;
    for (unsigned i = 0; i < kFaultSiteCount; ++i) {
        if (!hooks_[i])
            continue;
        const auto site = static_cast<FaultSite>(i);
        if (fire(site))
            hooks_[i](streams_[i]);
    }
}

uint64_t
FaultInjector::injected(FaultSite site) const
{
    return fired_[static_cast<unsigned>(site)];
}

uint64_t
FaultInjector::injectedTotal() const
{
    uint64_t total = 0;
    for (const auto f : fired_)
        total += f;
    return total;
}

} // namespace gp::sim
