/**
 * @file
 * Synthetic memory-reference workload generators.
 *
 * The paper's comparative claims (context-switch cost, PLB pressure,
 * two-level translation latency, SFI overhead) are architectural, not
 * application-specific, so the reproduction drives every protection
 * scheme with the same parameterized synthetic traces: a working-set
 * locality model with controllable sharing across protection domains
 * and a controllable context-switch cadence. See DESIGN.md §2
 * (substitutions).
 */

#ifndef GP_SIM_WORKLOAD_H
#define GP_SIM_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace gp::sim {

/** One memory reference in a generated trace. */
struct MemRef
{
    uint64_t vaddr = 0;    //!< virtual byte address
    uint32_t domain = 0;   //!< protection domain issuing the reference
    uint32_t segment = 0;  //!< workload-level segment id (for checking)
    bool isWrite = false;  //!< store vs load
    bool isShared = false; //!< reference targets a cross-domain segment
};

/** Tunable parameters of the synthetic workload. */
struct WorkloadConfig
{
    uint32_t numDomains = 4;        //!< protection domains (processes)
    uint32_t segmentsPerDomain = 8; //!< private segments per domain
    uint32_t sharedSegments = 4;    //!< segments visible to all domains
    uint64_t segmentBytes = 4096;   //!< size of each segment
    double sharedFraction = 0.1;    //!< P(reference hits a shared segment)
    double writeFraction = 0.3;     //!< P(reference is a store)
    double jumpFraction = 0.05;     //!< P(jump to a new random segment)
    double localityMean = 16.0;     //!< mean sequential stride run length
    uint64_t switchInterval = 256;  //!< references per scheduling quantum
    uint64_t seed = 1;              //!< RNG seed (deterministic)
};

/**
 * Streaming generator of memory references with spatial locality,
 * cross-domain sharing, and round-robin domain scheduling.
 *
 * The virtual address layout places each segment at a unique 2^k-aligned
 * base so traces are directly usable by both the guarded-pointer memory
 * system and the baseline schemes.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const WorkloadConfig &config);

    /** Generate the next reference (advances domain scheduling). */
    MemRef next();

    /** Generate a whole trace of n references. */
    std::vector<MemRef> generate(uint64_t n);

    /** @return base virtual address of a domain's private segment. */
    uint64_t segmentBase(uint32_t domain, uint32_t segment) const;

    /** @return base virtual address of a shared segment. */
    uint64_t sharedBase(uint32_t segment) const;

    /** @return the currently scheduled domain. */
    uint32_t currentDomain() const { return currentDomain_; }

    /** @return total distinct segments (private + shared). */
    uint32_t totalSegments() const;

    const WorkloadConfig &config() const { return config_; }

  private:
    /** Per-domain cursor state for the locality model. */
    struct Cursor
    {
        uint32_t segment = 0;   //!< global segment index
        uint64_t offset = 0;    //!< byte offset within segment
        uint64_t runLeft = 0;   //!< remaining refs in sequential run
        uint64_t stride = 8;    //!< current stride in bytes
    };

    void pickNewRun(Cursor &cur, uint32_t domain);
    uint64_t segmentBaseByIndex(uint32_t global_index) const;

    WorkloadConfig config_;
    Rng rng_;
    std::vector<Cursor> cursors_;
    uint32_t currentDomain_ = 0;
    uint64_t quantumLeft_;
    uint64_t segmentStride_;
};

} // namespace gp::sim

#endif // GP_SIM_WORKLOAD_H
