/**
 * @file
 * Minimal JSON helpers for the observability layer.
 *
 * The simulator emits two machine-readable artifacts — Chrome
 * trace-event files and stats exports — and the tests must be able to
 * confirm they are well-formed without dragging in an external JSON
 * dependency. This header provides the two halves of that contract:
 *
 *  - jsonEscape(): escape a string for embedding in a JSON document
 *    (used by every writer in the repo);
 *  - jsonParse(): a strict recursive-descent validator for complete
 *    JSON documents (used by tests and the gpsim smoke checks).
 *
 * The validator intentionally builds no DOM: it answers only "would a
 * real parser accept this?", which is all the tests need.
 */

#ifndef GP_SIM_JSON_H
#define GP_SIM_JSON_H

#include <string>
#include <string_view>

namespace gp::sim {

/** @return s with ", \, control chars escaped for a JSON string body. */
std::string jsonEscape(std::string_view s);

/**
 * Strictly validate a complete JSON document (one value plus optional
 * surrounding whitespace).
 * @param error when non-null, receives a short reason on failure.
 * @return true iff the document is well-formed JSON.
 */
bool jsonParse(std::string_view text, std::string *error = nullptr);

} // namespace gp::sim

#endif // GP_SIM_JSON_H
