#include "sim/stats_registry.h"

#include <algorithm>

#include "sim/json.h"

namespace gp::sim {

StatRegistry &
StatRegistry::instance()
{
    // Function-local static: constructed before the first StatGroup
    // (its ctor calls in here) and therefore destroyed after the last
    // static-lifetime group unregisters.
    static StatRegistry registry;
    return registry;
}

void
StatRegistry::add(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu_);
    groups_.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(groups_.begin(), groups_.end(), group);
    if (it != groups_.end())
        groups_.erase(it);
}

void
StatRegistry::dumpAll(std::ostream &os) const
{
    for (const StatGroup *group : groups_)
        group->dump(os);
}

void
StatRegistry::resetAll()
{
    for (StatGroup *group : groups_)
        group->resetAll();
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    for (const StatGroup *group : groups_) {
        for (const auto &[name, ctr] : group->counters())
            snap[group->name() + "." + name] += ctr.value();
    }
    return snap;
}

StatSnapshot
StatRegistry::delta(const StatSnapshot &newer, const StatSnapshot &older)
{
    StatSnapshot out;
    for (const auto &[key, value] : newer) {
        auto it = older.find(key);
        const uint64_t base = it == older.end() ? 0 : it->second;
        out[key] = value >= base ? value - base : 0;
    }
    return out;
}

void
StatRegistry::dumpDelta(const StatSnapshot &base, std::ostream &os) const
{
    for (const auto &[key, value] : delta(snapshot(), base))
        os << key << " " << value << "\n";
}

void
StatRegistry::exportJson(std::ostream &os) const
{
    os << "{\"groups\":[";
    bool first_group = true;
    for (const StatGroup *group : groups_) {
        if (!first_group)
            os << ",";
        first_group = false;
        os << "{\"name\":\"" << jsonEscape(group->name())
           << "\",\"counters\":{";

        bool first = true;
        for (const auto &[name, ctr] : group->counters()) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << jsonEscape(name) << "\":" << ctr.value();
        }

        os << "},\"histograms\":{";
        first = true;
        for (const auto &[name, hist] : group->histograms()) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << jsonEscape(name) << "\":{"
               << "\"count\":" << hist.count()
               << ",\"sum\":" << hist.sum()
               << ",\"min\":" << hist.minValue()
               << ",\"max\":" << hist.maxValue()
               << ",\"mean\":" << hist.mean()
               << ",\"p50\":" << hist.percentile(50.0)
               << ",\"p99\":" << hist.p99()
               << ",\"p999\":" << hist.p999()
               << ",\"buckets\":[";
            const size_t n = hist.bucketCount() - 1;
            for (size_t i = 0; i < n; ++i) {
                if (i)
                    os << ",";
                os << "{\"lo\":" << hist.bucketLow(i)
                   << ",\"hi\":" << hist.bucketHigh(i)
                   << ",\"count\":" << hist.bucket(i) << "}";
            }
            os << "],\"overflow\":" << hist.bucket(n) << "}";
        }
        os << "}}";
    }
    os << "]}\n";
}

} // namespace gp::sim
