/**
 * @file
 * Process-wide statistics registry.
 *
 * Every StatGroup registers itself here for its lifetime (RAII in the
 * StatGroup ctor/dtor), giving drivers, benches, and tools a single
 * place to dump, reset, snapshot, and export the entire simulator's
 * stats — replacing hand-enumerated `x.stats().dump()` call lists.
 *
 * Capabilities:
 *  - dumpAll(): the uniform "group.name value" text format;
 *  - resetAll(): zero every live counter and histogram;
 *  - snapshot()/delta(): per-phase measurement for benches — capture
 *    counter values, run a phase, and read exact deltas;
 *  - exportJson(): machine-readable export with full histogram
 *    buckets, min/max/mean and p50/p99, consumed by
 *    `gpsim --stats-json` and `tools/statdiff.py`.
 */

#ifndef GP_SIM_STATS_REGISTRY_H
#define GP_SIM_STATS_REGISTRY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace gp::sim {

/**
 * Counter values at a point in time, keyed "group.counter". Values of
 * identically-named groups (e.g. two machines in one bench) are
 * summed.
 */
using StatSnapshot = std::map<std::string, uint64_t>;

/** The process-wide registry of live StatGroups. */
class StatRegistry
{
  public:
    static StatRegistry &instance();

    /** Register a group (called by the StatGroup ctor). */
    void add(StatGroup *group);

    /** Unregister a group (called by the StatGroup dtor). */
    void remove(StatGroup *group);

    /** All live groups, in registration order. */
    const std::vector<StatGroup *> &groups() const { return groups_; }

    /** Dump every live group in the uniform text format. */
    void dumpAll(std::ostream &os) const;

    /** Reset every live counter and histogram. */
    void resetAll();

    /** Capture current counter values for later delta(). */
    StatSnapshot snapshot() const;

    /**
     * Counter-wise difference newer - older (saturating at 0 for
     * counters that were reset in between). Keys present only in
     * `newer` keep their value; keys only in `older` are dropped.
     */
    static StatSnapshot delta(const StatSnapshot &newer,
                              const StatSnapshot &older);

    /** Dump the delta between now and a base snapshot as text. */
    void dumpDelta(const StatSnapshot &base, std::ostream &os) const;

    /**
     * Export every live group as one JSON document:
     *   {"groups":[{"name":...,"counters":{...},
     *               "histograms":{...}}, ...]}
     * Histograms carry count/sum/min/max/mean/p50/p99 plus the full
     * bucket list with bounds and an overflow count.
     */
    void exportJson(std::ostream &os) const;

  private:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    std::vector<StatGroup *> groups_;
    /// Guards groups_ mutation only: StatGroups may be constructed or
    /// destroyed on any host thread (e.g. objects created inside a
    /// sharded-mesh worker). Readers (dump/snapshot/export) stay
    /// unguarded — they run while the simulation is quiescent.
    std::mutex mu_;
};

} // namespace gp::sim

#endif // GP_SIM_STATS_REGISTRY_H
