/**
 * @file
 * Cycle-attribution profiler (gpprof backend).
 *
 * Attributes every simulated *cluster-cycle* to one CPI-stack
 * component — issue, compute, I-fetch, D-cache miss, TLB/page walk,
 * NoC round trip, ECC, retransmission, gate crossing, capability
 * check/decode, fault trap, or empty — and aggregates the result
 * (a) per PC, (b) per protection domain (code segment), and (c) per
 * interval, plus an interned call-gate stack so gpprof.py can render
 * collapsed-stack flamegraphs of cross-domain call chains.
 *
 * The accounting identity the whole design serves (and the tests
 * assert exactly): while armed, the component totals sum to
 * clusters x cycles — every cluster-cycle lands in exactly one
 * component, with no sampling and no residue. Per-cycle attribution
 * works because the machine's issue loop already knows, each cycle,
 * whether a cluster issued, was empty, or was blocked; in the blocked
 * case the profiler walks the blocking thread's current stall
 * timeline, a per-instruction segment list the machine and memory
 * layers record as the access is timed.
 *
 * Cost discipline: identical to FaultInjector/GP_TRACE — every hook
 * sits behind the static `Profiler::armed()` bool, so a build with
 * profiling off pays one predictable branch per hook site and
 * evaluates no arguments. Simulated timing is never touched; enabling
 * the profiler is observationally invisible (asserted by perfgate and
 * tests/integration/test_profile_workloads.cc).
 *
 * Like the FaultInjector, the profiler is a process-wide singleton:
 * arm it around ONE running machine at a time.
 */

#ifndef GP_SIM_PROFILE_H
#define GP_SIM_PROFILE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gp::sim {

/** CPI-stack components; every armed cluster-cycle lands in one. */
enum class ProfComp : uint8_t
{
    Issue = 0,  //!< a cluster issued an instruction this cycle
    Compute,    //!< execute latency (ALU/branch/multiply/jump)
    Check,      //!< capability check/decode work that COSTS cycles:
                //!< execute cycles of pointer-manipulation ops (LEA,
                //!< RESTRICT, ...). Per-access checks are free by
                //!< construction (paper SS2.2) so this slice stays
                //!< small — that headline claim, made measurable.
    IFetch,     //!< instruction-fetch memory time (hit + miss fill)
    DCache,     //!< data-access memory time (hit + miss fill + queue)
    TlbWalk,    //!< LTLB lookup + page-table walk on the miss path
    Noc,        //!< mesh request/reply flight time (remote misses)
    Ecc,        //!< ECC codec passes on the external interface
    Retransmit, //!< link-protocol retry timeouts
    Gate,       //!< enter-pointer gate-crossing execute cycles
    FaultTrap,  //!< software fault-handler trap latency
    Empty,      //!< no runnable thread in the cluster
    OtherStall, //!< blocked on a stall no layer itemised
};

inline constexpr unsigned kProfCompCount = 13;

/** @return stable lower-case component name ("issue", "dcache", ...). */
std::string_view profCompName(ProfComp comp);

/** Profiling aggregation modes (the CPI stack itself is always on). */
struct ProfileConfig
{
    bool pc = false;       //!< per-PC instruction/cycle attribution
    bool domain = false;   //!< per-protection-domain accounting
    bool interval = false; //!< time-series snapshots
    bool stacks = false;   //!< call-gate stacks (flamegraph export)
    uint64_t intervalCycles = 4096; //!< snapshot period
};

/** The process-wide cycle-attribution profiler. */
class Profiler
{
  public:
    static Profiler &instance();

    /** Single static-load hot-path guard (FaultInjector discipline). */
    static bool armed() { return armed_; }

    /**
     * Arm around a machine with the given shape. Resets all
     * aggregation state including registered domain/symbol names, so
     * arm first, then load programs (the kernel registers names on
     * every load; unarmed registrations cost a map insert and are
     * dropped by the next arm).
     */
    void arm(unsigned clusters, unsigned thread_slots,
             const ProfileConfig &config);

    /** Stop profiling; aggregated results remain readable. */
    void disarm();

    /** Drop aggregation state AND registered names (tests). */
    void reset();

    // ---- cold registration (loader / kernel / benches) -----------

    /** Name the protection domain whose code segment starts at base. */
    void registerDomain(uint64_t base, std::string name);

    /** Register an assembler label for PC attribution. */
    void registerSymbol(std::string name, uint64_t addr);

    // ---- access-segment scratch (memory layers, armed only) ------
    //
    // The machine opens a scratch timeline before each timed port
    // call; the layers it traverses append (component, cycles)
    // segments in timeline order; the machine then normalises the
    // scratch against the access's actual latency and folds it into
    // the issuing thread's record. String-free by design: the hot
    // paths pass enum components and integer lengths only.

    /** Reset the scratch timeline and set its base component. */
    void
    accBegin(ProfComp base)
    {
        accN_ = 0;
        accBase_ = base;
    }

    /** Append a segment of the access's base component (cache time). */
    void accBase(uint64_t len) { accSeg(accBase_, len); }

    /** Append a segment of an explicit component. */
    void
    accSeg(ProfComp comp, uint64_t len)
    {
        if (len == 0)
            return;
        if (accN_ > 0 && accSegs_[accN_ - 1].comp == comp) {
            accSegs_[accN_ - 1].len += len; // merge adjacent
            return;
        }
        if (accN_ == kMaxSegs) {
            accSegs_[kMaxSegs - 1].len += len; // clip, keep totals
            return;
        }
        accSegs_[accN_++] = Seg{comp, len};
    }

    /** Sum of scratch segment lengths (for leg-delta accounting). */
    uint64_t
    accTotal() const
    {
        uint64_t total = 0;
        for (uint32_t i = 0; i < accN_; ++i)
            total += accSegs_[i].len;
        return total;
    }

    // ---- machine hooks (armed only) ------------------------------

    /**
     * An instruction issued: open the thread's stall record at the
     * issue cycle. seg_base/seg_end delimit the IP's code segment —
     * the thread's protection-domain identity.
     */
    void beginInst(unsigned slot, uint64_t cycle, uint64_t pc,
                   uint64_t seg_base, uint64_t seg_end);

    /**
     * Fold the scratch timeline into the thread's record, normalised
     * to exactly `len` cycles: a shortfall is padded with the scratch
     * base component, an excess clipped, so records tile the
     * instruction's occupancy precisely whatever a layer recorded.
     */
    void flushAccess(unsigned slot, uint64_t len);

    /**
     * The instruction's occupancy ends at `done`; any cycles not yet
     * covered by segments are the execute tail of component `tail`.
     * Also folds the record into the per-PC and stack aggregates.
     */
    void endInst(unsigned slot, uint64_t done, ProfComp tail);

    /** The thread entered a recovered fault trap of `trap` cycles. */
    void noteTrap(unsigned slot, uint64_t cycle, uint64_t trap);

    /** The thread hung forever on a lost NoC request. */
    void noteHang(unsigned slot, uint64_t cycle);

    /**
     * One elidable check event under elideChecks mode: skipped under a
     * verifier proof (elided) or run in full (executed). Feeds the
     * elided-vs-executed split in the profile export.
     */
    void
    noteCheck(bool elided)
    {
        if (elided)
            checksElided_++;
        else
            checksExecuted_++;
    }

    // ---- per-cycle cluster attribution (armed only) --------------

    /** This cluster-cycle issued; attribute to the issuing thread. */
    void attrIssue(unsigned slot);

    /** No runnable thread in the cluster this cycle. */
    void
    attrEmpty()
    {
        comp_[unsigned(ProfComp::Empty)]++;
        clusterCycles_++;
    }

    /**
     * Cluster blocked: attribute the cycle to whatever the blocking
     * thread (the one that will unstall first) is waiting on.
     */
    void attrStall(unsigned slot, uint64_t cycle);

    /** Per-machine-cycle tick: drives the interval snapshots. */
    void tick(uint64_t cycle);

    // ---- results -------------------------------------------------

    uint64_t comp(ProfComp c) const { return comp_[unsigned(c)]; }
    /** Total attributed cluster-cycles (== clusters x cycles). */
    uint64_t clusterCycles() const { return clusterCycles_; }
    /** Machine cycles while armed (clusterCycles / clusters). */
    uint64_t cycles() const
    {
        return clusters_ ? clusterCycles_ / clusters_ : 0;
    }
    uint64_t instructions() const { return instructions_; }
    unsigned clusters() const { return clusters_; }

    /** Check events skipped under a verifier proof while armed. */
    uint64_t checksElided() const { return checksElided_; }
    /** Check events run in full under elideChecks mode while armed. */
    uint64_t checksExecuted() const { return checksExecuted_; }

    /** Non-empty cluster-cycles attributed to thread `slot`. */
    uint64_t threadCycles(unsigned slot) const
    {
        return threadCycles_[slot];
    }
    uint64_t threadInsts(unsigned slot) const
    {
        return threadInsts_[slot];
    }

    /** One protection domain's accumulated attribution. */
    struct DomainStats
    {
        uint64_t base = 0;   //!< code-segment base (0 = unknown)
        uint64_t end = 0;
        std::string name;
        uint64_t cycles = 0; //!< non-empty cluster-cycles
        uint64_t insts = 0;  //!< instructions issued
        uint64_t enters = 0; //!< times control entered this domain
    };
    const std::vector<DomainStats> &domains() const { return domains_; }

    /** Per-PC attribution (pc mode). */
    struct PcStats
    {
        uint64_t pc = 0;
        uint64_t insts = 0;
        uint64_t cycles = 0; //!< occupancy cycles of this static inst
        uint64_t comp[kProfCompCount] = {};
    };
    const std::vector<PcStats> &pcs() const { return pcs_; }

    /** One interned call-gate stack (stacks mode). */
    struct StackStats
    {
        std::vector<uint32_t> frames; //!< domain indices, outer first
        uint64_t cycles = 0;          //!< occupancy owned by the leaf
    };
    const std::vector<StackStats> &stacks() const { return stacks_; }

    /** One interval snapshot (interval mode). */
    struct Interval
    {
        uint64_t cycle = 0; //!< machine cycle at snapshot
        uint64_t insts = 0; //!< instructions in the interval
        uint64_t comp[kProfCompCount] = {}; //!< cluster-cycle deltas
    };
    const std::vector<Interval> &intervals() const { return intervals_; }

    /** Deterministic JSON export ("kind": "gpprof-profile"). */
    void exportJson(std::ostream &os) const;

    /** Human-readable CPI-stack summary (gpsim --profile). */
    void summary(std::ostream &os) const;

  private:
    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /// Longest itemised stall timeline per instruction; adjacent
    /// same-component segments merge, overflow clips into the last
    /// segment, so totals stay exact regardless.
    static constexpr uint32_t kMaxSegs = 16;

    struct Seg
    {
        ProfComp comp;
        uint64_t len;
    };

    /** Per-thread-slot record of the in-flight instruction. */
    struct SlotRec
    {
        bool valid = false;
        uint64_t start = 0; //!< issue cycle
        uint64_t pc = 0;
        uint32_t domain = 0;     //!< index into domains_
        uint32_t stack = 0;      //!< index into stacks_ (stacks mode)
        uint64_t domainBase = 0; //!< cached segment range for the
        uint64_t domainEnd = 0;  //!< fast same-domain path
        uint32_t nsegs = 0;
        Seg segs[kMaxSegs];
        std::vector<uint32_t> gateStack; //!< domain indices
    };

    void appendSeg(SlotRec &rec, ProfComp comp, uint64_t len);
    uint64_t recCovered(const SlotRec &rec) const;
    /** Slow path of beginInst: the IP changed code segments. */
    void resolveDomain(SlotRec &rec, uint64_t base, uint64_t end);
    uint32_t internDomain(uint64_t base, uint64_t end);
    uint32_t unknownDomain();
    uint32_t internStack(const std::vector<uint32_t> &frames);
    void snapshotInterval(uint64_t cycle);

    inline static bool armed_ = false;

    ProfileConfig config_;
    unsigned clusters_ = 0;

    uint64_t comp_[kProfCompCount] = {};
    uint64_t clusterCycles_ = 0;
    uint64_t instructions_ = 0;
    uint64_t checksElided_ = 0;
    uint64_t checksExecuted_ = 0;

    std::vector<SlotRec> recs_;
    std::vector<uint64_t> threadCycles_;
    std::vector<uint64_t> threadInsts_;

    // Access scratch (one timed port call in flight at a time).
    Seg accSegs_[kMaxSegs] = {};
    uint32_t accN_ = 0;
    ProfComp accBase_ = ProfComp::DCache;

    std::vector<DomainStats> domains_;
    std::unordered_map<uint64_t, uint32_t> domainIdx_; //!< by base
    std::map<uint64_t, std::string> domainNames_;      //!< registered

    std::vector<PcStats> pcs_;
    std::unordered_map<uint64_t, uint32_t> pcIdx_;

    std::vector<StackStats> stacks_;
    std::map<std::vector<uint32_t>, uint32_t> stackIdx_;

    std::vector<std::pair<std::string, uint64_t>> symbols_;

    std::vector<Interval> intervals_;
    uint64_t intervalComp_[kProfCompCount] = {}; //!< last snapshot
    uint64_t intervalInsts_ = 0;
};

} // namespace gp::sim

#endif // GP_SIM_PROFILE_H
