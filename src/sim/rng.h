/**
 * @file
 * Deterministic pseudo-random number generator used throughout the
 * simulator and the workload generators.
 *
 * Every stochastic component takes an explicitly seeded Rng so that runs
 * are reproducible; there is no global RNG state and no wall-clock
 * seeding anywhere in the code base (see DESIGN.md §4).
 *
 * The generator is xoshiro256** by Blackman & Vigna: small, fast, and of
 * far higher quality than the minimum this simulator needs.
 */

#ifndef GP_SIM_RNG_H
#define GP_SIM_RNG_H

#include <cstdint>

namespace gp::sim {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step: decorrelates consecutive seeds.
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a value uniform in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method (debiased).
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            const uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** @return a value uniform in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample a geometric-ish "locality" step: returns small values with
     * high probability, used by workload generators for spatial locality.
     * @param mean approximate mean of the distribution (must be >= 1).
     */
    uint64_t
    geometric(double mean)
    {
        // Inverse-CDF sampling of a geometric distribution with the
        // requested mean; degenerate means collapse to a constant 1.
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        double val = 1.0;
        double acc = p;
        while (u > acc && val < 1e6) {
            u -= acc;
            acc *= (1.0 - p);
            val += 1.0;
        }
        return static_cast<uint64_t>(val);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace gp::sim

#endif // GP_SIM_RNG_H
