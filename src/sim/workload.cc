#include "sim/workload.h"

#include "sim/log.h"

namespace gp::sim {

namespace {

/** Round up to the next power of two (minimum 1). */
uint64_t
nextPow2(uint64_t v)
{
    if (v <= 1)
        return 1;
    return uint64_t(1) << (64 - __builtin_clzll(v - 1));
}

} // namespace

TraceGenerator::TraceGenerator(const WorkloadConfig &config)
    : config_(config),
      rng_(config.seed),
      quantumLeft_(config.switchInterval)
{
    if (config_.numDomains == 0)
        fatal("workload: numDomains must be nonzero");
    if (config_.segmentsPerDomain == 0 && config_.sharedSegments == 0)
        fatal("workload: no segments configured");
    if (config_.segmentBytes == 0)
        fatal("workload: segmentBytes must be nonzero");

    // Segments are laid out contiguously at power-of-two aligned bases so
    // each maps exactly onto one guarded-pointer segment.
    segmentStride_ = nextPow2(config_.segmentBytes);

    cursors_.resize(config_.numDomains);
    for (uint32_t d = 0; d < config_.numDomains; ++d)
        pickNewRun(cursors_[d], d);
}

uint32_t
TraceGenerator::totalSegments() const
{
    return config_.numDomains * config_.segmentsPerDomain +
           config_.sharedSegments;
}

uint64_t
TraceGenerator::segmentBaseByIndex(uint32_t global_index) const
{
    // Leave segment 0's slot unused so address 0 is never generated.
    return (uint64_t(global_index) + 1) * segmentStride_;
}

uint64_t
TraceGenerator::segmentBase(uint32_t domain, uint32_t segment) const
{
    return segmentBaseByIndex(domain * config_.segmentsPerDomain + segment);
}

uint64_t
TraceGenerator::sharedBase(uint32_t segment) const
{
    return segmentBaseByIndex(
        config_.numDomains * config_.segmentsPerDomain + segment);
}

void
TraceGenerator::pickNewRun(Cursor &cur, uint32_t domain)
{
    const bool shared = config_.sharedSegments > 0 &&
                        (config_.segmentsPerDomain == 0 ||
                         rng_.chance(config_.sharedFraction));
    if (shared) {
        cur.segment = config_.numDomains * config_.segmentsPerDomain +
                      static_cast<uint32_t>(
                          rng_.below(config_.sharedSegments));
    } else {
        cur.segment = domain * config_.segmentsPerDomain +
                      static_cast<uint32_t>(
                          rng_.below(config_.segmentsPerDomain));
    }
    cur.offset = rng_.below(config_.segmentBytes) & ~uint64_t(7);
    cur.runLeft = rng_.geometric(config_.localityMean);
    cur.stride = 8;
}

MemRef
TraceGenerator::next()
{
    // Round-robin quantum scheduling across domains.
    if (quantumLeft_ == 0) {
        currentDomain_ = (currentDomain_ + 1) % config_.numDomains;
        quantumLeft_ = config_.switchInterval;
    }
    quantumLeft_--;

    Cursor &cur = cursors_[currentDomain_];
    if (cur.runLeft == 0 || rng_.chance(config_.jumpFraction))
        pickNewRun(cur, currentDomain_);
    cur.runLeft--;

    MemRef ref;
    ref.domain = currentDomain_;
    ref.segment = cur.segment;
    ref.isShared =
        cur.segment >= config_.numDomains * config_.segmentsPerDomain;
    ref.isWrite = rng_.chance(config_.writeFraction);
    ref.vaddr = segmentBaseByIndex(cur.segment) + cur.offset;

    cur.offset += cur.stride;
    if (cur.offset >= config_.segmentBytes)
        cur.offset = 0;

    return ref;
}

std::vector<MemRef>
TraceGenerator::generate(uint64_t n)
{
    std::vector<MemRef> trace;
    trace.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        trace.push_back(next());
    return trace;
}

} // namespace gp::sim
