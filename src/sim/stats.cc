#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"
#include "sim/stats_registry.h"

namespace gp::sim {

Histogram::Histogram(size_t bucket_count, uint64_t max)
    : buckets_(bucket_count + 1, 0),
      range_(std::max<uint64_t>(max, 1))
{
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

uint64_t
Histogram::bucketLow(size_t i) const
{
    const size_t n = buckets_.size() - 1;
    if (i >= n)
        return range_; // overflow bucket starts at the range bound
    return (i * range_) / n;
}

uint64_t
Histogram::bucketHigh(size_t i) const
{
    const size_t n = buckets_.size() - 1;
    if (i >= n)
        return UINT64_MAX; // overflow bucket is unbounded
    return ((i + 1) * range_) / n;
}

uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p <= 0.0)
        return minValue();
    if (p >= 100.0)
        return max_;

    uint64_t target = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    target = std::max<uint64_t>(target, 1);

    const size_t n = buckets_.size() - 1;
    uint64_t cum = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= target) {
            if (i == n)
                return max_; // overflow bucket: best bound is max
            // Rank-interpolate within the bucket: the target sample
            // is the (target - below)-th of buckets_[i] samples
            // assumed uniform over [low, high). Returning the upper
            // edge regardless of rank (the old behaviour) inflated
            // every percentile that landed early in a bucket — p50
            // of two equal samples came back at the bucket top.
            const uint64_t below = cum - buckets_[i];
            const double frac = static_cast<double>(target - 1 - below) /
                                static_cast<double>(buckets_[i]);
            const uint64_t low = bucketLow(i);
            const uint64_t high = bucketHigh(i);
            const uint64_t approx =
                low + static_cast<uint64_t>(
                          frac * static_cast<double>(high - low));
            // Clamp to the observed sample range so degenerate
            // distributions (all samples equal) report exactly.
            return std::clamp(approx, minValue(), max_);
        }
    }
    return max_;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
    StatRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    StatRegistry::instance().remove(this);
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, size_t buckets, uint64_t max)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(buckets, max)).first;
    }
    return it->second;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second.value();
    if (histograms_.count(name)) {
        panic("StatGroup::get(\"%s.%s\") names a histogram; use "
              "histogram(name).count()/mean()/percentile() instead",
              name_.c_str(), name.c_str());
    }
    return 0;
}

void
StatGroup::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
    for (auto &[name, hist] : histograms_)
        hist.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, ctr] : counters_) {
        os << name_ << "." << name << " " << ctr.value() << "\n";
    }
    for (const auto &[name, hist] : histograms_) {
        os << name_ << "." << name << ".count " << hist.count() << "\n";
        os << name_ << "." << name << ".mean " << hist.mean() << "\n";
        os << name_ << "." << name << ".min " << hist.minValue()
           << "\n";
        os << name_ << "." << name << ".max " << hist.maxValue()
           << "\n";
        os << name_ << "." << name << ".p50 " << hist.percentile(50.0)
           << "\n";
        os << name_ << "." << name << ".p99 " << hist.p99() << "\n";
        os << name_ << "." << name << ".p999 " << hist.p999() << "\n";
    }
}

} // namespace gp::sim
