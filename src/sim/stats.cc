#include "sim/stats.h"

#include <algorithm>

namespace gp::sim {

Histogram::Histogram(size_t bucket_count, uint64_t max)
    : buckets_(bucket_count + 1, 0),
      range_(std::max<uint64_t>(max, 1))
{
}

void
Histogram::sample(uint64_t value)
{
    const size_t n = buckets_.size() - 1;
    size_t idx;
    if (value >= range_) {
        idx = n; // overflow bucket
    } else {
        idx = static_cast<size_t>((value * n) / range_);
    }
    buckets_[idx]++;
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, size_t buckets, uint64_t max)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(buckets, max)).first;
    }
    return it->second;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
    for (auto &[name, hist] : histograms_)
        hist.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, ctr] : counters_) {
        os << name_ << "." << name << " " << ctr.value() << "\n";
    }
    for (const auto &[name, hist] : histograms_) {
        os << name_ << "." << name << ".count " << hist.count() << "\n";
        os << name_ << "." << name << ".mean " << hist.mean() << "\n";
    }
}

} // namespace gp::sim
