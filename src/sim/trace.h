/**
 * @file
 * Structured event tracing for the simulator (gem5-DPRINTF-style).
 *
 * Every simulated component emits cycle-stamped TraceEvents through the
 * process-wide TraceManager under one of eight categories. Emission is
 * near-zero-cost when a category is disabled: the GP_TRACE macro is a
 * single branch on a cached bitmask and does NOT evaluate its format
 * arguments when the category is off.
 *
 * Three sinks may be active simultaneously, each with its own category
 * mask:
 *
 *  - a human-readable text stream (gpsim --trace=cat,cat);
 *  - a Chrome trace-event JSON file loadable in Perfetto or
 *    chrome://tracing, with one track per cluster/thread and per cache
 *    bank (gpsim --trace-out=FILE);
 *  - a fixed-size ring buffer ("flight recorder") holding the last N
 *    events, dumped automatically when a thread terminates on an
 *    unhandled fault (gpsim --flight-recorder=N) — the
 *    capability-violation debugging story the fault taxonomy deserves.
 */

#ifndef GP_SIM_TRACE_H
#define GP_SIM_TRACE_H

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gp::sim {

/** Trace categories, one bit each (combine with |). */
enum class TraceCat : uint32_t
{
    Exec = 1u << 0,  //!< instruction issue/retire
    Mem = 1u << 1,   //!< loads/stores through the memory system
    Cache = 1u << 2, //!< bank hits/misses/conflicts/writebacks
    TLB = 1u << 3,   //!< miss-path translations and page walks
    Fault = 1u << 4, //!< protection faults with pointer bounds
    Gate = 1u << 5,  //!< enter-pointer gate crossings
    NoC = 1u << 6,   //!< mesh messages
    Sched = 1u << 7, //!< software scheduler job events
};

inline constexpr unsigned kTraceCatCount = 8;
inline constexpr uint32_t kTraceAllMask = (1u << kTraceCatCount) - 1;

/** @return stable lower-case category name ("exec", "cache", ...). */
std::string_view traceCatName(TraceCat cat);

/**
 * Parse a category list: "all" or a comma-separated subset of the
 * category names (case-insensitive). @return the mask, or nullopt on
 * an unknown name.
 */
std::optional<uint32_t> parseTraceMask(std::string_view spec);

/** One cycle-stamped trace record. */
struct TraceEvent
{
    uint64_t cycle = 0;
    TraceCat cat = TraceCat::Exec;
    uint32_t track = 0;  //!< thread id / cache bank / mesh node
    std::string name;    //!< short event name ("ld", "miss", "fault")
    std::string detail;  //!< formatted human-readable payload
};

/** The process-wide trace hub. */
class TraceManager
{
  public:
    static TraceManager &instance();

    /** Single-branch hot-path check on the cached bitmask. */
    static bool
    enabled(TraceCat cat)
    {
        return (mask_ & static_cast<uint32_t>(cat)) != 0;
    }

    /** @return true if any sink wants any category. */
    static bool anyEnabled() { return mask_ != 0; }

    /**
     * The current simulated cycle, maintained by the machine so layers
     * without direct cycle access (e.g. gp pointer ops) can stamp
     * events. Only updated while tracing is enabled.
     */
    void setCycle(uint64_t cycle) { cycle_ = cycle; }
    uint64_t cycle() const { return cycle_; }

    /** Attach (or detach, with nullptr) the text sink. */
    void setTextSink(std::ostream *os, uint32_t mask = kTraceAllMask);

    /**
     * Open a Chrome trace-event JSON sink. The file is streamed; call
     * closeJson() (or destroy the manager) to finalize it.
     * @return false if the file could not be opened.
     */
    bool openJson(const std::string &path,
                  uint32_t mask = kTraceAllMask);

    /** Finalize and close the Chrome JSON sink, if open. */
    void closeJson();

    /**
     * Give a (category, track) pair a descriptive Perfetto thread
     * name — e.g. the protection domain a thread slot runs — instead
     * of the default "thread 3"/"bank 1". Call any time before the
     * track's first event; names are emitted as thread_name metadata
     * events and JSON-escaped, so arbitrary strings are safe.
     */
    void setTrackName(TraceCat cat, uint32_t track, std::string name);

    /**
     * Arm the flight recorder: keep the last `depth` events matching
     * `mask`, and dump them to `dump_to` (default stderr) when
     * unhandledFault() fires. depth 0 disarms.
     */
    void setFlightRecorder(size_t depth,
                           uint32_t mask = kTraceAllMask,
                           std::ostream *dump_to = nullptr);

    /** Emit one event (fully formed). */
    void emit(TraceEvent ev);

    /** printf-style emission; the macro front end guards the cost. */
    void emitf(TraceCat cat, uint64_t cycle, uint32_t track,
               const char *name, const char *fmt, ...)
        __attribute__((format(printf, 6, 7)));

    /**
     * A thread terminated on an unhandled fault: dump the flight
     * recorder (if armed) to its configured stream.
     */
    void unhandledFault();

    /** Flight-recorder contents, oldest first (tests/tools). */
    std::vector<TraceEvent> ringEvents() const;

    /** Write the flight recorder as text, oldest first. */
    void dumpRing(std::ostream &os) const;

    /** Total events accepted by any sink since construction/reset. */
    uint64_t emittedCount() const { return emitted_; }

    /** Tear down all sinks and masks (tests, and between gpsim runs). */
    void reset();

    ~TraceManager();

  private:
    TraceManager() = default;
    TraceManager(const TraceManager &) = delete;
    TraceManager &operator=(const TraceManager &) = delete;

    void recomputeMask();
    void writeText(std::ostream &os, const TraceEvent &ev) const;
    void writeJson(const TraceEvent &ev);

    /// Union of the three sink masks; static so enabled() is one load.
    inline static uint32_t mask_ = 0;

    uint64_t cycle_ = 0;
    uint64_t emitted_ = 0;

    std::ostream *textOut_ = nullptr;
    uint32_t textMask_ = 0;

    std::ofstream jsonFile_;
    uint32_t jsonMask_ = 0;
    bool jsonFirst_ = true;
    /// (cat,track) pairs already given Chrome metadata name events
    std::map<std::pair<uint32_t, uint32_t>, bool> jsonTracksSeen_;
    /// Custom Perfetto thread names, keyed like jsonTracksSeen_
    std::map<std::pair<uint32_t, uint32_t>, std::string> trackNames_;

    std::vector<TraceEvent> ring_;
    size_t ringDepth_ = 0;
    size_t ringHead_ = 0;
    uint32_t ringMask_ = 0;
    std::ostream *ringDumpTo_ = nullptr;
};

} // namespace gp::sim

/**
 * Emit a trace event iff the category is enabled. Arguments after
 * `track` are NOT evaluated when the category is off — keep side
 * effects out of them.
 *
 * Usage: GP_TRACE(Cache, now, bank, "miss", "vaddr=0x%llx", va);
 */
#define GP_TRACE(cat, cycle, track, name, ...)                         \
    do {                                                               \
        if (::gp::sim::TraceManager::enabled(                          \
                ::gp::sim::TraceCat::cat)) {                           \
            ::gp::sim::TraceManager::instance().emitf(                 \
                ::gp::sim::TraceCat::cat, (cycle), (track), (name),    \
                __VA_ARGS__);                                          \
        }                                                              \
    } while (0)

#endif // GP_SIM_TRACE_H
