#include "sim/profile.h"

#include <algorithm>
#include <cstdio>

#include "sim/json.h"

namespace gp::sim {

std::string_view
profCompName(ProfComp comp)
{
    switch (comp) {
    case ProfComp::Issue: return "issue";
    case ProfComp::Compute: return "compute";
    case ProfComp::Check: return "check";
    case ProfComp::IFetch: return "ifetch";
    case ProfComp::DCache: return "dcache";
    case ProfComp::TlbWalk: return "tlbwalk";
    case ProfComp::Noc: return "noc";
    case ProfComp::Ecc: return "ecc";
    case ProfComp::Retransmit: return "retransmit";
    case ProfComp::Gate: return "gate";
    case ProfComp::FaultTrap: return "faulttrap";
    case ProfComp::Empty: return "empty";
    case ProfComp::OtherStall: return "otherstall";
    }
    return "?";
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::arm(unsigned clusters, unsigned thread_slots,
              const ProfileConfig &config)
{
    config_ = config;
    clusters_ = clusters;
    for (auto &c : comp_)
        c = 0;
    clusterCycles_ = 0;
    instructions_ = 0;
    checksElided_ = 0;
    checksExecuted_ = 0;
    recs_.assign(thread_slots, SlotRec{});
    threadCycles_.assign(thread_slots, 0);
    threadInsts_.assign(thread_slots, 0);
    accN_ = 0;
    domains_.clear();
    domainIdx_.clear();
    pcs_.clear();
    pcIdx_.clear();
    stacks_.clear();
    stackIdx_.clear();
    domainNames_.clear();
    symbols_.clear();
    intervals_.clear();
    for (auto &c : intervalComp_)
        c = 0;
    intervalInsts_ = 0;
    armed_ = true;
}

void
Profiler::disarm()
{
    armed_ = false;
}

void
Profiler::reset()
{
    disarm();
    recs_.clear();
    threadCycles_.clear();
    threadInsts_.clear();
    domains_.clear();
    domainIdx_.clear();
    domainNames_.clear();
    pcs_.clear();
    pcIdx_.clear();
    stacks_.clear();
    stackIdx_.clear();
    symbols_.clear();
    intervals_.clear();
    for (auto &c : comp_)
        c = 0;
    clusterCycles_ = 0;
    instructions_ = 0;
    checksElided_ = 0;
    checksExecuted_ = 0;
    clusters_ = 0;
}

void
Profiler::registerDomain(uint64_t base, std::string name)
{
    domainNames_[base] = std::move(name);
    // Rename an already-interned domain so registration order (before
    // vs after first execution) never changes the export.
    auto it = domainIdx_.find(base);
    if (it != domainIdx_.end())
        domains_[it->second].name = domainNames_[base];
}

void
Profiler::registerSymbol(std::string name, uint64_t addr)
{
    symbols_.emplace_back(std::move(name), addr);
}

uint32_t
Profiler::internDomain(uint64_t base, uint64_t end)
{
    auto it = domainIdx_.find(base);
    if (it != domainIdx_.end())
        return it->second;
    DomainStats d;
    d.base = base;
    d.end = end;
    auto name_it = domainNames_.find(base);
    if (name_it != domainNames_.end())
        d.name = name_it->second;
    uint32_t idx = uint32_t(domains_.size());
    domains_.push_back(std::move(d));
    domainIdx_.emplace(base, idx);
    return idx;
}

uint32_t
Profiler::internStack(const std::vector<uint32_t> &frames)
{
    auto it = stackIdx_.find(frames);
    if (it != stackIdx_.end())
        return it->second;
    StackStats s;
    s.frames = frames;
    uint32_t idx = uint32_t(stacks_.size());
    stacks_.push_back(std::move(s));
    stackIdx_.emplace(stacks_[idx].frames, idx);
    return idx;
}

void
Profiler::resolveDomain(SlotRec &rec, uint64_t base, uint64_t end)
{
    uint32_t prev = rec.valid || !rec.gateStack.empty() ? rec.domain
                                                        : UINT32_MAX;
    rec.domain = internDomain(base, end);
    rec.domainBase = base;
    rec.domainEnd = end;
    domains_[rec.domain].enters++;
    if (!config_.stacks)
        return;
    // Call-gate stack: entering a domain already on the stack is a
    // return through it (pop back to it); otherwise it's a call
    // (push). The very first instruction seeds the stack.
    auto &st = rec.gateStack;
    auto pos = std::find(st.begin(), st.end(), rec.domain);
    if (pos != st.end()) {
        st.erase(pos + 1, st.end());
    } else {
        if (prev == UINT32_MAX)
            st.clear();
        st.push_back(rec.domain);
        if (st.size() > 64) // runaway guard: keep the leaf-most frames
            st.erase(st.begin());
    }
    rec.stack = internStack(st);
}

void
Profiler::appendSeg(SlotRec &rec, ProfComp comp, uint64_t len)
{
    if (len == 0)
        return;
    if (rec.nsegs > 0 && rec.segs[rec.nsegs - 1].comp == comp) {
        rec.segs[rec.nsegs - 1].len += len;
        return;
    }
    if (rec.nsegs == kMaxSegs) {
        rec.segs[kMaxSegs - 1].len += len;
        return;
    }
    rec.segs[rec.nsegs++] = Seg{comp, len};
}

uint64_t
Profiler::recCovered(const SlotRec &rec) const
{
    uint64_t covered = 0;
    for (uint32_t i = 0; i < rec.nsegs; ++i)
        covered += rec.segs[i].len;
    return covered;
}

void
Profiler::beginInst(unsigned slot, uint64_t cycle, uint64_t pc,
                    uint64_t seg_base, uint64_t seg_end)
{
    SlotRec &rec = recs_[slot];
    bool same_domain = rec.valid && seg_base == rec.domainBase;
    rec.valid = true;
    rec.start = cycle;
    rec.pc = pc;
    rec.nsegs = 0;
    if (!same_domain)
        resolveDomain(rec, seg_base, seg_end);
    instructions_++;
    intervalInsts_++;
    threadInsts_[slot]++;
    domains_[rec.domain].insts++;
}

void
Profiler::flushAccess(unsigned slot, uint64_t len)
{
    SlotRec &rec = recs_[slot];
    if (!rec.valid)
        return;
    // Normalise the scratch timeline against the access's actual
    // latency: pad shortfall with the base component, clip excess, so
    // the record tiles exactly `len` cycles however much (or little)
    // the traversed layers itemised.
    uint64_t remaining = len;
    for (uint32_t i = 0; i < accN_ && remaining; ++i) {
        uint64_t take = std::min(accSegs_[i].len, remaining);
        appendSeg(rec, accSegs_[i].comp, take);
        remaining -= take;
    }
    if (remaining)
        appendSeg(rec, accBase_, remaining);
    accN_ = 0;
}

void
Profiler::endInst(unsigned slot, uint64_t done, ProfComp tail)
{
    SlotRec &rec = recs_[slot];
    if (!rec.valid)
        return;
    uint64_t span = done > rec.start ? done - rec.start : 0;
    uint64_t covered = recCovered(rec);
    if (covered < span) {
        appendSeg(rec, tail, span - covered);
    } else if (covered > span) {
        // Clip from the back so the record never outlives occupancy.
        uint64_t excess = covered - span;
        while (excess && rec.nsegs) {
            Seg &last = rec.segs[rec.nsegs - 1];
            uint64_t cut = std::min(last.len, excess);
            last.len -= cut;
            excess -= cut;
            if (last.len == 0)
                rec.nsegs--;
        }
    }
    if (config_.pc) {
        auto [it, fresh] = pcIdx_.try_emplace(rec.pc,
                                              uint32_t(pcs_.size()));
        if (fresh) {
            pcs_.emplace_back();
            pcs_.back().pc = rec.pc;
        }
        PcStats &ps = pcs_[it->second];
        ps.insts++;
        ps.cycles += span;
        // The issue cycle itself is Issue; the remaining occupancy
        // follows the segment timeline.
        uint64_t skip = span ? 1 : 0;
        if (skip)
            ps.comp[unsigned(ProfComp::Issue)]++;
        for (uint32_t i = 0; i < rec.nsegs; ++i) {
            uint64_t len = rec.segs[i].len;
            uint64_t eat = std::min(skip, len);
            skip -= eat;
            ps.comp[unsigned(rec.segs[i].comp)] += len - eat;
        }
    }
    if (config_.stacks && rec.stack < stacks_.size())
        stacks_[rec.stack].cycles += span;
}

void
Profiler::noteTrap(unsigned slot, uint64_t cycle, uint64_t trap)
{
    // A recovered fault: the thread's next `trap` stall cycles are
    // handler latency. Open a fresh record (the faulting instruction
    // did not retire through endInst) owned by the current domain.
    SlotRec &rec = recs_[slot];
    if (!rec.valid)
        return;
    rec.start = cycle;
    rec.nsegs = 0;
    appendSeg(rec, ProfComp::FaultTrap, trap);
}

void
Profiler::noteHang(unsigned slot, uint64_t cycle)
{
    // A lost NoC request with retransmission off: the thread stalls
    // forever. Tile the rest of time with Noc so attrStall always
    // finds a component.
    SlotRec &rec = recs_[slot];
    if (!rec.valid)
        return;
    rec.start = cycle;
    rec.nsegs = 0;
    appendSeg(rec, ProfComp::Noc, UINT64_MAX - cycle);
}

uint32_t
Profiler::unknownDomain()
{
    // Busy cycles no instruction record can own (a thread whose very
    // first fetch faulted or hung): attributed to a synthetic domain
    // so the per-domain identity sum(domains) == busy cycles is
    // unconditional.
    const uint32_t idx = internDomain(0, 0);
    if (domains_[idx].name.empty())
        domains_[idx].name = "unknown";
    return idx;
}

void
Profiler::attrIssue(unsigned slot)
{
    comp_[unsigned(ProfComp::Issue)]++;
    clusterCycles_++;
    threadCycles_[slot]++;
    SlotRec &rec = recs_[slot];
    domains_[rec.valid ? rec.domain : unknownDomain()].cycles++;
}

void
Profiler::attrStall(unsigned slot, uint64_t cycle)
{
    clusterCycles_++;
    threadCycles_[slot]++;
    SlotRec &rec = recs_[slot];
    ProfComp comp = ProfComp::OtherStall;
    if (!rec.valid) {
        domains_[unknownDomain()].cycles++;
    } else {
        domains_[rec.domain].cycles++;
        uint64_t off = cycle - rec.start;
        for (uint32_t i = 0; i < rec.nsegs; ++i) {
            if (off < rec.segs[i].len) {
                comp = rec.segs[i].comp;
                break;
            }
            off -= rec.segs[i].len;
        }
    }
    comp_[unsigned(comp)]++;
}

void
Profiler::tick(uint64_t cycle)
{
    if (config_.interval && config_.intervalCycles &&
        cycle % config_.intervalCycles == 0 && cycle != 0)
        snapshotInterval(cycle);
}

void
Profiler::snapshotInterval(uint64_t cycle)
{
    Interval iv;
    iv.cycle = cycle;
    iv.insts = intervalInsts_;
    intervalInsts_ = 0;
    for (unsigned i = 0; i < kProfCompCount; ++i) {
        iv.comp[i] = comp_[i] - intervalComp_[i];
        intervalComp_[i] = comp_[i];
    }
    intervals_.push_back(iv);
}

namespace {

void
writeCompObject(std::ostream &os, const uint64_t comp[kProfCompCount])
{
    os << "{";
    for (unsigned i = 0; i < kProfCompCount; ++i) {
        if (i)
            os << ", ";
        os << "\"" << profCompName(ProfComp(i)) << "\": " << comp[i];
    }
    os << "}";
}

} // namespace

void
Profiler::exportJson(std::ostream &os) const
{
    os << "{\n  \"kind\": \"gpprof-profile\",\n";
    os << "  \"clusters\": " << clusters_ << ",\n";
    os << "  \"cycles\": " << cycles() << ",\n";
    os << "  \"cluster_cycles\": " << clusterCycles_ << ",\n";
    os << "  \"instructions\": " << instructions_ << ",\n";
    os << "  \"checks_elided\": " << checksElided_ << ",\n";
    os << "  \"checks_executed\": " << checksExecuted_ << ",\n";
    os << "  \"components\": ";
    writeCompObject(os, comp_);
    os << ",\n";

    os << "  \"domains\": [";
    for (size_t i = 0; i < domains_.size(); ++i) {
        const DomainStats &d = domains_[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"name\": \"" << jsonEscape(d.name) << "\", "
           << "\"base\": " << d.base << ", "
           << "\"end\": " << d.end << ", "
           << "\"cycles\": " << d.cycles << ", "
           << "\"instructions\": " << d.insts << ", "
           << "\"enters\": " << d.enters << "}";
    }
    os << (domains_.empty() ? "]" : "\n  ]");

    if (config_.pc) {
        // Sort by PC for a deterministic, diff-friendly export.
        std::vector<uint32_t> order(pcs_.size());
        for (uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      return pcs_[a].pc < pcs_[b].pc;
                  });
        os << ",\n  \"pcs\": [";
        for (size_t i = 0; i < order.size(); ++i) {
            const PcStats &p = pcs_[order[i]];
            os << (i ? ",\n    " : "\n    ");
            os << "{\"pc\": " << p.pc << ", "
               << "\"instructions\": " << p.insts << ", "
               << "\"cycles\": " << p.cycles << ", "
               << "\"components\": ";
            writeCompObject(os, p.comp);
            os << "}";
        }
        os << (order.empty() ? "]" : "\n  ]");
        os << ",\n  \"symbols\": [";
        for (size_t i = 0; i < symbols_.size(); ++i) {
            os << (i ? ",\n    " : "\n    ");
            os << "{\"name\": \"" << jsonEscape(symbols_[i].first)
               << "\", \"addr\": " << symbols_[i].second << "}";
        }
        os << (symbols_.empty() ? "]" : "\n  ]");
    }

    if (config_.stacks) {
        os << ",\n  \"stacks\": [";
        for (size_t i = 0; i < stacks_.size(); ++i) {
            const StackStats &s = stacks_[i];
            os << (i ? ",\n    " : "\n    ");
            os << "{\"frames\": [";
            for (size_t f = 0; f < s.frames.size(); ++f)
                os << (f ? ", " : "") << s.frames[f];
            os << "], \"cycles\": " << s.cycles << "}";
        }
        os << (stacks_.empty() ? "]" : "\n  ]");
    }

    if (config_.interval) {
        os << ",\n  \"interval_cycles\": " << config_.intervalCycles;
        os << ",\n  \"intervals\": [";
        for (size_t i = 0; i < intervals_.size(); ++i) {
            const Interval &iv = intervals_[i];
            os << (i ? ",\n    " : "\n    ");
            os << "{\"cycle\": " << iv.cycle << ", "
               << "\"instructions\": " << iv.insts << ", "
               << "\"components\": ";
            writeCompObject(os, iv.comp);
            os << "}";
        }
        os << (intervals_.empty() ? "]" : "\n  ]");
    }

    os << "\n}\n";
}

void
Profiler::summary(std::ostream &os) const
{
    os << "gpprof CPI stack (" << clusters_ << " clusters, "
       << cycles() << " cycles, " << instructions_
       << " instructions)\n";
    uint64_t total = clusterCycles_;
    if (total == 0)
        total = 1;
    for (unsigned i = 0; i < kProfCompCount; ++i) {
        if (comp_[i] == 0)
            continue;
        double pct = 100.0 * double(comp_[i]) / double(total);
        double cpi = instructions_
                         ? double(comp_[i]) / double(instructions_)
                         : 0.0;
        char line[128];
        std::snprintf(line, sizeof line,
                      "  %-10s %14llu  %6.2f%%  CPI %.4f\n",
                      std::string(profCompName(ProfComp(i))).c_str(),
                      (unsigned long long)comp_[i], pct, cpi);
        os << line;
    }
    os << "  total cluster-cycles " << clusterCycles_ << "\n";
    if (checksElided_ || checksExecuted_) {
        os << "  checks elided " << checksElided_ << " / executed "
           << checksExecuted_ << " (verifier-proven elision)\n";
    }
    if (!domains_.empty()) {
        os << "gpprof domains\n";
        for (const DomainStats &d : domains_) {
            os << "  " << (d.name.empty() ? "?" : d.name) << " @0x"
               << std::hex << d.base << std::dec << ": " << d.cycles
               << " cycles, " << d.insts << " insts, " << d.enters
               << " enters\n";
        }
    }
}

} // namespace gp::sim
