#include "sim/json.h"

#include <cctype>
#include <cstdio>

namespace gp::sim {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Strict recursive-descent JSON validator over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_ && error_->empty()) {
            *error_ = why;
            *error_ += " at offset " + std::to_string(pos_);
        }
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            pos_++;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    value()
    {
        if (atEnd())
            return fail("unexpected end of input");
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        bool ok;
        switch (peek()) {
          case '{':
            ok = object();
            break;
          case '[':
            ok = array();
            break;
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
            break;
        }
        depth_--;
        return ok;
    }

    bool
    object()
    {
        pos_++; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':'");
            pos_++;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == '}') {
                pos_++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        pos_++; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == ']') {
                pos_++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string()
    {
        pos_++; // opening quote
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == '"') {
                pos_++;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                pos_++;
                if (atEnd())
                    break;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return fail("bad escape character");
                }
            }
            pos_++;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (!atEnd() && peek() == '-')
            pos_++;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected a value");
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
            pos_++;
        if (!atEnd() && peek() == '.') {
            pos_++;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digits required after '.'");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            pos_++;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                pos_++;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digits required in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        return pos_ > start;
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
jsonParse(std::string_view text, std::string *error)
{
    return Parser(text, error).run();
}

} // namespace gp::sim
