/**
 * @file
 * Lightweight statistics package for the simulator.
 *
 * Components own named Counter / Histogram objects grouped in a
 * StatGroup; groups can be dumped in a uniform text format by tests,
 * examples, and the bench harness. This mirrors (in miniature) the role
 * of the gem5 stats package: every architectural event of interest is
 * counted, and experiments read results from stats rather than ad-hoc
 * printfs.
 */

#ifndef GP_SIM_STATS_H
#define GP_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gp::sim {

/** A monotonically increasing (or explicitly settable) event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }

    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/**
 * A fixed-bucket histogram over a [0, max) range with uniform buckets,
 * plus an overflow bucket. Tracks count/sum/min/max for summary stats.
 */
class Histogram
{
  public:
    /**
     * @param bucket_count number of uniform buckets.
     * @param max upper bound of the bucketed range; samples >= max land
     *            in the overflow bucket.
     */
    Histogram(size_t bucket_count = 16, uint64_t max = 16);

    /** Record one sample. Inline: histogram sampling sits on
     * per-event hot paths (bank-conflict waits, miss latencies), so
     * it must not cost a function call per event. */
    void
    sample(uint64_t value)
    {
        const size_t n = buckets_.size() - 1;
        const size_t idx =
            value >= range_
                ? n // overflow bucket
                : static_cast<size_t>((value * n) / range_);
        buckets_[idx]++;
        count_++;
        sum_ += value;
        min_ = value < min_ ? value : min_;
        max_ = value > max_ ? value : max_;
    }

    /** Discard all samples. */
    void reset();

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    /** Smallest recorded sample; 0 when no samples were recorded. */
    uint64_t minValue() const { return count_ == 0 ? 0 : min_; }
    uint64_t maxValue() const { return max_; }
    double mean() const;

    /**
     * Approximate p-th percentile (p in [0, 100]) from the bucket
     * boundaries: returns the inclusive upper edge of the bucket
     * containing the p-th sample, clamped to [min, max]; samples in
     * the overflow bucket resolve to maxValue(). 0 when empty.
     */
    uint64_t percentile(double p) const;

    /** Tail-latency accessors (ROADMAP item 4 groundwork). */
    uint64_t p99() const { return percentile(99.0); }
    uint64_t p999() const { return percentile(99.9); }

    /** @return number of samples in bucket i (the last is overflow). */
    uint64_t bucket(size_t i) const { return buckets_.at(i); }
    size_t bucketCount() const { return buckets_.size(); }

    /** Inclusive lower bound of bucket i (the last is overflow). */
    uint64_t bucketLow(size_t i) const;

    /** Exclusive upper bound of bucket i (UINT64_MAX for overflow). */
    uint64_t bucketHigh(size_t i) const;

    /** Upper bound of the bucketed range (overflow threshold). */
    uint64_t range() const { return range_; }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t range_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

/**
 * A named collection of counters and histograms owned by one simulated
 * component. Registration hands out references that stay valid for the
 * life of the group.
 *
 * Every StatGroup automatically registers itself with the process-wide
 * StatRegistry (sim/stats_registry.h) for its lifetime, so drivers can
 * dump/export every live stat without hand-enumerating components.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (or fetch) the counter with the given name. */
    Counter &counter(const std::string &name);

    /** Create (or fetch) the histogram with the given name. */
    Histogram &histogram(const std::string &name, size_t buckets = 16,
                         uint64_t max = 16);

    /**
     * @return the counter's current value, or 0 if never created.
     * Counter names only: asking for a name registered as a histogram
     * is a programming error and panics — use histogram(name) and its
     * count()/mean()/percentile() accessors instead.
     */
    uint64_t get(const std::string &name) const;

    /** Reset every counter and histogram in the group. */
    void resetAll();

    /**
     * Write all stats as "group.name value" lines. Histograms emit
     * .count/.mean/.min/.max/.p50/.p99 summary lines.
     */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** All counters, for the registry/export layers. */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** All histograms, for the registry/export layers. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace gp::sim

#endif // GP_SIM_STATS_H
