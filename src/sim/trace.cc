#include "sim/trace.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <iostream>

#include "sim/json.h"

namespace gp::sim {

namespace {

struct CatInfo
{
    TraceCat cat;
    std::string_view name;
    std::string_view trackKind; //!< what a track id means in this cat
};

constexpr CatInfo kCats[kTraceCatCount] = {
    {TraceCat::Exec, "exec", "thread"},
    {TraceCat::Mem, "mem", "bank"},
    {TraceCat::Cache, "cache", "bank"},
    {TraceCat::TLB, "tlb", "bank"},
    {TraceCat::Fault, "fault", "thread"},
    {TraceCat::Gate, "gate", "thread"},
    {TraceCat::NoC, "noc", "node"},
    {TraceCat::Sched, "sched", "job"},
};

const CatInfo &
infoOf(TraceCat cat)
{
    for (const CatInfo &info : kCats) {
        if (info.cat == cat)
            return info;
    }
    return kCats[0]; // unreachable for valid single-bit categories
}

/** 1-based Chrome "pid" for a category (pid 0 renders oddly). */
unsigned
pidOf(TraceCat cat)
{
    unsigned bit = 0;
    uint32_t v = static_cast<uint32_t>(cat);
    while (v > 1) {
        v >>= 1;
        bit++;
    }
    return bit + 1;
}

std::string
lower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

std::string_view
traceCatName(TraceCat cat)
{
    return infoOf(cat).name;
}

std::optional<uint32_t>
parseTraceMask(std::string_view spec)
{
    if (lower(spec) == "all")
        return kTraceAllMask;

    uint32_t mask = 0;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string_view::npos)
            comma = spec.size();
        const std::string tok =
            lower(spec.substr(start, comma - start));
        if (!tok.empty()) {
            bool found = false;
            for (const CatInfo &info : kCats) {
                if (tok == info.name) {
                    mask |= static_cast<uint32_t>(info.cat);
                    found = true;
                    break;
                }
            }
            if (!found)
                return std::nullopt;
        }
        start = comma + 1;
        if (comma == spec.size())
            break;
    }
    return mask == 0 ? std::nullopt : std::optional<uint32_t>(mask);
}

TraceManager &
TraceManager::instance()
{
    static TraceManager mgr;
    return mgr;
}

TraceManager::~TraceManager()
{
    closeJson();
}

void
TraceManager::recomputeMask()
{
    mask_ = textMask_ | jsonMask_ | ringMask_;
}

void
TraceManager::setTextSink(std::ostream *os, uint32_t mask)
{
    textOut_ = os;
    textMask_ = os ? mask : 0;
    recomputeMask();
}

bool
TraceManager::openJson(const std::string &path, uint32_t mask)
{
    closeJson();
    jsonFile_.open(path, std::ios::trunc);
    if (!jsonFile_)
        return false;
    jsonFile_ << "{\"traceEvents\":[";
    jsonFirst_ = true;
    jsonTracksSeen_.clear();
    jsonMask_ = mask;
    recomputeMask();
    return true;
}

void
TraceManager::closeJson()
{
    if (jsonFile_.is_open()) {
        jsonFile_ << "],\"displayTimeUnit\":\"ns\"}\n";
        jsonFile_.close();
    }
    jsonMask_ = 0;
    recomputeMask();
}

void
TraceManager::setFlightRecorder(size_t depth, uint32_t mask,
                                std::ostream *dump_to)
{
    ring_.clear();
    ringHead_ = 0;
    ringDepth_ = depth;
    ringMask_ = depth > 0 ? mask : 0;
    ringDumpTo_ = dump_to;
    ring_.reserve(depth);
    recomputeMask();
}

void
TraceManager::writeText(std::ostream &os, const TraceEvent &ev) const
{
    const CatInfo &info = infoOf(ev.cat);
    char head[96];
    std::snprintf(head, sizeof(head), "[%8llu] %-5s %s%u: %-10s ",
                  static_cast<unsigned long long>(ev.cycle),
                  std::string(info.name).c_str(),
                  std::string(info.trackKind, 0, 1).c_str(), ev.track,
                  ev.name.c_str());
    os << head << ev.detail << "\n";
}

void
TraceManager::writeJson(const TraceEvent &ev)
{
    const CatInfo &info = infoOf(ev.cat);
    const unsigned pid = pidOf(ev.cat);

    // First event on a (category, track) pair: name the Perfetto
    // process (category) and thread (track) so the UI shows e.g.
    // "cache / bank 2" and "exec / thread 5".
    auto key = std::make_pair(static_cast<uint32_t>(ev.cat), ev.track);
    if (!jsonTracksSeen_.count(key)) {
        jsonTracksSeen_[key] = true;
        if (!jsonFirst_)
            jsonFile_ << ",";
        jsonFirst_ = false;
        // A registered custom name (e.g. the protection domain the
        // thread slot runs) wins over the generic "thread 5"; both
        // go through jsonEscape so quotes/backslashes in names can
        // never break the trace file.
        std::string tname;
        if (auto it = trackNames_.find(key); it != trackNames_.end()) {
            tname = it->second;
        } else {
            tname = std::string(info.trackKind) + " " +
                    std::to_string(ev.track);
        }
        jsonFile_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                  << pid << ",\"tid\":0,\"args\":{\"name\":\""
                  << jsonEscape(info.name) << "\"}},"
                  << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << pid << ",\"tid\":" << ev.track
                  << ",\"args\":{\"name\":\"" << jsonEscape(tname)
                  << "\"}}";
    }

    if (!jsonFirst_)
        jsonFile_ << ",";
    jsonFirst_ = false;
    jsonFile_ << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
              << info.name << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
              << ev.cycle << ",\"pid\":" << pid
              << ",\"tid\":" << ev.track << ",\"args\":{\"detail\":\""
              << jsonEscape(ev.detail) << "\"}}";
}

void
TraceManager::emit(TraceEvent ev)
{
    const uint32_t bit = static_cast<uint32_t>(ev.cat);
    emitted_++;

    if ((textMask_ & bit) && textOut_)
        writeText(*textOut_, ev);
    if ((jsonMask_ & bit) && jsonFile_.is_open())
        writeJson(ev);
    if (ringMask_ & bit) {
        if (ring_.size() < ringDepth_) {
            ring_.push_back(std::move(ev));
        } else {
            ring_[ringHead_] = std::move(ev);
            ringHead_ = (ringHead_ + 1) % ringDepth_;
        }
    }
}

void
TraceManager::emitf(TraceCat cat, uint64_t cycle, uint32_t track,
                    const char *name, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);

    TraceEvent ev;
    ev.cycle = cycle;
    ev.cat = cat;
    ev.track = track;
    ev.name = name;
    ev.detail = buf;
    emit(std::move(ev));
}

std::vector<TraceEvent>
TraceManager::ringEvents() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(ringHead_ + i) % ring_.size()]);
    return out;
}

void
TraceManager::dumpRing(std::ostream &os) const
{
    os << "=== flight recorder: last " << ring_.size()
       << " event(s) ===\n";
    for (const TraceEvent &ev : ringEvents())
        writeText(os, ev);
    os << "=== end flight recorder ===\n";
}

void
TraceManager::unhandledFault()
{
    if (ringDepth_ == 0 || ring_.empty())
        return;
    dumpRing(ringDumpTo_ ? *ringDumpTo_ : std::cerr);
}

void
TraceManager::reset()
{
    closeJson();
    textOut_ = nullptr;
    textMask_ = 0;
    ring_.clear();
    ringDepth_ = 0;
    ringHead_ = 0;
    ringMask_ = 0;
    ringDumpTo_ = nullptr;
    trackNames_.clear();
    cycle_ = 0;
    emitted_ = 0;
    recomputeMask();
}

void
TraceManager::setTrackName(TraceCat cat, uint32_t track,
                           std::string name)
{
    trackNames_[{static_cast<uint32_t>(cat), track}] =
        std::move(name);
}

} // namespace gp::sim
