/**
 * @file
 * The guarded-pointer operation set (paper §2.2).
 *
 * These functions model the checking hardware exactly: one permission
 * decoder, one masked comparator for bounds (Fig. 2), and a small
 * amount of random logic. Each returns a Result whose fault, when
 * non-None, the ISA layer delivers as an architectural exception.
 *
 * Privilege is not checked here: SETPTR is privileged at the ISA level
 * (only reachable with an execute-privileged instruction pointer), and
 * everything else is unprivileged by design.
 */

#ifndef GP_GP_OPS_H
#define GP_GP_OPS_H

#include "gp/fault.h"
#include "gp/pointer.h"
#include "gp/word.h"

namespace gp {

/** Kinds of memory access subject to permission checking. */
enum class Access : uint8_t
{
    Load,
    Store,
    InstFetch,
};

/**
 * LEA: derive ptr + delta, faulting if the result leaves the segment.
 *
 * The bounds check is the masked comparator of §4.1: fault iff any bit
 * of the fixed (segment) portion of the address changed. Enter and key
 * pointers are immutable and fault immediately.
 */
Result<Word> lea(Word ptr, int64_t delta);

/**
 * LEAB: derive segment_base + delta. Equivalent to rewinding the
 * pointer to its base before the add; same checks as lea().
 */
Result<Word> leab(Word ptr, int64_t delta);

/**
 * RESTRICT: replace the permission field with target, allowed only when
 * target's rights are a strict subset of the pointer's rights. Enter
 * and key pointers may not be modified at all.
 */
Result<Word> restrictPerm(Word ptr, Perm target);

/**
 * SUBSEG: replace the length field with new_len_log2, allowed only when
 * it is strictly smaller than the current length. The new segment is
 * the aligned 2^new_len_log2 region containing the current address.
 */
Result<Word> subseg(Word ptr, uint64_t new_len_log2);

/**
 * SETPTR: turn raw integer bits into a tagged pointer. This is the one
 * privileged operation; callers (the ISA layer) must verify privilege
 * before invoking it. No validation is performed — privileged code may
 * create any pointer, as in the paper.
 */
Word setptr(uint64_t bits);

/** ISPOINTER: @return 1 if the word's tag bit is set, else 0. */
uint64_t ispointer(Word w);

/**
 * Pointer-to-integer cast (§2.2): @return the offset of the pointer
 * within its segment as an untagged integer. Implemented in real code
 * as LEAB + SUB; provided here as the fused sequence.
 */
Result<Word> ptrToInt(Word ptr);

/**
 * Integer-to-pointer cast (§2.2): rebase an integer offset into the
 * segment of an existing pointer (LEAB with a dynamic offset). Faults
 * if the offset does not fit in the segment.
 */
Result<Word> intToPtr(Word seg_ptr, uint64_t offset);

/**
 * Check that a memory access of size_bytes at the pointer's address is
 * permitted: tag set, defined permission, rights allow the access kind,
 * naturally aligned, and the full range inside the segment.
 *
 * This is the entire pre-issue check of §2.2 — note it never consults
 * any table.
 */
Fault checkAccess(Word ptr, Access kind, unsigned size_bytes);

/**
 * Fused LEA + access check for the interpreter's load/store hot path
 * (superblock threaded dispatch): derive ptr + delta and verify the
 * access in one pass over a single permission decode. Fault order,
 * fault kinds, counter bumps, and trace events are identical to the
 * split sequence `lea(ptr, delta)` followed by
 * `checkAccess(result, kind, size_bytes)` — only the redundant second
 * decode is skipped, which is legal because withAddr() preserves every
 * non-address field. delta == 0 degenerates to checkAccess alone
 * (matching the interpreter, which never runs LEA for a zero
 * displacement).
 */
Result<Word> leaCheckAccess(Word ptr, int64_t delta, Access kind,
                            unsigned size_bytes);

/**
 * Unchecked fast paths for statically-proven pointer operations
 * (gpsim --elide-checks=verified; see docs/VERIFIER.md "Proof export
 * & check elision"). Each produces a result bit-identical to the
 * corresponding checked operation on its non-faulting path; calling
 * one where the checked operation would fault is a soundness bug —
 * the verifier's kElideNeverFaults verdict is the proof obligation
 * that makes the call legal. The checking-hardware OpStats counters
 * are deliberately not bumped (the check never ran); the machine's
 * elide counters account for the skipped work instead.
 */
Word leaUnchecked(Word ptr, int64_t delta);
Word leabUnchecked(Word ptr, int64_t delta);
Word restrictUnchecked(Word ptr, Perm target);
Word subsegUnchecked(Word ptr, uint64_t new_len_log2);
Word ptrToIntUnchecked(Word ptr);
Word intToPtrUnchecked(Word seg_ptr, uint64_t offset);

/**
 * Convert an enter pointer to the corresponding execute pointer, as
 * performed by the jump datapath on protected entry (§2.1).
 */
Result<Word> enterToExecute(Word ptr);

/**
 * Full jump-target evaluation: given the destination word and whether
 * the thread is currently privileged, @return the new instruction
 * pointer. Enter pointers convert to execute pointers; jumping directly
 * to an execute-privileged pointer from user mode is a privilege
 * violation (privilege is only entered via enter-privileged gateways,
 * §2.2 "Pointer Creation").
 */
Result<Word> jumpTarget(Word dest, bool privileged);

/** @return true when the given IP word confers privileged mode. */
bool ipPrivileged(Word ip);

/**
 * Per-thread tallies for the "gp" pointer-op counters. The sharded
 * mesh engine routes each worker thread's counting here (plain
 * uint64 increments, no sharing) and merges the tallies into the
 * real StatGroup counters when the run finishes, so the exported
 * totals are identical to a sequential run's.
 */
struct OpTallies
{
    uint64_t lea = 0;
    uint64_t leab = 0;
    uint64_t restrictOp = 0;
    uint64_t subsegOp = 0;
    uint64_t setptrOp = 0;
    uint64_t accessChecks = 0;
    uint64_t fault[16] = {};
};

/**
 * Route this host thread's op counting into @p tallies (nullptr
 * restores direct counting into the "gp" StatGroup, the default).
 */
void setThreadOpTallies(OpTallies *tallies);

/** Add @p tallies into the process-wide "gp" counters. */
void mergeOpTallies(const OpTallies &tallies);

} // namespace gp

#endif // GP_GP_OPS_H
