#include "gp/ops.h"

#include "sim/stats.h"
#include "sim/trace.h"

namespace gp {

namespace {

/**
 * Stats for the checking hardware itself: how often each pointer op
 * runs and, per Fault kind, how often a check fires. Counters are
 * cached as pointers so the hot path (LEA runs on every instruction's
 * IP advance) costs a single indexed increment, not a map lookup.
 */
struct OpStats
{
    sim::StatGroup group{"gp"};
    sim::Counter *lea;
    sim::Counter *leab;
    sim::Counter *restrictOp;
    sim::Counter *subsegOp;
    sim::Counter *setptrOp;
    sim::Counter *accessChecks;
    sim::Counter *fault[16] = {};

    OpStats()
    {
        lea = &group.counter("op_lea");
        leab = &group.counter("op_leab");
        restrictOp = &group.counter("op_restrict");
        subsegOp = &group.counter("op_subseg");
        setptrOp = &group.counter("op_setptr");
        accessChecks = &group.counter("access_checks");
        for (unsigned i = 1; i <= unsigned(kLastFault); ++i) {
            const Fault f = Fault(i);
            fault[i] = &group.counter(std::string("fault_") +
                                      std::string(faultName(f)));
        }
    }
};

OpStats &
opStats()
{
    static OpStats stats;
    return stats;
}

/// When set, this host thread counts into the tally instead of the
/// shared "gp" StatGroup (sharded mesh engine worker threads; see
/// setThreadOpTallies()). Null on every other thread, including the
/// engine's own barrier/drain thread.
thread_local OpTallies *tlsTallies = nullptr;

/// One op-counter bump through the tally indirection. Still a plain
/// increment either way — no string-keyed lookup on the hot path.
#define GP_OP_COUNT(field)                                            \
    do {                                                              \
        if (OpTallies *t = tlsTallies)                                \
            t->field++;                                               \
        else                                                          \
            (*opStats().field)++;                                     \
    } while (0)

/** Count a violation by kind; passes the fault through for inline use. */
inline Fault
countFault(Fault f)
{
    if (f != Fault::None) {
        const unsigned i = unsigned(f);
        if (i < 16) {
            if (OpTallies *t = tlsTallies) {
                t->fault[i]++;
            } else {
                OpStats &s = opStats();
                if (s.fault[i])
                    (*s.fault[i])++;
            }
        }
    }
    return f;
}

/**
 * Shared head of every pointer-mutating operation: decode and confirm
 * the pointer is of a mutable type (read-only, read/write, execute).
 */
Result<PointerView>
decodeMutable(Word ptr)
{
    auto dec = decode(ptr);
    if (!dec) {
        countFault(dec.fault);
        return dec;
    }
    if (!addressMutable(dec.value.perm()))
        return Result<PointerView>::fail(countFault(Fault::Immutable));
    return dec;
}

/**
 * The masked comparator of Fig. 2 / §4.1: fault iff old and new address
 * differ in any fixed (segment) bit.
 */
Fault
boundsCheck(uint64_t old_addr, uint64_t new_addr, uint64_t len)
{
    const uint64_t mask = segmentMask(len);
    return ((old_addr ^ new_addr) & mask) ? Fault::BoundsViolation
                                          : Fault::None;
}

/** Rebuild a pointer word with a new 54-bit address field. */
Word
withAddr(Word ptr, uint64_t new_addr)
{
    const uint64_t bits = (ptr.bits() & ~kAddrMask) |
                          (new_addr & kAddrMask);
    return Word::fromRawPointerBits(bits);
}

} // namespace

Result<Word>
lea(Word ptr, int64_t delta)
{
    GP_OP_COUNT(lea);
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    const uint64_t old_addr = dec.value.addr();
    const uint64_t new_addr =
        (old_addr + static_cast<uint64_t>(delta)) & kAddrMask;

    if (Fault f = boundsCheck(old_addr, new_addr, dec.value.lenLog2());
        f != Fault::None) {
        GP_TRACE(Fault, sim::TraceManager::instance().cycle(), 0,
                 "bounds-violation",
                 "lea seg=[0x%llx,+0x%llx) perm=%s addr=0x%llx "
                 "delta=%lld",
                 (unsigned long long)dec.value.segmentBase(),
                 (unsigned long long)dec.value.segmentBytes(),
                 std::string(permName(dec.value.perm())).c_str(),
                 (unsigned long long)old_addr, (long long)delta);
        return Result<Word>::fail(countFault(f));
    }
    return Result<Word>::ok(withAddr(ptr, new_addr));
}

Result<Word>
leab(Word ptr, int64_t delta)
{
    GP_OP_COUNT(leab);
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    const uint64_t base = dec.value.segmentBase();
    const uint64_t new_addr =
        (base + static_cast<uint64_t>(delta)) & kAddrMask;

    if (Fault f = boundsCheck(base, new_addr, dec.value.lenLog2());
        f != Fault::None) {
        GP_TRACE(Fault, sim::TraceManager::instance().cycle(), 0,
                 "bounds-violation",
                 "leab seg=[0x%llx,+0x%llx) perm=%s delta=%lld",
                 (unsigned long long)base,
                 (unsigned long long)dec.value.segmentBytes(),
                 std::string(permName(dec.value.perm())).c_str(),
                 (long long)delta);
        return Result<Word>::fail(countFault(f));
    }
    return Result<Word>::ok(withAddr(ptr, new_addr));
}

Result<Word>
restrictPerm(Word ptr, Perm target)
{
    GP_OP_COUNT(restrictOp);
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(countFault(dec.fault));
    // Enter and key pointers may not be modified in any way (§2.1).
    const Perm cur = dec.value.perm();
    if (cur == Perm::Key || cur == Perm::EnterUser ||
        cur == Perm::EnterPrivileged) {
        return Result<Word>::fail(countFault(Fault::Immutable));
    }
    if (!permValid(uint64_t(target)))
        return Result<Word>::fail(
            countFault(Fault::InvalidPermission));
    if (!strictSubset(cur, target))
        return Result<Word>::fail(countFault(Fault::NotSubset));

    const uint64_t bits =
        (ptr.bits() & ~(kPermFieldMask << kPermShift)) |
        (uint64_t(target) << kPermShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Result<Word>
subseg(Word ptr, uint64_t new_len_log2)
{
    GP_OP_COUNT(subsegOp);
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(countFault(dec.fault));
    const Perm cur = dec.value.perm();
    if (cur == Perm::Key || cur == Perm::EnterUser ||
        cur == Perm::EnterPrivileged) {
        return Result<Word>::fail(countFault(Fault::Immutable));
    }
    if (new_len_log2 >= dec.value.lenLog2())
        return Result<Word>::fail(countFault(Fault::NotSmaller));

    const uint64_t bits =
        (ptr.bits() & ~(kLenFieldMask << kLenShift)) |
        (new_len_log2 << kLenShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Word
setptr(uint64_t bits)
{
    GP_OP_COUNT(setptrOp);
    return Word::fromRawPointerBits(bits);
}

uint64_t
ispointer(Word w)
{
    return w.isPointer() ? 1 : 0;
}

Result<Word>
ptrToInt(Word ptr)
{
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);
    return Result<Word>::ok(Word::fromInt(dec.value.offset()));
}

Result<Word>
intToPtr(Word seg_ptr, uint64_t offset)
{
    // LEAB with the integer as the offset; the masked comparator
    // faults when the offset does not fit the segment.
    return leab(seg_ptr, static_cast<int64_t>(offset));
}

Word
leaUnchecked(Word ptr, int64_t delta)
{
    const uint64_t new_addr =
        (PointerView(ptr).addr() + static_cast<uint64_t>(delta)) &
        kAddrMask;
    return withAddr(ptr, new_addr);
}

Word
leabUnchecked(Word ptr, int64_t delta)
{
    const uint64_t new_addr =
        (PointerView(ptr).segmentBase() +
         static_cast<uint64_t>(delta)) &
        kAddrMask;
    return withAddr(ptr, new_addr);
}

Word
restrictUnchecked(Word ptr, Perm target)
{
    const uint64_t bits =
        (ptr.bits() & ~(kPermFieldMask << kPermShift)) |
        (uint64_t(target) << kPermShift);
    return Word::fromRawPointerBits(bits);
}

Word
subsegUnchecked(Word ptr, uint64_t new_len_log2)
{
    const uint64_t bits =
        (ptr.bits() & ~(kLenFieldMask << kLenShift)) |
        (new_len_log2 << kLenShift);
    return Word::fromRawPointerBits(bits);
}

Word
ptrToIntUnchecked(Word ptr)
{
    return Word::fromInt(PointerView(ptr).offset());
}

Word
intToPtrUnchecked(Word seg_ptr, uint64_t offset)
{
    return leabUnchecked(seg_ptr, static_cast<int64_t>(offset));
}

namespace {

/** Access-kind mnemonic for trace events. */
const char *
accessName(Access kind)
{
    switch (kind) {
      case Access::Load:
        return "load";
      case Access::Store:
        return "store";
      case Access::InstFetch:
        return "fetch";
    }
    return "?";
}

/**
 * Count an access-check violation and record it, with the faulting
 * pointer's full geometry, for the flight recorder (the
 * capability-violation debugging record).
 */
Fault
accessFault(Fault f, Access kind, const PointerView &v)
{
    GP_TRACE(Fault, sim::TraceManager::instance().cycle(), 0,
             std::string(faultName(f)).c_str(),
             "%s seg=[0x%llx,+0x%llx) perm=%s addr=0x%llx",
             accessName(kind),
             (unsigned long long)v.segmentBase(),
             (unsigned long long)v.segmentBytes(),
             std::string(permName(v.perm())).c_str(),
             (unsigned long long)v.addr());
    return countFault(f);
}

} // namespace

Fault
checkAccess(Word ptr, Access kind, unsigned size_bytes)
{
    GP_OP_COUNT(accessChecks);
    auto dec = decode(ptr);
    if (!dec)
        return countFault(dec.fault);
    const PointerView &v = dec.value;

    const uint32_t rights = rightsOf(v.perm());
    uint32_t needed = 0;
    switch (kind) {
      case Access::Load:
        needed = RightRead;
        break;
      case Access::Store:
        needed = RightWrite;
        break;
      case Access::InstFetch:
        needed = RightExecute;
        break;
    }
    if ((rights & needed) != needed)
        return accessFault(Fault::PermissionDenied, kind, v);

    if (size_bytes == 0 || (size_bytes & (size_bytes - 1)) != 0 ||
        size_bytes > 8) {
        return accessFault(Fault::Misaligned, kind, v);
    }
    if (v.addr() & (size_bytes - 1))
        return accessFault(Fault::Misaligned, kind, v);

    // Natural alignment plus power-of-two segments means an in-segment
    // start address implies the whole range is in-segment, unless the
    // segment itself is smaller than the access.
    if (v.segmentBytes() < size_bytes)
        return accessFault(Fault::BoundsViolation, kind, v);

    return Fault::None;
}

Result<Word>
leaCheckAccess(Word ptr, int64_t delta, Access kind,
               unsigned size_bytes)
{
    if (delta == 0) {
        // No LEA runs for a zero displacement; this is just the
        // pre-issue access check on the base pointer.
        if (Fault f = checkAccess(ptr, kind, size_bytes);
            f != Fault::None)
            return Result<Word>::fail(f);
        return Result<Word>::ok(ptr);
    }

    // --- LEA half (identical counting/tracing to lea()) ---
    GP_OP_COUNT(lea);
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    const uint64_t old_addr = dec.value.addr();
    const uint64_t new_addr =
        (old_addr + static_cast<uint64_t>(delta)) & kAddrMask;

    if (Fault f = boundsCheck(old_addr, new_addr, dec.value.lenLog2());
        f != Fault::None) {
        GP_TRACE(Fault, sim::TraceManager::instance().cycle(), 0,
                 "bounds-violation",
                 "lea seg=[0x%llx,+0x%llx) perm=%s addr=0x%llx "
                 "delta=%lld",
                 (unsigned long long)dec.value.segmentBase(),
                 (unsigned long long)dec.value.segmentBytes(),
                 std::string(permName(dec.value.perm())).c_str(),
                 (unsigned long long)old_addr, (long long)delta);
        return Result<Word>::fail(countFault(f));
    }
    const Word eff = withAddr(ptr, new_addr);

    // --- access-check half, reusing the decode: withAddr() changes
    // only address bits, so perm/len (and hence rights and segment
    // size) are those already decoded above. ---
    GP_OP_COUNT(accessChecks);
    const PointerView v(eff);

    const uint32_t rights = rightsOf(v.perm());
    uint32_t needed = 0;
    switch (kind) {
      case Access::Load:
        needed = RightRead;
        break;
      case Access::Store:
        needed = RightWrite;
        break;
      case Access::InstFetch:
        needed = RightExecute;
        break;
    }
    if ((rights & needed) != needed)
        return Result<Word>::fail(
            accessFault(Fault::PermissionDenied, kind, v));

    if (size_bytes == 0 || (size_bytes & (size_bytes - 1)) != 0 ||
        size_bytes > 8) {
        return Result<Word>::fail(
            accessFault(Fault::Misaligned, kind, v));
    }
    if (v.addr() & (size_bytes - 1))
        return Result<Word>::fail(
            accessFault(Fault::Misaligned, kind, v));

    if (v.segmentBytes() < size_bytes)
        return Result<Word>::fail(
            accessFault(Fault::BoundsViolation, kind, v));

    return Result<Word>::ok(eff);
}

Result<Word>
enterToExecute(Word ptr)
{
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    Perm target;
    switch (dec.value.perm()) {
      case Perm::EnterUser:
        target = Perm::ExecuteUser;
        break;
      case Perm::EnterPrivileged:
        target = Perm::ExecutePrivileged;
        break;
      default:
        return Result<Word>::fail(countFault(Fault::NotEnterPointer));
    }

    const uint64_t bits =
        (ptr.bits() & ~(kPermFieldMask << kPermShift)) |
        (uint64_t(target) << kPermShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Result<Word>
jumpTarget(Word dest, bool privileged)
{
    auto dec = decode(dest);
    if (!dec)
        return Result<Word>::fail(countFault(dec.fault));

    switch (dec.value.perm()) {
      case Perm::ExecuteUser:
        return Result<Word>::ok(dest);
      case Perm::ExecutePrivileged:
        // Privileged mode is only *entered* through an enter-privileged
        // gateway; a user thread holding a raw execute-privileged
        // pointer may not jump to an arbitrary address inside it.
        if (!privileged)
            return Result<Word>::fail(
                countFault(Fault::PrivilegeViolation));
        return Result<Word>::ok(dest);
      case Perm::EnterUser:
      case Perm::EnterPrivileged:
        return enterToExecute(dest);
      default:
        return Result<Word>::fail(countFault(Fault::PermissionDenied));
    }
}

bool
ipPrivileged(Word ip)
{
    auto dec = decode(ip);
    return dec && dec.value.perm() == Perm::ExecutePrivileged;
}

void
setThreadOpTallies(OpTallies *tallies)
{
    tlsTallies = tallies;
}

void
mergeOpTallies(const OpTallies &tallies)
{
    OpStats &s = opStats();
    (*s.lea) += tallies.lea;
    (*s.leab) += tallies.leab;
    (*s.restrictOp) += tallies.restrictOp;
    (*s.subsegOp) += tallies.subsegOp;
    (*s.setptrOp) += tallies.setptrOp;
    (*s.accessChecks) += tallies.accessChecks;
    for (unsigned i = 0; i < 16; ++i)
        if (tallies.fault[i] != 0 && s.fault[i] != nullptr)
            (*s.fault[i]) += tallies.fault[i];
}

} // namespace gp
