#include "gp/ops.h"

namespace gp {

namespace {

/**
 * Shared head of every pointer-mutating operation: decode and confirm
 * the pointer is of a mutable type (read-only, read/write, execute).
 */
Result<PointerView>
decodeMutable(Word ptr)
{
    auto dec = decode(ptr);
    if (!dec)
        return dec;
    if (!addressMutable(dec.value.perm()))
        return Result<PointerView>::fail(Fault::Immutable);
    return dec;
}

/**
 * The masked comparator of Fig. 2 / §4.1: fault iff old and new address
 * differ in any fixed (segment) bit.
 */
Fault
boundsCheck(uint64_t old_addr, uint64_t new_addr, uint64_t len)
{
    const uint64_t mask = segmentMask(len);
    return ((old_addr ^ new_addr) & mask) ? Fault::BoundsViolation
                                          : Fault::None;
}

/** Rebuild a pointer word with a new 54-bit address field. */
Word
withAddr(Word ptr, uint64_t new_addr)
{
    const uint64_t bits = (ptr.bits() & ~kAddrMask) |
                          (new_addr & kAddrMask);
    return Word::fromRawPointerBits(bits);
}

} // namespace

Result<Word>
lea(Word ptr, int64_t delta)
{
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    const uint64_t old_addr = dec.value.addr();
    const uint64_t new_addr =
        (old_addr + static_cast<uint64_t>(delta)) & kAddrMask;

    if (Fault f = boundsCheck(old_addr, new_addr, dec.value.lenLog2());
        f != Fault::None) {
        return Result<Word>::fail(f);
    }
    return Result<Word>::ok(withAddr(ptr, new_addr));
}

Result<Word>
leab(Word ptr, int64_t delta)
{
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    const uint64_t base = dec.value.segmentBase();
    const uint64_t new_addr =
        (base + static_cast<uint64_t>(delta)) & kAddrMask;

    if (Fault f = boundsCheck(base, new_addr, dec.value.lenLog2());
        f != Fault::None) {
        return Result<Word>::fail(f);
    }
    return Result<Word>::ok(withAddr(ptr, new_addr));
}

Result<Word>
restrictPerm(Word ptr, Perm target)
{
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);
    // Enter and key pointers may not be modified in any way (§2.1).
    const Perm cur = dec.value.perm();
    if (cur == Perm::Key || cur == Perm::EnterUser ||
        cur == Perm::EnterPrivileged) {
        return Result<Word>::fail(Fault::Immutable);
    }
    if (!permValid(uint64_t(target)))
        return Result<Word>::fail(Fault::InvalidPermission);
    if (!strictSubset(cur, target))
        return Result<Word>::fail(Fault::NotSubset);

    const uint64_t bits =
        (ptr.bits() & ~(kPermFieldMask << kPermShift)) |
        (uint64_t(target) << kPermShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Result<Word>
subseg(Word ptr, uint64_t new_len_log2)
{
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);
    const Perm cur = dec.value.perm();
    if (cur == Perm::Key || cur == Perm::EnterUser ||
        cur == Perm::EnterPrivileged) {
        return Result<Word>::fail(Fault::Immutable);
    }
    if (new_len_log2 >= dec.value.lenLog2())
        return Result<Word>::fail(Fault::NotSmaller);

    const uint64_t bits =
        (ptr.bits() & ~(kLenFieldMask << kLenShift)) |
        (new_len_log2 << kLenShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Word
setptr(uint64_t bits)
{
    return Word::fromRawPointerBits(bits);
}

uint64_t
ispointer(Word w)
{
    return w.isPointer() ? 1 : 0;
}

Result<Word>
ptrToInt(Word ptr)
{
    auto dec = decodeMutable(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);
    return Result<Word>::ok(Word::fromInt(dec.value.offset()));
}

Result<Word>
intToPtr(Word seg_ptr, uint64_t offset)
{
    // LEAB with the integer as the offset; the masked comparator
    // faults when the offset does not fit the segment.
    return leab(seg_ptr, static_cast<int64_t>(offset));
}

Fault
checkAccess(Word ptr, Access kind, unsigned size_bytes)
{
    auto dec = decode(ptr);
    if (!dec)
        return dec.fault;
    const PointerView &v = dec.value;

    const uint32_t rights = rightsOf(v.perm());
    uint32_t needed = 0;
    switch (kind) {
      case Access::Load:
        needed = RightRead;
        break;
      case Access::Store:
        needed = RightWrite;
        break;
      case Access::InstFetch:
        needed = RightExecute;
        break;
    }
    if ((rights & needed) != needed)
        return Fault::PermissionDenied;

    if (size_bytes == 0 || (size_bytes & (size_bytes - 1)) != 0 ||
        size_bytes > 8) {
        return Fault::Misaligned;
    }
    if (v.addr() & (size_bytes - 1))
        return Fault::Misaligned;

    // Natural alignment plus power-of-two segments means an in-segment
    // start address implies the whole range is in-segment, unless the
    // segment itself is smaller than the access.
    if (v.segmentBytes() < size_bytes)
        return Fault::BoundsViolation;

    return Fault::None;
}

Result<Word>
enterToExecute(Word ptr)
{
    auto dec = decode(ptr);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    Perm target;
    switch (dec.value.perm()) {
      case Perm::EnterUser:
        target = Perm::ExecuteUser;
        break;
      case Perm::EnterPrivileged:
        target = Perm::ExecutePrivileged;
        break;
      default:
        return Result<Word>::fail(Fault::NotEnterPointer);
    }

    const uint64_t bits =
        (ptr.bits() & ~(kPermFieldMask << kPermShift)) |
        (uint64_t(target) << kPermShift);
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

Result<Word>
jumpTarget(Word dest, bool privileged)
{
    auto dec = decode(dest);
    if (!dec)
        return Result<Word>::fail(dec.fault);

    switch (dec.value.perm()) {
      case Perm::ExecuteUser:
        return Result<Word>::ok(dest);
      case Perm::ExecutePrivileged:
        // Privileged mode is only *entered* through an enter-privileged
        // gateway; a user thread holding a raw execute-privileged
        // pointer may not jump to an arbitrary address inside it.
        if (!privileged)
            return Result<Word>::fail(Fault::PrivilegeViolation);
        return Result<Word>::ok(dest);
      case Perm::EnterUser:
      case Perm::EnterPrivileged:
        return enterToExecute(dest);
      default:
        return Result<Word>::fail(Fault::PermissionDenied);
    }
}

bool
ipPrivileged(Word ip)
{
    auto dec = decode(ip);
    return dec && dec.value.perm() == Perm::ExecutePrivileged;
}

} // namespace gp
