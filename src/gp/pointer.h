/**
 * @file
 * Structured view over a tagged word interpreted as a guarded pointer,
 * plus validated construction helpers.
 *
 * Because segments are power-of-two sized and aligned on their length
 * (paper §2), every geometric property of the segment — base, limit,
 * offset — is derivable from the pointer alone with mask operations,
 * which is exactly what makes table-free capability checking possible.
 */

#ifndef GP_GP_POINTER_H
#define GP_GP_POINTER_H

#include <string>

#include "gp/fault.h"
#include "gp/permission.h"
#include "gp/word.h"

namespace gp {

/**
 * @return the offset-field mask for a segment of length 2^len bytes:
 * ones over the variable (offset) bits, zeros over the fixed bits.
 * len is clamped to kAddrBits.
 */
constexpr uint64_t
offsetMask(uint64_t len)
{
    if (len >= kAddrBits)
        return kAddrMask;
    return (uint64_t(1) << len) - 1;
}

/** @return the fixed (segment-identifying) bit mask for length len. */
constexpr uint64_t
segmentMask(uint64_t len)
{
    return kAddrMask & ~offsetMask(len);
}

/**
 * Read-only structured view of a guarded pointer. Construct via
 * decode(); the view is only meaningful for tagged words.
 */
class PointerView
{
  public:
    /** Default view of an untagged zero; only used as the placeholder
     * value inside a faulting Result. */
    constexpr PointerView() = default;

    explicit constexpr PointerView(Word w) : word_(w) {}

    constexpr Perm perm() const { return Perm(word_.permBits()); }
    constexpr uint64_t lenLog2() const { return word_.lenLog2(); }
    constexpr uint64_t addr() const { return word_.addr(); }

    /** @return segment length in bytes (saturates at 2^54). */
    constexpr uint64_t
    segmentBytes() const
    {
        const uint64_t len = lenLog2();
        return len >= kAddrBits ? kAddressSpaceBytes
                                : uint64_t(1) << len;
    }

    /** @return the aligned base address of the segment. */
    constexpr uint64_t
    segmentBase() const
    {
        return addr() & segmentMask(lenLog2());
    }

    /** @return one past the last byte of the segment. */
    constexpr uint64_t
    segmentLimit() const
    {
        return segmentBase() + segmentBytes();
    }

    /** @return the byte offset of the address within its segment. */
    constexpr uint64_t
    offset() const
    {
        return addr() & offsetMask(lenLog2());
    }

    /** @return true if a (54-bit) address falls inside this segment. */
    constexpr bool
    contains(uint64_t a) const
    {
        return (a & segmentMask(lenLog2())) == segmentBase() &&
               a <= kAddrMask;
    }

    constexpr Word word() const { return word_; }

  private:
    Word word_;
};

/**
 * Build a guarded pointer from fields, validating each. This is the
 * simulator-level constructor used by privileged code and tests; it is
 * *not* reachable from unprivileged simulated instructions.
 *
 * @param perm  permission type (must be a defined encoding)
 * @param len_log2 log2 of the segment length in bytes (0..54)
 * @param addr  54-bit virtual byte address the pointer designates
 */
Result<Word> makePointer(Perm perm, uint64_t len_log2, uint64_t addr);

/**
 * Interpret a word as a guarded pointer, checking the tag bit and the
 * permission encoding. Returns a fault for untagged words or invalid
 * permission encodings.
 *
 * Inline on purpose: this is the decode stage of every pointer
 * operation (LEA on each IP advance, the access check on each load,
 * store and fetch), so it runs several times per simulated
 * instruction and must compile down to a couple of bit tests at each
 * call site.
 */
inline Result<PointerView>
decode(Word w)
{
    if (!w.isPointer())
        return Result<PointerView>::fail(Fault::NotAPointer);
    if (!permValid(w.permBits()))
        return Result<PointerView>::fail(Fault::InvalidPermission);
    return Result<PointerView>::ok(PointerView(w));
}

/** @return a human-readable rendering, e.g. for example programs. */
std::string toString(Word w);

} // namespace gp

#endif // GP_GP_POINTER_H
