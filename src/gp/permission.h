/**
 * @file
 * The guarded-pointer permission types and their rights lattice
 * (paper §2.1).
 *
 * Each 4-bit permission encodes a set of fundamental rights; the
 * RESTRICT instruction may replace a permission only with one whose
 * rights are a strict subset (paper §2.2), which this module decides.
 */

#ifndef GP_GP_PERMISSION_H
#define GP_GP_PERMISSION_H

#include <cstdint>
#include <string_view>

namespace gp {

/**
 * The representative permission set from §2.1. Values fit the 4-bit
 * field; unlisted encodings are invalid and fault on any use.
 */
enum class Perm : uint8_t
{
    None = 0,       //!< no rights; any use faults
    Key = 1,        //!< unforgeable identifier, not dereferenceable
    ReadOnly = 2,   //!< loads only
    ReadWrite = 3,  //!< loads and stores
    ExecuteUser = 4,       //!< jump target + loads, user mode
    ExecutePrivileged = 5, //!< jump target + loads, privileged mode
    EnterUser = 6,         //!< entry-point capability -> ExecuteUser
    EnterPrivileged = 7,   //!< entry-point capability -> ExecutePrivileged
};

/** Fundamental rights composing each permission. */
enum Rights : uint32_t
{
    RightRead = 1u << 0,    //!< may load through the pointer
    RightWrite = 1u << 1,   //!< may store through the pointer
    RightExecute = 1u << 2, //!< may be an instruction pointer
    RightEnter = 1u << 3,   //!< may be a protected entry point
    RightPriv = 1u << 4,    //!< carries supervisor mode
};

/** @return the rights set of a permission (None/Key have no rights). */
constexpr uint32_t
rightsOf(Perm p)
{
    switch (p) {
      case Perm::ReadOnly:
        return RightRead;
      case Perm::ReadWrite:
        return RightRead | RightWrite;
      case Perm::ExecuteUser:
        return RightRead | RightExecute;
      case Perm::ExecutePrivileged:
        return RightRead | RightExecute | RightPriv;
      case Perm::EnterUser:
        return RightEnter;
      case Perm::EnterPrivileged:
        return RightEnter | RightPriv;
      case Perm::Key:
      case Perm::None:
      default:
        return 0;
    }
}

/** @return true if the 4-bit encoding names a defined permission. */
constexpr bool
permValid(uint64_t raw)
{
    return raw >= uint64_t(Perm::Key) &&
           raw <= uint64_t(Perm::EnterPrivileged);
}

/**
 * @return true if permission b's rights are a strict subset of a's,
 * i.e. RESTRICT from a to b is allowed by the lattice. Note the source
 * must additionally be modifiable at all (Enter/Key pointers may not be
 * modified; ops.h enforces that).
 */
constexpr bool
strictSubset(Perm a, Perm b)
{
    const uint32_t ra = rightsOf(a);
    const uint32_t rb = rightsOf(b);
    return rb != ra && (rb & ~ra) == 0;
}

/**
 * @return true if the permission allows the pointer's address field to
 * be modified by LEA/LEAB (paper §2.1: only read-only, read/write and
 * execute pointers are mutable).
 */
constexpr bool
addressMutable(Perm p)
{
    switch (p) {
      case Perm::ReadOnly:
      case Perm::ReadWrite:
      case Perm::ExecuteUser:
      case Perm::ExecutePrivileged:
        return true;
      default:
        return false;
    }
}

/** @return a stable human-readable name for diagnostics. */
constexpr std::string_view
permName(Perm p)
{
    switch (p) {
      case Perm::None:
        return "none";
      case Perm::Key:
        return "key";
      case Perm::ReadOnly:
        return "read-only";
      case Perm::ReadWrite:
        return "read/write";
      case Perm::ExecuteUser:
        return "execute-user";
      case Perm::ExecutePrivileged:
        return "execute-privileged";
      case Perm::EnterUser:
        return "enter-user";
      case Perm::EnterPrivileged:
        return "enter-privileged";
      default:
        return "invalid";
    }
}

} // namespace gp

#endif // GP_GP_PERMISSION_H
