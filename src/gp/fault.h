/**
 * @file
 * Fault taxonomy and a lightweight Result type for pointer operations.
 *
 * Guarded-pointer checks happen on the hot path of every simulated
 * instruction, so faults are returned as values rather than thrown;
 * the ISA layer converts a non-None fault into an architectural
 * exception delivered to the faulting thread.
 */

#ifndef GP_GP_FAULT_H
#define GP_GP_FAULT_H

#include <cstdint>
#include <string_view>

namespace gp {

/** Architectural faults raised by guarded-pointer checking hardware. */
enum class Fault : uint8_t
{
    None = 0,
    NotAPointer,        //!< operand's tag bit is clear
    InvalidPermission,  //!< 4-bit encoding names no defined permission
    PermissionDenied,   //!< operation not allowed by the rights set
    BoundsViolation,    //!< address arithmetic escaped the segment
    PrivilegeViolation, //!< privileged operation in user mode
    Misaligned,         //!< access not naturally aligned
    NotSubset,          //!< RESTRICT target not a strict rights subset
    NotSmaller,         //!< SUBSEG length not smaller than original
    Immutable,          //!< enter/key pointer may not be modified
    NotEnterPointer,    //!< protected entry requires an enter pointer
    UnmappedAddress,    //!< translation failed (page not mapped)
    InvalidInstruction, //!< undecodable or illegal instruction
    MemoryIntegrity,    //!< detected-uncorrectable hardware corruption
    WatchdogTimeout,    //!< machine watchdog converted a hang
    /** Remote access homed on a dead node (or with no surviving
     * route): the end-to-end retry budget was exhausted and every
     * attempt came back unreachable. A typed failure, not a hang —
     * the issuing thread faults instead of parking forever. */
    NodeUnreachable,
};

/// Highest-valued fault kind (for loops that enumerate the taxonomy).
inline constexpr Fault kLastFault = Fault::NodeUnreachable;

/** @return a stable human-readable fault name. */
constexpr std::string_view
faultName(Fault f)
{
    switch (f) {
      case Fault::None:
        return "none";
      case Fault::NotAPointer:
        return "not-a-pointer";
      case Fault::InvalidPermission:
        return "invalid-permission";
      case Fault::PermissionDenied:
        return "permission-denied";
      case Fault::BoundsViolation:
        return "bounds-violation";
      case Fault::PrivilegeViolation:
        return "privilege-violation";
      case Fault::Misaligned:
        return "misaligned";
      case Fault::NotSubset:
        return "restrict-not-subset";
      case Fault::NotSmaller:
        return "subseg-not-smaller";
      case Fault::Immutable:
        return "pointer-immutable";
      case Fault::NotEnterPointer:
        return "not-enter-pointer";
      case Fault::UnmappedAddress:
        return "unmapped-address";
      case Fault::InvalidInstruction:
        return "invalid-instruction";
      case Fault::MemoryIntegrity:
        return "memory-integrity";
      case Fault::WatchdogTimeout:
        return "watchdog-timeout";
      case Fault::NodeUnreachable:
        return "node-unreachable";
      default:
        return "unknown";
    }
}

/**
 * Value-or-fault result of a pointer operation. On fault the value is
 * default-constructed and must not be used architecturally.
 */
template <typename T>
struct Result
{
    T value{};
    Fault fault = Fault::None;

    /** Successful result. */
    static Result
    ok(T v)
    {
        return Result{std::move(v), Fault::None};
    }

    /** Faulting result. */
    static Result
    fail(Fault f)
    {
        return Result{T{}, f};
    }

    /** @return true when no fault occurred. */
    explicit operator bool() const { return fault == Fault::None; }
};

} // namespace gp

#endif // GP_GP_FAULT_H
