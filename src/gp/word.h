/**
 * @file
 * The tagged 64-bit machine word (Fig. 1 of the paper).
 *
 * Every register and every memory word in the system is a Word: 64 bits
 * of payload plus one out-of-band pointer-tag bit. When the tag is set
 * the payload is interpreted as a guarded pointer:
 *
 *   bit 63..60  permission (4 bits)
 *   bit 59..54  log2 segment length (6 bits)
 *   bit 53..0   virtual byte address (54 bits)
 *
 * User code can never set the tag bit (only the privileged SETPTR
 * operation can), which is the entire basis of unforgeability.
 */

#ifndef GP_GP_WORD_H
#define GP_GP_WORD_H

#include <cstdint>

namespace gp {

/// Number of virtual-address bits in a guarded pointer.
inline constexpr unsigned kAddrBits = 54;
/// Number of segment-length bits in a guarded pointer.
inline constexpr unsigned kLenBits = 6;
/// Number of permission bits in a guarded pointer.
inline constexpr unsigned kPermBits = 4;

/// Mask covering the 54-bit address field.
inline constexpr uint64_t kAddrMask = (uint64_t(1) << kAddrBits) - 1;
/// Bit position of the length field.
inline constexpr unsigned kLenShift = kAddrBits;
/// Mask for the length field (pre-shift).
inline constexpr uint64_t kLenFieldMask = (uint64_t(1) << kLenBits) - 1;
/// Bit position of the permission field.
inline constexpr unsigned kPermShift = kAddrBits + kLenBits;
/// Mask for the permission field (pre-shift).
inline constexpr uint64_t kPermFieldMask = (uint64_t(1) << kPermBits) - 1;

/// Size of the virtual address space in bytes (2^54).
inline constexpr uint64_t kAddressSpaceBytes = uint64_t(1) << kAddrBits;

/**
 * A 64-bit payload plus the pointer-tag bit.
 *
 * Word is a plain value type; all interpretation (permission checks,
 * bounds arithmetic) lives in pointer.h / ops.h. Default construction
 * yields an untagged zero, i.e. the integer 0.
 */
class Word
{
  public:
    constexpr Word() = default;

    /** Construct an untagged (integer/float payload) word. */
    static constexpr Word
    fromInt(uint64_t bits)
    {
        return Word(bits, false);
    }

    /**
     * Construct a tagged word from raw bits. This models the privileged
     * SETPTR datapath; unprivileged software must go through ops.h.
     */
    static constexpr Word
    fromRawPointerBits(uint64_t bits)
    {
        return Word(bits, true);
    }

    /** @return the 64-bit payload regardless of tag. */
    constexpr uint64_t bits() const { return bits_; }

    /** @return true if the pointer-tag bit is set. */
    constexpr bool isPointer() const { return tag_; }

    /**
     * @return this word with the tag bit cleared — the result of feeding
     * a pointer through any non-pointer functional unit (paper §2.2).
     */
    constexpr Word
    asInt() const
    {
        return Word(bits_, false);
    }

    /** Raw permission field (only meaningful when tagged). */
    constexpr uint64_t
    permBits() const
    {
        return (bits_ >> kPermShift) & kPermFieldMask;
    }

    /** Log2 segment length field (only meaningful when tagged). */
    constexpr uint64_t
    lenLog2() const
    {
        return (bits_ >> kLenShift) & kLenFieldMask;
    }

    /** 54-bit virtual byte address field. */
    constexpr uint64_t
    addr() const
    {
        return bits_ & kAddrMask;
    }

    constexpr bool
    operator==(const Word &other) const
    {
        return bits_ == other.bits_ && tag_ == other.tag_;
    }

  private:
    constexpr Word(uint64_t bits, bool tag) : bits_(bits), tag_(tag) {}

    uint64_t bits_ = 0;
    bool tag_ = false;
};

} // namespace gp

#endif // GP_GP_WORD_H
