#include "gp/pointer.h"

#include <cinttypes>
#include <cstdio>

namespace gp {

Result<Word>
makePointer(Perm perm, uint64_t len_log2, uint64_t addr)
{
    if (!permValid(uint64_t(perm)))
        return Result<Word>::fail(Fault::InvalidPermission);
    if (len_log2 > kAddrBits)
        return Result<Word>::fail(Fault::BoundsViolation);
    if (addr > kAddrMask)
        return Result<Word>::fail(Fault::BoundsViolation);

    const uint64_t bits = (uint64_t(perm) << kPermShift) |
                          (len_log2 << kLenShift) | addr;
    return Result<Word>::ok(Word::fromRawPointerBits(bits));
}

std::string
toString(Word w)
{
    char buf[128];
    if (!w.isPointer()) {
        std::snprintf(buf, sizeof(buf), "int:0x%" PRIx64, w.bits());
        return buf;
    }
    PointerView v(w);
    std::snprintf(buf, sizeof(buf),
                  "ptr{%s len=2^%" PRIu64 " base=0x%" PRIx64
                  " off=0x%" PRIx64 "}",
                  std::string(permName(v.perm())).c_str(), v.lenLog2(),
                  v.segmentBase(), v.offset());
    return buf;
}

} // namespace gp
