#include "isa/loader.h"

#include "gp/pointer.h"
#include "sim/log.h"

namespace gp::isa {

uint64_t
segLenFor(uint64_t bytes)
{
    uint64_t len = 3; // minimum one 8-byte word
    while ((uint64_t(1) << len) < bytes && len < kAddrBits)
        len++;
    return len;
}

LoadedProgram
loadProgram(mem::MemoryPort &mem, uint64_t base,
            const std::vector<Word> &words, bool privileged)
{
    if (words.empty())
        sim::fatal("loadProgram: empty program");

    LoadedProgram prog;
    prog.base = base;
    prog.lenLog2 = segLenFor(words.size() * 8);

    if (base & ((uint64_t(1) << prog.lenLog2) - 1))
        sim::fatal("loadProgram: base 0x%llx not aligned to 2^%llu",
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(prog.lenLog2));

    for (size_t i = 0; i < words.size(); ++i)
        mem.portPoke(base + i * 8, words[i]);

    auto exec = makePointer(privileged ? Perm::ExecutePrivileged
                                       : Perm::ExecuteUser,
                            prog.lenLog2, base);
    auto enter = makePointer(privileged ? Perm::EnterPrivileged
                                        : Perm::EnterUser,
                             prog.lenLog2, base);
    if (!exec || !enter)
        sim::fatal("loadProgram: bad segment geometry");
    prog.execPtr = exec.value;
    prog.enterPtr = enter.value;
    return prog;
}

Word
dataSegment(uint64_t base, uint64_t len_log2)
{
    auto ptr = makePointer(Perm::ReadWrite, len_log2, base);
    if (!ptr)
        sim::fatal("dataSegment: bad geometry base=0x%llx len=%llu",
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(len_log2));
    return ptr.value;
}

} // namespace gp::isa
