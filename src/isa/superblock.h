/**
 * @file
 * Superblock (threaded-code) structures for the interpreter hot path.
 *
 * A superblock is a straight-line trace of predecoded instructions
 * keyed by its entry address: the per-thread recorder strings
 * consecutive fetches together until a trace-ending opcode (branch,
 * jump, halt) or the slot limit, and the machine then dispatches
 * through the trace with computed-goto threading (portable `switch`
 * fallback behind GP_NO_COMPUTED_GOTO). Execution stays one
 * instruction per issue slot — the cycle-accurate interleaving across
 * threads is untouched; only host-side dispatch/decode/check work is
 * saved. See docs/ARCHITECTURE.md "Threaded dispatch & superblocks".
 *
 * Invalidation reuses the predecode cache's discipline: every slot is
 * revalidated against the raw bits the (always-performed, timed)
 * fetch returned, so self-modifying code and image reloads invalidate
 * blocks implicitly, and Machine::flushPredecode() tears all blocks
 * down wholesale.
 */

#ifndef GP_ISA_SUPERBLOCK_H
#define GP_ISA_SUPERBLOCK_H

#include <cstdint>

#include "isa/inst.h"

namespace gp::isa {

/**
 * Threaded-dispatch handler index, resolved once at record time so
 * the dispatch loop never switches on the full opcode. The order here
 * MUST match the label table in Machine::executeSb() exactly (C++
 * forbids designated array initializers, so the correspondence is
 * positional; a static_assert pins the count).
 */
enum SbHandler : uint8_t
{
    kSbAdd = 0,
    kSbSub,
    kSbMul,
    kSbAnd,
    kSbOr,
    kSbXor,
    kSbShl,
    kSbShr,
    kSbSra,
    kSbSlt,
    kSbSltu,
    kSbAddi,
    kSbAndi,
    kSbOri,
    kSbXori,
    kSbShli,
    kSbShri,
    kSbSrai,
    kSbMovi,
    kSbLui,
    kSbMov,
    kSbNop,
    kSbGetIp,
    kSbLoad,
    kSbStore,
    kSbLea,
    kSbLeai,
    kSbBeq,
    kSbBne,
    kSbBlt,
    kSbBge,
    /// Everything else (LEAB/RESTRICT/SUBSEG/SETPTR/PTOI/ITOP/JMP/
    /// HALT/...) detours through the full Machine::execute() switch.
    kSbGeneric,

    kSbHandlerCount,
};

/** One predecoded slot of a superblock trace. */
struct SbSlot
{
    uint64_t bits = 0; //!< raw word; revalidated on every execution
    Inst inst;
    /// Elision verdict baked at predecode time (kElide* bits); the
    /// dispatcher applies it per slot, so a fully-proven block runs
    /// every guarded-pointer check on the unchecked datapath.
    uint8_t verdict = 0;
    uint8_t handler = kSbGeneric; //!< SbHandler dispatch index
    uint8_t mixClass = 0;         //!< instClass() of the opcode
    uint8_t size = 0;             //!< access bytes (Load/Store only)
};

/// Maximum trace length; traces also end at any control transfer.
inline constexpr uint32_t kSbMaxSlots = 32;

/// Direct-mapped superblock-cache size, keyed by
/// (entry >> 3) & (kSbEntries - 1). Must be a power of two.
inline constexpr uint32_t kSbEntries = 1024;

/** A straight-line trace with a single entry at its first slot. */
struct Superblock
{
    uint64_t entry = UINT64_MAX; //!< vaddr of slots[0]
    uint32_t count = 0;
    bool valid = false;
    SbSlot slots[kSbMaxSlots];
};

/**
 * Per-thread trace recorder: fed one decoded instruction per fetch on
 * the legacy path; installs a Superblock when a trace ends. A
 * non-contiguous fetch address simply restarts the trace.
 */
struct SbRecorder
{
    uint64_t entry = UINT64_MAX;
    uint32_t count = 0;
    bool active = false;
    SbSlot slots[kSbMaxSlots];

    void
    reset()
    {
        entry = UINT64_MAX;
        count = 0;
        active = false;
    }
};

/** @return true when op always terminates a trace (control leaves
 * the straight line, or the thread stops). */
inline bool
sbEndsBlock(Op op)
{
    switch (op) {
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
      case Op::JMP:
      case Op::HALT:
        return true;
      default:
        return false;
    }
}

/**
 * Map an opcode to its dispatch handler; sets @p size for memory
 * handlers (access bytes) and leaves it 0 otherwise.
 */
inline SbHandler
sbClassify(Op op, uint8_t &size)
{
    size = 0;
    switch (op) {
      case Op::ADD:
        return kSbAdd;
      case Op::SUB:
        return kSbSub;
      case Op::MUL:
        return kSbMul;
      case Op::AND:
        return kSbAnd;
      case Op::OR:
        return kSbOr;
      case Op::XOR:
        return kSbXor;
      case Op::SHL:
        return kSbShl;
      case Op::SHR:
        return kSbShr;
      case Op::SRA:
        return kSbSra;
      case Op::SLT:
        return kSbSlt;
      case Op::SLTU:
        return kSbSltu;
      case Op::ADDI:
        return kSbAddi;
      case Op::ANDI:
        return kSbAndi;
      case Op::ORI:
        return kSbOri;
      case Op::XORI:
        return kSbXori;
      case Op::SHLI:
        return kSbShli;
      case Op::SHRI:
        return kSbShri;
      case Op::SRAI:
        return kSbSrai;
      case Op::MOVI:
        return kSbMovi;
      case Op::LUI:
        return kSbLui;
      case Op::MOV:
        return kSbMov;
      case Op::NOP:
        return kSbNop;
      case Op::GETIP:
        return kSbGetIp;
      case Op::LD:
        size = 8;
        return kSbLoad;
      case Op::LDW:
        size = 4;
        return kSbLoad;
      case Op::LDH:
        size = 2;
        return kSbLoad;
      case Op::LDB:
        size = 1;
        return kSbLoad;
      case Op::ST:
        size = 8;
        return kSbStore;
      case Op::STW:
        size = 4;
        return kSbStore;
      case Op::STH:
        size = 2;
        return kSbStore;
      case Op::STB:
        size = 1;
        return kSbStore;
      case Op::LEA:
        return kSbLea;
      case Op::LEAI:
        return kSbLeai;
      case Op::BEQ:
        return kSbBeq;
      case Op::BNE:
        return kSbBne;
      case Op::BLT:
        return kSbBlt;
      case Op::BGE:
        return kSbBge;
      default:
        return kSbGeneric;
    }
}

} // namespace gp::isa

#endif // GP_ISA_SUPERBLOCK_H
