/**
 * @file
 * Elision verdict bitmap: the proof artifact gpverify exports and the
 * machine consumes to skip statically-proven guarded-pointer checks.
 *
 * The verifier's record pass (src/verify) accumulates, per
 * instruction, the union of every fault kind any concretization of
 * the abstract entry state may raise there. The complement of that
 * may-fault set is a *must-safe* proof: a verdict byte whose bits
 * assert that a class of runtime checks can never fire on this
 * instruction, for any execution from the declared entry state. The
 * machine bakes the byte into the predecoded-instruction cache
 * (decode time, never per-execute) and, when kElideNeverFaults holds,
 * runs the unchecked fast path.
 *
 * Soundness guards (see docs/VERIFIER.md "Proof export & check
 * elision"):
 *  - any may-fact at an instruction clears the corresponding bit —
 *    indirect jumps the fixpoint cannot resolve havoc the state, so
 *    everything reachable only through them keeps full checks;
 *  - a verdict is bound to the exact instruction bits it was proven
 *    for; the machine's raw-bits re-validation drops the verdict the
 *    moment code is overwritten (self-modifying code re-arms checks);
 *  - the proof records the privilege mode it was established under
 *    (kElidePrivileged); executing the same bytes at a different
 *    privilege falls back to full checks;
 *  - fault injection and installed fault handlers disable elision
 *    wholesale at run time.
 */

#ifndef GP_ISA_ELIDE_H
#define GP_ISA_ELIDE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gp::isa {

/// The runtime bounds check (masked segment comparator) can never
/// fire: no BoundsViolation is reachable at this instruction.
inline constexpr uint8_t kElideBoundsSafe = 1u << 0;
/// No permission/rights-lattice fault is reachable: tag, permission
/// decode, rights check, immutability, RESTRICT/SUBSEG monotonicity,
/// privilege, and enter-pointer checks all provably pass.
inline constexpr uint8_t kElidePermSafe = 1u << 1;
/// The natural-alignment check can never fire.
inline constexpr uint8_t kElideAlignSafe = 1u << 2;
/// No architectural fault of any kind is reachable here: the machine
/// may run the instruction's unchecked datapath.
inline constexpr uint8_t kElideNeverFaults = 1u << 3;
/// Privilege mode the proof was established under (set = verified
/// with an execute-privileged instruction pointer). Baked from
/// ElideProof::privileged, compared against the thread's actual
/// privilege at execute time.
inline constexpr uint8_t kElidePrivileged = 1u << 4;

/// Sidecar format version ("gpproof N" header). Bump on any change to
/// verdict-bit semantics; the machine refuses mismatched versions.
inline constexpr uint32_t kProofVersion = 1;

/**
 * The static half of the machine's elision gate: does this baked
 * verdict entitle an instruction to the unchecked datapath when
 * executed at the given privilege? The caller still owns the dynamic
 * half (no fault handler installed, fault injector unarmed). Shared
 * by the per-instruction interpreter and the superblock dispatcher so
 * the two paths can never disagree on what a proof means.
 */
inline constexpr bool
verdictElides(uint8_t verdict, bool privileged)
{
    return (verdict & kElideNeverFaults) != 0 &&
           bool(verdict & kElidePrivileged) == privileged;
}

/**
 * Per-instruction safety proof for one loaded image: a verdict byte
 * per instruction word, bound to the exact raw bits and load base it
 * was computed for.
 */
struct ElideProof
{
    /// Virtual address the image was verified for (loader base).
    uint64_t base = 0;
    /// Proof established under an execute-privileged entry IP.
    bool privileged = false;
    /// Raw 64-bit payload of each instruction word at proof time; the
    /// machine only applies verdicts[i] when the fetched bits match.
    std::vector<uint64_t> bits;
    /// Verdict byte per instruction (kElide* flags, sans privileged —
    /// that is proof-global and baked in by the consumer).
    std::vector<uint8_t> verdicts;

    bool empty() const { return verdicts.empty(); }
};

/** @return "bounds,perm,align,never-faults[,priv]" or "none". */
std::string verdictNames(uint8_t verdict);

/**
 * Render the proof in the versioned "gpproof" text sidecar format
 * (gpverify --emit-proofs writes this; gpsim --proofs reads it).
 */
std::string serializeProof(const ElideProof &proof);

/**
 * Parse a "gpproof" sidecar. @return false (with a message in *error
 * when given) on syntax or version mismatch; out is untouched then.
 */
bool parseProof(std::string_view text, ElideProof &out,
                std::string *error = nullptr);

} // namespace gp::isa

#endif // GP_ISA_ELIDE_H
