/**
 * @file
 * Two-pass assembler for the MAP-like ISA.
 *
 * Accepts one instruction per line with optional `label:` definitions
 * and `;` comments. Branch targets may be labels (resolved to
 * instruction-relative immediates) or literal immediates. The example
 * programs and the Fig. 3 / Fig. 4 call-sequence benches are written in
 * this assembly.
 *
 * Syntax summary:
 *   loop:  addi r1, r1, 1      ; ALU with immediate
 *          add  r2, r1, r3     ; three-register ALU
 *          ld   r4, 8(r5)      ; load, displacement addressing
 *          st   r4, 0(r5)      ; store value r4 at 0(r5)
 *          leai r5, r5, 8      ; pointer increment (bounds-checked)
 *          beq  r1, r6, loop   ; branch to label
 *          jmp  r7             ; jump through pointer in r7
 *          halt
 */

#ifndef GP_ISA_ASSEMBLER_H
#define GP_ISA_ASSEMBLER_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gp/word.h"
#include "isa/inst.h"

namespace gp::isa {

/**
 * Source location of one assembled instruction — the assembler's
 * source map. Consumed by diagnostics (gpverify reports file:line
 * through it) and by error messages, which quote the offending text.
 */
struct SourceLoc
{
    int line = 0;     //!< 1-based source line number
    std::string text; //!< the instruction text (comments stripped)
};

/** Result of assembling a source string. */
struct Assembly
{
    bool ok = false;
    std::string error;            //!< message with line number and the
                                  //!< offending source text on failure
    std::vector<Word> words;      //!< encoded instructions
    std::map<std::string, size_t> labels; //!< label -> instruction index
    std::vector<SourceLoc> srcMap; //!< per-instruction source location,
                                   //!< parallel to words
};

/** Assemble a full program source. */
Assembly assemble(std::string_view source);

} // namespace gp::isa

#endif // GP_ISA_ASSEMBLER_H
