/**
 * @file
 * Program loading helpers for tests and benches that drive the machine
 * without the full OS layer.
 *
 * The loader places encoded instructions into memory at a segment-
 * aligned base and mints the pointers a thread needs: an execute
 * pointer for spawning, an enter pointer for protected entry, and
 * read/write data-segment pointers. In a real system these pointers
 * are created by privileged code via SETPTR; here the loader plays the
 * role of that privileged boot code.
 */

#ifndef GP_ISA_LOADER_H
#define GP_ISA_LOADER_H

#include <cstdint>
#include <vector>

#include "gp/word.h"
#include "mem/memory_port.h"
#include "mem/memory_system.h"

namespace gp::isa {

/** Pointers minted for a loaded code segment. */
struct LoadedProgram
{
    Word execPtr;  //!< execute-user (or -privileged) at first word
    Word enterPtr; //!< matching enter pointer at first word
    uint64_t base = 0;
    uint64_t lenLog2 = 0;
};

/**
 * Write a program into memory at a 2^k-aligned base and return its
 * pointers. The segment length is the smallest power of two covering
 * the code. The base must be aligned to that length.
 *
 * @param privileged mint execute-privileged / enter-privileged pointers
 */
LoadedProgram loadProgram(mem::MemoryPort &mem, uint64_t base,
                          const std::vector<Word> &words,
                          bool privileged = false);

/**
 * Create a read/write data segment pointer over [base, base + 2^len).
 * Purely a pointer mint; memory is demand-allocated on first touch.
 */
Word dataSegment(uint64_t base, uint64_t len_log2);

/** @return the smallest k such that 2^k >= bytes (k >= 3). */
uint64_t segLenFor(uint64_t bytes);

} // namespace gp::isa

#endif // GP_ISA_LOADER_H
