/**
 * @file
 * Per-thread architectural state.
 *
 * A thread is sixteen tagged general-purpose registers plus a tagged
 * instruction pointer — nothing else. There is no protection-domain
 * register, no segment table pointer, no ASID: the thread's protection
 * domain is exactly the transitive closure of the pointers in its
 * registers (paper §3), which is why switching threads costs zero
 * cycles of protection work.
 */

#ifndef GP_ISA_THREAD_H
#define GP_ISA_THREAD_H

#include <cstdint>

#include "gp/fault.h"
#include "gp/word.h"
#include "isa/inst.h"

namespace gp::isa {

/** Scheduling state of a thread slot. */
enum class ThreadState : uint8_t
{
    Idle,    //!< slot unoccupied
    Ready,   //!< may issue when stallUntil has passed
    Halted,  //!< executed HALT
    Faulted, //!< took an unhandled architectural fault
    /** Parked on a cross-shard memory access under the sharded mesh
     * engine: the instruction is in flight as a split transaction and
     * the thread resumes when the epoch barrier delivers the result.
     * A Pending thread is live (not a free slot, not done). */
    Pending,
};

/** Details of an architectural fault taken by a thread. */
struct FaultRecord
{
    Fault fault = Fault::None;
    Word ip;            //!< IP of the faulting instruction
    uint64_t cycle = 0; //!< machine cycle of the fault
};

/** One hardware thread slot of a cluster. */
class Thread
{
  public:
    Thread() = default;

    /** (Re)initialize the slot with an entry instruction pointer. */
    void
    start(Word entry_ip, uint32_t id)
    {
        for (auto &r : regs_)
            r = Word{};
        ip_ = entry_ip;
        id_ = id;
        state_ = ThreadState::Ready;
        stallUntil_ = 0;
        instsRetired_ = 0;
        faultRecord_ = FaultRecord{};
        clearSbCursor();
    }

    const Word &reg(unsigned i) const { return regs_[i]; }
    void setReg(unsigned i, Word w) { regs_[i] = w; }

    Word ip() const { return ip_; }
    void setIp(Word ip) { ip_ = ip; }

    ThreadState state() const { return state_; }
    void halt() { state_ = ThreadState::Halted; }

    /** Record an unhandled fault and stop the thread. */
    void
    takeFault(Fault f, uint64_t cycle)
    {
        faultRecord_ = FaultRecord{f, ip_, cycle};
        state_ = ThreadState::Faulted;
    }

    /**
     * Return a faulted thread to the run queue (used by the machine's
     * software fault handler after it has repaired the cause). The
     * fault record is kept for inspection.
     */
    void
    resumeFromFault()
    {
        if (state_ == ThreadState::Faulted)
            state_ = ThreadState::Ready;
    }

    const FaultRecord &faultRecord() const { return faultRecord_; }

    /** Park on a cross-shard split transaction (Ready -> Pending). */
    void
    park()
    {
        if (state_ == ThreadState::Ready)
            state_ = ThreadState::Pending;
    }

    /** Resume after the split transaction completed. */
    void
    unpark()
    {
        if (state_ == ThreadState::Pending)
            state_ = ThreadState::Ready;
    }

    /** @return true if the thread can issue at the given cycle. */
    bool
    canIssue(uint64_t cycle) const
    {
        return state_ == ThreadState::Ready && stallUntil_ <= cycle;
    }

    uint64_t stallUntil() const { return stallUntil_; }
    void stallTo(uint64_t cycle) { stallUntil_ = cycle; }

    uint32_t id() const { return id_; }

    uint64_t instsRetired() const { return instsRetired_; }
    void retire() { instsRetired_++; }

    // --- Superblock cursor (microarchitectural, not architectural
    // state: it caches "this thread is part-way through the
    // superblock entered at sbEntry_ — whose span of sbCount_ slots
    // it verified against its own execute pointer — at slot sbPos_,
    // with entry-verified privilege sbPriv_"). The machine
    // revalidates entry/count against the cached block on every use,
    // so a replaced or invalidated block is merely a missed fast
    // path, never incorrect execution.
    uint64_t sbEntry() const { return sbEntry_; }
    uint32_t sbCount() const { return sbCount_; }
    uint32_t sbPos() const { return sbPos_; }
    bool sbPriv() const { return sbPriv_; }
    void
    setSbCursor(uint64_t entry, uint32_t count, uint32_t pos,
                bool priv)
    {
        sbEntry_ = entry;
        sbCount_ = count;
        sbPos_ = pos;
        sbPriv_ = priv;
    }
    void setSbPos(uint32_t pos) { sbPos_ = pos; }
    void
    clearSbCursor()
    {
        sbEntry_ = UINT64_MAX;
        sbCount_ = 0;
        sbPos_ = 0;
        sbPriv_ = false;
    }

  private:
    Word regs_[kNumRegs];
    Word ip_;
    ThreadState state_ = ThreadState::Idle;
    uint64_t stallUntil_ = 0;
    uint64_t instsRetired_ = 0;
    uint32_t id_ = 0;
    FaultRecord faultRecord_;
    uint64_t sbEntry_ = UINT64_MAX; //!< superblock entry, or none
    uint32_t sbCount_ = 0;          //!< span verified at entry
    uint32_t sbPos_ = 0;            //!< next slot within the block
    bool sbPriv_ = false;           //!< privilege verified at entry
};

} // namespace gp::isa

#endif // GP_ISA_THREAD_H
