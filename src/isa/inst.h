/**
 * @file
 * Instruction set of the simulated MAP-like processor.
 *
 * A small 64-bit RISC ISA extended with the guarded-pointer operations
 * of paper §2.2 (LEA/LEAB, RESTRICT, SUBSEG, SETPTR, ISPTR, the cast
 * helpers, and pointer-aware jumps). Instructions are encoded one per
 * 64-bit memory word so that code lives in ordinary tagged memory and
 * is fetched through execute-permission pointers:
 *
 *   bits 63..56 opcode
 *   bits 55..51 rd
 *   bits 50..46 ra
 *   bits 45..41 rb
 *   bits 31..0  imm (signed)
 *
 * ALU results are always untagged: feeding a pointer through any
 * non-pointer unit clears its tag (§2.2), so arithmetic can never forge
 * a capability. MOV / 8-byte LD / 8-byte ST move words with their tags,
 * which is how capabilities travel between registers and memory.
 */

#ifndef GP_ISA_INST_H
#define GP_ISA_INST_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "gp/word.h"

namespace gp::isa {

/// Number of general-purpose (tagged) registers per thread.
inline constexpr unsigned kNumRegs = 16;

/** Opcodes. */
enum class Op : uint8_t
{
    NOP = 0,
    HALT,

    // Integer ALU (results untagged; pointer inputs read as integers).
    ADD,
    SUB,
    MUL,
    AND,
    OR,
    XOR,
    SHL,
    SHR,
    SRA,
    SLT,  //!< signed set-less-than
    SLTU, //!< unsigned set-less-than

    // ALU with immediate.
    ADDI,
    ANDI,
    ORI,
    XORI,
    SHLI,
    SHRI,
    SRAI,
    MOVI, //!< rd = sign-extended imm
    LUI,  //!< rd = imm << 32 (build 64-bit constants with ORI)

    // Register move — preserves the tag (capabilities are copyable).
    MOV,

    // Memory. LD/ST are 8-byte and tag-preserving; W/H/B variants are
    // 4/2/1 bytes and untagged.
    LD,
    LDW,
    LDH,
    LDB,
    ST,
    STW,
    STH,
    STB,

    // Guarded-pointer operations (§2.2).
    LEA,      //!< rd = lea(ra, rb)
    LEAI,     //!< rd = lea(ra, imm)
    LEAB,     //!< rd = leab(ra, rb)
    LEABI,    //!< rd = leab(ra, imm)
    RESTRICT, //!< rd = restrict(ra, perm = rb & 0xf)
    SUBSEG,   //!< rd = subseg(ra, len = rb & 0x3f)
    SETPTR,   //!< rd = tag(ra)  [privileged]
    ISPTR,    //!< rd = tag bit of ra as 0/1
    PTOI,     //!< rd = offset of ra within its segment (untagged)
    ITOP,     //!< rd = pointer into ra's segment at offset rb

    // Control flow.
    JMP,   //!< IP = jumpTarget(ra); enter pointers convert on entry
    GETIP, //!< rd = current IP (an execute pointer)
    BEQ,   //!< if ra == rb (bits+tag) branch by imm instructions
    BNE,
    BLT, //!< signed compare on payload bits
    BGE,

    OpCount,
};

/** Decoded instruction. */
struct Inst
{
    Op op = Op::NOP;
    uint8_t rd = 0;
    uint8_t ra = 0;
    uint8_t rb = 0;
    int32_t imm = 0;
};

/** Encode an instruction into an untagged 64-bit memory word. */
Word encode(const Inst &inst);

/**
 * Decode a fetched word. Returns nullopt for tagged words (a pointer is
 * never a valid instruction) or out-of-range opcodes/registers.
 */
std::optional<Inst> decodeInst(Word w);

/** @return the assembler mnemonic for an opcode. */
std::string_view opName(Op op);

/** @return the opcode for a mnemonic, if any (case-insensitive). */
std::optional<Op> opFromName(std::string_view name);

/** @return a disassembly string for diagnostics. */
std::string toString(const Inst &inst);

} // namespace gp::isa

#endif // GP_ISA_INST_H
