#include "isa/inst.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>

namespace gp::isa {

namespace {

constexpr unsigned kOpShift = 56;
constexpr unsigned kRdShift = 51;
constexpr unsigned kRaShift = 46;
constexpr unsigned kRbShift = 41;
constexpr uint64_t kRegMask = 0x1f;

struct OpInfo
{
    Op op;
    std::string_view name;
};

constexpr std::array<OpInfo, size_t(Op::OpCount)> kOpTable = {{
    {Op::NOP, "nop"},           {Op::HALT, "halt"},
    {Op::ADD, "add"},           {Op::SUB, "sub"},
    {Op::MUL, "mul"},           {Op::AND, "and"},
    {Op::OR, "or"},             {Op::XOR, "xor"},
    {Op::SHL, "shl"},           {Op::SHR, "shr"},
    {Op::SRA, "sra"},           {Op::SLT, "slt"},
    {Op::SLTU, "sltu"},         {Op::ADDI, "addi"},
    {Op::ANDI, "andi"},         {Op::ORI, "ori"},
    {Op::XORI, "xori"},         {Op::SHLI, "shli"},
    {Op::SHRI, "shri"},         {Op::SRAI, "srai"},
    {Op::MOVI, "movi"},         {Op::LUI, "lui"},
    {Op::MOV, "mov"},           {Op::LD, "ld"},
    {Op::LDW, "ldw"},           {Op::LDH, "ldh"},
    {Op::LDB, "ldb"},           {Op::ST, "st"},
    {Op::STW, "stw"},           {Op::STH, "sth"},
    {Op::STB, "stb"},           {Op::LEA, "lea"},
    {Op::LEAI, "leai"},         {Op::LEAB, "leab"},
    {Op::LEABI, "leabi"},       {Op::RESTRICT, "restrict"},
    {Op::SUBSEG, "subseg"},     {Op::SETPTR, "setptr"},
    {Op::ISPTR, "isptr"},       {Op::PTOI, "ptoi"},
    {Op::ITOP, "itop"},         {Op::JMP, "jmp"},
    {Op::GETIP, "getip"},       {Op::BEQ, "beq"},
    {Op::BNE, "bne"},           {Op::BLT, "blt"},
    {Op::BGE, "bge"},
}};

} // namespace

Word
encode(const Inst &inst)
{
    const uint64_t bits =
        (uint64_t(inst.op) << kOpShift) |
        ((uint64_t(inst.rd) & kRegMask) << kRdShift) |
        ((uint64_t(inst.ra) & kRegMask) << kRaShift) |
        ((uint64_t(inst.rb) & kRegMask) << kRbShift) |
        (uint64_t(uint32_t(inst.imm)));
    return Word::fromInt(bits);
}

std::optional<Inst>
decodeInst(Word w)
{
    if (w.isPointer())
        return std::nullopt;

    const uint64_t bits = w.bits();
    const uint64_t op = bits >> kOpShift;
    if (op >= uint64_t(Op::OpCount))
        return std::nullopt;

    Inst inst;
    inst.op = Op(op);
    inst.rd = uint8_t((bits >> kRdShift) & kRegMask);
    inst.ra = uint8_t((bits >> kRaShift) & kRegMask);
    inst.rb = uint8_t((bits >> kRbShift) & kRegMask);
    inst.imm = int32_t(uint32_t(bits));
    if (inst.rd >= kNumRegs || inst.ra >= kNumRegs || inst.rb >= kNumRegs)
        return std::nullopt;
    return inst;
}

std::string_view
opName(Op op)
{
    for (const auto &info : kOpTable) {
        if (info.op == op)
            return info.name;
    }
    return "???";
}

std::optional<Op>
opFromName(std::string_view name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (const auto &info : kOpTable) {
        if (info.name == lower)
            return info.op;
    }
    return std::nullopt;
}

std::string
toString(const Inst &inst)
{
    // Emit assembler-accepted syntax so disassembly round-trips.
    const std::string mnem{opName(inst.op)};
    auto reg = [](unsigned n) { return "r" + std::to_string(n); };
    const std::string imm = std::to_string(inst.imm);

    switch (inst.op) {
      case Op::NOP:
      case Op::HALT:
        return mnem;
      case Op::JMP:
        return mnem + " " + reg(inst.ra);
      case Op::GETIP:
        return mnem + " " + reg(inst.rd);
      case Op::MOVI:
      case Op::LUI:
        return mnem + " " + reg(inst.rd) + ", " + imm;
      case Op::MOV:
      case Op::SETPTR:
      case Op::ISPTR:
      case Op::PTOI:
        return mnem + " " + reg(inst.rd) + ", " + reg(inst.ra);
      case Op::LD:
      case Op::LDW:
      case Op::LDH:
      case Op::LDB:
      case Op::ST:
      case Op::STW:
      case Op::STH:
      case Op::STB:
        return mnem + " " + reg(inst.rd) + ", " + imm + "(" +
               reg(inst.ra) + ")";
      case Op::ADDI:
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI:
      case Op::SHLI:
      case Op::SHRI:
      case Op::SRAI:
      case Op::LEAI:
      case Op::LEABI:
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
        return mnem + " " + reg(inst.rd) + ", " + reg(inst.ra) +
               ", " + imm;
      default:
        return mnem + " " + reg(inst.rd) + ", " + reg(inst.ra) +
               ", " + reg(inst.rb);
    }
}

} // namespace gp::isa
