#include "isa/machine.h"

#include "gp/ops.h"
#include "gp/pointer.h"
#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "sim/trace.h"

namespace gp::isa {

namespace {

/** Retired-instruction mix classes (indices into Machine::mix_). */
enum InstClass : unsigned
{
    ClassAlu = 0,  //!< integer ALU, moves, immediates
    ClassMem,      //!< loads and stores
    ClassBranch,   //!< conditional branches
    ClassControl,  //!< JMP/GETIP/HALT/NOP
    ClassPointer,  //!< guarded-pointer operations (§2.2)
    ClassMisc,     //!< anything else
};

constexpr const char *kClassNames[] = {
    "alu", "mem", "branch", "control", "pointer", "misc",
};

/** Classify an opcode for the retired-instruction mix counters. */
unsigned
instClass(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::MUL:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SRA:
      case Op::SLT:
      case Op::SLTU:
      case Op::ADDI:
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI:
      case Op::SHLI:
      case Op::SHRI:
      case Op::SRAI:
      case Op::MOVI:
      case Op::LUI:
      case Op::MOV:
        return ClassAlu;
      case Op::LD:
      case Op::LDW:
      case Op::LDH:
      case Op::LDB:
      case Op::ST:
      case Op::STW:
      case Op::STH:
      case Op::STB:
        return ClassMem;
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
        return ClassBranch;
      case Op::NOP:
      case Op::HALT:
      case Op::JMP:
      case Op::GETIP:
        return ClassControl;
      case Op::LEA:
      case Op::LEAI:
      case Op::LEAB:
      case Op::LEABI:
      case Op::RESTRICT:
      case Op::SUBSEG:
      case Op::SETPTR:
      case Op::ISPTR:
      case Op::PTOI:
      case Op::ITOP:
        return ClassPointer;
      default:
        return ClassMisc;
    }
}

} // namespace

Machine::Machine(const MachineConfig &config)
    : config_(config),
      ownedMem_(std::make_unique<mem::MemorySystem>(config.mem)),
      port_(ownedMem_.get()),
      threads_(size_t(config.clusters) * config.threadsPerCluster),
      rrNext_(config.clusters, 0)
{
    if (config_.clusters == 0 || config_.threadsPerCluster == 0)
        sim::fatal("machine needs at least one cluster and thread slot");
    if (config_.fastMode) {
        // Functional-only execution: swap the timed memory system for
        // the zero-latency FastPort over the same functional memory.
        // Modes whose behaviour lives in the timing path cannot be
        // modelled here — refuse loudly rather than diverge silently.
        if (config_.mem.ecc != mem::EccMode::None)
            sim::fatal("fast mode is functional-only and cannot "
                       "model ECC");
        if (sim::FaultInjector::armed())
            sim::fatal("fast mode cannot run under an armed fault "
                       "campaign (draw order is cycle-accurate)");
        fastPort_ = std::make_unique<mem::FastPort>(*ownedMem_);
        port_ = fastPort_.get();
    }
    initStats();
}

Machine::Machine(const MachineConfig &config, mem::MemoryPort &port)
    : config_(config),
      port_(&port),
      threads_(size_t(config.clusters) * config.threadsPerCluster),
      rrNext_(config.clusters, 0)
{
    if (config_.clusters == 0 || config_.threadsPerCluster == 0)
        sim::fatal("machine needs at least one cluster and thread slot");
    if (config_.fastMode)
        sim::fatal("fast mode requires the owning constructor (an "
                   "external memory port supplies its own timing)");
    initStats();
}

void
Machine::initStats()
{
    instructions_ = &stats_.counter("instructions");
    cycles_ = &stats_.counter("cycles");
    idleClusterCycles_ = &stats_.counter("idle_cluster_cycles");
    emptyClusterCycles_ = &stats_.counter("empty_cluster_cycles");
    stalledClusterCycles_ = &stats_.counter("stalled_cluster_cycles");
    domainSwitches_ = &stats_.counter("domain_switches");
    gateCrossings_ = &stats_.counter("gate_crossings");
    faults_ = &stats_.counter("faults");
    faultsRecovered_ = &stats_.counter("faults_recovered");
    threadsSpawned_ = &stats_.counter("threads_spawned");
    watchdogTrips_ = &stats_.counter("watchdog_trips");
    hungAccesses_ = &stats_.counter("hung_accesses");
    predecodeHits_ = &stats_.counter("predecode_hits");
    predecodeMisses_ = &stats_.counter("predecode_misses");
    elideChecksElided_ = &stats_.counter("elide_checks_elided");
    elideChecksExecuted_ = &stats_.counter("elide_checks_executed");
    elideCyclesSaved_ = &stats_.counter("elide_cycles_saved");
    predecode_.assign(kPredecodeEntries, PredecodedInst{});
    if (config_.superblocks) {
        // Superblock state and counters exist only when the feature
        // is on: a default-mode machine exposes exactly the counter
        // set the blessed F6/fig5 signatures were pinned to.
        superblockHits_ = &stats_.counter("superblock_hits");
        superblockInstalls_ = &stats_.counter("superblock_installs");
        superblockFlushes_ = &stats_.counter("superblock_flushes");
        superblocks_.assign(kSbEntries, Superblock{});
        sbRecorders_.assign(threads_.size(), SbRecorder{});
    }
    for (unsigned i = 0; i < kInstClassCount; ++i)
        mix_[i] = &stats_.counter(std::string("mix_") + kClassNames[i]);
    // Per-kind fault counters. Kinds through WatchdogTimeout are
    // registered eagerly (they predate the sharded-mesh signature
    // baselines); later kinds (NodeUnreachable) register lazily on
    // first occurrence in bumpFaultKind(), so a machine that never
    // sees one exposes exactly the counter set the blessed F6/fig5
    // signatures were pinned to.
    for (unsigned i = 1; i <= unsigned(Fault::WatchdogTimeout); ++i) {
        faultKind_[i] = &stats_.counter(
            std::string("fault_") + std::string(faultName(Fault(i))));
    }
    lastIssuedId_.assign(config_.clusters, UINT32_MAX);
}

void
Machine::flushPredecode()
{
    predecode_.assign(kPredecodeEntries, PredecodedInst{});
    flushSuperblocks();
}

void
Machine::flushSuperblocks()
{
    if (superblocks_.empty())
        return;
    for (Superblock &b : superblocks_)
        b.valid = false;
    for (SbRecorder &r : sbRecorders_)
        r.reset();
    // Stale thread cursors are harmless: every use revalidates
    // against the block's valid/entry/count fields.
    (*superblockFlushes_)++;
}

void
Machine::registerElideProof(const ElideProof &proof)
{
    elideProofs_.push_back(proof);
    const uint64_t lo = proof.base;
    const uint64_t hi = proof.base + 8 * proof.verdicts.size();
    proofCoverLo_ = lo < proofCoverLo_ ? lo : proofCoverLo_;
    proofCoverHi_ = hi > proofCoverHi_ ? hi : proofCoverHi_;
    flushPredecode();
}

void
Machine::clearElideProofs()
{
    elideProofs_.clear();
    proofCoverLo_ = UINT64_MAX;
    proofCoverHi_ = 0;
    proofsDirty_ = false;
    flushPredecode();
}

uint8_t
Machine::proofVerdict(uint64_t vaddr, uint64_t bits) const
{
    for (const ElideProof &p : elideProofs_) {
        if (vaddr < p.base || (vaddr - p.base) % 8 != 0)
            continue;
        const uint64_t idx = (vaddr - p.base) / 8;
        if (idx >= p.verdicts.size() || idx >= p.bits.size())
            continue;
        // The verdict is bound to the exact bits it was proven for: a
        // mismatch means the image changed after verification, so
        // decode the word afresh but trust nothing about it.
        if (p.bits[idx] != bits)
            return 0;
        uint8_t v = p.verdicts[idx];
        if (p.privileged)
            v |= kElidePrivileged;
        return v;
    }
    return 0;
}

mem::MemorySystem &
Machine::mem()
{
    if (!ownedMem_)
        sim::panic("Machine::mem(): machine runs on an external "
                   "memory port; use port() instead");
    return *ownedMem_;
}

Thread *
Machine::spawn(Word entry_ip)
{
    // Pick the cluster with the fewest live threads for balance.
    unsigned best_cluster = 0;
    unsigned best_live = UINT32_MAX;
    for (unsigned c = 0; c < config_.clusters; ++c) {
        unsigned live = 0;
        bool has_free = false;
        for (unsigned s = 0; s < config_.threadsPerCluster; ++s) {
            const Thread &t =
                threads_[c * config_.threadsPerCluster + s];
            if (t.state() == ThreadState::Ready)
                live++;
            if (t.state() == ThreadState::Idle ||
                t.state() == ThreadState::Halted ||
                t.state() == ThreadState::Faulted) {
                has_free = true;
            }
        }
        if (has_free && live < best_live) {
            best_live = live;
            best_cluster = c;
        }
    }
    if (best_live == UINT32_MAX)
        return nullptr;
    return spawnOnCluster(best_cluster, entry_ip);
}

Thread *
Machine::spawnOnCluster(unsigned cluster, Word entry_ip)
{
    if (cluster >= config_.clusters)
        return nullptr;
    for (unsigned s = 0; s < config_.threadsPerCluster; ++s) {
        Thread &t = threads_[cluster * config_.threadsPerCluster + s];
        if (t.state() == ThreadState::Idle ||
            t.state() == ThreadState::Halted ||
            t.state() == ThreadState::Faulted) {
            t.start(entry_ip, nextThreadId_++);
            (*threadsSpawned_)++;
            return &t;
        }
    }
    return nullptr;
}

bool
Machine::allDone() const
{
    for (const Thread &t : threads_) {
        // Pending threads (parked on a cross-shard split transaction)
        // are live: the epoch barrier will resume them.
        if (t.state() == ThreadState::Ready ||
            t.state() == ThreadState::Pending)
            return false;
    }
    return true;
}

void
Machine::step()
{
    // Feed the trace hub the current cycle so layers without direct
    // cycle access (gp pointer ops) can stamp events. One static-load
    // branch when tracing is fully off.
    if (sim::TraceManager::anyEnabled())
        sim::TraceManager::instance().setCycle(cycle_);
    for (unsigned c = 0; c < config_.clusters; ++c)
        stepCluster(c);
    cycle_++;
    (*cycles_)++;
    // Tick-scheduled fault sites (resident-memory flips etc.): one
    // static-bool test when no campaign is armed. The sharded mesh
    // engine suppresses the per-machine tick and ticks the injector
    // centrally at the epoch barrier instead, so draw order does not
    // depend on the host-thread count.
    if (!config_.externalInjectorTick && sim::FaultInjector::armed())
        sim::FaultInjector::instance().tick(cycle_);
    if (sim::Profiler::armed())
        sim::Profiler::instance().tick(cycle_);
    if ((config_.watchdogCycles != 0 ||
         config_.watchdogQuiescence != 0) &&
        !watchdogTripped_)
        checkWatchdog();
}

void
Machine::checkWatchdog()
{
    if (config_.watchdogCycles != 0 &&
        cycle_ >= config_.watchdogCycles) {
        tripWatchdog("cycle-budget");
        return;
    }
    // Quiescence: the window test is the cheap per-cycle gate; the
    // quiescentNow() scan runs only once the window has already been
    // exceeded, so the common case pays two compares.
    if (config_.watchdogQuiescence != 0 && !allDone() &&
        cycle_ - lastIssueCycle_ >= config_.watchdogQuiescence &&
        quiescentNow())
        tripWatchdog("quiescence");
}

bool
Machine::quiescentNow() const
{
    // Not quiescent while any thread has a scheduled future wake-up:
    // a Ready thread stalled to a *finite* cycle (long NoC backoff,
    // retransmission timeouts) will issue again without outside help.
    // stallUntil == UINT64_MAX is the hung-forever sentinel and does
    // not count as a scheduled wake. The comparison is >= because
    // this runs post-increment: a stall expiring at exactly cycle_
    // issues in the upcoming stepCluster, which has not run yet.
    for (const Thread &t : threads_) {
        if (t.state() == ThreadState::Ready &&
            t.stallUntil() != UINT64_MAX && t.stallUntil() >= cycle_)
            return false;
    }
    // Not quiescent while a split transaction is genuinely in flight:
    // the epoch barrier will complete it (possibly with a fault) and
    // that completion counts as progress. Entries the engine marked
    // orphaned will never complete — threads parked on those are
    // wedged and must not veto the trip.
    for (const DeferredInst &d : deferred_)
        if (!d.orphaned)
            return false;
    return true;
}

void
Machine::markDeferredOrphans()
{
    for (DeferredInst &d : deferred_)
        d.orphaned = true;
}

void
Machine::tripWatchdog(const char *why)
{
    watchdogTripped_ = true;
    readyMayHaveShrunk_ = true;
    (*watchdogTrips_)++;
    GP_TRACE(Fault, cycle_, 0, "watchdog", "%s cycle=%llu", why,
             static_cast<unsigned long long>(cycle_));
    sim::warn("machine: watchdog trip (%s) at cycle %llu", why,
              static_cast<unsigned long long>(cycle_));
    for (Thread &t : threads_) {
        if (t.state() != ThreadState::Ready &&
            t.state() != ThreadState::Pending)
            continue;
        // Structured conversion of the hang: fault the thread
        // directly, bypassing the software handler — a wedged
        // machine cannot be trusted to run recovery code. Pending
        // threads are killed too: their split transaction will never
        // be delivered to a tripped machine.
        GP_TRACE(Fault, cycle_, t.id(), "watchdog-kill",
                 "t%u ip=0x%llx", t.id(),
                 static_cast<unsigned long long>(t.ip().addr()));
        t.stallTo(0);
        t.takeFault(Fault::WatchdogTimeout, cycle_);
        faultLog_.push_back(t.faultRecord());
        (*faults_)++;
        bumpFaultKind(Fault::WatchdogTimeout);
    }
    // Dump the flight recorder (no-op unless one is armed).
    sim::TraceManager::instance().unhandledFault();
}

void
Machine::forceWatchdogTrip(const char *why)
{
    if (!watchdogTripped_)
        tripWatchdog(why);
}

void
Machine::bumpFaultKind(Fault f)
{
    const unsigned fi = unsigned(f);
    if (fi >= 16)
        return;
    // Lazy registration for kinds past WatchdogTimeout (see
    // initStats): the counter appears only in runs that actually took
    // the fault, keeping fault-free stat exports and signatures
    // byte-identical to the pre-NodeUnreachable baselines. Cold path.
    if (!faultKind_[fi])
        faultKind_[fi] = &stats_.counter(
            std::string("fault_") + std::string(faultName(f)));
    (*faultKind_[fi])++;
}

uint64_t
Machine::run(uint64_t max_cycles)
{
    const uint64_t start = cycle_;
    // allDone() scans every thread slot, which is wasteful once per
    // cycle: a running machine only *becomes* done in a cycle where
    // some thread leaves the Ready state (halt, fault, watchdog — or
    // anything a software fault handler did while it had control).
    // Those paths set readyMayHaveShrunk_, so the scan re-runs only
    // after such a cycle. not-Ready -> Ready transitions can only
    // keep the machine running and never need a re-check.
    bool done = allDone();
    while (!done && cycle_ - start < max_cycles) {
        readyMayHaveShrunk_ = false;
        step();
        if (readyMayHaveShrunk_)
            done = allDone();
    }
    if (!allDone())
        sim::warn("machine: run() hit the %llu-cycle limit",
                  static_cast<unsigned long long>(max_cycles));
    return cycle_ - start;
}

void
Machine::stepCluster(unsigned cluster)
{
    // Round-robin over the cluster's thread slots: issue up to
    // issueWidth instructions, each from a distinct ready thread.
    // This is the zero-cost context switch — no protection state is
    // touched between threads.
    const unsigned nslots = config_.threadsPerCluster;
    const unsigned base = cluster * nslots;
    unsigned issued = 0;
    bool any_ready = false; // for idle attribution, tracked in-scan
    for (unsigned i = 0;
         i < nslots && issued < config_.issueWidth;
         ++i) {
        // rrNext_ and i are both < nslots, so the wrap is a single
        // compare/subtract — no integer division on the per-cycle
        // scheduling path.
        unsigned slot = rrNext_[cluster] + i;
        if (slot >= nslots)
            slot -= nslots;
        Thread &t = threads_[base + slot];
        if (t.state() != ThreadState::Ready)
            continue;
        any_ready = true;
        if (t.stallUntil() <= cycle_) {
            // Consecutive issues from different threads are the paper's
            // zero-cost protection-domain switches — count them.
            if (lastIssuedId_[cluster] != UINT32_MAX &&
                lastIssuedId_[cluster] != t.id()) {
                (*domainSwitches_)++;
            }
            lastIssuedId_[cluster] = t.id();
            issueThread(t);
            // CPI-stack attribution: the cluster-cycle belongs to its
            // first issuer (deterministic with issueWidth > 1). After
            // issueThread so the new instruction's record (and its
            // protection domain) is already open.
            if (sim::Profiler::armed() && issued == 0)
                sim::Profiler::instance().attrIssue(
                    unsigned(&t - threads_.data()));
            issued++;
        }
    }
    rrNext_[cluster] = rrNext_[cluster] + 1 == nslots
                           ? 0
                           : rrNext_[cluster] + 1;
    if (issued == 0) {
        (*idleClusterCycles_)++;
        // Attribute the idle cycle: live threads all stalled on memory
        // or trap latency, vs. no runnable thread in the cluster.
        // any_ready was collected by the (complete, since nothing
        // issued) scan above — no second pass over the slots.
        if (any_ready)
            (*stalledClusterCycles_)++;
        else
            (*emptyClusterCycles_)++;
        if (sim::Profiler::armed()) {
            if (!any_ready) {
                sim::Profiler::instance().attrEmpty();
            } else {
                // Charge the stall to whatever the *blocking* thread
                // (the Ready thread that will unstall first) is
                // waiting on. Armed-only second pass over the slots.
                unsigned blocking = base;
                uint64_t soonest = UINT64_MAX;
                for (unsigned s = 0; s < nslots; ++s) {
                    const Thread &bt = threads_[base + s];
                    if (bt.state() == ThreadState::Ready &&
                        bt.stallUntil() < soonest) {
                        soonest = bt.stallUntil();
                        blocking = base + s;
                    }
                }
                sim::Profiler::instance().attrStall(blocking, cycle_);
            }
        }
    }
}

void
Machine::faultThread(Thread &thread, Fault f)
{
    // The thread leaves Ready here, and the software handler below
    // may halt/fault arbitrary threads while it has control.
    readyMayHaveShrunk_ = true;
    thread.takeFault(f, cycle_);
    faultLog_.push_back(thread.faultRecord());
    (*faults_)++;
    bumpFaultKind(f);
    GP_TRACE(Fault, cycle_, thread.id(),
             std::string(faultName(f)).c_str(), "t%u ip=0x%llx",
             thread.id(),
             static_cast<unsigned long long>(thread.ip().addr()));

    if (faultHandler_) {
        // Dispatch to the software handler (event code in M-Machine
        // terms). It may repair the cause and resume the thread; the
        // trap cost is charged to the thread either way.
        const FaultAction action =
            faultHandler_(thread, thread.faultRecord());
        switch (action) {
          case FaultAction::Terminate:
            break;
          case FaultAction::Retry:
          case FaultAction::Resume:
            // Retry re-issues at the (possibly handler-patched) IP;
            // Resume continues at whatever IP the handler installed.
            // The machine treats both the same — the distinction is
            // the handler's contract with itself.
            thread.resumeFromFault();
            thread.stallTo(cycle_ + config_.faultTrapCycles);
            (*faultsRecovered_)++;
            // The thread's next stall window is handler latency.
            if (sim::Profiler::armed())
                sim::Profiler::instance().noteTrap(
                    unsigned(&thread - threads_.data()), cycle_,
                    config_.faultTrapCycles);
            break;
        }
    }

    // The thread terminates on this fault: trigger the flight-recorder
    // dump (a no-op unless a recorder is armed and has events).
    if (thread.state() == ThreadState::Faulted)
        sim::TraceManager::instance().unhandledFault();
}

bool
Machine::advanceIp(Thread &thread, int64_t inst_delta, bool elide)
{
    if (elide) {
        // A never-faults verdict covers every control-flow edge out of
        // the instruction (escaping edges record a BoundsViolation at
        // its index), so the IP update is provably in-segment.
        thread.setIp(gp::leaUnchecked(thread.ip(), inst_delta * 8));
        return true;
    }
    auto next = gp::lea(thread.ip(), inst_delta * 8);
    if (!next) {
        // Running or branching off the end of the code segment is a
        // bounds violation on the IP — by construction code cannot
        // escape its segment.
        faultThread(thread, next.fault);
        return false;
    }
    thread.setIp(next.value);
    return true;
}

void
Machine::issueThread(Thread &thread)
{
    lastIssueCycle_ = cycle_; // progress signal for the watchdog
    // Superblock threaded dispatch: taken only when no observer
    // needs per-instruction visibility — the trace hook, profiler,
    // and trace sinks all see every instruction on the legacy path.
    // One bool test when the feature is off.
    if (config_.superblocks && !traceHook_ &&
        !sim::Profiler::armed() && !sim::TraceManager::anyEnabled() &&
        issueThreadSb(thread))
        return;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accBegin(sim::ProfComp::IFetch);
    const mem::MemAccess f = port_->portFetch(thread.ip(), cycle_);
    if (f.deferred) {
        // Cross-shard fetch under the epoch engine: park the thread
        // until the barrier delivers the fetched word, then resume
        // through finishFetch() as if the fetch had just returned.
        readyMayHaveShrunk_ = true;
        thread.park();
        deferred_.push_back(
            {f.ticket, uint32_t(&thread - threads_.data()),
             DeferredKind::Fetch, 0, 0, 0, false});
        return;
    }
    finishFetch(thread, f);
}

void
Machine::finishFetch(Thread &thread, const mem::MemAccess &f)
{
    if (f.hang) {
        // The fetch will never complete (lost NoC request with
        // retransmission off): the thread stalls forever. Only a
        // watchdog can reclaim it.
        thread.stallTo(UINT64_MAX);
        (*hungAccesses_)++;
        if (sim::Profiler::armed())
            sim::Profiler::instance().noteHang(
                unsigned(&thread - threads_.data()), cycle_);
        return;
    }
    if (f.fault != Fault::None) {
        faultThread(thread, f.fault);
        return;
    }

    // Predecoded-instruction cache: decode is a pure function of the
    // fetched 65-bit word, so memoise it per static instruction. The
    // timed fetch above always happens (simulated timing and faults
    // are identical either way); a hit only skips host decode work.
    // Each hit re-validates the stored raw bits against the word the
    // fetch actually returned, so self-modifying code and loader
    // changes invalidate entries implicitly. Tagged words never
    // decode, hence the isPointer() guard on the hit path.
    const uint64_t ip_addr = thread.ip().addr();
    PredecodedInst &slot =
        predecode_[(ip_addr >> 3) & (kPredecodeEntries - 1)];
    const Inst *inst = nullptr;
    if (slot.addr == ip_addr && slot.bits == f.data.bits() &&
        !f.data.isPointer()) {
        inst = &slot.inst;
        (*predecodeHits_)++;
    } else {
        const auto decoded = gp::isa::decodeInst(f.data);
        if (!decoded) {
            faultThread(thread, Fault::InvalidInstruction);
            return;
        }
        slot.addr = ip_addr;
        slot.bits = f.data.bits();
        slot.inst = *decoded;
        // Bake the elision verdict on the miss only: the hot hit path
        // never consults the proof sidecar (the hit's raw-bits check
        // also guarantees the baked verdict still matches the code).
        slot.verdict = config_.elideChecks && !elideProofs_.empty()
                           ? proofVerdict(ip_addr, f.data.bits())
                           : 0;
        inst = &slot.inst;
        (*predecodeMisses_)++;
    }

    // Feed the superblock trace recorder: record-as-you-go from the
    // actual timed fetches, so only genuinely executed straight-line
    // paths become traces (and never through portPeek, which would
    // demand-allocate pages the program never touched).
    if (config_.superblocks)
        recordSbStep(thread, ip_addr, f.data.bits(), *inst,
                     slot.verdict);

    if (sim::Profiler::armed()) {
        // Open the instruction's occupancy record at the issue cycle;
        // the IP's segment is the thread's protection-domain identity.
        // The fetch's scratch timeline covers [issue, fetch-complete).
        const unsigned slot = unsigned(&thread - threads_.data());
        const gp::PointerView ipv(thread.ip());
        auto &prof = sim::Profiler::instance();
        prof.beginInst(slot, cycle_, ip_addr, ipv.segmentBase(),
                       ipv.segmentLimit());
        prof.flushAccess(slot, f.completeCycle - cycle_);
    }
    if (traceHook_)
        traceHook_(thread, *inst, cycle_);
    // Structured twin of the trace hook: same point in the issue path,
    // but routed through the TraceManager sinks. Format arguments
    // (including the toString) are not evaluated when Exec is off.
    GP_TRACE(Exec, cycle_, thread.id(),
             std::string(opName(inst->op)).c_str(), "t%u ip=0x%llx %s",
             thread.id(),
             static_cast<unsigned long long>(thread.ip().addr()),
             toString(*inst).c_str());
    execute(thread, *inst, f.completeCycle, slot.verdict);
    (*instructions_)++;
    (*mix_[instClass(inst->op)])++;
    if (proofsDirty_) {
        // A store into a verified image dropped the proofs mid-execute;
        // now that nothing aliases the predecode array, purge the
        // baked verdicts before the next instruction can issue.
        proofsDirty_ = false;
        flushPredecode();
    }
}

void
Machine::execute(Thread &thread, const Inst &inst, uint64_t ready_at,
                 uint8_t verdict)
{
    const Word ra = thread.reg(inst.ra);
    const Word rb = thread.reg(inst.rb);
    const bool priv = gp::ipPrivileged(thread.ip());

    // Verifier-driven check elision (docs/VERIFIER.md "Proof export &
    // check elision"): take the unchecked datapath only when the baked
    // proof says this instruction can never fault, the thread runs at
    // the privilege the proof was derived under, and no runtime
    // mechanism can push execution outside the verified envelope — an
    // armed fault campaign corrupts state behind the analysis's back,
    // and a software fault handler may patch registers on *another*
    // instruction's fault. With the feature off verdict is always 0,
    // so this costs one always-false bit test.
    const bool elide = verdictElides(verdict, priv) &&
                       !faultHandler_ &&
                       !sim::FaultInjector::armed();

    // Default: single-cycle execution after fetch, sequential IP.
    uint64_t done = ready_at + 1;
    int64_t branch_delta = 1;
    // Set when a memory-op lambda takes a fault: the instruction must
    // not retire or advance IP afterwards (the fault handler may have
    // arranged a retry at the same IP).
    bool fault_taken = false;

    // Elided/executed accounting per elidable check event (pointer-op
    // check, displacement LEA, access check, IP-advance LEA). Only
    // meaningful — and only paid — under elideChecks mode, so both
    // counters read 0 in a baseline run.
    auto note_check = [&](bool elided) {
        if (!config_.elideChecks)
            return;
        if (elided)
            (*elideChecksElided_)++;
        else
            (*elideChecksExecuted_)++;
        if (sim::Profiler::armed())
            sim::Profiler::instance().noteCheck(elided);
    };

    auto alu = [&](uint64_t value) {
        thread.setReg(inst.rd, Word::fromInt(value));
    };
    auto ptr_result = [&](const Result<Word> &r) {
        note_check(false);
        if (!r) {
            faultThread(thread, r.fault);
            return false;
        }
        thread.setReg(inst.rd, r.value);
        return true;
    };
    // Elided pointer op: the result comes straight off the address
    // datapath in the fetch shadow — the one-cycle checking tail
    // disappears from the timing model (the measurable simulated
    // saving of elision; memory-op check skips are host-speed only).
    auto elide_ptr = [&](Word value) {
        thread.setReg(inst.rd, value);
        done = ready_at;
        (*elideCyclesSaved_)++;
        note_check(true);
    };

    // Displacement-addressed memory operand: derive the effective
    // pointer with a bounds-checked LEA (paper §2.2, Load/Store).
    auto eff_ptr = [&](Word base, int32_t disp) -> Result<Word> {
        if (disp == 0)
            return Result<Word>::ok(base);
        if (elide) {
            note_check(true);
            return Result<Word>::ok(gp::leaUnchecked(base, disp));
        }
        note_check(false);
        return gp::lea(base, disp);
    };

    auto do_load = [&](unsigned size) {
        auto ptr = eff_ptr(ra, inst.imm);
        if (!ptr) {
            faultThread(thread, ptr.fault);
            fault_taken = true;
            return;
        }
        if (sim::Profiler::armed())
            sim::Profiler::instance().accBegin(sim::ProfComp::DCache);
        note_check(elide);
        const mem::MemAccess acc =
            port_->portLoad(ptr.value, size, ready_at, elide);
        if (acc.deferred) {
            // Cross-shard load: the pointer check already ran above;
            // park until the barrier delivers data and timing.
            readyMayHaveShrunk_ = true;
            thread.park();
            deferred_.push_back(
                {acc.ticket, uint32_t(&thread - threads_.data()),
                 DeferredKind::Load, inst.rd, size, 0, elide});
            fault_taken = true; // suppress the retire/advance tail
            return;
        }
        if (acc.hang) {
            thread.stallTo(UINT64_MAX);
            (*hungAccesses_)++;
            if (sim::Profiler::armed())
                sim::Profiler::instance().noteHang(
                    unsigned(&thread - threads_.data()), cycle_);
            fault_taken = true;
            return;
        }
        if (acc.fault != Fault::None) {
            faultThread(thread, acc.fault);
            fault_taken = true;
            return;
        }
        thread.setReg(inst.rd, acc.data);
        done = acc.completeCycle;
        if (sim::Profiler::armed())
            sim::Profiler::instance().flushAccess(
                unsigned(&thread - threads_.data()), done - ready_at);
    };

    auto do_store = [&](unsigned size) {
        auto ptr = eff_ptr(ra, inst.imm);
        if (!ptr) {
            faultThread(thread, ptr.fault);
            fault_taken = true;
            return;
        }
        const Word value = thread.reg(inst.rd);
        if (sim::Profiler::armed())
            sim::Profiler::instance().accBegin(sim::ProfComp::DCache);
        note_check(elide);
        const mem::MemAccess acc =
            port_->portStore(ptr.value, value, size, ready_at, elide);
        if (acc.deferred) {
            readyMayHaveShrunk_ = true;
            thread.park();
            deferred_.push_back(
                {acc.ticket, uint32_t(&thread - threads_.data()),
                 DeferredKind::Store, 0, size, ptr.value.addr(),
                 elide});
            fault_taken = true; // suppress the retire/advance tail
            return;
        }
        if (acc.hang) {
            thread.stallTo(UINT64_MAX);
            (*hungAccesses_)++;
            if (sim::Profiler::armed())
                sim::Profiler::instance().noteHang(
                    unsigned(&thread - threads_.data()), cycle_);
            fault_taken = true;
            return;
        }
        if (acc.fault != Fault::None) {
            faultThread(thread, acc.fault);
            fault_taken = true;
            return;
        }
        // A store landing inside a verified image voids every proof:
        // rewriting one instruction can invalidate verdicts at other
        // instructions whose own bits are unchanged (safety facts flow
        // through dataflow). Two compares per store; fires ~never.
        const uint64_t sa = ptr.value.addr();
        if (sa + size > proofCoverLo_ && sa < proofCoverHi_) {
            elideProofs_.clear();
            proofCoverLo_ = UINT64_MAX;
            proofCoverHi_ = 0;
            proofsDirty_ = true; // flush deferred: inst aliases a slot
        }
        done = acc.completeCycle;
        if (sim::Profiler::armed())
            sim::Profiler::instance().flushAccess(
                unsigned(&thread - threads_.data()), done - ready_at);
    };

    switch (inst.op) {
      case Op::NOP:
        break;
      case Op::HALT:
        thread.retire();
        thread.halt();
        readyMayHaveShrunk_ = true;
        if (sim::Profiler::armed())
            sim::Profiler::instance().endInst(
                unsigned(&thread - threads_.data()), ready_at + 1,
                sim::ProfComp::Compute);
        return;

      case Op::ADD:
        alu(ra.bits() + rb.bits());
        break;
      case Op::SUB:
        alu(ra.bits() - rb.bits());
        break;
      case Op::MUL:
        alu(ra.bits() * rb.bits());
        done = ready_at + config_.mulLatency;
        break;
      case Op::AND:
        alu(ra.bits() & rb.bits());
        break;
      case Op::OR:
        alu(ra.bits() | rb.bits());
        break;
      case Op::XOR:
        alu(ra.bits() ^ rb.bits());
        break;
      case Op::SHL:
        alu(ra.bits() << (rb.bits() & 63));
        break;
      case Op::SHR:
        alu(ra.bits() >> (rb.bits() & 63));
        break;
      case Op::SRA:
        alu(uint64_t(int64_t(ra.bits()) >> (rb.bits() & 63)));
        break;
      case Op::SLT:
        alu(int64_t(ra.bits()) < int64_t(rb.bits()) ? 1 : 0);
        break;
      case Op::SLTU:
        alu(ra.bits() < rb.bits() ? 1 : 0);
        break;

      case Op::ADDI:
        alu(ra.bits() + uint64_t(int64_t(inst.imm)));
        break;
      case Op::ANDI:
        alu(ra.bits() & uint64_t(int64_t(inst.imm)));
        break;
      case Op::ORI:
        alu(ra.bits() | uint64_t(int64_t(inst.imm)));
        break;
      case Op::XORI:
        alu(ra.bits() ^ uint64_t(int64_t(inst.imm)));
        break;
      case Op::SHLI:
        alu(ra.bits() << (uint32_t(inst.imm) & 63));
        break;
      case Op::SHRI:
        alu(ra.bits() >> (uint32_t(inst.imm) & 63));
        break;
      case Op::SRAI:
        alu(uint64_t(int64_t(ra.bits()) >> (uint32_t(inst.imm) & 63)));
        break;
      case Op::MOVI:
        alu(uint64_t(int64_t(inst.imm)));
        break;
      case Op::LUI:
        alu(uint64_t(uint32_t(inst.imm)) << 32);
        break;

      case Op::MOV:
        // Tag-preserving move: capabilities are freely copyable.
        thread.setReg(inst.rd, ra);
        break;

      case Op::LD:
        do_load(8);
        break;
      case Op::LDW:
        do_load(4);
        break;
      case Op::LDH:
        do_load(2);
        break;
      case Op::LDB:
        do_load(1);
        break;
      case Op::ST:
        do_store(8);
        break;
      case Op::STW:
        do_store(4);
        break;
      case Op::STH:
        do_store(2);
        break;
      case Op::STB:
        do_store(1);
        break;

      case Op::LEA:
        if (elide)
            elide_ptr(gp::leaUnchecked(ra, int64_t(rb.bits())));
        else if (!ptr_result(gp::lea(ra, int64_t(rb.bits()))))
            return;
        break;
      case Op::LEAI:
        if (elide)
            elide_ptr(gp::leaUnchecked(ra, int64_t(inst.imm)));
        else if (!ptr_result(gp::lea(ra, int64_t(inst.imm))))
            return;
        break;
      case Op::LEAB:
        if (elide)
            elide_ptr(gp::leabUnchecked(ra, int64_t(rb.bits())));
        else if (!ptr_result(gp::leab(ra, int64_t(rb.bits()))))
            return;
        break;
      case Op::LEABI:
        if (elide)
            elide_ptr(gp::leabUnchecked(ra, int64_t(inst.imm)));
        else if (!ptr_result(gp::leab(ra, int64_t(inst.imm))))
            return;
        break;
      case Op::RESTRICT:
        if (elide)
            elide_ptr(gp::restrictUnchecked(ra, Perm(rb.bits() & 0xf)));
        else if (!ptr_result(
                     gp::restrictPerm(ra, Perm(rb.bits() & 0xf))))
            return;
        break;
      case Op::SUBSEG:
        if (elide)
            elide_ptr(gp::subsegUnchecked(ra, rb.bits() & 0x3f));
        else if (!ptr_result(gp::subseg(ra, rb.bits() & 0x3f)))
            return;
        break;
      case Op::SETPTR:
        // The single privileged operation (§2.2, Pointer Creation).
        if (!priv) {
            faultThread(thread, Fault::PrivilegeViolation);
            return;
        }
        thread.setReg(inst.rd, gp::setptr(ra.bits()));
        break;
      case Op::ISPTR:
        alu(gp::ispointer(ra));
        break;
      case Op::PTOI:
        if (elide)
            elide_ptr(gp::ptrToIntUnchecked(ra));
        else if (!ptr_result(gp::ptrToInt(ra)))
            return;
        break;
      case Op::ITOP:
        if (elide)
            elide_ptr(gp::intToPtrUnchecked(ra, rb.bits()));
        else if (!ptr_result(gp::intToPtr(ra, rb.bits())))
            return;
        break;

      case Op::JMP: {
        auto target = gp::jumpTarget(ra, priv);
        if (!target) {
            faultThread(thread, target.fault);
            return;
        }
        // A jump through an enter pointer is a call-gate crossing into
        // another protection domain (§2.1) — count and trace it.
        bool gate_crossing = false;
        if (auto gate = gp::decode(ra);
            gate && (gate.value.perm() == Perm::EnterUser ||
                     gate.value.perm() == Perm::EnterPrivileged)) {
            gate_crossing = true;
            (*gateCrossings_)++;
            GP_TRACE(Gate, cycle_, thread.id(), "gate-crossing",
                     "t%u %s entry=0x%llx", thread.id(),
                     std::string(permName(gate.value.perm())).c_str(),
                     static_cast<unsigned long long>(gate.value.addr()));
        }
        thread.retire();
        thread.setIp(target.value);
        thread.stallTo(ready_at + 1);
        if (sim::Profiler::armed())
            sim::Profiler::instance().endInst(
                unsigned(&thread - threads_.data()), ready_at + 1,
                gate_crossing ? sim::ProfComp::Gate
                              : sim::ProfComp::Compute);
        return;
      }
      case Op::GETIP:
        thread.setReg(inst.rd, thread.ip());
        break;

      // Branches compare their two register operands, which the
      // assembler encodes in the rd and ra fields.
      case Op::BEQ:
        if (thread.reg(inst.rd) == ra)
            branch_delta = 1 + int64_t(inst.imm);
        break;
      case Op::BNE:
        if (!(thread.reg(inst.rd) == ra))
            branch_delta = 1 + int64_t(inst.imm);
        break;
      case Op::BLT:
        if (int64_t(thread.reg(inst.rd).bits()) < int64_t(ra.bits()))
            branch_delta = 1 + int64_t(inst.imm);
        break;
      case Op::BGE:
        if (int64_t(thread.reg(inst.rd).bits()) >= int64_t(ra.bits()))
            branch_delta = 1 + int64_t(inst.imm);
        break;

      default:
        faultThread(thread, Fault::InvalidInstruction);
        return;
    }

    if (fault_taken)
        return;

    thread.retire();
    note_check(elide);
    if (!advanceIp(thread, branch_delta, elide))
        return;
    thread.stallTo(done);
    if (sim::Profiler::armed()) {
        // Execute-tail component: pointer-manipulation ops are the
        // capability check/decode work that actually costs cycles —
        // the explicit "check" CPI slice. Everything else is compute.
        sim::Profiler::instance().endInst(
            unsigned(&thread - threads_.data()), done,
            instClass(inst.op) == ClassPointer ? sim::ProfComp::Check
                                               : sim::ProfComp::Compute);
    }
}

void
Machine::completeDeferred(uint64_t ticket, const mem::MemAccess &acc)
{
    size_t idx = deferred_.size();
    for (size_t i = 0; i < deferred_.size(); ++i) {
        if (deferred_[i].ticket == ticket) {
            idx = i;
            break;
        }
    }
    if (idx == deferred_.size()) {
        sim::warn("machine: completeDeferred: unknown ticket %llu",
                  static_cast<unsigned long long>(ticket));
        return;
    }
    const DeferredInst rec = deferred_[idx];
    deferred_.erase(deferred_.begin() + ptrdiff_t(idx));
    Thread &thread = threads_[rec.threadIndex];
    if (thread.state() != ThreadState::Pending) {
        // The watchdog killed the thread while its transaction was
        // in flight; drop the late result.
        return;
    }
    thread.unpark();
    lastIssueCycle_ = cycle_; // a completion is progress, too

    if (rec.kind == DeferredKind::Fetch) {
        // Resume the issue path where the fetch left off. The decoded
        // instruction may immediately park again on a remote operand
        // (resolved in the next barrier drain round).
        finishFetch(thread, acc);
        return;
    }

    // The load/store completion tail, mirroring do_load/do_store and
    // the retire tail of execute() exactly (the issue-side work —
    // pointer check, note_check, instruction counters — already ran
    // before the park).
    if (acc.hang) {
        thread.stallTo(UINT64_MAX);
        (*hungAccesses_)++;
        return;
    }
    if (acc.fault != Fault::None) {
        faultThread(thread, acc.fault);
        return;
    }
    if (rec.kind == DeferredKind::Load) {
        thread.setReg(rec.rd, acc.data);
    } else {
        // Store proof-cover invalidation, mirroring do_store. Nothing
        // aliases the predecode array at the barrier, so the flush
        // runs immediately instead of via proofsDirty_.
        const uint64_t sa = rec.storeAddr;
        if (sa + rec.size > proofCoverLo_ && sa < proofCoverHi_) {
            elideProofs_.clear();
            proofCoverLo_ = UINT64_MAX;
            proofCoverHi_ = 0;
            flushPredecode();
        }
    }
    thread.retire();
    if (config_.elideChecks) {
        if (rec.elide)
            (*elideChecksElided_)++;
        else
            (*elideChecksExecuted_)++;
    }
    if (!advanceIp(thread, 1, rec.elide))
        return;
    thread.stallTo(acc.completeCycle);
}

bool
Machine::issueThreadSb(Thread &thread)
{
    const uint64_t ip_addr = thread.ip().addr();
    if (thread.sbEntry() != UINT64_MAX) {
        // Resume the trace in progress. The cursor is revalidated
        // wholesale: the block must still be the one whose span this
        // thread verified (same entry AND count — a re-recorded
        // block may be longer than the proven span), and the IP must
        // sit exactly on the cursor's slot.
        Superblock &b =
            superblocks_[(thread.sbEntry() >> 3) & (kSbEntries - 1)];
        if (b.valid && b.entry == thread.sbEntry() &&
            b.count == thread.sbCount() &&
            thread.sbPos() < b.count &&
            b.entry + uint64_t(thread.sbPos()) * 8 == ip_addr) {
            execSbSlot(thread, b);
            return true;
        }
        thread.clearSbCursor();
    }
    Superblock &b = superblocks_[(ip_addr >> 3) & (kSbEntries - 1)];
    if (!b.valid || b.entry != ip_addr)
        return false;
    // Entry verification, once per block entry: the trace runs
    // check-elided fetches, which is sound only against THIS
    // thread's execute pointer — different threads may hold
    // differently-bounded pointers to the same code. One decode
    // proves execute rights, alignment, and that the whole trace
    // span sits inside the segment; the intra-block sequential IP
    // advance (withAddr only) preserves every non-address field, so
    // the proof holds for as long as the cursor lives. Declining to
    // prove (no execute right, span escapes) falls back to the
    // legacy path, which raises the architectural fault under full
    // checks.
    auto dec = gp::decode(thread.ip());
    if (!dec)
        return false;
    const gp::PointerView &v = dec.value;
    if ((gp::rightsOf(v.perm()) & gp::RightExecute) == 0 ||
        (ip_addr & 7) != 0 ||
        b.entry + uint64_t(b.count) * 8 > v.segmentLimit())
        return false;
    thread.setSbCursor(b.entry, b.count, 0,
                       v.perm() == gp::Perm::ExecutePrivileged);
    execSbSlot(thread, b);
    return true;
}

void
Machine::execSbSlot(Thread &thread, Superblock &b)
{
    const uint32_t pos = thread.sbPos();
    const SbSlot &slot = b.slots[pos];
    // The timed fetch always runs: bank contention, cache and TLB
    // state, translation faults, and completion cycles are identical
    // to the legacy path. Only the per-fetch pointer check is
    // elided, under the span proof established at block entry.
    const mem::MemAccess f =
        port_->portFetch(thread.ip(), cycle_, true);
    if (f.deferred) {
        readyMayHaveShrunk_ = true;
        thread.park();
        deferred_.push_back(
            {f.ticket, uint32_t(&thread - threads_.data()),
             DeferredKind::Fetch, 0, 0, 0, false});
        // The barrier resumes through finishFetch() on the legacy
        // path; the cursor would be stale by then.
        thread.clearSbCursor();
        return;
    }
    if (f.hang) {
        thread.clearSbCursor();
        thread.stallTo(UINT64_MAX);
        (*hungAccesses_)++;
        return;
    }
    if (f.fault != Fault::None) {
        thread.clearSbCursor();
        faultThread(thread, f.fault);
        return;
    }
    if (f.data.bits() != slot.bits || f.data.isPointer()) {
        // Raw-bits revalidation failed: the code under the trace
        // changed (self-modifying code, image reload). Tear the
        // block down and re-decode this very fetch result on the
        // legacy path — no second fetch, no timing difference.
        b.valid = false;
        (*superblockFlushes_)++;
        thread.clearSbCursor();
        finishFetch(thread, f);
        return;
    }
    (*superblockHits_)++;
    executeSb(thread, b, pos, slot, f.completeCycle);
}

void
Machine::executeSb(Thread &thread, Superblock &b, uint32_t pos,
                   const SbSlot &slot, uint64_t ready_at)
{
    const Inst &inst = slot.inst;
    const Word ra = thread.reg(inst.ra);
    const Word rb = thread.reg(inst.rb);
    // Privilege was verified at block entry and is invariant while
    // the cursor lives (the sequential advance never alters the
    // permission field) — the per-instruction ipPrivileged() decode
    // of the legacy path disappears.
    const bool priv = thread.sbPriv();
    const bool elide = verdictElides(slot.verdict, priv) &&
                       !faultHandler_ &&
                       !sim::FaultInjector::armed();
    const bool last = pos + 1 == b.count;

    // Counting up front is equivalent to the legacy order (execute,
    // then count in finishFetch): every dispatched slot counts, like
    // every executed instruction does — including halts, faults, and
    // operand parks.
    (*instructions_)++;
    (*mix_[slot.mixClass])++;

    uint64_t done = ready_at + 1;
    int64_t branch_delta = 1;

    // Twin of execute()'s note_check: elide-accounting only, and only
    // under elideChecks mode. The profiler leg is omitted — the
    // superblock path never runs with the profiler armed.
    auto note_check = [&](bool elided) {
        if (!config_.elideChecks)
            return;
        if (elided)
            (*elideChecksElided_)++;
        else
            (*elideChecksExecuted_)++;
    };
    auto sb_fault = [&](Fault f) {
        thread.clearSbCursor();
        faultThread(thread, f);
    };

#if defined(__GNUC__) && !defined(GP_NO_COMPUTED_GOTO)
    // Threaded dispatch: one indirect jump per slot. The table is
    // positional — its order must match SbHandler exactly.
    static const void *const kSbLabels[] = {
        &&h_add,   &&h_sub,  &&h_mul,  &&h_and,  &&h_or,
        &&h_xor,   &&h_shl,  &&h_shr,  &&h_sra,  &&h_slt,
        &&h_sltu,  &&h_addi, &&h_andi, &&h_ori,  &&h_xori,
        &&h_shli,  &&h_shri, &&h_srai, &&h_movi, &&h_lui,
        &&h_mov,   &&h_nop,  &&h_getip, &&h_load, &&h_store,
        &&h_lea,   &&h_leai, &&h_beq,  &&h_bne,  &&h_blt,
        &&h_bge,   &&h_generic,
    };
    static_assert(sizeof(kSbLabels) / sizeof(kSbLabels[0]) ==
                      kSbHandlerCount,
                  "label table must cover every SbHandler in order");
    goto *kSbLabels[slot.handler];
#else
    // Portable fallback (GP_NO_COMPUTED_GOTO; exercised by the
    // gp-no-computed-goto CI job): a dense switch over the handler
    // index jumping to the same labels.
    switch (SbHandler(slot.handler)) {
      case kSbAdd:
        goto h_add;
      case kSbSub:
        goto h_sub;
      case kSbMul:
        goto h_mul;
      case kSbAnd:
        goto h_and;
      case kSbOr:
        goto h_or;
      case kSbXor:
        goto h_xor;
      case kSbShl:
        goto h_shl;
      case kSbShr:
        goto h_shr;
      case kSbSra:
        goto h_sra;
      case kSbSlt:
        goto h_slt;
      case kSbSltu:
        goto h_sltu;
      case kSbAddi:
        goto h_addi;
      case kSbAndi:
        goto h_andi;
      case kSbOri:
        goto h_ori;
      case kSbXori:
        goto h_xori;
      case kSbShli:
        goto h_shli;
      case kSbShri:
        goto h_shri;
      case kSbSrai:
        goto h_srai;
      case kSbMovi:
        goto h_movi;
      case kSbLui:
        goto h_lui;
      case kSbMov:
        goto h_mov;
      case kSbNop:
        goto h_nop;
      case kSbGetIp:
        goto h_getip;
      case kSbLoad:
        goto h_load;
      case kSbStore:
        goto h_store;
      case kSbLea:
        goto h_lea;
      case kSbLeai:
        goto h_leai;
      case kSbBeq:
        goto h_beq;
      case kSbBne:
        goto h_bne;
      case kSbBlt:
        goto h_blt;
      case kSbBge:
        goto h_bge;
      case kSbGeneric:
      case kSbHandlerCount:
        goto h_generic;
    }
    goto h_generic;
#endif

  h_add:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() + rb.bits()));
    goto seq_tail;
  h_sub:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() - rb.bits()));
    goto seq_tail;
  h_mul:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() * rb.bits()));
    done = ready_at + config_.mulLatency;
    goto seq_tail;
  h_and:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() & rb.bits()));
    goto seq_tail;
  h_or:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() | rb.bits()));
    goto seq_tail;
  h_xor:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() ^ rb.bits()));
    goto seq_tail;
  h_shl:
    thread.setReg(inst.rd,
                  Word::fromInt(ra.bits() << (rb.bits() & 63)));
    goto seq_tail;
  h_shr:
    thread.setReg(inst.rd,
                  Word::fromInt(ra.bits() >> (rb.bits() & 63)));
    goto seq_tail;
  h_sra:
    thread.setReg(inst.rd,
                  Word::fromInt(uint64_t(int64_t(ra.bits()) >>
                                         (rb.bits() & 63))));
    goto seq_tail;
  h_slt:
    thread.setReg(inst.rd,
                  Word::fromInt(int64_t(ra.bits()) <
                                        int64_t(rb.bits())
                                    ? 1
                                    : 0));
    goto seq_tail;
  h_sltu:
    thread.setReg(inst.rd,
                  Word::fromInt(ra.bits() < rb.bits() ? 1 : 0));
    goto seq_tail;
  h_addi:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() +
                                         uint64_t(int64_t(inst.imm))));
    goto seq_tail;
  h_andi:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() &
                                         uint64_t(int64_t(inst.imm))));
    goto seq_tail;
  h_ori:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() |
                                         uint64_t(int64_t(inst.imm))));
    goto seq_tail;
  h_xori:
    thread.setReg(inst.rd, Word::fromInt(ra.bits() ^
                                         uint64_t(int64_t(inst.imm))));
    goto seq_tail;
  h_shli:
    thread.setReg(inst.rd,
                  Word::fromInt(ra.bits()
                                << (uint32_t(inst.imm) & 63)));
    goto seq_tail;
  h_shri:
    thread.setReg(inst.rd,
                  Word::fromInt(ra.bits() >>
                                (uint32_t(inst.imm) & 63)));
    goto seq_tail;
  h_srai:
    thread.setReg(inst.rd,
                  Word::fromInt(uint64_t(
                      int64_t(ra.bits()) >>
                      (uint32_t(inst.imm) & 63))));
    goto seq_tail;
  h_movi:
    thread.setReg(inst.rd, Word::fromInt(uint64_t(int64_t(inst.imm))));
    goto seq_tail;
  h_lui:
    thread.setReg(inst.rd,
                  Word::fromInt(uint64_t(uint32_t(inst.imm)) << 32));
    goto seq_tail;
  h_mov:
    // Tag-preserving move: capabilities are freely copyable.
    thread.setReg(inst.rd, ra);
    goto seq_tail;
  h_nop:
    goto seq_tail;
  h_getip:
    thread.setReg(inst.rd, thread.ip());
    goto seq_tail;

  h_load: {
      Word eptr = ra;
      bool port_elide = true;
      if (elide) {
          if (inst.imm != 0) {
              note_check(true);
              eptr = gp::leaUnchecked(ra, int64_t(inst.imm));
          }
          note_check(true);
      } else if (config_.elideChecks) {
          // Keep the legacy split sequence under --elide-checks so
          // the elide-accounting counters stay byte-identical.
          if (inst.imm != 0) {
              note_check(false);
              auto r = gp::lea(ra, int64_t(inst.imm));
              if (!r) {
                  sb_fault(r.fault);
                  return;
              }
              eptr = r.value;
          }
          note_check(false);
          port_elide = false;
      } else {
          // Fused check+access: one permission decode covers the
          // displacement LEA and the access check, and the port runs
          // check-elided. Fault kinds and order are identical to the
          // split sequence (see gp::leaCheckAccess).
          auto r = gp::leaCheckAccess(ra, int64_t(inst.imm),
                                      Access::Load, slot.size);
          if (!r) {
              sb_fault(r.fault);
              return;
          }
          eptr = r.value;
      }
      const mem::MemAccess acc =
          port_->portLoad(eptr, slot.size, ready_at, port_elide);
      if (acc.deferred) {
          readyMayHaveShrunk_ = true;
          thread.park();
          deferred_.push_back(
              {acc.ticket, uint32_t(&thread - threads_.data()),
               DeferredKind::Load, inst.rd, slot.size, 0, elide});
          thread.clearSbCursor();
          return;
      }
      if (acc.hang) {
          thread.clearSbCursor();
          thread.stallTo(UINT64_MAX);
          (*hungAccesses_)++;
          return;
      }
      if (acc.fault != Fault::None) {
          sb_fault(acc.fault);
          return;
      }
      thread.setReg(inst.rd, acc.data);
      done = acc.completeCycle;
      goto seq_tail;
  }

  h_store: {
      Word eptr = ra;
      bool port_elide = true;
      if (elide) {
          if (inst.imm != 0) {
              note_check(true);
              eptr = gp::leaUnchecked(ra, int64_t(inst.imm));
          }
          note_check(true);
      } else if (config_.elideChecks) {
          if (inst.imm != 0) {
              note_check(false);
              auto r = gp::lea(ra, int64_t(inst.imm));
              if (!r) {
                  sb_fault(r.fault);
                  return;
              }
              eptr = r.value;
          }
          note_check(false);
          port_elide = false;
      } else {
          auto r = gp::leaCheckAccess(ra, int64_t(inst.imm),
                                      Access::Store, slot.size);
          if (!r) {
              sb_fault(r.fault);
              return;
          }
          eptr = r.value;
      }
      const Word value = thread.reg(inst.rd);
      const mem::MemAccess acc = port_->portStore(
          eptr, value, slot.size, ready_at, port_elide);
      if (acc.deferred) {
          readyMayHaveShrunk_ = true;
          thread.park();
          deferred_.push_back(
              {acc.ticket, uint32_t(&thread - threads_.data()),
               DeferredKind::Store, 0, slot.size, eptr.addr(),
               elide});
          thread.clearSbCursor();
          return;
      }
      if (acc.hang) {
          thread.clearSbCursor();
          thread.stallTo(UINT64_MAX);
          (*hungAccesses_)++;
          return;
      }
      if (acc.fault != Fault::None) {
          sb_fault(acc.fault);
          return;
      }
      // Store into a verified image voids every proof — mirror of
      // execute()'s do_store (see the comment there).
      {
          const uint64_t sa = eptr.addr();
          if (sa + slot.size > proofCoverLo_ && sa < proofCoverHi_) {
              elideProofs_.clear();
              proofCoverLo_ = UINT64_MAX;
              proofCoverHi_ = 0;
              proofsDirty_ = true;
          }
      }
      done = acc.completeCycle;
      goto seq_tail;
  }

  h_lea: {
      if (elide) {
          thread.setReg(inst.rd,
                        gp::leaUnchecked(ra, int64_t(rb.bits())));
          done = ready_at;
          (*elideCyclesSaved_)++;
          note_check(true);
          goto seq_tail;
      }
      note_check(false);
      auto r = gp::lea(ra, int64_t(rb.bits()));
      if (!r) {
          sb_fault(r.fault);
          return;
      }
      thread.setReg(inst.rd, r.value);
      goto seq_tail;
  }
  h_leai: {
      if (elide) {
          thread.setReg(inst.rd,
                        gp::leaUnchecked(ra, int64_t(inst.imm)));
          done = ready_at;
          (*elideCyclesSaved_)++;
          note_check(true);
          goto seq_tail;
      }
      note_check(false);
      auto r = gp::lea(ra, int64_t(inst.imm));
      if (!r) {
          sb_fault(r.fault);
          return;
      }
      thread.setReg(inst.rd, r.value);
      goto seq_tail;
  }

  // Branches compare rd and ra (assembler encoding) and always end
  // the trace, so they exit through the full bounds-checked advance.
  h_beq:
    if (thread.reg(inst.rd) == ra)
        branch_delta = 1 + int64_t(inst.imm);
    goto exit_tail;
  h_bne:
    if (!(thread.reg(inst.rd) == ra))
        branch_delta = 1 + int64_t(inst.imm);
    goto exit_tail;
  h_blt:
    if (int64_t(thread.reg(inst.rd).bits()) < int64_t(ra.bits()))
        branch_delta = 1 + int64_t(inst.imm);
    goto exit_tail;
  h_bge:
    if (int64_t(thread.reg(inst.rd).bits()) >= int64_t(ra.bits()))
        branch_delta = 1 + int64_t(inst.imm);
    goto exit_tail;

  h_generic: {
      // Full-interpreter detour for the rare opcodes (and the
      // JMP/HALT trace enders). The cursor drops first so execute()'s
      // fault and control-flow handling runs unconstrained; it is
      // re-attached only when execution provably stayed on the trace
      // under the same execute pointer — a sequential advance
      // preserves the pointer, whereas a JMP may land on the next
      // trace address through a *different* pointer whose bounds the
      // entry span proof says nothing about, and a recovered fault
      // may resume at a handler-installed IP that merely coincides.
      thread.clearSbCursor();
      const size_t faults_before = faultLog_.size();
      execute(thread, inst, ready_at, slot.verdict);
      if (proofsDirty_) {
          proofsDirty_ = false;
          flushPredecode();
      }
      if (!last && inst.op != Op::JMP &&
          faultLog_.size() == faults_before &&
          thread.state() == ThreadState::Ready &&
          thread.ip().addr() == b.entry + (uint64_t(pos) + 1) * 8)
          thread.setSbCursor(b.entry, b.count, pos + 1, priv);
      return;
  }

  seq_tail:
    if (last)
        goto exit_tail;
    thread.retire();
    note_check(elide);
    // Intra-block sequential advance: entry verification proved
    // entry + count*8 <= segmentLimit, so for a non-final slot the
    // next IP is strictly inside the segment — the checked IP LEA
    // cannot fire and the unchecked datapath is sound. (gp.op_lea is
    // not bumped for it: documented drift, shared with elide mode.)
    thread.setIp(gp::leaUnchecked(thread.ip(), 8));
    thread.setSbPos(pos + 1);
    thread.stallTo(done);
    if (proofsDirty_) {
        proofsDirty_ = false;
        flushPredecode();
    }
    return;

  exit_tail:
    // Final slot (or a branch): the trace's one control-flow exit
    // runs the full bounds-checked IP advance, exactly like the
    // legacy retire tail — running or branching off the end of the
    // code segment still faults here.
    thread.retire();
    note_check(elide);
    thread.clearSbCursor();
    if (advanceIp(thread, branch_delta, elide))
        thread.stallTo(done);
    if (proofsDirty_) {
        proofsDirty_ = false;
        flushPredecode();
    }
    return;
}

void
Machine::recordSbStep(const Thread &thread, uint64_t ip_addr,
                      uint64_t bits, const Inst &inst, uint8_t verdict)
{
    SbRecorder &r = sbRecorders_[&thread - threads_.data()];
    if (!r.active || r.entry + uint64_t(r.count) * 8 != ip_addr) {
        // Non-contiguous fetch (branch target, fault resume): the
        // trace restarts here.
        r.entry = ip_addr;
        r.count = 0;
        r.active = true;
    }
    SbSlot &s = r.slots[r.count++];
    s.bits = bits;
    s.inst = inst;
    s.verdict = verdict;
    s.handler = uint8_t(sbClassify(inst.op, s.size));
    s.mixClass = uint8_t(instClass(inst.op));
    if (sbEndsBlock(inst.op) || r.count == kSbMaxSlots) {
        // Single-instruction traces are not worth the entry
        // verification; require at least two slots.
        if (r.count >= 2)
            installSuperblock(r);
        r.reset();
    }
}

void
Machine::installSuperblock(const SbRecorder &r)
{
    Superblock &b = superblocks_[(r.entry >> 3) & (kSbEntries - 1)];
    b.entry = r.entry;
    b.count = r.count;
    for (uint32_t i = 0; i < r.count; ++i)
        b.slots[i] = r.slots[i];
    b.valid = true;
    (*superblockInstalls_)++;
}

} // namespace gp::isa
