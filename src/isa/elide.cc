#include "isa/elide.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace gp::isa {

std::string
verdictNames(uint8_t verdict)
{
    if (!verdict)
        return "none";
    std::string out;
    auto add = [&](uint8_t bit, const char *name) {
        if (!(verdict & bit))
            return;
        if (!out.empty())
            out += ',';
        out += name;
    };
    add(kElideBoundsSafe, "bounds");
    add(kElidePermSafe, "perm");
    add(kElideAlignSafe, "align");
    add(kElideNeverFaults, "never-faults");
    add(kElidePrivileged, "priv");
    return out;
}

std::string
serializeProof(const ElideProof &proof)
{
    std::string out;
    char line[64];
    std::snprintf(line, sizeof(line), "gpproof %" PRIu32 "\n",
                  kProofVersion);
    out += line;
    std::snprintf(line, sizeof(line), "base %" PRIu64 "\n", proof.base);
    out += line;
    std::snprintf(line, sizeof(line), "privileged %d\n",
                  proof.privileged ? 1 : 0);
    out += line;
    std::snprintf(line, sizeof(line), "insts %zu\n",
                  proof.verdicts.size());
    out += line;
    for (size_t i = 0; i < proof.verdicts.size(); ++i) {
        const uint64_t raw = i < proof.bits.size() ? proof.bits[i] : 0;
        std::snprintf(line, sizeof(line),
                      "%zu %016" PRIx64 " %02x\n", i, raw,
                      unsigned(proof.verdicts[i]));
        out += line;
    }
    out += "end\n";
    return out;
}

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
parseProof(std::string_view text, ElideProof &out, std::string *error)
{
    std::istringstream in{std::string(text)};
    std::string keyword;
    uint32_t version = 0;
    if (!(in >> keyword >> version) || keyword != "gpproof")
        return fail(error, "not a gpproof sidecar (missing header)");
    if (version != kProofVersion)
        return fail(error, "gpproof version " + std::to_string(version) +
                               " unsupported (want " +
                               std::to_string(kProofVersion) + ")");
    ElideProof proof;
    int privileged = 0;
    size_t insts = 0;
    if (!(in >> keyword >> proof.base) || keyword != "base")
        return fail(error, "gpproof: missing base line");
    if (!(in >> keyword >> privileged) || keyword != "privileged")
        return fail(error, "gpproof: missing privileged line");
    proof.privileged = privileged != 0;
    if (!(in >> keyword >> insts) || keyword != "insts")
        return fail(error, "gpproof: missing insts line");
    proof.bits.reserve(insts);
    proof.verdicts.reserve(insts);
    for (size_t i = 0; i < insts; ++i) {
        size_t index = 0;
        uint64_t raw = 0;
        unsigned verdict = 0;
        if (!(in >> index >> std::hex >> raw >> verdict >> std::dec))
            return fail(error, "gpproof: truncated at instruction " +
                                   std::to_string(i));
        if (index != i)
            return fail(error, "gpproof: instruction " +
                                   std::to_string(i) + " indexed as " +
                                   std::to_string(index));
        if (verdict > 0xff)
            return fail(error, "gpproof: verdict out of range at " +
                                   std::to_string(i));
        proof.bits.push_back(raw);
        proof.verdicts.push_back(uint8_t(verdict));
    }
    if (!(in >> keyword) || keyword != "end")
        return fail(error, "gpproof: missing end marker");
    out = std::move(proof);
    return true;
}

} // namespace gp::isa
