/**
 * @file
 * The multithreaded MAP-like machine (paper §3, Fig. 5).
 *
 * The machine comprises several clusters, each with a small set of
 * hardware thread slots. Every cycle each cluster selects one ready
 * thread round-robin and issues one instruction for it — cycle-by-cycle
 * multithreading across *different protection domains*, which is the
 * scenario the paper designs for. All clusters share the banked
 * virtually-addressed cache through the MemorySystem, whose bank and
 * external-port contention model supplies the Fig. 5 behaviour.
 *
 * Simplifications vs. the real MAP (documented in DESIGN.md): each
 * cluster issues one operation per cycle rather than a 3-wide LIW
 * group, and there is no floating-point unit. Neither affects the
 * protection mechanisms under study.
 */

#ifndef GP_ISA_MACHINE_H
#define GP_ISA_MACHINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gp/fault.h"
#include "gp/word.h"
#include "isa/elide.h"
#include "isa/inst.h"
#include "isa/superblock.h"
#include "isa/thread.h"
#include "mem/fast_port.h"
#include "mem/memory_system.h"
#include "sim/stats.h"

namespace gp::isa {

/** Machine-level configuration. */
struct MachineConfig
{
    unsigned clusters = 4;          //!< MAP has 4 clusters
    unsigned threadsPerCluster = 4; //!< 4 user thread slots each
    /**
     * Instructions a cluster may issue per cycle, each from a
     * distinct ready thread. The real MAP issues a 3-wide LIW group
     * from ONE thread; issuing from several threads instead exercises
     * the same function-unit and memory-port pressure without
     * requiring a bundling compiler, and is the documented
     * approximation (DESIGN.md). Default 1 = the simple model.
     */
    unsigned issueWidth = 1;
    mem::MemConfig mem;             //!< shared memory system
    uint64_t mulLatency = 3;        //!< integer multiply latency
    uint64_t faultTrapCycles = 50;  //!< software fault-handler cost

    /**
     * Watchdog cycle budget: when nonzero, the machine trips after
     * this many total cycles, converting a runaway/livelocked run
     * into structured WatchdogTimeout faults on every live thread
     * (plus a flight-recorder dump). 0 = no budget watchdog.
     */
    uint64_t watchdogCycles = 0;
    /**
     * Quiescence watchdog: when nonzero, trip if threads remain
     * live but no instruction has issued for this many consecutive
     * cycles — the signature of a hang (e.g. a thread stalled
     * forever on a NoC request that was dropped). A thread stalled
     * to a *finite* future cycle (a long retransmission backoff) or
     * parked on an in-flight split transaction never trips it, no
     * matter the window: only hung-forever stalls (UINT64_MAX) and
     * orphaned parks (markDeferredOrphans()) count as quiescent.
     * 0 = no quiescence watchdog.
     */
    uint64_t watchdogQuiescence = 0;

    /**
     * Verifier-driven check elision (gpsim --elide-checks=verified):
     * consult registered ElideProofs at predecode time and run the
     * unchecked datapath for instructions proven never to fault
     * (docs/VERIFIER.md "Proof export & check elision"). Off by
     * default; with no registered proof the machine behaves exactly
     * as before even when enabled. Fault injection and an installed
     * software fault handler re-arm full checks unconditionally.
     */
    bool elideChecks = false;

    /**
     * The embedding engine ticks the FaultInjector itself (sharded
     * mesh: one central tick per simulated cycle at the epoch
     * barrier, so draw order is identical for any host-thread
     * count). When set, step() does not tick the injector. The
     * default (false) keeps today's per-machine tick.
     */
    bool externalInjectorTick = false;

    /**
     * Superblock threaded dispatch (gpsim --superblocks): string
     * predecoded instructions into straight-line traces and dispatch
     * through them with computed-goto threading, fusing the
     * guarded-pointer check+access hot path. Simulated cycles, fault
     * behaviour, registers, and memory are byte-identical to the
     * baseline interpreter — one instruction still issues per thread
     * per cycle; only host-side dispatch/decode/check work is saved
     * (docs/ARCHITECTURE.md "Threaded dispatch & superblocks"). Off
     * by default; when off, the machine exposes exactly the counter
     * set the blessed signatures were pinned to.
     */
    bool superblocks = false;

    /**
     * Functional-only execution (gpsim --fast): run instructions
     * against a zero-latency FastPort instead of the timed memory
     * system. Architectural results (registers, faults, memory image)
     * are identical to a timed run; simulated cycle counts are
     * meaningless and must never be compared against timing baselines
     * — the mode exists for campaigns over program *behaviour* and
     * the differential harness. Requires the owning constructor, no
     * ECC, and an unarmed FaultInjector (enforced fatally).
     */
    bool fastMode = false;
};

/** What a software fault handler tells the machine to do next. */
enum class FaultAction : uint8_t
{
    Terminate, //!< leave the thread Faulted (default behaviour)
    Retry,     //!< re-issue the faulting instruction (cause repaired)
    Resume,    //!< continue at whatever IP the handler installed
};

/**
 * Software fault handler, modelling the M-Machine's event-handling
 * code: invoked when a thread faults, it may repair state (remap a
 * page, patch a stale pointer register) and resume the thread. The
 * configured faultTrapCycles are charged to the thread either way.
 */
using FaultHandler =
    std::function<FaultAction(Thread &, const FaultRecord &)>;

/**
 * Instruction-trace hook: invoked after each instruction is decoded
 * and about to execute. For debuggers and the gpsim --trace flag;
 * adds no cost when unset.
 */
using TraceHook =
    std::function<void(const Thread &, const Inst &, uint64_t cycle)>;

/** The full processor + memory system. */
class Machine
{
  public:
    /** Construct with an internally-owned MemorySystem (config.mem). */
    explicit Machine(const MachineConfig &config = MachineConfig{});

    /**
     * Construct against an external memory port — e.g. one node of
     * the multicomputer (noc::NodeMemory). The port must outlive the
     * machine; config.mem is ignored.
     */
    Machine(const MachineConfig &config, mem::MemoryPort &port);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Start a thread at the given instruction pointer in the first free
     * slot (least-loaded cluster first).
     * @return the thread, or nullptr if every slot is occupied.
     */
    Thread *spawn(Word entry_ip);

    /** Start a thread on a specific cluster. */
    Thread *spawnOnCluster(unsigned cluster, Word entry_ip);

    /** Advance the machine by one cycle. */
    void step();

    /**
     * Run until every thread has halted or faulted, or until max_cycles
     * elapse. @return the number of cycles executed.
     */
    uint64_t run(uint64_t max_cycles = 1'000'000);

    /** @return true when no thread is Ready or Pending. */
    bool allDone() const;

    /**
     * Deliver the outcome of a deferred cross-shard access (sharded
     * mesh engine, epoch barrier). Finds the parked instruction by
     * @p ticket, unparks its thread, and runs exactly the completion
     * tail the synchronous path would have run: register writeback /
     * store proof-cover invalidation, retire, IP advance, stall to
     * the access's completion cycle — or the fault/hang handling.
     */
    void completeDeferred(uint64_t ticket, const mem::MemAccess &acc);

    /** @return true while any split transaction is outstanding. */
    bool hasDeferred() const { return !deferred_.empty(); }

    /**
     * Mark every outstanding split transaction as orphaned: its
     * completion will never arrive (the sharded engine found it
     * undeliverable — e.g. the exchange dropped the op of a dead
     * node). Orphaned parks stop vetoing the quiescence watchdog,
     * so a park that never completes still trips it; a completion
     * that does arrive later for an orphaned ticket is still
     * delivered normally.
     */
    void markDeferredOrphans();

    /**
     * External watchdog trip (sharded-mesh distributed watchdog):
     * convert this machine's live threads into WatchdogTimeout
     * faults exactly as an internal trip would. No-op if a watchdog
     * already fired.
     */
    void forceWatchdogTrip(const char *why);

    /** @return true once either watchdog has fired. */
    bool watchdogTripped() const { return watchdogTripped_; }

    /**
     * True when nothing can make progress without outside help: no
     * Ready thread has a finite future wake-up scheduled and no
     * non-orphaned split transaction is in flight. Cold path — the
     * machine's own quiescence watchdog consults it only once its
     * window is exceeded; the sharded mesh's distributed watchdog
     * uses it to tell "parked, will resume" from "wedged for good".
     */
    bool quiescentNow() const;

    uint64_t cycle() const { return cycle_; }

    /** The owned memory system; only valid for the owning ctor. */
    mem::MemorySystem &mem();

    /** The memory port instructions execute against (always valid). */
    mem::MemoryPort &port() { return *port_; }

    /** All thread slots, cluster-major. */
    std::vector<Thread> &threads() { return threads_; }
    const std::vector<Thread> &threads() const { return threads_; }

    /** Every fault any thread has taken, in order. */
    const std::vector<FaultRecord> &faultLog() const { return faultLog_; }

    /**
     * Install (or clear, with nullptr) the software fault handler.
     * Without one, faults terminate the thread.
     */
    void setFaultHandler(FaultHandler handler)
    {
        faultHandler_ = std::move(handler);
    }

    /** Install (or clear) the per-instruction trace hook. */
    void setTraceHook(TraceHook hook) { traceHook_ = std::move(hook); }

    const MachineConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

    /**
     * Drop every predecoded instruction. Rarely needed: entries are
     * validated against the fetched word's bits on every use, so
     * stores to code pages and loader changes invalidate stale
     * entries automatically. Provided for debuggers and tests that
     * want a cold decode path.
     */
    void flushPredecode();

    /**
     * Register a verifier-produced safety proof for a loaded image.
     * Consulted only at predecode-miss time (never per executed
     * instruction): the matching verdict byte is baked into the
     * predecoded entry, bound to the exact raw bits it was proven
     * for. Takes effect only with config().elideChecks set. Flushes
     * the predecode cache so already-decoded instructions pick up
     * their verdicts.
     */
    void registerElideProof(const ElideProof &proof);

    /** Drop all registered proofs (and their baked verdicts). */
    void clearElideProofs();

  private:
    /// Retired-instruction mix classes: alu/mem/branch/control/
    /// pointer/misc (see instClass() in machine.cc).
    static constexpr unsigned kInstClassCount = 6;

    /** Create and cache the stat handles (shared by both ctors). */
    void initStats();

    /** Issue for one cluster in the current cycle. */
    void stepCluster(unsigned cluster);

    /** Fetch, decode, and execute one instruction for a thread. */
    void issueThread(Thread &thread);

    /**
     * Decode/execute path after the fetch returned: shared by the
     * synchronous issue path and deferred-fetch completion at the
     * epoch barrier (the fetch result is the same either way).
     */
    void finishFetch(Thread &thread, const mem::MemAccess &f);

    /**
     * Execute a decoded instruction whose fetch completed at ready_at.
     * Updates registers, IP, and the thread's stall time. @param
     * verdict is the instruction's baked elision verdict (0 = full
     * checks).
     */
    void execute(Thread &thread, const Inst &inst, uint64_t ready_at,
                 uint8_t verdict);

    /**
     * Superblock fast path for one issue slot: resume the thread's
     * in-progress trace, or enter the trace cached at its IP after
     * verifying execute rights and the whole trace span against the
     * thread's own execute pointer. @return false when no valid
     * trace applies (caller falls back to the legacy path, which
     * also raises any fetch-check fault the verification declined to
     * prove away). Never called when a trace hook, profiler, or
     * trace sink needs per-instruction visibility.
     */
    bool issueThreadSb(Thread &thread);

    /**
     * Execute one slot of a superblock: performs the timed fetch
     * (check elided under the entry span proof), revalidates the
     * slot's raw bits against the fetched word — a mismatch
     * invalidates the block and falls back to finishFetch() on the
     * same fetch result — and dispatches the handler.
     */
    void execSbSlot(Thread &thread, Superblock &b);

    /**
     * Threaded dispatch of slot @p pos (computed goto, or a switch
     * fallback under GP_NO_COMPUTED_GOTO). Semantics, counters, and
     * timing mirror execute() + the finishFetch() tail exactly; the
     * intra-block IP advance uses the unchecked LEA datapath, proven
     * in-segment by the entry span verification.
     */
    void executeSb(Thread &thread, Superblock &b, uint32_t pos,
                   const SbSlot &slot, uint64_t ready_at);

    /** Feed the per-thread trace recorder one legacy-path fetch;
     * installs a superblock when a trace ends. */
    void recordSbStep(const Thread &thread, uint64_t ip_addr,
                      uint64_t bits, const Inst &inst,
                      uint8_t verdict);

    /** Install the recorder's finished trace (count >= 2). */
    void installSuperblock(const SbRecorder &r);

    /** Invalidate every superblock and reset all recorders (the
     * block-level twin of flushPredecode(), called from it). */
    void flushSuperblocks();

    /** Record a fault on the thread and the machine fault log. */
    void faultThread(Thread &thread, Fault f);

    /** Budget/quiescence check, called once per cycle when armed. */
    void checkWatchdog();

    /** Count a taken fault in its per-kind counter (lazily
     * registering kinds past WatchdogTimeout — see initStats). */
    void bumpFaultKind(Fault f);

    /**
     * Convert the hang into structured errors: fault every live
     * thread with WatchdogTimeout (bypassing the software handler —
     * the machine is presumed wedged) and dump the flight recorder.
     */
    void tripWatchdog(const char *why);

    /**
     * Advance IP sequentially / by a branch displacement.
     * @return false if the IP left its code segment (fault taken).
     * elide skips the IP bounds check (the instruction's never-faults
     * verdict covers every control-flow edge out of it).
     */
    bool advanceIp(Thread &thread, int64_t inst_delta,
                   bool elide = false);

    /**
     * Look up the elision verdict for the instruction at vaddr with
     * the given raw bits. Cold path: called only on a predecode miss,
     * so the per-executed-instruction hot loop never touches the
     * proof sidecar (tools/lint_hot_counters.sh enforces this).
     */
    uint8_t proofVerdict(uint64_t vaddr, uint64_t bits) const;

    /**
     * One slot of the predecoded-instruction cache. The simulator
     * decodes each static instruction once and memoises the result,
     * keyed by the fetch address. Correctness does not depend on
     * explicit invalidation: decode is a pure function of the fetched
     * 65-bit word, and each hit re-validates the stored raw bits
     * against the word the (always-performed, timed) fetch returned —
     * self-modifying code or a reloaded program simply misses and is
     * re-decoded. Simulated timing is untouched; only host decode
     * work is saved.
     */
    struct PredecodedInst
    {
        uint64_t addr = UINT64_MAX; //!< fetch vaddr (UINT64_MAX: empty)
        uint64_t bits = 0;          //!< raw word the decode came from
        Inst inst;
        /// Elision verdict baked at decode time (kElide* bits, with
        /// kElidePrivileged reflecting the proof's privilege mode);
        /// 0 = no proof, full checks. Bound to `bits`: a raw-bits
        /// mismatch re-decodes and re-derives the verdict, so
        /// self-modifying code re-arms checks automatically.
        uint8_t verdict = 0;
    };

    /// Direct-mapped predecode-cache size; must be a power of two.
    static constexpr size_t kPredecodeEntries = 4096;

    /// What kind of access a parked thread is waiting on.
    enum class DeferredKind : uint8_t
    {
        Fetch,
        Load,
        Store,
    };

    /**
     * One in-flight split transaction: everything the completion
     * tail needs to finish the instruction exactly as the
     * synchronous path would have (see completeDeferred()).
     */
    struct DeferredInst
    {
        uint64_t ticket = 0;      //!< exchange ticket (lookup key)
        uint32_t threadIndex = 0; //!< index into threads_
        DeferredKind kind = DeferredKind::Fetch;
        uint8_t rd = 0;           //!< destination register (loads)
        unsigned size = 0;        //!< access size (stores)
        uint64_t storeAddr = 0;   //!< effective address (stores)
        bool elide = false;       //!< check-elision state at issue
        /// Completion will never arrive (markDeferredOrphans): the
        /// park no longer vetoes the quiescence watchdog.
        bool orphaned = false;
    };

    MachineConfig config_;
    std::unique_ptr<mem::MemorySystem> ownedMem_;
    /// Zero-latency functional port over ownedMem_ (fastMode only);
    /// port_ points here instead of at the timed MemorySystem.
    std::unique_ptr<mem::FastPort> fastPort_;
    mem::MemoryPort *port_;
    std::vector<Thread> threads_; //!< [cluster][slot] flattened
    std::vector<unsigned> rrNext_; //!< per-cluster round-robin cursor
    uint64_t cycle_ = 0;
    uint32_t nextThreadId_ = 0;
    bool watchdogTripped_ = false;
    /// Set by any path in which a thread may leave the Ready state
    /// (halt, fault, watchdog, software fault handler); run() only
    /// re-scans allDone() after a cycle that set it.
    bool readyMayHaveShrunk_ = true;
    uint64_t lastIssueCycle_ = 0; //!< for the quiescence watchdog
    std::vector<FaultRecord> faultLog_;
    FaultHandler faultHandler_;
    TraceHook traceHook_;
    sim::StatGroup stats_{"machine"};

    /// Per-cluster id of the thread that issued last, for counting
    /// zero-cost protection-domain switches (UINT32_MAX = none yet).
    std::vector<uint32_t> lastIssuedId_;

    // Cached stat handles (stable for the life of stats_) so the
    // per-instruction hot path pays plain increments, not map lookups.
    sim::Counter *instructions_ = nullptr;
    sim::Counter *cycles_ = nullptr;
    sim::Counter *idleClusterCycles_ = nullptr;
    sim::Counter *emptyClusterCycles_ = nullptr;
    sim::Counter *stalledClusterCycles_ = nullptr;
    sim::Counter *domainSwitches_ = nullptr;
    sim::Counter *gateCrossings_ = nullptr;
    sim::Counter *faults_ = nullptr;
    sim::Counter *faultsRecovered_ = nullptr;
    sim::Counter *threadsSpawned_ = nullptr;
    sim::Counter *watchdogTrips_ = nullptr;
    sim::Counter *hungAccesses_ = nullptr;
    sim::Counter *predecodeHits_ = nullptr;
    sim::Counter *predecodeMisses_ = nullptr;
    /// Elidable-check events skipped / run under elideChecks mode
    /// (both stay 0 when the mode is off). One event per pointer-op
    /// check, displacement LEA, access check, and IP-advance LEA.
    sim::Counter *elideChecksElided_ = nullptr;
    sim::Counter *elideChecksExecuted_ = nullptr;
    /// Simulated cycles the elided checking datapath gave back (one
    /// per elided pointer op: its execute tail folds into the fetch
    /// shadow).
    sim::Counter *elideCyclesSaved_ = nullptr;
    sim::Counter *mix_[kInstClassCount] = {};
    sim::Counter *faultKind_[16] = {}; //!< indexed by unsigned(Fault)

    /// Registered safety proofs; consulted only on predecode misses.
    std::vector<ElideProof> elideProofs_;

    /// Union [lo, hi) byte cover of every registered proof's code
    /// range. An architectural store landing inside it drops ALL
    /// proofs: rewriting one instruction can invalidate verdicts at
    /// instructions whose own bits are unchanged, because safety
    /// facts flow through dataflow.
    uint64_t proofCoverLo_ = UINT64_MAX;
    uint64_t proofCoverHi_ = 0;

    /// Proofs were dropped while execute() had a decoded instruction
    /// aliasing the predecode array; issueThread flushes the baked
    /// verdicts as soon as the instruction retires.
    bool proofsDirty_ = false;

    /// Direct-mapped predecoded-instruction cache, indexed by
    /// (vaddr >> 3) & (kPredecodeEntries - 1).
    std::vector<PredecodedInst> predecode_;

    /// Superblock cache and per-thread trace recorders; sized only
    /// when config_.superblocks is set (empty vectors otherwise, so
    /// the feature costs one bool test per issue when off). The
    /// superblock_* counters register under the same gate, keeping
    /// the default-mode counter set — and every blessed signature —
    /// untouched.
    std::vector<Superblock> superblocks_;
    std::vector<SbRecorder> sbRecorders_;
    sim::Counter *superblockHits_ = nullptr;
    sim::Counter *superblockInstalls_ = nullptr;
    sim::Counter *superblockFlushes_ = nullptr;

    /// Outstanding split transactions (one per Pending thread, at
    /// most threads_.size() entries — linear lookup is fine).
    std::vector<DeferredInst> deferred_;
};

} // namespace gp::isa

#endif // GP_ISA_MACHINE_H
