#include "isa/assembler.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <optional>

namespace gp::isa {

namespace {

/** Operand shapes an instruction line can contain. */
enum class Operand
{
    Reg,    //!< rN
    Imm,    //!< integer or label
    Mem,    //!< imm(rN)
};

/** Per-opcode operand signature, in encoding order. */
struct Signature
{
    std::vector<Operand> operands;
    bool immIsBranchTarget = false;
};

Signature
signatureFor(Op op)
{
    using enum Operand;
    switch (op) {
      case Op::NOP:
      case Op::HALT:
        return {{}};
      case Op::ADD:
      case Op::SUB:
      case Op::MUL:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SRA:
      case Op::SLT:
      case Op::SLTU:
      case Op::LEA:
      case Op::LEAB:
      case Op::RESTRICT:
      case Op::SUBSEG:
      case Op::ITOP:
        return {{Reg, Reg, Reg}};
      case Op::ADDI:
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI:
      case Op::SHLI:
      case Op::SHRI:
      case Op::SRAI:
      case Op::LEAI:
      case Op::LEABI:
        return {{Reg, Reg, Imm}};
      case Op::MOVI:
      case Op::LUI:
        return {{Reg, Imm}};
      case Op::MOV:
      case Op::SETPTR:
      case Op::ISPTR:
      case Op::PTOI:
        return {{Reg, Reg}};
      case Op::LD:
      case Op::LDW:
      case Op::LDH:
      case Op::LDB:
      case Op::ST:
      case Op::STW:
      case Op::STH:
      case Op::STB:
        return {{Reg, Mem}};
      case Op::JMP:
        return {{Reg}};
      case Op::GETIP:
        return {{Reg}};
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
        return {{Reg, Reg, Imm}, true};
      default:
        return {{}};
    }
}

/** Remove comments and surrounding whitespace. */
std::string_view
stripLine(std::string_view line)
{
    if (auto pos = line.find(';'); pos != std::string_view::npos)
        line = line.substr(0, pos);
    if (auto pos = line.find('#'); pos != std::string_view::npos)
        line = line.substr(0, pos);
    while (!line.empty() && std::isspace(uint8_t(line.front())))
        line.remove_prefix(1);
    while (!line.empty() && std::isspace(uint8_t(line.back())))
        line.remove_suffix(1);
    return line;
}

std::optional<uint8_t>
parseReg(std::string_view tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return std::nullopt;
    unsigned value = 0;
    auto [ptr, ec] = std::from_chars(tok.data() + 1,
                                     tok.data() + tok.size(), value);
    if (ec != std::errc() || ptr != tok.data() + tok.size() ||
        value >= kNumRegs) {
        return std::nullopt;
    }
    return uint8_t(value);
}

std::optional<int64_t>
parseInt(std::string_view tok)
{
    if (tok.empty())
        return std::nullopt;
    bool negative = false;
    if (tok[0] == '-' || tok[0] == '+') {
        negative = tok[0] == '-';
        tok.remove_prefix(1);
    }
    int base = 10;
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        tok.remove_prefix(2);
    }
    uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(tok.data(),
                                     tok.data() + tok.size(), value,
                                     base);
    if (ec != std::errc() || ptr != tok.data() + tok.size())
        return std::nullopt;
    int64_t result = int64_t(value);
    return negative ? -result : result;
}

/** Split a comma-separated operand list into trimmed tokens. */
std::vector<std::string_view>
splitOperands(std::string_view rest)
{
    std::vector<std::string_view> toks;
    while (!rest.empty()) {
        auto comma = rest.find(',');
        std::string_view tok = rest.substr(0, comma);
        toks.push_back(stripLine(tok));
        if (comma == std::string_view::npos)
            break;
        rest.remove_prefix(comma + 1);
    }
    return toks;
}

/** A parsed source line awaiting label resolution. */
struct PendingInst
{
    Inst inst;
    std::string branchLabel; //!< nonempty if imm must be resolved
    size_t index;            //!< instruction index
    int lineNo;
    std::string text;        //!< instruction text for the source map
};

/**
 * Format an assembly error carrying the line number and, when
 * available, the offending source text — both are load-bearing:
 * gpverify's source maps and the assembler tests rely on them.
 */
std::string
err(int line, const std::string &msg, std::string_view text = {})
{
    char buf[320];
    if (text.empty()) {
        std::snprintf(buf, sizeof(buf), "line %d: %s", line,
                      msg.c_str());
    } else {
        std::snprintf(buf, sizeof(buf), "line %d: %s: '%.*s'", line,
                      msg.c_str(), int(text.size()), text.data());
    }
    return buf;
}

} // namespace

Assembly
assemble(std::string_view source)
{
    Assembly out;
    std::vector<PendingInst> pending;

    int line_no = 0;
    size_t index = 0;
    while (!source.empty()) {
        auto nl = source.find('\n');
        std::string_view raw = source.substr(0, nl);
        source.remove_prefix(nl == std::string_view::npos
                                 ? source.size()
                                 : nl + 1);
        line_no++;

        std::string_view line = stripLine(raw);
        // Leading label definitions (possibly multiple).
        while (true) {
            auto colon = line.find(':');
            if (colon == std::string_view::npos)
                break;
            // Only treat as a label if no whitespace precedes the colon
            // token (i.e. the first token ends with ':').
            std::string_view head = line.substr(0, colon);
            if (head.find_first_of(" \t") != std::string_view::npos)
                break;
            if (head.empty()) {
                out.error = err(line_no, "empty label", line);
                return out;
            }
            if (out.labels.count(std::string(head))) {
                out.error = err(line_no,
                                "duplicate label '" +
                                    std::string(head) + "'",
                                line);
                return out;
            }
            out.labels[std::string(head)] = index;
            line = stripLine(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        // Mnemonic.
        auto space = line.find_first_of(" \t");
        std::string_view mnemonic = line.substr(0, space);
        std::string_view rest =
            space == std::string_view::npos
                ? std::string_view{}
                : stripLine(line.substr(space + 1));

        auto op = opFromName(mnemonic);
        if (!op) {
            out.error = err(line_no,
                            "unknown mnemonic '" +
                                std::string(mnemonic) + "'",
                            line);
            return out;
        }

        const Signature sig = signatureFor(*op);
        const auto toks = splitOperands(rest);
        if (toks.size() != sig.operands.size()) {
            out.error = err(line_no,
                            "expected " +
                                std::to_string(sig.operands.size()) +
                                " operands",
                            line);
            return out;
        }

        PendingInst pi;
        pi.inst.op = *op;
        pi.index = index;
        pi.lineNo = line_no;
        pi.text = std::string(line);

        // Registers fill rd, ra, rb in order; JMP's single register is
        // its source and goes in ra.
        unsigned reg_slot = (*op == Op::JMP) ? 1 : 0;
        bool bad = false;
        for (size_t i = 0; i < toks.size() && !bad; ++i) {
            switch (sig.operands[i]) {
              case Operand::Reg: {
                auto r = parseReg(toks[i]);
                if (!r) {
                    out.error = err(line_no,
                                    "bad register '" +
                                        std::string(toks[i]) + "'",
                                    line);
                    bad = true;
                    break;
                }
                if (reg_slot == 0)
                    pi.inst.rd = *r;
                else if (reg_slot == 1)
                    pi.inst.ra = *r;
                else
                    pi.inst.rb = *r;
                reg_slot++;
                break;
              }
              case Operand::Imm: {
                if (auto v = parseInt(toks[i])) {
                    if (*v < INT32_MIN || *v > INT32_MAX) {
                        out.error = err(line_no,
                                        "immediate out of range",
                                        line);
                        bad = true;
                        break;
                    }
                    pi.inst.imm = int32_t(*v);
                } else if (sig.immIsBranchTarget) {
                    pi.branchLabel = std::string(toks[i]);
                } else {
                    out.error = err(line_no,
                                    "bad immediate '" +
                                        std::string(toks[i]) + "'",
                                    line);
                    bad = true;
                }
                break;
              }
              case Operand::Mem: {
                // imm(rN)
                std::string_view tok = toks[i];
                auto open = tok.find('(');
                auto close = tok.rfind(')');
                if (open == std::string_view::npos ||
                    close == std::string_view::npos || close < open) {
                    out.error = err(line_no,
                                    "bad memory operand '" +
                                        std::string(tok) + "'",
                                    line);
                    bad = true;
                    break;
                }
                std::string_view imm_part = stripLine(tok.substr(0, open));
                std::string_view reg_part = stripLine(
                    tok.substr(open + 1, close - open - 1));
                int64_t disp = 0;
                if (!imm_part.empty()) {
                    auto v = parseInt(imm_part);
                    if (!v || *v < INT32_MIN || *v > INT32_MAX) {
                        out.error = err(line_no,
                                        "bad displacement", line);
                        bad = true;
                        break;
                    }
                    disp = *v;
                }
                auto r = parseReg(reg_part);
                if (!r) {
                    out.error =
                        err(line_no, "bad base register", line);
                    bad = true;
                    break;
                }
                pi.inst.ra = *r;
                pi.inst.imm = int32_t(disp);
                reg_slot = 2;
                break;
              }
            }
        }
        if (bad)
            return out;

        pending.push_back(std::move(pi));
        index++;
    }

    // Second pass: resolve branch labels to next-instruction-relative
    // offsets.
    out.words.reserve(pending.size());
    out.srcMap.reserve(pending.size());
    for (auto &pi : pending) {
        if (!pi.branchLabel.empty()) {
            auto it = out.labels.find(pi.branchLabel);
            if (it == out.labels.end()) {
                out.error = err(pi.lineNo,
                                "undefined label '" +
                                    pi.branchLabel + "'",
                                pi.text);
                return out;
            }
            const int64_t rel =
                int64_t(it->second) - (int64_t(pi.index) + 1);
            pi.inst.imm = int32_t(rel);
        }
        out.words.push_back(encode(pi.inst));
        out.srcMap.push_back(SourceLoc{pi.lineNo, std::move(pi.text)});
    }

    out.ok = true;
    return out;
}

} // namespace gp::isa
