#include "fault/mesh_campaign.h"

#include <string>

#include "gp/pointer.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "sim/log.h"

namespace gp::fault {

namespace {

using sim::FaultInjector;

/// Code segment base within a node's partition (2^17-aligned).
constexpr uint64_t kCodeOff = uint64_t(1) << 17; // 0x20000
/// Constant table the harness pre-pokes (16 words per node).
constexpr uint64_t kConstOff = uint64_t(1) << 18; // 0x40000
constexpr unsigned kConstWords = 16;
/// Result vector (32 round-robin slots + final accumulator).
constexpr uint64_t kResultOff = 33 * (uint64_t(1) << 13); // 0x42000
constexpr unsigned kResultWords = 34; // slots, pad, accumulator

/**
 * The ring-traffic workload. Every iteration loads one pre-poked
 * constant from the *ring neighbor's* partition — a remote access
 * that crosses the mesh, exercising routing, the retry protocol, and
 * (once the neighbor dies) the NodeUnreachable path — then writes an
 * accumulator slot into the node's *own* partition. Because the
 * constants are fixed by the harness before the run, each node's
 * result vector is a pure function of the node ids alone, never of
 * message timing: survivors of a degraded run must match the
 * failure-free golden run word-for-word.
 *
 * r1 = full-space RW pointer, r2 = own node id, r3 = iterations,
 * r4 = ring-neighbor node id.
 */
constexpr const char *kMeshWorkload = R"(
        movi r5, 0            ; i = 0
        movi r6, 1            ; acc = 1
        movi r11, 1
        shli r11, r11, 18     ; const-table offset (0x40000)
        movi r12, 33
        shli r12, r12, 13     ; result offset (0x42000)
loop:   andi r7, r5, 15
        shli r7, r7, 3
        add  r7, r7, r11
        shli r8, r4, 48
        add  r7, r7, r8       ; neighbor const slot address
        leab r9, r1, r7
        ld   r10, 0(r9)       ; remote load (the resilience channel)
        add  r6, r6, r10
        add  r6, r6, r5
        andi r7, r5, 31
        shli r7, r7, 3
        add  r7, r7, r12
        shli r8, r2, 48
        add  r7, r7, r8       ; own result slot address
        leab r9, r1, r7
        st   r6, 0(r9)
        addi r5, r5, 1
        blt  r5, r3, loop
        shli r8, r2, 48
        add  r8, r8, r12
        addi r8, r8, 264      ; accumulator slot (0x42108)
        leab r9, r1, r8
        st   r6, 0(r9)
        halt
)";

/** splitmix64 finalizer for per-run seed derivation. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** The constant the harness plants in node @p m's slot @p j: any
 * fixed function of (m, j) works — it only has to be the SAME in
 * golden and injected runs. */
Word
constantFor(unsigned m, unsigned j)
{
    return Word::fromInt(mix64(0x6d657368ull ^ (uint64_t(m) << 8) ^
                               j) &
                         0xffffffffull);
}

} // namespace

MeshCampaignRunner::MeshCampaignRunner(const MeshCampaignConfig &config)
    : config_(config)
{
}

MeshCampaignRunner::~MeshCampaignRunner()
{
    // Never leave a half-finished campaign armed behind us.
    if (FaultInjector::armed())
        FaultInjector::instance().disarm();
}

MeshRunResult
MeshCampaignRunner::execute(const uint64_t *runSeed,
                            std::vector<uint64_t> &nodeSigs)
{
    noc::ShardConfig scfg;
    scfg.mesh.dimX = config_.dimX;
    scfg.mesh.dimY = config_.dimY;
    scfg.mesh.dimZ = config_.dimZ;
    scfg.node.cache.setsPerBank = 64; // small cache: host speed only
    scfg.machine.clusters = 1;
    scfg.hostThreads = config_.hostThreads;
    scfg.meshWatchdogCycles = config_.meshWatchdogCycles;
    scfg.retrans = config_.retrans;
    noc::ShardedMesh shard(scfg);
    const unsigned nodes = shard.nodeCount();

    const isa::Assembly assembly = isa::assemble(kMeshWorkload);
    if (!assembly.ok)
        sim::fatal("mesh campaign workload failed to assemble: %s",
                   assembly.error.c_str());
    auto full = makePointer(Perm::ReadWrite, 54, 0);
    if (!full)
        sim::fatal("mesh campaign: cannot build full-space pointer");

    for (unsigned n = 0; n < nodes; ++n) {
        const uint64_t base = noc::nodeBase(n);
        const isa::LoadedProgram prog = isa::loadProgram(
            shard.node(n), base + kCodeOff, assembly.words);
        isa::Thread *t = shard.machine(n).spawn(prog.execPtr);
        if (!t)
            sim::fatal("mesh campaign: node %u has no thread slot", n);
        t->setReg(1, full.value);
        t->setReg(2, Word::fromInt(n));
        t->setReg(3, Word::fromInt(config_.iterations));
        t->setReg(4, Word::fromInt((n + 1) % nodes));
        // Plant the constant table and zero the result vector. The
        // pokes also demand-map both pages, so the post-run peek walk
        // succeeds even for a node that died before its first store.
        for (unsigned j = 0; j < kConstWords; ++j)
            shard.node(n).pokeWord(base + kConstOff + 8 * j,
                                   constantFor(n, j));
        for (unsigned j = 0; j < kResultWords; ++j)
            shard.node(n).pokeWord(base + kResultOff + 8 * j,
                                   Word::fromInt(0));
    }

    auto &inj = FaultInjector::instance();
    if (runSeed) {
        sim::FaultConfig fc = config_.faults;
        fc.seed = *runSeed;
        inj.arm(fc);
    }

    shard.run(config_.maxCycles);

    MeshRunResult r;
    r.cycles = shard.cycle();
    if (runSeed) {
        r.injections = inj.injectedTotal();
        inj.disarm();
    }
    r.deadNodes = shard.mesh().deadNodeCount();
    r.downLinks = shard.mesh().downLinkCount();
    r.detours = shard.mesh().detourCount();
    r.meshWatchdog = shard.meshWatchdogTripped();
    const bool hung = r.meshWatchdog || !shard.allDone();

    // Per-node result signatures: the final result vector (tags
    // included) plus a clean-completion bit. Deliberately NO cycle
    // counts — a detoured run is slower but must still compare equal.
    bool survivorFaulted = false;
    uint64_t survivorsWrong = 0;
    const std::vector<uint64_t> *golden =
        goldenValid_ ? &goldenNodeSigs_ : nullptr;
    for (unsigned n = 0; n < nodes; ++n) {
        if (shard.nodeDead(n)) {
            nodeSigs.push_back(0xdeadull); // placeholder, not compared
            continue;
        }
        r.unreachableFaults += shard.node(n).unreachableFaults();
        const bool faulted = !shard.machine(n).faultLog().empty();
        if (faulted) {
            survivorFaulted = true;
            if (r.firstFault == Fault::None)
                r.firstFault = shard.machine(n).faultLog().front().fault;
        }
        uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
        auto mix = [&h](uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        const uint64_t base = noc::nodeBase(n);
        for (unsigned j = 0; j < kResultWords; ++j) {
            const Word w =
                shard.node(n).peekWord(base + kResultOff + 8 * j);
            mix(w.bits());
            mix(w.isPointer() ? 0x9e3779b9ull : 0x51edull);
        }
        bool halted = true;
        for (const isa::Thread &t : shard.machine(n).threads())
            if (t.state() != isa::ThreadState::Idle &&
                t.state() != isa::ThreadState::Halted)
                halted = false;
        mix(halted ? 1 : 0);
        nodeSigs.push_back(h);
        // Only a CLEANLY completed survivor can be silently wrong: a
        // survivor that took a typed fault mid-loop legitimately left
        // a truncated result — that is the detected-fault class, not
        // corruption.
        if (golden && halted && !faulted && h != (*golden)[n])
            survivorsWrong++;
    }
    r.survivorsWrong = survivorsWrong;

    if (!runSeed) {
        r.outcome = MeshOutcome::Masked;
        return r;
    }

    // Precedence: hang > detected > sdc > degraded > masked. Total
    // mesh death counts as detected — fail-stop IS detection.
    if (hung)
        r.outcome = MeshOutcome::Hang;
    else if (shard.survivors() == 0 || survivorFaulted)
        r.outcome = MeshOutcome::DetectedFault;
    else if (survivorsWrong > 0)
        r.outcome = MeshOutcome::Sdc;
    else if (shard.mesh().degraded())
        r.outcome = MeshOutcome::Degraded;
    else
        r.outcome = MeshOutcome::Masked;
    return r;
}

const std::vector<uint64_t> &
MeshCampaignRunner::goldenNodeSignatures()
{
    if (!goldenValid_) {
        goldenNodeSigs_.clear();
        const MeshRunResult g = execute(nullptr, goldenNodeSigs_);
        goldenCycles_ = g.cycles;
        goldenValid_ = true;
    }
    return goldenNodeSigs_;
}

uint64_t
MeshCampaignRunner::goldenCycles()
{
    goldenNodeSignatures();
    return goldenCycles_;
}

MeshRunResult
MeshCampaignRunner::runOne(unsigned index)
{
    goldenNodeSignatures(); // ensure golden exists before arming
    const uint64_t runSeed =
        mix64(config_.seed ^
              (0x9e3779b97f4a7c15ull * (uint64_t(index) + 1)));
    std::vector<uint64_t> sigs;
    return execute(&runSeed, sigs);
}

MeshCampaignTotals
MeshCampaignRunner::runAll()
{
    MeshCampaignTotals totals;
    totals.goldenCycles = goldenCycles();
    results_.clear();
    results_.reserve(config_.runs);

    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (uint64_t g : goldenNodeSigs_)
        mix(g);

    for (unsigned i = 0; i < config_.runs; ++i) {
        const uint64_t runSeed =
            mix64(config_.seed ^
                  (0x9e3779b97f4a7c15ull * (uint64_t(i) + 1)));
        std::vector<uint64_t> sigs;
        const MeshRunResult r = execute(&runSeed, sigs);
        results_.push_back(r);
        totals.perOutcome[unsigned(r.outcome)]++;
        totals.totalInjections += r.injections;
        totals.totalDeadNodes += r.deadNodes;
        totals.totalDownLinks += r.downLinks;
        totals.totalDetours += r.detours;
        totals.totalUnreachableFaults += r.unreachableFaults;
        mix(uint64_t(r.outcome));
        mix(r.deadNodes);
        mix(r.downLinks);
        mix(r.survivorsWrong);
        for (uint64_t s : sigs)
            mix(s);
    }
    totals.runs = config_.runs;
    campaignSignature_ = h;

    // Publish the outcome table through the stats registry so the
    // JSON export (and tools/statdiff.py) can diff campaigns.
    stats_.counter("runs").set(totals.runs);
    stats_.counter("injections").set(totals.totalInjections);
    stats_.counter("dead_nodes").set(totals.totalDeadNodes);
    stats_.counter("down_links").set(totals.totalDownLinks);
    stats_.counter("detours").set(totals.totalDetours);
    stats_.counter("unreachable_faults")
        .set(totals.totalUnreachableFaults);
    stats_.counter("golden_cycles").set(totals.goldenCycles);
    for (unsigned o = 0; o < kMeshOutcomeCount; ++o) {
        stats_
            .counter(std::string("outcome.") +
                     std::string(meshOutcomeName(MeshOutcome(o))))
            .set(totals.perOutcome[o]);
    }
    return totals;
}

} // namespace gp::fault
