/**
 * @file
 * Deterministic multi-node fault campaign over the sharded mesh
 * engine (ISSUE 9 tentpole).
 *
 * Where the single-machine campaign (campaign.h) strikes stored
 * bits and TLB entries, this campaign strikes the *fabric*: fail-stop
 * node deaths and persistent link failures, armed once per epoch at
 * the barrier so the failure schedule is a pure function of
 * (configuration, seed) — never of the host-thread count. Each run is
 * classified into a mesh-specific five-way taxonomy:
 *
 *  - **masked**: no mesh fault fired this run; every node's result is
 *    bit-identical to the failure-free golden run;
 *  - **degraded-but-correct**: the fabric lost nodes or links, yet
 *    every *surviving* node's architectural result is bit-identical
 *    to its failure-free golden result — route-around, end-to-end
 *    retries, and dead-op dropping absorbed the damage;
 *  - **detected-fault**: at least one survivor terminated with an
 *    architectural fault (typically NodeUnreachable: its remote home
 *    died and the bounded retry budget exhausted). Detection is the
 *    fail-stop win — a dead home surfaces as a typed error, never as
 *    a parked-forever thread;
 *  - **silent-data-corruption**: a survivor completed "successfully"
 *    but its result image differs from golden. The tripwire class:
 *    the campaign exists to prove this count stays zero;
 *  - **hang**: the run never completed — the distributed mesh
 *    watchdog (or the per-run cycle budget) had to end it.
 *
 * The workload makes per-node results *timing-independent*: each node
 * accumulates over constants the harness pre-poked into its ring
 * neighbor's partition (remote traffic that exercises routing and the
 * retry protocol) and writes a result vector into its own partition
 * (a pure function of node ids alone). Survivor results can therefore
 * be compared word-for-word against the failure-free golden run even
 * when every message detoured.
 */

#ifndef GP_FAULT_MESH_CAMPAIGN_H
#define GP_FAULT_MESH_CAMPAIGN_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "gp/fault.h"
#include "noc/shard.h"
#include "sim/faultinject.h"
#include "sim/stats.h"

namespace gp::fault {

/** Five-way outcome taxonomy of one injected mesh run. */
enum class MeshOutcome : uint8_t
{
    Masked = 0,
    Degraded, //!< failures happened; every survivor still correct
    DetectedFault,
    Sdc,
    Hang,
    Count,
};

inline constexpr unsigned kMeshOutcomeCount =
    static_cast<unsigned>(MeshOutcome::Count);

/** @return stable lower-case outcome name (stat/JSON key). */
constexpr std::string_view
meshOutcomeName(MeshOutcome o)
{
    switch (o) {
      case MeshOutcome::Masked:
        return "masked";
      case MeshOutcome::Degraded:
        return "degraded-but-correct";
      case MeshOutcome::DetectedFault:
        return "detected-fault";
      case MeshOutcome::Sdc:
        return "silent-data-corruption";
      case MeshOutcome::Hang:
        return "hang";
      default:
        return "unknown";
    }
}

/** Full configuration of one mesh campaign. */
struct MeshCampaignConfig
{
    /** Master seed; run r uses a seed derived from (seed, r). */
    uint64_t seed = 1;
    /** Number of injected runs. */
    unsigned runs = 25;
    /** Mesh geometry. */
    unsigned dimX = 2, dimY = 2, dimZ = 2;
    /** Host threads per simulated run (identical outcomes for any
     * value — the CI cross-check asserts exactly that). */
    unsigned hostThreads = 1;
    /** Per-site injection rates. NodeFailStop / LinkDown rates are
     * per-epoch opportunities; NoC transient sites may be armed too.
     * The seed field is ignored (per-run seed installed instead). */
    sim::FaultConfig faults;
    /** Workload size: accumulate iterations per node. */
    uint64_t iterations = 48;
    /** Per-run simulated-cycle budget. */
    uint64_t maxCycles = 400000;
    /** Distributed mesh watchdog window (cycles of zero mesh-wide
     * progress before the run is declared hung). */
    uint64_t meshWatchdogCycles = 20000;
    /** End-to-end retry protocol on the NoC links. On by default:
     * bounded timeout/backoff/retry is the mechanism under test
     * (aggregate init — the remaining fields keep their own
     * defaults). */
    noc::RetransConfig retrans{/*enabled=*/true};
};

/** Everything observed about one mesh run. */
struct MeshRunResult
{
    MeshOutcome outcome = MeshOutcome::Masked;
    uint64_t cycles = 0;        //!< simulated cycles executed
    uint64_t injections = 0;    //!< injector firings (all sites)
    uint64_t deadNodes = 0;     //!< fail-stopped nodes at run end
    uint64_t downLinks = 0;     //!< down links at run end
    uint64_t detours = 0;       //!< messages routed around failures
    uint64_t unreachableFaults = 0; //!< typed NodeUnreachable faults
    /** Survivors that completed CLEANLY yet differ from golden —
     * the silent-data-corruption tally (faulted survivors' truncated
     * results are detected failures, not corruption). */
    uint64_t survivorsWrong = 0;
    Fault firstFault = Fault::None; //!< first fault any survivor took
    bool meshWatchdog = false;      //!< distributed watchdog tripped
};

/** Aggregated campaign outcome table. */
struct MeshCampaignTotals
{
    uint64_t perOutcome[kMeshOutcomeCount] = {};
    uint64_t runs = 0;
    uint64_t totalInjections = 0;
    uint64_t totalDeadNodes = 0;
    uint64_t totalDownLinks = 0;
    uint64_t totalDetours = 0;
    uint64_t totalUnreachableFaults = 0;
    uint64_t goldenCycles = 0; //!< cycles of the failure-free run

    uint64_t
    outcome(MeshOutcome o) const
    {
        return perOutcome[static_cast<unsigned>(o)];
    }
};

/**
 * Runs the ring-traffic workload under a mesh campaign configuration.
 * Owns a "mesh_campaign" stat group (outcome.*, runs, dead_nodes,
 * ...) feeding the registry JSON export, so tools/statdiff.py can
 * diff campaign outcome tables between builds.
 */
class MeshCampaignRunner
{
  public:
    explicit MeshCampaignRunner(const MeshCampaignConfig &config);
    ~MeshCampaignRunner();

    /** Per-node golden signatures (failure-free run; lazy). */
    const std::vector<uint64_t> &goldenNodeSignatures();
    uint64_t goldenCycles();

    /** Execute run @p index (0-based) under its derived seed. */
    MeshRunResult runOne(unsigned index);

    /** Execute the whole campaign and aggregate. */
    MeshCampaignTotals runAll();

    /** Per-run results of the last runAll(). */
    const std::vector<MeshRunResult> &results() const
    {
        return results_;
    }

    /**
     * Deterministic digest of the whole campaign: per-run outcomes,
     * failure sets, and per-survivor result signatures. Identical for
     * every hostThreads value — the CI t1-vs-t4 cross-check pins it.
     * Valid after runAll().
     */
    uint64_t campaignSignature() const { return campaignSignature_; }

    const MeshCampaignConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    /** Execute the workload once; inject iff @p runSeed != nullptr.
     * Appends per-node result signatures to @p nodeSigs. */
    MeshRunResult execute(const uint64_t *runSeed,
                          std::vector<uint64_t> &nodeSigs);

    MeshCampaignConfig config_;
    bool goldenValid_ = false;
    std::vector<uint64_t> goldenNodeSigs_;
    uint64_t goldenCycles_ = 0;
    uint64_t campaignSignature_ = 0;
    std::vector<MeshRunResult> results_;
    sim::StatGroup stats_{"mesh_campaign"};
};

} // namespace gp::fault

#endif // GP_FAULT_MESH_CAMPAIGN_H
