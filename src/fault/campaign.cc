#include "fault/campaign.h"

#include <string>

#include "isa/assembler.h"
#include "isa/loader.h"
#include "sim/log.h"
#include "verify/verifier.h"

namespace gp::fault {

namespace {

using sim::FaultInjector;
using sim::FaultSite;

/// Code segment base (2^20-aligned, far from data).
constexpr uint64_t kCodeBase = uint64_t(1) << 24;
/// Data segment base and size (one small segment, 2^12 bytes).
constexpr uint64_t kDataBase = uint64_t(1) << 30;
constexpr uint64_t kDataLenLog2 = 12;
constexpr uint64_t kDataBytes = uint64_t(1) << kDataLenLog2;

/**
 * The standard campaign workload. Deliberately keeps all the
 * security- and liveness-critical state *in memory*, reloaded every
 * iteration, so stored-bit faults have architectural consequences:
 *
 *   data[0]   the capability to the data segment itself
 *   data[8]   the loop bound
 *   data[16..271]  32 result slots, rewritten round-robin
 *   data[272] the final accumulator
 *
 * r1 = data-segment capability, r2 = iteration count (set by the
 * harness before the thread runs).
 */
constexpr const char *kWorkload = R"(
        st   r1, 0(r1)        ; plant the capability in memory
        st   r2, 8(r1)        ; plant the loop bound in memory
        movi r3, 0            ; i = 0
        movi r4, 1            ; acc = 1
loop:   ld   r5, 0(r1)        ; reload the capability (forgery channel)
        andi r6, r3, 31       ; slot = i % 32
        shli r6, r6, 3
        addi r6, r6, 16
        lea  r7, r5, r6       ; slot pointer (bounds-checked)
        add  r4, r4, r3
        st   r4, 0(r7)        ; write the slot
        ld   r8, 0(r7)        ; read it straight back
        add  r4, r4, r8
        addi r3, r3, 1
        ld   r6, 8(r1)        ; reload the bound (hang channel)
        blt  r3, r6, loop
        st   r4, 272(r1)      ; final accumulator
        halt
)";

/** splitmix64 finalizer for per-run seed derivation. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Hash of the final data-segment image, tags included. */
struct Signature
{
    uint64_t hash = 1469598103934665603ull; // FNV-1a offset basis
    bool detected = false;                  // uncorrectable at rest

    void
    mix(uint64_t v)
    {
        hash ^= v;
        hash *= 1099511628211ull;
    }
};

Signature
signatureOf(mem::MemorySystem &ms)
{
    Signature sig;
    auto &pt = ms.pageTable();
    for (uint64_t va = kDataBase; va < kDataBase + kDataBytes;
         va += 8) {
        const auto pfn = pt.translate(pt.vpn(va));
        if (!pfn) {
            // Page never touched: hash a distinct "absent" token.
            sig.mix(0x5157ull);
            continue;
        }
        const uint64_t pa = (*pfn << pt.pageShift()) |
                            (va & (pt.pageBytes() - 1));
        // Read *through the code*: with ECC on, a correctable upset
        // at rest is not a difference — the consumer would see the
        // corrected value. An uncorrectable one is detected, never
        // silent.
        const mem::CheckedWord cw = ms.phys().readWordChecked(pa);
        if (cw.status == mem::EccStatus::Detected)
            sig.detected = true;
        sig.mix(cw.word.bits());
        sig.mix(cw.word.isPointer() ? 0x9e3779b9ull : 0x51edull);
    }
    return sig;
}

} // namespace

/** One freshly constructed machine with the workload loaded. */
struct CampaignRunner::Harness
{
    isa::Machine machine;
    isa::Thread *thread = nullptr;

    static isa::MachineConfig
    makeConfig(const CampaignConfig &cc)
    {
        isa::MachineConfig mcfg;
        mcfg.clusters = 1;
        mcfg.threadsPerCluster = 1;
        mcfg.mem.ecc = cc.ecc;
        mcfg.mem.walkRetries = cc.walkRetries;
        mcfg.watchdogCycles = cc.watchdogCycles;
        mcfg.watchdogQuiescence = cc.watchdogQuiescence;
        mcfg.elideChecks = cc.elideChecks;
        return mcfg;
    }

    explicit Harness(const CampaignConfig &cc)
        : machine(makeConfig(cc))
    {
        isa::Assembly assembly = isa::assemble(kWorkload);
        if (!assembly.ok)
            sim::fatal("campaign workload failed to assemble: %s",
                       assembly.error.c_str());
        const isa::LoadedProgram prog = isa::loadProgram(
            machine.mem(), kCodeBase, assembly.words);
        thread = machine.spawn(prog.execPtr);
        if (!thread)
            sim::fatal("campaign: no thread slot");
        thread->setReg(1, isa::dataSegment(kDataBase, kDataLenLog2));
        thread->setReg(2, Word::fromInt(cc.iterations));
        if (cc.elideChecks) {
            // Prove the workload under the exact entry state set up
            // above (r1 = RW data segment, r2 = integer) and register
            // the proof at the load base. Injected runs still execute
            // full checks — an armed FaultInjector disables elision at
            // the instruction level — so only the golden run's timing
            // changes, never any run's architectural outcome.
            verify::VerifyOptions vopts;
            vopts.entryRegs = verify::defaultEntryRegs(kDataBytes);
            const verify::VerifyResult vres =
                verify::verifyProgram(assembly, vopts);
            machine.registerElideProof(verify::makeElideProof(
                vres, assembly.words, false, kCodeBase));
        }
    }
};

CampaignRunner::CampaignRunner(const CampaignConfig &config)
    : config_(config)
{
}

CampaignRunner::~CampaignRunner()
{
    // Never leave a half-finished campaign armed behind us.
    if (FaultInjector::armed())
        FaultInjector::instance().disarm();
}

RunResult
CampaignRunner::execute(const uint64_t *runSeed)
{
    Harness h(config_);
    auto &inj = FaultInjector::instance();
    mem::MemorySystem &ms = h.machine.mem();

    if (runSeed) {
        sim::FaultConfig fc = config_.faults;
        fc.seed = *runSeed;
        inj.arm(fc);

        mem::TaggedMemory &phys = ms.phys();
        // Victim selection always walks *sorted* address lists so
        // outcomes never depend on hash-map iteration order.
        auto pickWord = [&phys](sim::Rng &rng) -> uint64_t {
            auto addrs = phys.wordAddrs();
            return addrs.empty()
                       ? UINT64_MAX
                       : addrs[rng.below(addrs.size())];
        };
        if (fc.rate[unsigned(FaultSite::MemDataBit)] > 0) {
            inj.setTickTarget(
                FaultSite::MemDataBit, [&phys, pickWord](auto &rng) {
                    const uint64_t a = pickWord(rng);
                    if (a != UINT64_MAX)
                        phys.flipStoredBit(a,
                                           unsigned(rng.below(64)));
                });
        }
        if (fc.rate[unsigned(FaultSite::MemTagBit)] > 0) {
            inj.setTickTarget(
                FaultSite::MemTagBit, [&phys, pickWord](auto &rng) {
                    const uint64_t a = pickWord(rng);
                    if (a != UINT64_MAX)
                        phys.flipStoredBit(a, 64);
                });
        }
        if (fc.rate[unsigned(FaultSite::MemPermField)] > 0) {
            inj.setTickTarget(
                FaultSite::MemPermField, [&phys](auto &rng) {
                    // Strike only stored capabilities: a random bit
                    // of the 10-bit perm/length field (bits 54..63).
                    auto caps = phys.taggedWordAddrs();
                    if (caps.empty())
                        return;
                    const uint64_t a = caps[rng.below(caps.size())];
                    phys.flipStoredBit(
                        a, unsigned(54 + rng.below(10)));
                });
        }
        if (fc.rate[unsigned(FaultSite::CacheLineBurst)] > 0) {
            const uint64_t maxBits =
                fc.burstMaxBits ? fc.burstMaxBits : 1;
            inj.setTickTarget(
                FaultSite::CacheLineBurst,
                [&phys, pickWord, maxBits](auto &rng) {
                    const uint64_t a = pickWord(rng);
                    if (a == UINT64_MAX)
                        return;
                    // Multi-bit burst across one 32-byte line.
                    const uint64_t line = a & ~uint64_t(31);
                    const uint64_t n = 1 + rng.below(maxBits);
                    for (uint64_t i = 0; i < n; ++i)
                        phys.flipStoredBit(line + 8 * rng.below(4),
                                           unsigned(rng.below(65)));
                });
        }
        mem::Tlb &tlb = ms.tlb();
        if (fc.rate[unsigned(FaultSite::TlbCorrupt)] > 0) {
            inj.setTickTarget(FaultSite::TlbCorrupt,
                              [&tlb](auto &rng) {
                                  tlb.corruptRandom(rng);
                              });
        }
        if (fc.rate[unsigned(FaultSite::TlbInvalidate)] > 0) {
            inj.setTickTarget(FaultSite::TlbInvalidate,
                              [&tlb](auto &rng) {
                                  tlb.invalidateRandom(rng);
                              });
        }
    }

    h.machine.run(config_.watchdogCycles + 10000);

    RunResult r;
    r.cycles = h.machine.cycle();
    if (runSeed) {
        r.injections = inj.injectedTotal();
        inj.disarm();
    }

    bool faulted = false;
    for (const isa::Thread &t : h.machine.threads()) {
        if (t.state() == isa::ThreadState::Faulted)
            faulted = true;
    }
    if (!h.machine.faultLog().empty())
        r.firstFault = h.machine.faultLog().front().fault;

    const bool hung =
        h.machine.watchdogTripped() || !h.machine.allDone();

    const Signature sig = signatureOf(ms);
    r.signature = sig.hash;
    r.eccCorrected = ms.phys().eccCorrected();
    r.eccDetected = ms.phys().eccDetected();
    r.walkTransients = ms.stats().get("walk_transients");

    if (!runSeed) {
        r.outcome = Outcome::Masked;
        return r;
    }

    const uint64_t golden = goldenSignature();
    if (hung)
        r.outcome = Outcome::CrashHang;
    else if (faulted || sig.detected)
        r.outcome = Outcome::DetectedFault;
    else if (sig.hash != golden)
        r.outcome = Outcome::Sdc;
    else if (r.eccCorrected > 0 || r.walkTransients > 0)
        r.outcome = Outcome::Corrected;
    else
        r.outcome = Outcome::Masked;
    return r;
}

uint64_t
CampaignRunner::goldenSignature()
{
    if (!goldenValid_) {
        const RunResult g = execute(nullptr);
        goldenSignature_ = g.signature;
        goldenCycles_ = g.cycles;
        goldenValid_ = true;
    }
    return goldenSignature_;
}

uint64_t
CampaignRunner::goldenCycles()
{
    goldenSignature();
    return goldenCycles_;
}

RunResult
CampaignRunner::runOne(unsigned index)
{
    goldenSignature(); // ensure golden exists before arming
    const uint64_t runSeed =
        mix64(config_.seed ^
              (0x9e3779b97f4a7c15ull * (uint64_t(index) + 1)));
    return execute(&runSeed);
}

CampaignTotals
CampaignRunner::runAll()
{
    CampaignTotals totals;
    totals.goldenCycles = goldenCycles();
    results_.clear();
    results_.reserve(config_.runs);
    for (unsigned i = 0; i < config_.runs; ++i) {
        const RunResult r = runOne(i);
        results_.push_back(r);
        totals.perOutcome[unsigned(r.outcome)]++;
        totals.totalInjections += r.injections;
        totals.totalEccCorrected += r.eccCorrected;
        totals.totalEccDetected += r.eccDetected;
    }
    totals.runs = config_.runs;

    // Publish the coverage table through the stats registry so the
    // JSON export (and tools/statdiff.py) can diff campaigns.
    stats_.counter("runs").set(totals.runs);
    stats_.counter("injections").set(totals.totalInjections);
    stats_.counter("ecc_corrected").set(totals.totalEccCorrected);
    stats_.counter("ecc_detected").set(totals.totalEccDetected);
    stats_.counter("golden_cycles").set(totals.goldenCycles);
    for (unsigned o = 0; o < kOutcomeCount; ++o) {
        stats_
            .counter(std::string("outcome.") +
                     std::string(outcomeName(Outcome(o))))
            .set(totals.perOutcome[o]);
    }
    return totals;
}

} // namespace gp::fault
