/**
 * @file
 * Deterministic fault-injection campaign runner (ISSUE 4 tentpole).
 *
 * A *campaign* is a set of independent simulated runs of one fixed
 * workload, each under a distinct per-run seed, with hardware faults
 * injected at configured sites/rates. Every run is classified into
 * the five-way outcome taxonomy used by the resilience literature:
 *
 *  - **masked**: faults were injected (or none fired) but the
 *    architectural result is bit-identical to the golden run and no
 *    hardware repair was needed;
 *  - **corrected**: the result is golden *because* a hardening
 *    mechanism repaired the damage (SECDED correction, page-walk
 *    retry, NoC retransmission);
 *  - **detected-fault**: the run terminated with an architectural
 *    fault — the hardware noticed (NotAPointer on a cleared tag,
 *    MemoryIntegrity from the code check, BoundsViolation from a
 *    mangled length field, ...). Detection is the security win: a
 *    flipped tag that faults cannot forge a capability;
 *  - **silent-data-corruption**: the run completed "successfully"
 *    but its memory image differs from golden — including any
 *    difference in *tag bits*, so a forged capability at rest is
 *    SDC even if the payload matches;
 *  - **crash-hang**: the run never completed; the machine watchdog
 *    converted the hang/livelock into WatchdogTimeout faults.
 *
 * The workload is a small self-contained loop chosen so that every
 * class is reachable: it keeps its loop bound *and* a capability to
 * its own data segment in memory (reloaded every iteration), writes
 * a result vector, and stores an accumulator — so a stored-bit flip
 * can variously be overwritten (masked), corrupted into the result
 * (SDC), strip/forge the reloaded capability (detected / SDC), or
 * blow up the loop bound (hang).
 *
 * Determinism: the whole campaign outcome is a pure function of
 * (CampaignConfig, master seed). Per-run seeds derive from the
 * master seed by splitmix; all stochastic choices flow through the
 * per-site FaultInjector streams; victim words are chosen from
 * *sorted* address lists, never from hash iteration order.
 */

#ifndef GP_FAULT_CAMPAIGN_H
#define GP_FAULT_CAMPAIGN_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "gp/fault.h"
#include "isa/machine.h"
#include "mem/ecc.h"
#include "sim/faultinject.h"
#include "sim/stats.h"

namespace gp::fault {

/** Five-way outcome taxonomy of one injected run. */
enum class Outcome : uint8_t
{
    Masked = 0,
    Corrected,
    DetectedFault,
    Sdc,
    CrashHang,
    Count,
};

inline constexpr unsigned kOutcomeCount =
    static_cast<unsigned>(Outcome::Count);

/** @return stable lower-case outcome name (stat/JSON key). */
constexpr std::string_view
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked:
        return "masked";
      case Outcome::Corrected:
        return "corrected";
      case Outcome::DetectedFault:
        return "detected-fault";
      case Outcome::Sdc:
        return "silent-data-corruption";
      case Outcome::CrashHang:
        return "crash-hang";
      default:
        return "unknown";
    }
}

/** Full configuration of one campaign. */
struct CampaignConfig
{
    /** Master seed; run r uses a seed derived from (seed, r). */
    uint64_t seed = 1;
    /** Number of injected runs. */
    unsigned runs = 100;
    /** Hardening: code over stored words. */
    mem::EccMode ecc = mem::EccMode::None;
    /** Hardening: bounded page-walk retries. */
    unsigned walkRetries = 0;
    /** Per-site injection rates etc. (seed field is ignored; the
     * campaign installs the per-run seed). */
    sim::FaultConfig faults;
    /** Workload size: loop iterations. */
    uint64_t iterations = 150;
    /** Watchdog cycle budget per run (converts hangs). */
    uint64_t watchdogCycles = 300000;
    /** Watchdog quiescence window per run. */
    uint64_t watchdogQuiescence = 5000;
    /**
     * Run with verifier-driven check elision armed: the harness
     * verifies the workload and registers its proof. Injected runs
     * auto-disable elision (an armed FaultInjector re-arms full
     * checks), so the outcome taxonomy must be bit-identical to the
     * elide-off campaign — the CI tripwire asserts exactly that.
     */
    bool elideChecks = false;
};

/** Everything observed about one run. */
struct RunResult
{
    Outcome outcome = Outcome::Masked;
    uint64_t cycles = 0;          //!< cycles executed
    uint64_t injections = 0;      //!< faults fired by the injector
    uint64_t eccCorrected = 0;    //!< SECDED repairs during the run
    uint64_t eccDetected = 0;     //!< uncorrectable detections
    uint64_t walkTransients = 0;  //!< transient walk failures retried
    Fault firstFault = Fault::None; //!< first architectural fault
    uint64_t signature = 0;       //!< final data-memory hash
};

/** Aggregated campaign outcome table. */
struct CampaignTotals
{
    uint64_t perOutcome[kOutcomeCount] = {};
    uint64_t runs = 0;
    uint64_t totalInjections = 0;
    uint64_t totalEccCorrected = 0;
    uint64_t totalEccDetected = 0;
    uint64_t goldenCycles = 0;    //!< cycles of the fault-free run

    uint64_t
    outcome(Outcome o) const
    {
        return perOutcome[static_cast<unsigned>(o)];
    }
};

/**
 * Runs the standard workload under a campaign configuration.
 * Each CampaignRunner owns a "campaign" stat group whose counters
 * (outcome.*, runs, injections) feed the registry JSON export.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignConfig &config);
    ~CampaignRunner();

    /** The fault-free signature/cycle count (computed lazily). */
    uint64_t goldenSignature();
    uint64_t goldenCycles();

    /** Execute run @p index (0-based) under its derived seed. */
    RunResult runOne(unsigned index);

    /** Execute the whole campaign and aggregate. */
    CampaignTotals runAll();

    /** Per-run results of the last runAll(). */
    const std::vector<RunResult> &results() const { return results_; }

    const CampaignConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    struct Harness; // one constructed machine + workload

    /** Execute the workload once; inject iff @p runSeed != nullptr. */
    RunResult execute(const uint64_t *runSeed);

    CampaignConfig config_;
    bool goldenValid_ = false;
    uint64_t goldenSignature_ = 0;
    uint64_t goldenCycles_ = 0;
    std::vector<RunResult> results_;
    sim::StatGroup stats_{"campaign"};
};

} // namespace gp::fault

#endif // GP_FAULT_CAMPAIGN_H
