/**
 * @file
 * Classic segmentation baseline (Multics / B5000 / x86 style; §5.2).
 *
 * Each process owns a segment table; every reference presents
 * (segment, offset) and the segment descriptor must be consulted
 * *before* the cache to form the linear address — one extra serialized
 * add on every access, plus a descriptor-cache miss cost when the
 * descriptor is not resident. The per-process table means a domain
 * switch invalidates the descriptor cache. This is the two-level
 * translation the paper contrasts with guarded pointers' zero-level
 * (on hit) scheme.
 */

#ifndef GP_BASELINES_SEGMENTATION_SCHEME_H
#define GP_BASELINES_SEGMENTATION_SCHEME_H

#include "baselines/mem_path.h"
#include "baselines/scheme.h"
#include "mem/tlb.h"

namespace gp::baselines {

/** Per-process segment table with a small descriptor cache. */
class SegmentationScheme : public Scheme
{
  public:
    SegmentationScheme(const mem::CacheConfig &cache_config,
                       size_t tlb_entries, size_t descriptor_cache,
                       const Costs &costs)
        : path_(cache_config, tlb_entries, costs),
          descCache_(descriptor_cache),
          costs_(costs)
    {
    }

    std::string_view name() const override { return "segmentation"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;

        // Level 1: segment descriptor lookup + base add, serialized
        // before the cache index is known.
        uint64_t cycles = 1;
        stats_.counter("segment_adds")++;
        if (!descCache_.lookup(ref.segment,
                               uint16_t(ref.domain + 1))) {
            cycles += costs_.descLoad;
            stats_.counter("descriptor_misses")++;
            descCache_.insert(ref.segment, ref.segment,
                              uint16_t(ref.domain + 1));
        }

        // Level 2: paging under the linear address.
        return cycles + path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        stats_.counter("switches")++;
        // New segment table: descriptor cache contents are stale.
        // (Entries are domain-tagged here, so correctness would allow
        // keeping them; real machines reload descriptors — charge the
        // fixed table-swap cost and let per-domain tagging model the
        // refill misses.)
        stats_.counter("switch_cycles") += costs_.switchFixed;
        return costs_.switchFixed;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    VirtualCachePath path_;
    mem::Tlb descCache_; //!< (domain, segment) -> descriptor
    Costs costs_;
    sim::StatGroup stats_{"segmentation"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_SEGMENTATION_SCHEME_H
