/**
 * @file
 * Guarded-pointer scheme model (the paper's proposal).
 *
 * All domains share one virtual space: cache lines and TLB entries are
 * untagged and shared. The permission check happens in the execution
 * unit from the pointer itself in parallel with issue, so it adds zero
 * cycles and zero table state, and a protection-domain switch costs
 * exactly nothing.
 */

#ifndef GP_BASELINES_GUARDED_SCHEME_H
#define GP_BASELINES_GUARDED_SCHEME_H

#include "baselines/mem_path.h"
#include "baselines/scheme.h"

namespace gp::baselines {

/** The paper's scheme: single space, check-in-pointer, 0-cycle switch. */
class GuardedScheme : public Scheme
{
  public:
    GuardedScheme(const mem::CacheConfig &cache_config,
                  size_t tlb_entries, const Costs &costs)
        : path_(cache_config, tlb_entries, costs)
    {
    }

    std::string_view name() const override { return "guarded-ptr"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        // Permission + bounds check: in-pointer, pre-issue, 0 cycles.
        stats_.counter("refs")++;
        return path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        // No translation or protection state is per-process: switching
        // threads from different domains touches nothing.
        stats_.counter("switches")++;
        return 0;
    }

    sim::StatGroup &stats() override { return stats_; }
    VirtualCachePath &path() { return path_; }

  private:
    VirtualCachePath path_;
    sim::StatGroup stats_{"guarded"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_GUARDED_SCHEME_H
