/**
 * @file
 * Page-based baselines (paper §5.1, "Separate Address Spaces").
 *
 * PagedFlushScheme: per-process address spaces with no ASIDs. The
 * virtually-addressed cache and the TLB hold entries of exactly one
 * process, so every protection-domain switch purges both — the classic
 * expensive context switch.
 *
 * PagedAsidScheme: ASIDs on TLB entries and cache lines avoid the
 * flush, but the same shared data referenced from two spaces occupies
 * two cache lines and two TLB entries (synonyms — no in-cache sharing,
 * §5.1), and each sharing process needs its own page-table entries
 * (the n x m blowup), which this model counts.
 */

#ifndef GP_BASELINES_PAGED_SCHEMES_H
#define GP_BASELINES_PAGED_SCHEMES_H

#include <unordered_set>

#include "baselines/mem_path.h"
#include "baselines/scheme.h"

namespace gp::baselines {

/** Separate address spaces, no ASIDs: flush TLB + cache per switch. */
class PagedFlushScheme : public Scheme
{
  public:
    PagedFlushScheme(const mem::CacheConfig &cache_config,
                     size_t tlb_entries, const Costs &costs)
        : path_(cache_config, tlb_entries, costs)
    {
    }

    std::string_view name() const override { return "paged-flush"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;
        return path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        stats_.counter("switches")++;
        const uint64_t cycles = path_.flushCache() + path_.flushTlb();
        stats_.counter("switch_cycles") += cycles;
        return cycles;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    VirtualCachePath path_;
    sim::StatGroup stats_{"paged_flush"};
};

/** Separate address spaces with ASIDs: cheap switch, no sharing. */
class PagedAsidScheme : public Scheme
{
  public:
    PagedAsidScheme(const mem::CacheConfig &cache_config,
                    size_t tlb_entries, const Costs &costs)
        : path_(cache_config, tlb_entries, costs), costs_(costs)
    {
    }

    std::string_view name() const override { return "paged-asid"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;
        // ASID tags make every domain's view private: shared data is
        // a synonym and occupies one line/TLB entry *per domain*.
        const uint16_t asid = uint16_t(ref.domain + 1);
        countPte(ref, asid);
        return path_.access(ref.vaddr, ref.isWrite, asid, asid);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        stats_.counter("switches")++;
        // Swap the page-table base; nothing is flushed.
        stats_.counter("switch_cycles") += costs_.switchFixed;
        return costs_.switchFixed;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    /** Count distinct (asid, vpn) pairs = page-table entries needed. */
    void
    countPte(const sim::MemRef &ref, uint16_t asid)
    {
        const uint64_t key =
            (ref.vaddr >> path_.pageShift()) * 65536 + asid;
        if (pte_.insert(key).second) {
            stats_.counter("pte_entries")++;
            if (ref.isShared)
                stats_.counter("pte_entries_shared")++;
        }
    }

    VirtualCachePath path_;
    Costs costs_;
    std::unordered_set<uint64_t> pte_;
    sim::StatGroup stats_{"paged_asid"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_PAGED_SCHEMES_H
