/**
 * @file
 * HP PA-RISC page-group baseline (paper §5.1).
 *
 * TLB entries carry a page-group identifier checked against four
 * protection-ID registers (plus one implicit global group) on every
 * reference. Switches are cheap — reload four registers — but a domain
 * that actively touches more than four private page groups thrashes:
 * each miss traps to the OS to rotate a PID register. The model also
 * counts the per-access TLB probe the scheme forces even on cache
 * hits, which is what makes it "prohibitively expensive for a
 * multi-banked cache" (§5.1).
 */

#ifndef GP_BASELINES_PAGE_GROUP_SCHEME_H
#define GP_BASELINES_PAGE_GROUP_SCHEME_H

#include <unordered_map>
#include <vector>

#include "baselines/mem_path.h"
#include "baselines/scheme.h"

namespace gp::baselines {

/** PA-RISC-style page groups with 4 PID registers per domain. */
class PageGroupScheme : public Scheme
{
  public:
    PageGroupScheme(const mem::CacheConfig &cache_config,
                    size_t tlb_entries, const Costs &costs,
                    unsigned pid_registers = 4)
        : path_(cache_config, tlb_entries, costs),
          costs_(costs),
          pidRegs_(pid_registers)
    {
    }

    std::string_view name() const override { return "page-group"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;
        // The page-group check needs the TLB's group id on *every*
        // reference — a probe (and 4 comparators) per access, per bank.
        stats_.counter("tlb_probes")++;

        uint64_t cycles = 0;
        if (!ref.isShared) { // shared segments sit in the global group
            auto &regs = pids_[ref.domain];
            bool hit = false;
            for (size_t i = 0; i < regs.size(); ++i) {
                if (regs[i] == ref.segment) {
                    // LRU: move to front.
                    for (size_t j = i; j > 0; --j)
                        regs[j] = regs[j - 1];
                    regs[0] = ref.segment;
                    hit = true;
                    break;
                }
            }
            if (!hit) {
                // Trap to the OS to install the group id.
                cycles += costs_.pidTrap;
                stats_.counter("pid_traps")++;
                if (regs.size() < pidRegs_)
                    regs.insert(regs.begin(), ref.segment);
                else {
                    regs.pop_back();
                    regs.insert(regs.begin(), ref.segment);
                }
            }
        }

        return cycles + path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t to) override
    {
        stats_.counter("switches")++;
        // Reload the four PID registers (cheap, per the paper).
        (void)to;
        const uint64_t cycles = pidRegs_ * 2;
        stats_.counter("switch_cycles") += cycles;
        return cycles;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    VirtualCachePath path_;
    Costs costs_;
    unsigned pidRegs_;
    std::unordered_map<uint32_t, std::vector<uint32_t>> pids_;
    sim::StatGroup stats_{"page_group"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_PAGE_GROUP_SCHEME_H
