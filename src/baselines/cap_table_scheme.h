/**
 * @file
 * Capability object-table baseline (IBM System/38, Intel 432; §5.3).
 *
 * Traditional capability hardware keeps capabilities as indices into a
 * protected object table: every reference first resolves capability ->
 * object descriptor (virtual base), then virtual -> physical. Even
 * with a capability cache the first level adds a serialized cycle per
 * access, and a miss costs a protected table load. The paper's claim:
 * this mandatory indirection is why traditional capabilities lost —
 * guarded pointers encode the descriptor in the pointer and skip the
 * level entirely.
 */

#ifndef GP_BASELINES_CAP_TABLE_SCHEME_H
#define GP_BASELINES_CAP_TABLE_SCHEME_H

#include "baselines/mem_path.h"
#include "baselines/scheme.h"
#include "mem/tlb.h"

namespace gp::baselines {

/** Two-level capability translation with a capability cache. */
class CapTableScheme : public Scheme
{
  public:
    CapTableScheme(const mem::CacheConfig &cache_config,
                   size_t tlb_entries, size_t cap_cache_entries,
                   const Costs &costs)
        : path_(cache_config, tlb_entries, costs),
          capCache_(cap_cache_entries),
          costs_(costs)
    {
    }

    std::string_view name() const override { return "cap-table"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;

        // Level 1: capability -> object descriptor, serialized before
        // the memory access proper.
        uint64_t cycles = 1;
        stats_.counter("cap_lookups")++;
        if (!capCache_.lookup(ref.segment)) {
            cycles += costs_.capLoad;
            stats_.counter("cap_cache_misses")++;
            capCache_.insert(ref.segment, ref.segment);
        }

        // Level 2: ordinary translation; the object table is global,
        // so cache and TLB are shared (capability systems do share).
        return cycles + path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        // Like guarded pointers, possession-based: nothing to swap.
        stats_.counter("switches")++;
        return 0;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    VirtualCachePath path_;
    mem::Tlb capCache_; //!< capability id -> descriptor
    Costs costs_;
    sim::StatGroup stats_{"cap_table"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_CAP_TABLE_SCHEME_H
