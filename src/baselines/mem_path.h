/**
 * @file
 * Shared cache+TLB datapath used by the baseline scheme models.
 *
 * A virtually-addressed cache with translation performed only on a
 * miss, additive cycle accounting, and optional ASID tagging on both
 * structures. Translation is modelled as identity (vpn -> vpn): only
 * the *timing* of translation matters to the §5 comparisons, not the
 * frame numbers.
 */

#ifndef GP_BASELINES_MEM_PATH_H
#define GP_BASELINES_MEM_PATH_H

#include <cstdint>

#include "baselines/scheme.h"
#include "mem/cache.h"
#include "mem/tlb.h"

namespace gp::baselines {

/** Virtual cache + TLB with translate-on-miss semantics. */
class VirtualCachePath
{
  public:
    VirtualCachePath(const mem::CacheConfig &cache_config,
                     size_t tlb_entries, const Costs &costs,
                     unsigned page_shift = 12)
        : cache_(cache_config),
          tlb_(tlb_entries),
          costs_(costs),
          pageShift_(page_shift)
    {
    }

    /**
     * One reference. @return cycles consumed.
     * @param cache_asid ASID tag on cache lines (0 = shared lines)
     * @param tlb_asid   ASID tag on TLB entries (0 = shared entries)
     */
    uint64_t
    access(uint64_t vaddr, bool is_write, uint16_t cache_asid = 0,
           uint16_t tlb_asid = 0)
    {
        uint64_t cycles = costs_.cacheHit;
        if (cache_.probe(vaddr, cache_asid)) {
            cache_.access(vaddr, is_write, cache_asid);
            return cycles;
        }
        // Miss: translate, then fill over the external interface.
        const uint64_t vpn = vaddr >> pageShift_;
        cycles += 1; // TLB lookup on the miss path
        if (!tlb_.lookup(vpn, tlb_asid)) {
            cycles += costs_.tlbWalk;
            tlb_.insert(vpn, vpn, tlb_asid);
        }
        const mem::CacheResult cr =
            cache_.access(vaddr, is_write, cache_asid);
        cycles += costs_.extMem;
        if (cr.writeback)
            cycles += costs_.writeback;
        return cycles;
    }

    /** Purge the cache; @return cycles (writebacks dominate). */
    uint64_t
    flushCache()
    {
        const unsigned dirty = cache_.flushAll();
        return costs_.switchFixed + uint64_t(dirty) * costs_.writeback;
    }

    /** Flush all TLB entries; @return cycles. */
    uint64_t
    flushTlb()
    {
        tlb_.flushAll();
        return costs_.switchFixed;
    }

    mem::Cache &cache() { return cache_; }
    mem::Tlb &tlb() { return tlb_; }
    unsigned pageShift() const { return pageShift_; }
    const Costs &costs() const { return costs_; }

  private:
    mem::Cache cache_;
    mem::Tlb tlb_;
    Costs costs_;
    unsigned pageShift_;
};

} // namespace gp::baselines

#endif // GP_BASELINES_MEM_PATH_H
