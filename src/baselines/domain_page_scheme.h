/**
 * @file
 * Domain-Page / PLB baseline (Koldinger et al., ASPLOS V; paper §5.1).
 *
 * A single shared address space separates protection from translation:
 * the page table and TLB are global, and an independent per-domain
 * protection table is cached in a Protection Lookaside Buffer probed in
 * parallel with the cache on *every* access. Switches are free (PLB
 * entries are domain-tagged), but the PLB is a real hardware structure
 * that must be replicated or multiported for a multi-banked cache —
 * the cost guarded pointers eliminate. The model counts PLB probes,
 * misses (protection-table walks), and capacity pressure as the number
 * of domains grows.
 */

#ifndef GP_BASELINES_DOMAIN_PAGE_SCHEME_H
#define GP_BASELINES_DOMAIN_PAGE_SCHEME_H

#include "baselines/mem_path.h"
#include "baselines/scheme.h"
#include "mem/tlb.h"

namespace gp::baselines {

/** Single address space + per-domain protection table with a PLB. */
class DomainPageScheme : public Scheme
{
  public:
    DomainPageScheme(const mem::CacheConfig &cache_config,
                     size_t tlb_entries, size_t plb_entries,
                     const Costs &costs)
        : path_(cache_config, tlb_entries, costs),
          plb_(plb_entries),
          costs_(costs)
    {
    }

    std::string_view name() const override { return "domain-page"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;
        stats_.counter("plb_probes")++;

        // PLB probed in parallel with the (shared) virtual cache. A
        // hit adds no latency; a miss walks the domain's protection
        // table in memory.
        uint64_t cycles = 0;
        const uint64_t vpn = ref.vaddr >> path_.pageShift();
        if (!plb_.lookup(vpn, uint16_t(ref.domain + 1))) {
            cycles += costs_.plbWalk;
            stats_.counter("plb_miss_cycles") += costs_.plbWalk;
            plb_.insert(vpn, vpn, uint16_t(ref.domain + 1));
        }

        // Cache and TLB are shared across domains (single space).
        return cycles + path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        // PLB entries are domain-tagged; nothing to flush.
        stats_.counter("switches")++;
        return 0;
    }

    sim::StatGroup &stats() override { return stats_; }
    mem::Tlb &plb() { return plb_; }

  private:
    VirtualCachePath path_;
    mem::Tlb plb_; //!< reused TLB structure as the PLB
    Costs costs_;
    sim::StatGroup stats_{"domain_page"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_DOMAIN_PAGE_SCHEME_H
