/**
 * @file
 * Common interface for protection-scheme timing models (paper §5).
 *
 * Every scheme the paper compares against is modelled over the same
 * cache/TLB building blocks with the same cycle costs, so differences
 * in the benches isolate the *protection architecture*: where
 * translation happens, what must be flushed on a protection-domain
 * switch, and what per-access machinery (PLB probe, segment add,
 * capability indirection, software checks) each scheme inserts.
 *
 * These are trace-driven models: they consume sim::MemRef streams from
 * the workload generator. The cycle-accurate ISA machine handles the
 * experiments that need real instruction sequences (Figs. 3-5).
 */

#ifndef GP_BASELINES_SCHEME_H
#define GP_BASELINES_SCHEME_H

#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/stats.h"
#include "sim/workload.h"

namespace gp::baselines {

/** Cycle costs shared by every scheme (kept equal for fairness). */
struct Costs
{
    uint64_t cacheHit = 1;   //!< cache bank access
    uint64_t tlbWalk = 20;   //!< page-table walk on TLB miss
    uint64_t extMem = 8;     //!< line fill from external memory
    uint64_t writeback = 4;  //!< dirty-victim writeback
    uint64_t plbWalk = 15;   //!< protection-table walk on PLB miss
    uint64_t descLoad = 15;  //!< segment-descriptor load from memory
    uint64_t capLoad = 15;   //!< capability/object-table load
    uint64_t pidTrap = 30;   //!< OS trap to reload a PA-RISC PID reg
    uint64_t switchFixed = 5; //!< fixed cost to swap translation roots
};

/** Abstract per-reference protection/translation model. */
class Scheme
{
  public:
    virtual ~Scheme() = default;

    /** Short stable name used in bench output. */
    virtual std::string_view name() const = 0;

    /** Process one reference; @return cycles it consumed. */
    virtual uint64_t access(const sim::MemRef &ref) = 0;

    /**
     * Switch protection domains; @return cycles consumed. The runner
     * calls this whenever consecutive trace references come from
     * different domains — i.e. at every thread interleave point, the
     * regime a cycle-by-cycle multithreaded machine lives in.
     */
    virtual uint64_t contextSwitch(uint32_t from, uint32_t to) = 0;

    /** Scheme-specific counters for the benches. */
    virtual sim::StatGroup &stats() = 0;
};

} // namespace gp::baselines

#endif // GP_BASELINES_SCHEME_H
