/**
 * @file
 * Software fault isolation baseline (Wahbe et al., SOSP '93; §5.4).
 *
 * Protection by instrumentation: every load/store that the compiler
 * cannot statically prove safe is preceded by check (or sandboxing)
 * instructions. The hardware path is identical to guarded pointers —
 * shared virtual cache, translate on miss, free switches — the entire
 * difference is the per-reference instruction tax, controlled by the
 * fraction of references provable at compile time.
 */

#ifndef GP_BASELINES_SFI_SCHEME_H
#define GP_BASELINES_SFI_SCHEME_H

#include "baselines/mem_path.h"
#include "baselines/scheme.h"
#include "sim/rng.h"

namespace gp::baselines {

/** Sandboxing / SFI cost model. */
class SfiScheme : public Scheme
{
  public:
    /**
     * @param check_instrs  instructions inserted per unproven access
     *                      (Wahbe reports 2 for sandboxing stores,
     *                      ~4 for full checking)
     * @param static_safe   fraction of references proven safe
     */
    SfiScheme(const mem::CacheConfig &cache_config, size_t tlb_entries,
              const Costs &costs, unsigned check_instrs = 4,
              double static_safe = 0.5, uint64_t seed = 7)
        : path_(cache_config, tlb_entries, costs),
          checkInstrs_(check_instrs),
          staticSafe_(static_safe),
          rng_(seed)
    {
    }

    std::string_view name() const override { return "sfi"; }

    uint64_t
    access(const sim::MemRef &ref) override
    {
        stats_.counter("refs")++;
        uint64_t cycles = 0;
        if (!rng_.chance(staticSafe_)) {
            cycles += checkInstrs_;
            stats_.counter("check_instructions") += checkInstrs_;
        }
        return cycles + path_.access(ref.vaddr, ref.isWrite);
    }

    uint64_t
    contextSwitch(uint32_t, uint32_t) override
    {
        // Fault domains share the address space; switching is free.
        stats_.counter("switches")++;
        return 0;
    }

    sim::StatGroup &stats() override { return stats_; }

  private:
    VirtualCachePath path_;
    unsigned checkInstrs_;
    double staticSafe_;
    sim::Rng rng_;
    sim::StatGroup stats_{"sfi"};
};

} // namespace gp::baselines

#endif // GP_BASELINES_SFI_SCHEME_H
