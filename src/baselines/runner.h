/**
 * @file
 * Trace runner and scheme factory for the §5 comparison benches.
 *
 * Feeds identical workload traces to each protection scheme and
 * accounts access cycles and context-switch cycles separately, so the
 * benches can report both per-reference cost and switch cost — the two
 * axes of the paper's argument.
 */

#ifndef GP_BASELINES_RUNNER_H
#define GP_BASELINES_RUNNER_H

#include <memory>
#include <string>
#include <vector>

#include "baselines/scheme.h"
#include "mem/cache.h"
#include "sim/workload.h"

namespace gp::baselines {

/** Aggregate result of replaying a trace through one scheme. */
struct RunResult
{
    std::string scheme;
    uint64_t refs = 0;
    uint64_t switches = 0;
    uint64_t accessCycles = 0;
    uint64_t switchCycles = 0;

    uint64_t
    totalCycles() const
    {
        return accessCycles + switchCycles;
    }

    /** Mean cycles per reference including switch overhead. */
    double
    cyclesPerRef() const
    {
        return refs == 0 ? 0.0
                         : double(totalCycles()) / double(refs);
    }

    /** Mean cycles per protection-domain switch. */
    double
    cyclesPerSwitch() const
    {
        return switches == 0 ? 0.0
                             : double(switchCycles) / double(switches);
    }
};

/** Replay a pre-generated trace through a scheme. */
RunResult runTrace(Scheme &scheme,
                   const std::vector<sim::MemRef> &trace);

/** Generate-and-replay n references. */
RunResult runTrace(Scheme &scheme, sim::TraceGenerator &gen,
                   uint64_t n);

/** All schemes the R-series benches compare. */
enum class SchemeKind
{
    Guarded,
    PagedFlush,
    PagedAsid,
    DomainPage,
    PageGroup,
    Segmentation,
    CapTable,
    Sfi,
};

/** Construct a scheme with uniform hardware parameters. */
std::unique_ptr<Scheme> makeScheme(SchemeKind kind,
                                   const mem::CacheConfig &cache,
                                   size_t tlb_entries,
                                   const Costs &costs);

/** Every SchemeKind, in presentation order. */
const std::vector<SchemeKind> &allSchemeKinds();

/** Stable display name without constructing the scheme. */
std::string_view schemeName(SchemeKind kind);

} // namespace gp::baselines

#endif // GP_BASELINES_RUNNER_H
