#include "baselines/runner.h"

#include "baselines/cap_table_scheme.h"
#include "baselines/domain_page_scheme.h"
#include "baselines/guarded_scheme.h"
#include "baselines/page_group_scheme.h"
#include "baselines/paged_schemes.h"
#include "baselines/segmentation_scheme.h"
#include "baselines/sfi_scheme.h"
#include "sim/log.h"

namespace gp::baselines {

RunResult
runTrace(Scheme &scheme, const std::vector<sim::MemRef> &trace)
{
    RunResult result;
    result.scheme = scheme.name();

    bool have_domain = false;
    uint32_t domain = 0;
    for (const sim::MemRef &ref : trace) {
        if (have_domain && ref.domain != domain) {
            result.switchCycles +=
                scheme.contextSwitch(domain, ref.domain);
            result.switches++;
        }
        domain = ref.domain;
        have_domain = true;
        result.accessCycles += scheme.access(ref);
        result.refs++;
    }
    return result;
}

RunResult
runTrace(Scheme &scheme, sim::TraceGenerator &gen, uint64_t n)
{
    return runTrace(scheme, gen.generate(n));
}

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind, const mem::CacheConfig &cache,
           size_t tlb_entries, const Costs &costs)
{
    switch (kind) {
      case SchemeKind::Guarded:
        return std::make_unique<GuardedScheme>(cache, tlb_entries,
                                               costs);
      case SchemeKind::PagedFlush:
        return std::make_unique<PagedFlushScheme>(cache, tlb_entries,
                                                  costs);
      case SchemeKind::PagedAsid:
        return std::make_unique<PagedAsidScheme>(cache, tlb_entries,
                                                 costs);
      case SchemeKind::DomainPage:
        return std::make_unique<DomainPageScheme>(cache, tlb_entries,
                                                  /*plb=*/tlb_entries,
                                                  costs);
      case SchemeKind::PageGroup:
        return std::make_unique<PageGroupScheme>(cache, tlb_entries,
                                                 costs);
      case SchemeKind::Segmentation:
        return std::make_unique<SegmentationScheme>(
            cache, tlb_entries, /*descriptor_cache=*/8, costs);
      case SchemeKind::CapTable:
        return std::make_unique<CapTableScheme>(
            cache, tlb_entries, /*cap_cache=*/64, costs);
      case SchemeKind::Sfi:
        return std::make_unique<SfiScheme>(cache, tlb_entries, costs);
    }
    sim::panic("makeScheme: unknown kind");
}

const std::vector<SchemeKind> &
allSchemeKinds()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::Guarded,      SchemeKind::PagedFlush,
        SchemeKind::PagedAsid,    SchemeKind::DomainPage,
        SchemeKind::PageGroup,    SchemeKind::Segmentation,
        SchemeKind::CapTable,     SchemeKind::Sfi,
    };
    return kinds;
}

std::string_view
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Guarded:
        return "guarded-ptr";
      case SchemeKind::PagedFlush:
        return "paged-flush";
      case SchemeKind::PagedAsid:
        return "paged-asid";
      case SchemeKind::DomainPage:
        return "domain-page";
      case SchemeKind::PageGroup:
        return "page-group";
      case SchemeKind::Segmentation:
        return "segmentation";
      case SchemeKind::CapTable:
        return "cap-table";
      case SchemeKind::Sfi:
        return "sfi";
    }
    return "unknown";
}

} // namespace gp::baselines
