#include "mem/tlb.h"

#include <iterator>

#include "sim/log.h"

namespace gp::mem {

Tlb::Tlb(size_t entries) : capacity_(entries)
{
    if (entries == 0)
        sim::fatal("TLB capacity must be nonzero");
    hits_ = &stats_.counter("hits");
    misses_ = &stats_.counter("misses");
    evictions_ = &stats_.counter("evictions");
    invalidations_ = &stats_.counter("invalidations");
    injectedCorruptions_ = &stats_.counter("injected_corruptions");
    injectedInvalidations_ = &stats_.counter("injected_invalidations");
    fullFlushes_ = &stats_.counter("full_flushes");
    asidFlushes_ = &stats_.counter("asid_flushes");
    entriesFlushed_ = &stats_.counter("entries_flushed");
}

std::optional<uint64_t>
Tlb::lookup(uint64_t vpn, uint16_t asid)
{
    auto it = map_.find(Key{vpn, asid});
    if (it == map_.end()) {
        (*misses_)++;
        return std::nullopt;
    }
    (*hits_)++;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->pfn;
}

void
Tlb::insert(uint64_t vpn, uint64_t pfn, uint16_t asid)
{
    const Key key{vpn, asid};
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->pfn = pfn;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        const Entry &victim = lru_.back();
        map_.erase(victim.key);
        lru_.pop_back();
        (*evictions_)++;
    }
    lru_.push_front(Entry{key, pfn});
    map_[key] = lru_.begin();
}

void
Tlb::invalidate(uint64_t vpn, uint16_t asid)
{
    auto it = map_.find(Key{vpn, asid});
    if (it == map_.end())
        return;
    lru_.erase(it->second);
    map_.erase(it);
    (*invalidations_)++;
}

bool
Tlb::corruptRandom(sim::Rng &rng)
{
    if (lru_.empty())
        return false;
    auto it = lru_.begin();
    std::advance(it, rng.below(lru_.size()));
    // Frame numbers are small in practice; flip among the low 20
    // bits so the corrupted translation stays inside the modelled
    // physical space yet names the wrong frame.
    it->pfn ^= uint64_t(1) << rng.below(20);
    (*injectedCorruptions_)++;
    return true;
}

bool
Tlb::invalidateRandom(sim::Rng &rng)
{
    if (lru_.empty())
        return false;
    auto it = lru_.begin();
    std::advance(it, rng.below(lru_.size()));
    map_.erase(it->key);
    lru_.erase(it);
    (*injectedInvalidations_)++;
    return true;
}

void
Tlb::flushAll()
{
    (*fullFlushes_)++;
    (*entriesFlushed_) += map_.size();
    lru_.clear();
    map_.clear();
}

void
Tlb::flushAsid(uint16_t asid)
{
    (*asidFlushes_)++;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->key.asid == asid) {
            (*entriesFlushed_)++;
            map_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace gp::mem
