/**
 * @file
 * The guarded-pointer memory system façade.
 *
 * Ties together the banked virtually-addressed cache, the global LTLB
 * and page table, and tagged physical memory, and implements the access
 * sequence of the paper:
 *
 *   1. the permission/bounds check happens before issue, from the
 *      pointer alone, costing no table lookups (§2.2);
 *   2. the cache is probed with the *virtual* address (§3);
 *   3. translation is performed only on a cache miss (§3, §4.1).
 *
 * Timing is cycle-approximate and models the two contention points of
 * the MAP memory system: the per-bank port (one access per cycle per
 * bank) and the single external memory interface.
 */

#ifndef GP_MEM_MEMORY_SYSTEM_H
#define GP_MEM_MEMORY_SYSTEM_H

#include <cstdint>

#include "gp/ops.h"
#include "gp/word.h"
#include "mem/cache.h"
#include "mem/ecc.h"
#include "mem/memory_port.h"
#include "mem/page_table.h"
#include "mem/tagged_memory.h"
#include "mem/tlb.h"
#include "sim/stats.h"

namespace gp::mem {

/** Cycle costs of the memory-system components. */
struct MemTiming
{
    uint64_t cacheHit = 1;     //!< bank access (hit or miss probe)
    uint64_t tlbLookup = 1;    //!< LTLB lookup on the miss path
    uint64_t ptWalk = 20;      //!< page-table walk on LTLB miss
    uint64_t extMemAccess = 8; //!< line fill over the external interface
    uint64_t writeback = 4;    //!< dirty-victim writeback on the same port
};

/** Full configuration of a memory system instance. */
struct MemConfig
{
    CacheConfig cache;
    size_t tlbEntries = 64;
    uint64_t pageBytes = 4096;
    MemTiming timing;

    /** Hardening code over every stored 65-bit word (off by default
     * so baseline timing/storage is unchanged). */
    EccMode ecc = EccMode::None;
    /** Check/correct latency charged on the external-interface path
     * per filled line when ecc != None. */
    uint64_t eccCycles = 1;
    /** Extra page-walk attempts after a transient walk failure; 0
     * means a transient failure is immediately uncorrectable. */
    unsigned walkRetries = 0;
};

/** Outcome of a timed memory access. */
struct MemAccess
{
    Fault fault = Fault::None;
    bool cacheHit = false;
    /** The access will never complete (e.g. a NoC request vanished
     * with retransmission disabled); the issuing thread must stall
     * forever and only a watchdog can reclaim it. */
    bool hang = false;
    /** Split transaction under the sharded mesh engine: the access
     * crosses a shard boundary and was posted to the epoch exchange
     * instead of executing. No result fields are valid; the issuing
     * thread parks until Machine::completeDeferred() delivers the
     * real outcome (keyed by @ref ticket) at the epoch barrier. */
    bool deferred = false;
    /** Identifies the posted exchange entry when deferred is set. */
    uint64_t ticket = 0;
    uint64_t startCycle = 0;    //!< when the access began service
    uint64_t completeCycle = 0; //!< when the result is available
    Word data;                  //!< loaded value (loads only)

    uint64_t
    latency() const
    {
        return completeCycle - startCycle;
    }
};

/** The complete guarded-pointer memory hierarchy. */
class MemorySystem : public MemoryPort
{
  public:
    explicit MemorySystem(const MemConfig &config = MemConfig{});

    /**
     * Timed load through a guarded pointer. The pre-issue check is the
     * pointer check only; a fault costs zero memory cycles.
     * @param ptr   guarded pointer naming the address
     * @param size  1/2/4/8 bytes, naturally aligned
     * @param now   current cycle, for bank/port contention
     * @param elide_check skip the guarded-pointer access check under a
     *        verifier proof (translation/ECC still run)
     */
    MemAccess load(Word ptr, unsigned size, uint64_t now = 0,
                   bool elide_check = false);

    /** Timed store through a guarded pointer. An 8-byte store of a
     * tagged word stores the pointer intact; smaller stores clear the
     * destination word's tag. */
    MemAccess store(Word ptr, Word value, unsigned size,
                    uint64_t now = 0, bool elide_check = false);

    /** Timed instruction fetch (requires execute permission);
     * elide_check skips the per-fetch pointer check under a caller's
     * span proof (superblock entry verification). */
    MemAccess fetch(Word ip, uint64_t now = 0,
                    bool elide_check = false);

    /**
     * Revoke or relocate a segment by unmapping its pages: removes
     * translations, blocks demand re-allocation, invalidates TLB
     * entries and flushes resident cache lines (§4.3). Dirty lines in
     * the revoked range are written back over the external interface
     * (charged timing.writeback each, occupying the port from @p now)
     * before their translation disappears — never silently discarded,
     * so a reinstated segment observes its latest stores.
     * @param now cycle the revocation is issued (port occupancy).
     */
    void unmapRange(uint64_t base, uint64_t bytes, uint64_t now = 0);

    /** Re-enable a previously unmapped range (relocation complete). */
    void mapRange(uint64_t base, uint64_t bytes);

    /** Untimed functional word read (kernel/loader/debugger use). */
    Word peekWord(uint64_t vaddr);

    /**
     * Untimed word read that never demand-allocates: returns nullopt
     * for unmapped pages. Used by the address-space garbage collector
     * so scanning does not populate page tables.
     */
    std::optional<Word> tryPeekWord(uint64_t vaddr) const;

    /** Untimed functional word write (kernel/loader/debugger use). */
    void pokeWord(uint64_t vaddr, Word w);

    /** @return bank index that would service vaddr (for arbitration). */
    unsigned bankOf(uint64_t vaddr) const { return cache_.bankOf(vaddr); }

    // MemoryPort interface (delegates to the named methods above).
    MemAccess
    portLoad(Word ptr, unsigned size, uint64_t now,
             bool elide_check = false) override
    {
        return load(ptr, size, now, elide_check);
    }
    MemAccess
    portStore(Word ptr, Word value, unsigned size, uint64_t now,
              bool elide_check = false) override
    {
        return store(ptr, value, size, now, elide_check);
    }
    MemAccess
    portFetch(Word ip, uint64_t now, bool elide_check = false) override
    {
        return fetch(ip, now, elide_check);
    }
    void
    portPoke(uint64_t vaddr, Word w) override
    {
        pokeWord(vaddr, w);
    }
    Word
    portPeek(uint64_t vaddr) override
    {
        return peekWord(vaddr);
    }

    PageTable &pageTable() { return pageTable_; }
    Tlb &tlb() { return tlb_; }
    Cache &cache() { return cache_; }
    TaggedMemory &phys() { return phys_; }
    const MemTiming &timing() const { return config_.timing; }
    sim::StatGroup &stats() { return stats_; }

  private:
    /**
     * Common timed path for all access kinds; on success fills in the
     * physical address of the data. elide_check skips the pre-issue
     * guarded-pointer check (verifier-proven accesses only).
     */
    MemAccess timedAccess(Word ptr, Access kind, unsigned size,
                          uint64_t now, uint64_t &paddr,
                          bool elide_check = false);

    /**
     * Read one stored word through the active ECC path: counts
     * corrections, and converts a detected-uncorrectable error into
     * Fault::MemoryIntegrity on @p acc.
     */
    Word checkedRead(uint64_t paddr, MemAccess &acc);

    MemConfig config_;
    TaggedMemory phys_;
    PageTable pageTable_;
    Tlb tlb_;
    Cache cache_;
    std::vector<uint64_t> bankBusyUntil_;
    uint64_t extBusyUntil_ = 0;
    sim::StatGroup stats_{"memsys"};

    // Cached stat handles (stable for the life of stats_), so the
    // per-access hot path pays an increment, not a map lookup
    // (docs/OBSERVABILITY.md: never counter("...") per event).
    sim::Histogram *missLatency_ = nullptr;
    sim::Histogram *conflictWait_ = nullptr;
    std::vector<sim::Histogram *> bankConflictWait_; //!< per bank
    sim::Counter *writebacks_ = nullptr;
    sim::Counter *hits_ = nullptr;
    sim::Counter *misses_ = nullptr;
    sim::Counter *loads_ = nullptr;
    sim::Counter *stores_ = nullptr;
    sim::Counter *fetches_ = nullptr;
    sim::Counter *accessFaults_ = nullptr;
    sim::Counter *bankConflictStalls_ = nullptr;
    sim::Counter *extPortStalls_ = nullptr;
    sim::Counter *unmappedFaults_ = nullptr;
    sim::Counter *walkTransients_ = nullptr;
    sim::Counter *walkRetryExhausted_ = nullptr;
    sim::Counter *eccCorrected_ = nullptr;
    sim::Counter *eccDetected_ = nullptr;
    sim::Counter *invalidationWritebacks_ = nullptr;
};

} // namespace gp::mem

#endif // GP_MEM_MEMORY_SYSTEM_H
