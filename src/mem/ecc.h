/**
 * @file
 * Error-correcting-code support for the 65-bit tagged word.
 *
 * The guarded-pointer security argument rests on the integrity of one
 * tag bit plus the 10-bit permission/length field: a single flipped
 * bit in stored memory can *forge* a capability (paper §4 critique).
 * This module provides the two classic hardening points measured by
 * the fault-injection campaign:
 *
 *  - Parity: one bit over the 65-bit word. Detects any odd number of
 *    flips (delivered as a MemoryIntegrity fault), corrects nothing.
 *  - SECDED: an extended Hamming(73,65) code — 7 Hamming check bits
 *    plus one overall parity bit. Corrects any single-bit error
 *    (including the tag bit and the check bits themselves) and
 *    detects every double-bit error.
 *
 * Cost model: 8 check bits per 65-bit word (12.3% storage) and a
 * configurable check/correct latency charged by the memory system on
 * the external-interface path (MemTiming). With EccMode::None neither
 * storage nor cycles are charged and the codec is never invoked.
 */

#ifndef GP_MEM_ECC_H
#define GP_MEM_ECC_H

#include <cstdint>
#include <string_view>

namespace gp::mem {

/** Hardening level applied to every stored tagged word. */
enum class EccMode : uint8_t
{
    None = 0, //!< raw 65-bit storage, no protection
    Parity,   //!< 1 parity bit: detect odd flips, correct nothing
    Secded,   //!< extended Hamming(73,65): correct 1, detect 2
};

/** @return stable lower-case mode name ("off", "parity", "secded"). */
constexpr std::string_view
eccModeName(EccMode m)
{
    switch (m) {
      case EccMode::None:
        return "off";
      case EccMode::Parity:
        return "parity";
      case EccMode::Secded:
        return "secded";
      default:
        return "unknown";
    }
}

/** Outcome of checking one stored word against its code bits. */
enum class EccStatus : uint8_t
{
    Ok = 0,    //!< code matches, data delivered unchanged
    Corrected, //!< single-bit error corrected (SECDED only)
    Detected,  //!< uncorrectable error detected; data is untrusted
};

/// Number of data bits covered by the code (64 payload + tag).
inline constexpr unsigned kEccDataBits = 65;
/// Number of Hamming check bits for 65 data bits.
inline constexpr unsigned kEccHammingBits = 7;
/// Total stored check bits in SECDED mode (Hamming + overall parity).
inline constexpr unsigned kEccCheckBits = kEccHammingBits + 1;

/**
 * Compute the check byte for a tagged word.
 *
 * @param bits 64-bit payload
 * @param tag  the out-of-band pointer-tag bit
 * @return for Secded: 7 Hamming bits (low) + overall parity (bit 7);
 *         for Parity: 1 parity bit in bit 0; for None: 0.
 */
uint8_t eccEncode(EccMode mode, uint64_t bits, bool tag);

/**
 * Verify (and for SECDED, repair) a stored word in place.
 *
 * @param mode  the code in force when @p check was computed
 * @param bits  payload, corrected in place on a single-bit data error
 * @param tag   tag bit, corrected in place likewise
 * @param check stored check byte, corrected in place on a check-bit
 *              error
 * @return Ok / Corrected / Detected. On Detected the word must not be
 *         consumed architecturally — the memory system raises
 *         Fault::MemoryIntegrity.
 */
EccStatus eccDecode(EccMode mode, uint64_t &bits, bool &tag,
                    uint8_t &check);

} // namespace gp::mem

#endif // GP_MEM_ECC_H
