#include "mem/ecc.h"

namespace gp::mem {

namespace {

/// Highest codeword position: 65 data bits + 7 Hamming bits.
constexpr unsigned kCodeBits = kEccDataBits + kEccHammingBits; // 72

constexpr bool
isPow2(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Codeword position (1-based) of data bit d, skipping parity slots. */
struct PositionMap
{
    uint8_t posOfData[kEccDataBits] = {};
    uint8_t dataOfPos[kCodeBits + 1] = {}; // 0xff = parity/invalid

    constexpr PositionMap()
    {
        for (unsigned p = 0; p <= kCodeBits; ++p)
            dataOfPos[p] = 0xff;
        unsigned d = 0;
        for (unsigned p = 1; p <= kCodeBits && d < kEccDataBits; ++p) {
            if (isPow2(p))
                continue;
            posOfData[d] = uint8_t(p);
            dataOfPos[p] = uint8_t(d);
            d++;
        }
    }
};

constexpr PositionMap kMap{};

inline bool
dataBit(uint64_t bits, bool tag, unsigned d)
{
    return d < 64 ? ((bits >> d) & 1) != 0 : tag;
}

inline void
flipDataBit(uint64_t &bits, bool &tag, unsigned d)
{
    if (d < 64)
        bits ^= uint64_t(1) << d;
    else
        tag = !tag;
}

inline unsigned
parity64(uint64_t v)
{
    return unsigned(__builtin_parityll(v));
}

/** XOR of the positions of all set data bits = the 7 Hamming bits. */
inline unsigned
hammingOf(uint64_t bits, bool tag)
{
    unsigned acc = 0;
    uint64_t rest = bits;
    while (rest) {
        const unsigned d = unsigned(__builtin_ctzll(rest));
        rest &= rest - 1;
        acc ^= kMap.posOfData[d];
    }
    if (tag)
        acc ^= kMap.posOfData[64];
    return acc;
}

} // namespace

uint8_t
eccEncode(EccMode mode, uint64_t bits, bool tag)
{
    switch (mode) {
      case EccMode::None:
        return 0;
      case EccMode::Parity:
        return uint8_t(parity64(bits) ^ (tag ? 1u : 0u));
      case EccMode::Secded: {
        const unsigned ham = hammingOf(bits, tag);
        // Overall parity covers all 72 codeword bits (data + check).
        const unsigned overall = parity64(bits) ^ (tag ? 1u : 0u) ^
                                 parity64(ham);
        return uint8_t(ham | (overall << 7));
      }
    }
    return 0;
}

EccStatus
eccDecode(EccMode mode, uint64_t &bits, bool &tag, uint8_t &check)
{
    switch (mode) {
      case EccMode::None:
        return EccStatus::Ok;

      case EccMode::Parity: {
        const unsigned p = parity64(bits) ^ (tag ? 1u : 0u);
        return p == (check & 1u) ? EccStatus::Ok
                                 : EccStatus::Detected;
      }

      case EccMode::Secded: {
        const unsigned storedHam = check & 0x7f;
        const unsigned storedOverall = (check >> 7) & 1;
        const unsigned syndrome = hammingOf(bits, tag) ^ storedHam;
        // Total parity over the received word including all check
        // bits: 0 for no error or any even number of flips.
        const unsigned totalParity = parity64(bits) ^
                                     (tag ? 1u : 0u) ^
                                     parity64(storedHam) ^
                                     storedOverall;

        if (syndrome == 0 && totalParity == 0)
            return EccStatus::Ok;

        if (totalParity == 1) {
            // Odd flip count: with the SECDED guarantee, one bit.
            if (syndrome == 0) {
                // The overall parity bit itself flipped.
                check ^= uint8_t(1u << 7);
                return EccStatus::Corrected;
            }
            if (syndrome <= kCodeBits && isPow2(syndrome)) {
                // A Hamming check bit flipped; repair the check byte.
                check ^= uint8_t(syndrome);
                return EccStatus::Corrected;
            }
            if (syndrome <= kCodeBits &&
                kMap.dataOfPos[syndrome] != 0xff) {
                flipDataBit(bits, tag, kMap.dataOfPos[syndrome]);
                return EccStatus::Corrected;
            }
            // Syndrome names no valid position: ≥3 flips.
            return EccStatus::Detected;
        }

        // Even flip count with a nonzero syndrome: double error.
        return EccStatus::Detected;
      }
    }
    return EccStatus::Ok;
}

} // namespace gp::mem
