/**
 * @file
 * Functional-only memory port for gpsim --fast.
 *
 * Wraps a MemorySystem's functional substrate (page table + tagged
 * physical memory) and answers every access in zero simulated cycles:
 * no bank arbitration, no cache or TLB state, no external-port
 * occupancy. Architectural behaviour — guarded-pointer checks, fault
 * kinds, translation (including demand allocation and revocation via
 * unmapRange), load/store data semantics, tag propagation — is
 * byte-identical to the timed path; only timing disappears. This is
 * the --fast firewall: the mode exists for fault-free functional
 * campaigns and the differential harness, and must never feed a
 * timing bench or a blessed deterministic signature
 * (docs/ARCHITECTURE.md "Threaded dispatch & superblocks").
 *
 * Deliberately unsupported (the Machine fast-mode ctor enforces):
 * ECC modes (their detection behaviour is timing-path state) and an
 * armed FaultInjector (campaign draws are cycle-ordered).
 */

#ifndef GP_MEM_FAST_PORT_H
#define GP_MEM_FAST_PORT_H

#include "mem/memory_port.h"
#include "mem/memory_system.h"

namespace gp::mem {

/** Zero-latency functional MemoryPort over a MemorySystem's memory. */
class FastPort : public MemoryPort
{
  public:
    explicit FastPort(MemorySystem &mem) : mem_(mem) {}

    MemAccess portLoad(Word ptr, unsigned size, uint64_t now,
                       bool elide_check = false) override;
    MemAccess portStore(Word ptr, Word value, unsigned size,
                        uint64_t now,
                        bool elide_check = false) override;
    MemAccess portFetch(Word ip, uint64_t now,
                        bool elide_check = false) override;
    void portPoke(uint64_t vaddr, Word w) override;
    Word portPeek(uint64_t vaddr) override;

  private:
    /** Check + translate common head; returns false after recording
     * the fault on @p acc. On success *paddr is the physical byte. */
    bool resolve(Word ptr, gp::Access kind, unsigned size,
                 bool elide_check, MemAccess &acc, uint64_t *paddr);

    MemorySystem &mem_;
};

} // namespace gp::mem

#endif // GP_MEM_FAST_PORT_H
