/**
 * @file
 * Tagged physical memory.
 *
 * Every 64-bit word of storage carries the pointer-tag bit (the 1.5%
 * storage overhead quantified in §4.1). Storage is sparse: only words
 * that have been written occupy host memory, so the full 54-bit space
 * can be exercised on a laptop.
 *
 * Tag semantics at sub-word granularity: only aligned 8-byte accesses
 * can read or write a tagged word intact. Writing any smaller quantity
 * into a word clears its tag — partially overwriting a pointer must
 * destroy the capability, never yield a forged one.
 */

#ifndef GP_MEM_TAGGED_MEMORY_H
#define GP_MEM_TAGGED_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "gp/word.h"

namespace gp::mem {

/** Sparse tagged word-addressable physical memory. */
class TaggedMemory
{
  public:
    TaggedMemory() = default;

    /** Read the full tagged word containing byte address addr. */
    Word
    readWord(uint64_t addr) const
    {
        auto it = store_.find(addr >> 3);
        return it == store_.end() ? Word{} : it->second;
    }

    /** Write a full tagged word at 8-byte-aligned byte address addr. */
    void
    writeWord(uint64_t addr, Word w)
    {
        store_[addr >> 3] = w;
    }

    /**
     * Read size bytes (1/2/4/8, naturally aligned) zero-extended.
     * Sub-word reads never expose the tag.
     */
    uint64_t readBytes(uint64_t addr, unsigned size) const;

    /**
     * Write size bytes (1/2/4/8, naturally aligned). Sub-word writes
     * clear the containing word's tag bit.
     */
    void writeBytes(uint64_t addr, unsigned size, uint64_t value);

    /** @return number of distinct words ever written. */
    size_t wordsAllocated() const { return store_.size(); }

    /** Drop all contents. */
    void clear() { store_.clear(); }

  private:
    std::unordered_map<uint64_t, Word> store_;
};

} // namespace gp::mem

#endif // GP_MEM_TAGGED_MEMORY_H
