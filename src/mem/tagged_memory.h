/**
 * @file
 * Tagged physical memory.
 *
 * Every 64-bit word of storage carries the pointer-tag bit (the 1.5%
 * storage overhead quantified in §4.1). Storage is sparse: only words
 * that have been written occupy host memory, so the full 54-bit space
 * can be exercised on a laptop.
 *
 * Tag semantics at sub-word granularity: only aligned 8-byte accesses
 * can read or write a tagged word intact. Writing any smaller quantity
 * into a word clears its tag — partially overwriting a pointer must
 * destroy the capability, never yield a forged one.
 *
 * Hardening (ISSUE 4): each stored word optionally carries a check
 * byte computed by mem/ecc.h — one parity bit or a full SECDED code
 * over all 65 bits. The raw-bit corruption API below models radiation
 * or disturbance faults by flipping *stored* state (payload, tag, or
 * check bits) without updating the code, exactly what a real upset
 * does; readWordChecked() then detects/corrects on the way out.
 */

#ifndef GP_MEM_TAGGED_MEMORY_H
#define GP_MEM_TAGGED_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gp/word.h"
#include "mem/ecc.h"

namespace gp::mem {

/** A word read through the ECC check path. */
struct CheckedWord
{
    Word word{};
    EccStatus status = EccStatus::Ok;
};

/** Sparse tagged word-addressable physical memory. */
class TaggedMemory
{
  public:
    TaggedMemory() = default;

    /**
     * Select the hardening code. Re-encodes every resident word so
     * the switch is always consistent; call before loading a program
     * to model a machine built with that code.
     */
    void setEccMode(EccMode mode);

    EccMode eccMode() const { return ecc_; }

    /** Read the full tagged word containing byte address addr. */
    Word
    readWord(uint64_t addr) const
    {
        auto it = store_.find(addr >> 3);
        return it == store_.end() ? Word{} : it->second.w;
    }

    /** Write a full tagged word at 8-byte-aligned byte address addr. */
    void
    writeWord(uint64_t addr, Word w)
    {
        Cell &c = store_[addr >> 3];
        c.w = w;
        if (ecc_ != EccMode::None)
            c.check = eccEncode(ecc_, w.bits(), w.isPointer());
    }

    /**
     * Read one word through the ECC decode path. With SECDED a
     * single-bit error (payload, tag, or check) is repaired *in
     * storage* (persistent scrub) and reported as Corrected; an
     * uncorrectable error returns Detected and the word must not be
     * consumed architecturally. With EccMode::None this is exactly
     * readWord().
     */
    CheckedWord readWordChecked(uint64_t addr);

    /**
     * Read size bytes (1/2/4/8, naturally aligned) zero-extended.
     * Sub-word reads never expose the tag.
     */
    uint64_t readBytes(uint64_t addr, unsigned size) const;

    /**
     * Write size bytes (1/2/4/8, naturally aligned). Sub-word writes
     * clear the containing word's tag bit.
     */
    void writeBytes(uint64_t addr, unsigned size, uint64_t value);

    /** @return number of distinct words ever written. */
    size_t wordsAllocated() const { return store_.size(); }

    /** Drop all contents. */
    void clear() { store_.clear(); }

    // ---- fault-injection / corruption API ------------------------

    /**
     * Flip one stored bit of the word containing @p addr without
     * updating the check byte (a genuine storage upset). Bit index:
     * 0..63 = payload bit, 64 = tag bit, 65..72 = check bit 0..7.
     * @return false when no word is resident at addr (nothing flips).
     */
    bool flipStoredBit(uint64_t addr, unsigned bit);

    /** Sorted byte addresses of every resident word. */
    std::vector<uint64_t> wordAddrs() const;

    /** Sorted byte addresses of resident words with the tag set. */
    std::vector<uint64_t> taggedWordAddrs() const;

    /** Words repaired by SECDED since construction/clear. */
    uint64_t eccCorrected() const { return eccCorrected_; }

    /** Uncorrectable errors detected since construction/clear. */
    uint64_t eccDetected() const { return eccDetected_; }

  private:
    /** One resident word: payload+tag plus its stored check byte. */
    struct Cell
    {
        Word w{};
        uint8_t check = 0;
    };

    EccMode ecc_ = EccMode::None;
    std::unordered_map<uint64_t, Cell> store_;
    uint64_t eccCorrected_ = 0;
    uint64_t eccDetected_ = 0;
};

} // namespace gp::mem

#endif // GP_MEM_TAGGED_MEMORY_H
