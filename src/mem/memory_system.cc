#include "mem/memory_system.h"

#include <algorithm>

#include "sim/faultinject.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "sim/trace.h"

namespace gp::mem {

MemorySystem::MemorySystem(const MemConfig &config)
    : config_(config),
      pageTable_(config.pageBytes),
      tlb_(config.tlbEntries),
      cache_(config.cache),
      bankBusyUntil_(config.cache.banks, 0)
{
    phys_.setEccMode(config_.ecc);
    if (config_.pageBytes < config_.cache.lineBytes) {
        sim::fatal("memory system: page size %llu is smaller than "
                   "the cache line size %u; page invalidation would "
                   "be ill-defined",
                   static_cast<unsigned long long>(config_.pageBytes),
                   config_.cache.lineBytes);
    }
    // Miss latency spans hit-time + TLB + walk + external transfer;
    // 64 cycles of range covers the uncontended path with room for
    // port queueing before overflow.
    missLatency_ = &stats_.histogram("miss_latency", 16, 64);
    conflictWait_ = &stats_.histogram("conflict_wait", 16, 16);
    writebacks_ = &stats_.counter("writebacks");
    bankConflictWait_.reserve(config_.cache.banks);
    for (unsigned b = 0; b < config_.cache.banks; ++b) {
        bankConflictWait_.push_back(&stats_.histogram(
            "bank" + std::to_string(b) + "_conflict_wait", 8, 16));
    }
    hits_ = &stats_.counter("hits");
    misses_ = &stats_.counter("misses");
    loads_ = &stats_.counter("loads");
    stores_ = &stats_.counter("stores");
    fetches_ = &stats_.counter("fetches");
    accessFaults_ = &stats_.counter("access_faults");
    bankConflictStalls_ = &stats_.counter("bank_conflict_stalls");
    extPortStalls_ = &stats_.counter("ext_port_stalls");
    unmappedFaults_ = &stats_.counter("unmapped_faults");
    walkTransients_ = &stats_.counter("walk_transients");
    walkRetryExhausted_ = &stats_.counter("walk_retry_exhausted");
    eccCorrected_ = &stats_.counter("ecc_corrected");
    eccDetected_ = &stats_.counter("ecc_detected");
    invalidationWritebacks_ =
        &stats_.counter("invalidation_writebacks");
}

MemAccess
MemorySystem::timedAccess(Word ptr, Access kind, unsigned size,
                          uint64_t now, uint64_t &paddr,
                          bool elide_check)
{
    MemAccess acc;
    acc.startCycle = now;

    // Pre-issue pointer check: permission decoder + masked comparator,
    // no table access, no memory cycles (§2.2). Skipped only when the
    // caller holds a verifier proof that the check cannot fire.
    if (!elide_check) {
        acc.fault = checkAccess(ptr, kind, size);
        if (acc.fault != Fault::None) {
            acc.completeCycle = now;
            (*accessFaults_)++;
            return acc;
        }
    }

    const uint64_t vaddr = ptr.addr();
    const unsigned bank = cache_.bankOf(vaddr);
    const bool is_write = kind == Access::Store;

    // The bank port admits one access per cycle.
    const uint64_t start = std::max(now, bankBusyUntil_[bank]);
    if (start > now) {
        const uint64_t wait = start - now;
        (*bankConflictStalls_) += wait;
        conflictWait_->sample(wait);
        bankConflictWait_[bank]->sample(wait);
        GP_TRACE(Cache, now, bank, "conflict",
                 "vaddr=0x%llx wait=%llu",
                 static_cast<unsigned long long>(vaddr),
                 static_cast<unsigned long long>(wait));
    }
    bankBusyUntil_[bank] = start + 1;
    uint64_t t = start + config_.timing.cacheHit;
    // Cycle attribution (gpprof): itemise this access's latency into
    // the profiler's scratch timeline, in timeline order. Bank-port
    // queueing and the array access itself keep the access's base
    // component (I-fetch vs D-cache).
    if (sim::Profiler::armed()) {
        sim::Profiler::instance().accBase(start - now);
        sim::Profiler::instance().accBase(config_.timing.cacheHit);
    }

    // One tag search resolves the hit case (probe+update combined);
    // the fill install below runs only when the miss path succeeds,
    // so fault paths leave the array untouched, exactly as before.
    if (cache_.accessHit(vaddr, is_write)) {
        acc.cacheHit = true;
        acc.completeCycle = t;
        // Functional translation (simulator-internal; a real virtual
        // cache holds the data, so no architectural translation here).
        auto pa = pageTable_.translateAddr(vaddr);
        if (!pa)
            sim::panic("cached line for unmapped page at 0x%llx",
                       static_cast<unsigned long long>(vaddr));
        paddr = *pa;
        (*hits_)++;
        GP_TRACE(Cache, now, bank, "hit", "vaddr=0x%llx",
                 static_cast<unsigned long long>(vaddr));
        return acc;
    }

    // Miss: translate (LTLB, then page walk) — the only point where
    // translation happens at all.
    const uint64_t vpn = pageTable_.vpn(vaddr);
    auto pfn = tlb_.lookup(vpn);
    t += config_.timing.tlbLookup;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accSeg(sim::ProfComp::TlbWalk,
                                         config_.timing.tlbLookup);
    if (!pfn) {
        // Page walk, with bounded retry of transient walk failures
        // (injected by the fault campaign). Each attempt costs a
        // full ptWalk; exhausting the retry budget is a detected
        // hardware error, not silent corruption.
        bool walked = false;
        for (unsigned attempt = 0;
             attempt <= config_.walkRetries; ++attempt) {
            t += config_.timing.ptWalk;
            if (sim::Profiler::armed())
                sim::Profiler::instance().accSeg(
                    sim::ProfComp::TlbWalk, config_.timing.ptWalk);
            if (sim::FaultInjector::armed() &&
                sim::FaultInjector::instance().fire(
                    sim::FaultSite::PtWalkTransient)) {
                (*walkTransients_)++;
                GP_TRACE(TLB, now, bank, "walk-transient",
                         "vpn=0x%llx attempt=%u",
                         static_cast<unsigned long long>(vpn),
                         attempt);
                continue;
            }
            walked = true;
            break;
        }
        if (!walked) {
            acc.fault = Fault::MemoryIntegrity;
            acc.completeCycle = t;
            (*walkRetryExhausted_)++;
            GP_TRACE(Fault, now, bank, "walk-retry-exhausted",
                     "vaddr=0x%llx vpn=0x%llx",
                     static_cast<unsigned long long>(vaddr),
                     static_cast<unsigned long long>(vpn));
            return acc;
        }
        auto pa = pageTable_.translateAddr(vaddr);
        if (!pa) {
            acc.fault = Fault::UnmappedAddress;
            acc.completeCycle = t;
            (*unmappedFaults_)++;
            GP_TRACE(Fault, now, bank, "unmapped-address",
                     "vaddr=0x%llx vpn=0x%llx",
                     static_cast<unsigned long long>(vaddr),
                     static_cast<unsigned long long>(vpn));
            return acc;
        }
        pfn = *pa >> pageTable_.pageShift();
        tlb_.insert(vpn, *pfn);
        GP_TRACE(TLB, now, bank, "walk", "vpn=0x%llx pfn=0x%llx",
                 static_cast<unsigned long long>(vpn),
                 static_cast<unsigned long long>(*pfn));
    } else {
        GP_TRACE(TLB, now, bank, "hit", "vpn=0x%llx",
                 static_cast<unsigned long long>(vpn));
    }
    paddr = (*pfn << pageTable_.pageShift()) |
            (vaddr & (pageTable_.pageBytes() - 1));

    // Line fill (and any dirty writeback) over the single external
    // memory interface.
    const CacheResult cr = cache_.access(vaddr, is_write);
    const uint64_t ext_start = std::max(t, extBusyUntil_);
    if (ext_start > t)
        (*extPortStalls_) += ext_start - t;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accBase(ext_start - t);
    uint64_t busy = config_.timing.extMemAccess;
    if (sim::Profiler::armed())
        sim::Profiler::instance().accBase(config_.timing.extMemAccess);
    if (config_.ecc != EccMode::None) {
        // Check/correct logic sits on the external interface: one
        // codec pass per filled line.
        busy += config_.eccCycles;
        if (sim::Profiler::armed())
            sim::Profiler::instance().accSeg(sim::ProfComp::Ecc,
                                             config_.eccCycles);
    }
    if (cr.writeback) {
        busy += config_.timing.writeback;
        if (sim::Profiler::armed())
            sim::Profiler::instance().accBase(
                config_.timing.writeback);
        (*writebacks_)++;
        // Attribute the writeback to the victim's address space (the
        // guarded configuration always runs ASID 0, but the shared
        // datapath must not pin the victim to the accessor's space).
        GP_TRACE(Cache, now, bank, "writeback",
                 "victim_line=0x%llx victim_asid=%u",
                 static_cast<unsigned long long>(cr.victimLineAddr),
                 unsigned(cr.victimAsid));
    }
    t = ext_start + busy;
    extBusyUntil_ = t;

    acc.cacheHit = false;
    acc.completeCycle = t;
    (*misses_)++;
    missLatency_->sample(t - now);
    GP_TRACE(Cache, now, bank, "miss", "vaddr=0x%llx latency=%llu",
             static_cast<unsigned long long>(vaddr),
             static_cast<unsigned long long>(t - now));
    return acc;
}

Word
MemorySystem::checkedRead(uint64_t paddr, MemAccess &acc)
{
    if (config_.ecc == EccMode::None)
        return phys_.readWord(paddr);

    const CheckedWord cw = phys_.readWordChecked(paddr);
    if (cw.status == EccStatus::Corrected) {
        (*eccCorrected_)++;
        GP_TRACE(Fault, acc.startCycle, 0, "ecc-corrected",
                 "paddr=0x%llx",
                 static_cast<unsigned long long>(paddr));
    } else if (cw.status == EccStatus::Detected) {
        // Uncorrectable: the word must not be consumed. Surface as a
        // memory-integrity machine fault.
        acc.fault = Fault::MemoryIntegrity;
        (*eccDetected_)++;
        GP_TRACE(Fault, acc.startCycle, 0, "ecc-detected",
                 "paddr=0x%llx",
                 static_cast<unsigned long long>(paddr));
    }
    return cw.word;
}

MemAccess
MemorySystem::load(Word ptr, unsigned size, uint64_t now,
                   bool elide_check)
{
    uint64_t paddr = 0;
    MemAccess acc = timedAccess(ptr, Access::Load, size, now, paddr,
                                elide_check);
    if (acc.fault != Fault::None)
        return acc;

    if (size == 8) {
        acc.data = checkedRead(paddr, acc);
    } else {
        // Sub-word loads still check the whole stored word; the tag
        // is never exposed but corruption must not slip past the
        // code just because the consumer wanted one byte.
        const Word w = checkedRead(paddr & ~uint64_t(7), acc);
        const unsigned shift = (paddr & 7) * 8;
        const uint64_t mask = (uint64_t(1) << (size * 8)) - 1;
        acc.data = Word::fromInt((w.bits() >> shift) & mask);
    }
    if (acc.fault != Fault::None)
        return acc;
    (*loads_)++;
    return acc;
}

MemAccess
MemorySystem::store(Word ptr, Word value, unsigned size, uint64_t now,
                    bool elide_check)
{
    uint64_t paddr = 0;
    MemAccess acc = timedAccess(ptr, Access::Store, size, now, paddr,
                                elide_check);
    if (acc.fault != Fault::None)
        return acc;

    if (size == 8)
        phys_.writeWord(paddr, value);
    else
        phys_.writeBytes(paddr, size, value.bits());
    (*stores_)++;
    return acc;
}

MemAccess
MemorySystem::fetch(Word ip, uint64_t now, bool elide_check)
{
    uint64_t paddr = 0;
    MemAccess acc = timedAccess(ip, Access::InstFetch, 8, now, paddr,
                                elide_check);
    if (acc.fault != Fault::None)
        return acc;
    acc.data = checkedRead(paddr, acc);
    if (acc.fault != Fault::None)
        return acc;
    (*fetches_)++;
    return acc;
}

void
MemorySystem::unmapRange(uint64_t base, uint64_t bytes, uint64_t now)
{
    const uint64_t page = pageTable_.pageBytes();
    const uint64_t first = base & ~(page - 1);
    unsigned dirty_total = 0;
    for (uint64_t va = first; va < base + bytes; va += page) {
        const uint64_t vpn = pageTable_.vpn(va);
        pageTable_.unmap(vpn);
        tlb_.invalidate(vpn);
        const PageInvalidation inv =
            cache_.invalidatePage(va, pageTable_.pageShift());
        dirty_total += inv.writebacks;
    }
    if (dirty_total > 0) {
        // The revoked pages' dirty victims go out over the single
        // external interface, exactly like miss-path writebacks: they
        // occupy the port back-to-back from the issue cycle. Dropping
        // them instead would lose the revoked segment's latest stores,
        // which a reinstated (relocated) segment must observe.
        (*invalidationWritebacks_) += dirty_total;
        (*writebacks_) += dirty_total;
        const uint64_t start = std::max(now, extBusyUntil_);
        extBusyUntil_ =
            start + uint64_t(dirty_total) * config_.timing.writeback;
        GP_TRACE(Cache, now, 0, "unmap_writeback", "dirty_lines=%u",
                 dirty_total);
    }
}

void
MemorySystem::mapRange(uint64_t base, uint64_t bytes)
{
    const uint64_t page = pageTable_.pageBytes();
    const uint64_t first = base & ~(page - 1);
    for (uint64_t va = first; va < base + bytes; va += page)
        pageTable_.map(pageTable_.vpn(va));
}

std::optional<Word>
MemorySystem::tryPeekWord(uint64_t vaddr) const
{
    auto pfn = pageTable_.translate(pageTable_.vpn(vaddr));
    if (!pfn)
        return std::nullopt;
    const uint64_t pa = (*pfn << pageTable_.pageShift()) |
                        (vaddr & (pageTable_.pageBytes() - 1));
    return phys_.readWord(pa);
}

Word
MemorySystem::peekWord(uint64_t vaddr)
{
    auto pa = pageTable_.translateAddr(vaddr);
    if (!pa)
        return Word{};
    return phys_.readWord(*pa);
}

void
MemorySystem::pokeWord(uint64_t vaddr, Word w)
{
    auto pa = pageTable_.translateAddr(vaddr);
    if (!pa)
        sim::fatal("pokeWord to unmapped address 0x%llx",
                   static_cast<unsigned long long>(vaddr));
    phys_.writeWord(*pa, w);
}

} // namespace gp::mem
