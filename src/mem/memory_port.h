/**
 * @file
 * Abstract memory port: the interface a processor needs from its
 * memory system.
 *
 * Implemented by the single-node MemorySystem and by the
 * multicomputer's per-node NodeMemory, so the same Machine (and the
 * same programs) run unmodified on either — which is itself the
 * paper's §3 point: the processor side of a guarded-pointer machine
 * is oblivious to where in the global space its pointers land.
 */

#ifndef GP_MEM_MEMORY_PORT_H
#define GP_MEM_MEMORY_PORT_H

#include <cstdint>

#include "gp/word.h"

namespace gp::mem {

struct MemAccess;

/** Processor-facing memory interface. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Timed load through a guarded pointer. elide_check skips the
     * guarded-pointer access check (rights/alignment/bounds) — legal
     * only under a verifier proof that the check cannot fire
     * (docs/VERIFIER.md "Proof export & check elision"); translation
     * and integrity checking still run.
     */
    virtual MemAccess portLoad(Word ptr, unsigned size, uint64_t now,
                               bool elide_check = false) = 0;

    /** Timed store through a guarded pointer (elide_check as above). */
    virtual MemAccess portStore(Word ptr, Word value, unsigned size,
                                uint64_t now,
                                bool elide_check = false) = 0;

    /**
     * Timed instruction fetch. elide_check skips the per-fetch
     * guarded-pointer check: legal only when the caller has already
     * proven execute rights and bounds for the fetch address (the
     * superblock engine verifies a whole trace's span at block entry;
     * see docs/ARCHITECTURE.md "Threaded dispatch & superblocks").
     * Timing, translation, and fault behaviour are unchanged.
     */
    virtual MemAccess portFetch(Word ip, uint64_t now,
                                bool elide_check = false) = 0;

    /** Untimed functional word write (loader use). */
    virtual void portPoke(uint64_t vaddr, Word w) = 0;

    /** Untimed functional word read. */
    virtual Word portPeek(uint64_t vaddr) = 0;
};

} // namespace gp::mem

#endif // GP_MEM_MEMORY_PORT_H
