#include "mem/cache.h"

#include "sim/log.h"

namespace gp::mem {

namespace {

unsigned
log2Exact(uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        sim::fatal("cache %s must be a power of two", what);
    return static_cast<unsigned>(__builtin_ctzll(v));
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    lineShift_ = log2Exact(config_.lineBytes, "line size");
    bankShift_ = log2Exact(config_.banks, "bank count");
    log2Exact(config_.setsPerBank, "sets per bank");
    if (config_.ways == 0)
        sim::fatal("cache associativity must be nonzero");
    lines_.resize(uint64_t(config_.banks) * config_.setsPerBank *
                  config_.ways);
}

unsigned
Cache::bankOf(uint64_t vaddr) const
{
    return (vaddr >> lineShift_) & (config_.banks - 1);
}

uint64_t
Cache::capacityBytes() const
{
    return uint64_t(config_.banks) * config_.setsPerBank * config_.ways *
           config_.lineBytes;
}

void
Cache::locate(uint64_t vaddr, unsigned &bank, unsigned &set,
              uint64_t &line_addr) const
{
    line_addr = vaddr >> lineShift_;
    bank = line_addr & (config_.banks - 1);
    set = (line_addr >> bankShift_) & (config_.setsPerBank - 1);
}

Cache::Line *
Cache::findLine(unsigned bank, unsigned set, uint64_t line_addr,
                uint16_t asid)
{
    const uint64_t base =
        (uint64_t(bank) * config_.setsPerBank + set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.lineAddr == line_addr && line.asid == asid)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(unsigned bank, unsigned set, uint64_t line_addr,
                uint16_t asid) const
{
    return const_cast<Cache *>(this)->findLine(bank, set, line_addr,
                                               asid);
}

CacheResult
Cache::access(uint64_t vaddr, bool is_write, uint16_t asid)
{
    unsigned bank, set;
    uint64_t line_addr;
    locate(vaddr, bank, set, line_addr);
    stamp_++;

    if (Line *line = findLine(bank, set, line_addr, asid)) {
        line->lruStamp = stamp_;
        line->dirty = line->dirty || is_write;
        stats_.counter("hits")++;
        return CacheResult{true, false, 0};
    }

    stats_.counter("misses")++;

    // Choose the LRU way (preferring invalid lines) as victim.
    const uint64_t base =
        (uint64_t(bank) * config_.setsPerBank + set) * config_.ways;
    Line *victim = &lines_[base];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    CacheResult result{false, false, 0};
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimLineAddr = victim->lineAddr;
        stats_.counter("writebacks")++;
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->lineAddr = line_addr;
    victim->asid = asid;
    victim->lruStamp = stamp_;
    return result;
}

bool
Cache::probe(uint64_t vaddr, uint16_t asid) const
{
    unsigned bank, set;
    uint64_t line_addr;
    locate(vaddr, bank, set, line_addr);
    return findLine(bank, set, line_addr, asid) != nullptr;
}

unsigned
Cache::invalidatePage(uint64_t vaddr, unsigned page_shift, uint16_t asid)
{
    const uint64_t first_line = (vaddr >> page_shift) <<
                                (page_shift - lineShift_);
    const uint64_t lines_per_page = uint64_t(1) << (page_shift -
                                                    lineShift_);
    unsigned invalidated = 0;
    for (uint64_t la = first_line; la < first_line + lines_per_page;
         ++la) {
        const unsigned bank = la & (config_.banks - 1);
        const unsigned set =
            (la >> bankShift_) & (config_.setsPerBank - 1);
        if (Line *line = findLine(bank, set, la, asid)) {
            line->valid = false;
            line->dirty = false;
            invalidated++;
        }
    }
    stats_.counter("page_invalidations")++;
    stats_.counter("lines_invalidated") += invalidated;
    return invalidated;
}

unsigned
Cache::flushAll()
{
    unsigned dirty = 0;
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            dirty++;
        line.valid = false;
        line.dirty = false;
    }
    stats_.counter("full_flushes")++;
    stats_.counter("flush_writebacks") += dirty;
    return dirty;
}

} // namespace gp::mem
