#include "mem/cache.h"

#include "sim/log.h"

namespace gp::mem {

namespace {

unsigned
log2Exact(uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        sim::fatal("cache %s must be a power of two", what);
    return static_cast<unsigned>(__builtin_ctzll(v));
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    lineShift_ = log2Exact(config_.lineBytes, "line size");
    bankShift_ = log2Exact(config_.banks, "bank count");
    log2Exact(config_.setsPerBank, "sets per bank");
    if (config_.ways == 0)
        sim::fatal("cache associativity must be nonzero");
    lines_.resize(uint64_t(config_.banks) * config_.setsPerBank *
                  config_.ways);

    // Register every stat once; the access path only increments
    // through these handles (see docs/OBSERVABILITY.md).
    hits_ = &stats_.counter("hits");
    misses_ = &stats_.counter("misses");
    writebacks_ = &stats_.counter("writebacks");
    pageInvalidations_ = &stats_.counter("page_invalidations");
    linesInvalidated_ = &stats_.counter("lines_invalidated");
    invalidationWritebacks_ =
        &stats_.counter("invalidation_writebacks");
    fullFlushes_ = &stats_.counter("full_flushes");
    flushWritebacks_ = &stats_.counter("flush_writebacks");
}

uint64_t
Cache::capacityBytes() const
{
    return uint64_t(config_.banks) * config_.setsPerBank * config_.ways *
           config_.lineBytes;
}

void
Cache::locate(uint64_t vaddr, unsigned &bank, unsigned &set,
              uint64_t &line_addr) const
{
    line_addr = vaddr >> lineShift_;
    bank = line_addr & (config_.banks - 1);
    set = (line_addr >> bankShift_) & (config_.setsPerBank - 1);
}

Cache::Line *
Cache::findLine(unsigned bank, unsigned set, uint64_t line_addr,
                uint16_t asid)
{
    const uint64_t base =
        (uint64_t(bank) * config_.setsPerBank + set) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.lineAddr == line_addr && line.asid == asid)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(unsigned bank, unsigned set, uint64_t line_addr,
                uint16_t asid) const
{
    return const_cast<Cache *>(this)->findLine(bank, set, line_addr,
                                               asid);
}

CacheResult
Cache::access(uint64_t vaddr, bool is_write, uint16_t asid)
{
    unsigned bank, set;
    uint64_t line_addr;
    locate(vaddr, bank, set, line_addr);
    stamp_++;

    if (Line *line = findLine(bank, set, line_addr, asid)) {
        line->lruStamp = stamp_;
        line->dirty = line->dirty || is_write;
        (*hits_)++;
        return CacheResult{true, false, 0, 0};
    }

    (*misses_)++;

    // Choose the LRU way (preferring invalid lines) as victim.
    const uint64_t base =
        (uint64_t(bank) * config_.setsPerBank + set) * config_.ways;
    Line *victim = &lines_[base];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    CacheResult result{false, false, 0, 0};
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimLineAddr = victim->lineAddr;
        // The writeback belongs to the *victim's* address space: a
        // cross-domain eviction must not be attributed (or, in
        // ASID-tagged schemes, translated) against the accessor.
        result.victimAsid = victim->asid;
        (*writebacks_)++;
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->lineAddr = line_addr;
    victim->asid = asid;
    victim->lruStamp = stamp_;
    return result;
}

bool
Cache::accessHit(uint64_t vaddr, bool is_write, uint16_t asid)
{
    unsigned bank, set;
    uint64_t line_addr;
    locate(vaddr, bank, set, line_addr);
    Line *line = findLine(bank, set, line_addr, asid);
    if (!line)
        return false;
    stamp_++;
    line->lruStamp = stamp_;
    line->dirty = line->dirty || is_write;
    (*hits_)++;
    return true;
}

bool
Cache::probe(uint64_t vaddr, uint16_t asid) const
{
    unsigned bank, set;
    uint64_t line_addr;
    locate(vaddr, bank, set, line_addr);
    return findLine(bank, set, line_addr, asid) != nullptr;
}

PageInvalidation
Cache::invalidatePage(uint64_t vaddr, unsigned page_shift, uint16_t asid)
{
    // A page smaller than a cache line would make the shifts below
    // undefined behaviour; reject it loudly rather than corrupting
    // the line-address arithmetic.
    if (page_shift < lineShift_) {
        sim::fatal("cache invalidatePage: page shift %u is smaller "
                   "than the line shift %u (page must cover at least "
                   "one %u-byte line)",
                   page_shift, lineShift_, config_.lineBytes);
    }
    const uint64_t first_line = (vaddr >> page_shift) <<
                                (page_shift - lineShift_);
    const uint64_t lines_per_page = uint64_t(1) << (page_shift -
                                                    lineShift_);
    PageInvalidation result;
    for (uint64_t la = first_line; la < first_line + lines_per_page;
         ++la) {
        const unsigned bank = la & (config_.banks - 1);
        const unsigned set =
            (la >> bankShift_) & (config_.setsPerBank - 1);
        if (Line *line = findLine(bank, set, la, asid)) {
            // Dirty lines are surfaced as writebacks; the caller
            // charges the writeback cost and accounts the data as
            // written back, never silently lost.
            if (line->dirty)
                result.writebacks++;
            line->valid = false;
            line->dirty = false;
            result.invalidated++;
        }
    }
    (*pageInvalidations_)++;
    (*linesInvalidated_) += result.invalidated;
    (*invalidationWritebacks_) += result.writebacks;
    return result;
}

unsigned
Cache::flushAll()
{
    unsigned dirty = 0;
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            dirty++;
        line.valid = false;
        line.dirty = false;
    }
    (*fullFlushes_)++;
    (*flushWritebacks_) += dirty;
    return dirty;
}

} // namespace gp::mem
