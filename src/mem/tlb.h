/**
 * @file
 * Translation lookaside buffer.
 *
 * In the guarded-pointer system a single LTLB is consulted only on
 * cache misses and holds global (ASID-free) entries. The same structure
 * is reused by the §5 baseline schemes, which variously need ASID
 * tagging (to avoid flushes) or full flushes on every protection-domain
 * switch; both behaviours are provided so the context-switch benches
 * compare schemes over identical hardware.
 */

#ifndef GP_MEM_TLB_H
#define GP_MEM_TLB_H

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "sim/rng.h"
#include "sim/stats.h"

namespace gp::mem {

/** Fully-associative LRU TLB with optional ASID tagging. */
class Tlb
{
  public:
    /** @param entries capacity; 0 is rejected. */
    explicit Tlb(size_t entries = 64);

    /**
     * Look up a translation.
     * @param vpn virtual page number
     * @param asid address-space id (0 for the shared global space)
     * @return the physical frame number on hit.
     */
    std::optional<uint64_t> lookup(uint64_t vpn, uint16_t asid = 0);

    /** Install a translation, evicting LRU if full. */
    void insert(uint64_t vpn, uint64_t pfn, uint16_t asid = 0);

    /** Remove one translation if present (page unmap). */
    void invalidate(uint64_t vpn, uint16_t asid = 0);

    /** Flush everything (paged baseline without ASIDs). */
    void flushAll();

    /** Flush entries belonging to one address space. */
    void flushAsid(uint16_t asid);

    // ---- fault-injection hooks (ISSUE 4) -------------------------

    /**
     * Corrupt one uniformly chosen live entry: XOR a random bit
     * (drawn from @p rng) into its cached frame number, modelling a
     * soft error in the LTLB array. Subsequent hits on that entry
     * translate to the wrong frame until it is evicted/invalidated.
     * @return false when the TLB is empty (nothing to corrupt).
     */
    bool corruptRandom(sim::Rng &rng);

    /**
     * Spuriously drop one uniformly chosen live entry (a lost
     * translation, forcing an extra walk — a timing fault only).
     * @return false when the TLB is empty.
     */
    bool invalidateRandom(sim::Rng &rng);

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }

    sim::StatGroup &stats() { return stats_; }

  private:
    struct Key
    {
        uint64_t vpn;
        uint16_t asid;
        bool
        operator==(const Key &o) const
        {
            return vpn == o.vpn && asid == o.asid;
        }
    };

    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            return std::hash<uint64_t>()(k.vpn * 0x9e3779b97f4a7c15ull ^
                                         k.asid);
        }
    };

    struct Entry
    {
        Key key;
        uint64_t pfn;
    };

    using LruList = std::list<Entry>;

    size_t capacity_;
    LruList lru_; // front = most recent
    std::unordered_map<Key, LruList::iterator, KeyHash> map_;
    sim::StatGroup stats_{"tlb"};

    // Cached stat handles: lookup/insert/invalidate run on the
    // memory-system miss path, so they must never pay a string-keyed
    // map lookup per event (docs/OBSERVABILITY.md).
    sim::Counter *hits_ = nullptr;
    sim::Counter *misses_ = nullptr;
    sim::Counter *evictions_ = nullptr;
    sim::Counter *invalidations_ = nullptr;
    sim::Counter *injectedCorruptions_ = nullptr;
    sim::Counter *injectedInvalidations_ = nullptr;
    sim::Counter *fullFlushes_ = nullptr;
    sim::Counter *asidFlushes_ = nullptr;
    sim::Counter *entriesFlushed_ = nullptr;
};

} // namespace gp::mem

#endif // GP_MEM_TLB_H
