#include "mem/page_table.h"

#include "sim/log.h"

namespace gp::mem {

PageTable::PageTable(uint64_t page_bytes)
{
    if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0)
        sim::fatal("page size must be a power of two");
    pageShift_ = static_cast<unsigned>(__builtin_ctzll(page_bytes));
    pagesMapped_ = &stats_.counter("pages_mapped");
    pagesUnmapped_ = &stats_.counter("pages_unmapped");
}

uint64_t
PageTable::map(uint64_t vpn)
{
    blocked_.erase(vpn);
    auto it = table_.find(vpn);
    if (it != table_.end())
        return it->second;
    // Re-mapping a previously unmapped page restores its old frame so
    // reinstated segments keep their contents (§4.3 relocation).
    uint64_t pfn;
    if (auto sus = suspended_.find(vpn); sus != suspended_.end()) {
        pfn = sus->second;
        suspended_.erase(sus);
    } else {
        pfn = nextFrame_++;
    }
    table_.emplace(vpn, pfn);
    (*pagesMapped_)++;
    return pfn;
}

void
PageTable::mapTo(uint64_t vpn, uint64_t pfn)
{
    blocked_.erase(vpn);
    table_[vpn] = pfn;
    // The alias may shadow the memoised frame; evict the slot.
    memo_[vpn & (kMemoEntries - 1)].vpn = kNoMru;
    (*pagesMapped_)++;
}

bool
PageTable::unmap(uint64_t vpn)
{
    (*pagesUnmapped_)++;
    blocked_.insert(vpn);
    // Drop the memo slot before the translation goes.
    memo_[vpn & (kMemoEntries - 1)].vpn = kNoMru;
    auto it = table_.find(vpn);
    if (it == table_.end())
        return false;
    suspended_[vpn] = it->second;
    table_.erase(it);
    return true;
}

std::optional<uint64_t>
PageTable::translate(uint64_t vpn) const
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return std::nullopt;
    return it->second;
}

std::optional<uint64_t>
PageTable::translateAddr(uint64_t vaddr)
{
    const uint64_t page = vpn(vaddr);
    // Direct-mapped memo: a positive translation can only change via
    // unmap()/mapTo(), both of which evict the affected slot, so a
    // match is always the same answer the map lookup would give.
    MemoEntry &slot = memo_[page & (kMemoEntries - 1)];
    if (slot.vpn == page)
        return (slot.pfn << pageShift_) | (vaddr & (pageBytes() - 1));
    auto pfn = translate(page);
    if (!pfn) {
        if (!allocateOnTouch_ || blocked_.count(page))
            return std::nullopt;
        pfn = map(page);
    }
    slot.vpn = page;
    slot.pfn = *pfn;
    return (*pfn << pageShift_) | (vaddr & (pageBytes() - 1));
}

} // namespace gp::mem
