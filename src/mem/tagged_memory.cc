#include "mem/tagged_memory.h"

#include "sim/log.h"

namespace gp::mem {

uint64_t
TaggedMemory::readBytes(uint64_t addr, unsigned size) const
{
    if (size == 8)
        return readWord(addr).bits();

    const Word w = readWord(addr);
    const unsigned shift = (addr & 7) * 8;
    const uint64_t mask =
        size == 8 ? ~uint64_t(0) : ((uint64_t(1) << (size * 8)) - 1);
    return (w.bits() >> shift) & mask;
}

void
TaggedMemory::writeBytes(uint64_t addr, unsigned size, uint64_t value)
{
    if (size == 8) {
        writeWord(addr, Word::fromInt(value));
        return;
    }

    const Word old = readWord(addr);
    const unsigned shift = (addr & 7) * 8;
    const uint64_t mask = ((uint64_t(1) << (size * 8)) - 1) << shift;
    const uint64_t bits =
        (old.bits() & ~mask) | ((value << shift) & mask);
    // Sub-word writes always clear the tag: a partially overwritten
    // pointer must not remain a valid capability.
    writeWord(addr, Word::fromInt(bits));
}

} // namespace gp::mem
