#include "mem/tagged_memory.h"

#include <algorithm>

#include "sim/log.h"

namespace gp::mem {

namespace {

Word
makeWord(uint64_t bits, bool tag)
{
    return tag ? Word::fromRawPointerBits(bits) : Word::fromInt(bits);
}

} // namespace

void
TaggedMemory::setEccMode(EccMode mode)
{
    ecc_ = mode;
    for (auto &[idx, cell] : store_)
        cell.check = eccEncode(ecc_, cell.w.bits(), cell.w.isPointer());
}

CheckedWord
TaggedMemory::readWordChecked(uint64_t addr)
{
    auto it = store_.find(addr >> 3);
    if (it == store_.end())
        return CheckedWord{Word{}, EccStatus::Ok};
    if (ecc_ == EccMode::None)
        return CheckedWord{it->second.w, EccStatus::Ok};

    Cell &cell = it->second;
    uint64_t bits = cell.w.bits();
    bool tag = cell.w.isPointer();
    uint8_t check = cell.check;
    const EccStatus status = eccDecode(ecc_, bits, tag, check);
    if (status == EccStatus::Corrected) {
        // Persistent scrub: repair the stored copy so the same upset
        // is not re-corrected (and cannot combine with a later one
        // into an uncorrectable pair).
        cell.w = makeWord(bits, tag);
        cell.check = check;
        eccCorrected_++;
    } else if (status == EccStatus::Detected) {
        eccDetected_++;
    }
    return CheckedWord{makeWord(bits, tag), status};
}

uint64_t
TaggedMemory::readBytes(uint64_t addr, unsigned size) const
{
    if (size == 8)
        return readWord(addr).bits();

    const Word w = readWord(addr);
    const unsigned shift = (addr & 7) * 8;
    const uint64_t mask =
        size == 8 ? ~uint64_t(0) : ((uint64_t(1) << (size * 8)) - 1);
    return (w.bits() >> shift) & mask;
}

void
TaggedMemory::writeBytes(uint64_t addr, unsigned size, uint64_t value)
{
    if (size == 8) {
        writeWord(addr, Word::fromInt(value));
        return;
    }

    const Word old = readWord(addr);
    const unsigned shift = (addr & 7) * 8;
    const uint64_t mask = ((uint64_t(1) << (size * 8)) - 1) << shift;
    const uint64_t bits =
        (old.bits() & ~mask) | ((value << shift) & mask);
    // Sub-word writes always clear the tag: a partially overwritten
    // pointer must not remain a valid capability.
    writeWord(addr, Word::fromInt(bits));
}

bool
TaggedMemory::flipStoredBit(uint64_t addr, unsigned bit)
{
    auto it = store_.find(addr >> 3);
    if (it == store_.end())
        return false;
    Cell &cell = it->second;
    if (bit < 64) {
        cell.w = makeWord(cell.w.bits() ^ (uint64_t(1) << bit),
                          cell.w.isPointer());
    } else if (bit == 64) {
        cell.w = makeWord(cell.w.bits(), !cell.w.isPointer());
    } else if (bit < 64 + 1 + kEccCheckBits) {
        cell.check ^= uint8_t(1u << (bit - 65));
    } else {
        return false;
    }
    return true;
}

std::vector<uint64_t>
TaggedMemory::wordAddrs() const
{
    std::vector<uint64_t> addrs;
    addrs.reserve(store_.size());
    for (const auto &[idx, cell] : store_)
        addrs.push_back(idx << 3);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

std::vector<uint64_t>
TaggedMemory::taggedWordAddrs() const
{
    std::vector<uint64_t> addrs;
    for (const auto &[idx, cell] : store_)
        if (cell.w.isPointer())
            addrs.push_back(idx << 3);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

} // namespace gp::mem
