/**
 * @file
 * Banked, virtually-addressed, virtually-tagged cache.
 *
 * Models the MAP chip's on-chip cache (Fig. 5): the array is interleaved
 * across banks by low line-address bits so the four clusters can access
 * distinct banks in the same cycle; lines are tagged with virtual
 * addresses so no translation happens on a hit.
 *
 * Lines optionally carry an ASID so the §5.1 baselines can demonstrate
 * why ASID-tagged virtual caches cannot share data in-cache (synonyms):
 * the same virtual line referenced from two address spaces occupies two
 * lines. The guarded-pointer configuration always uses ASID 0.
 */

#ifndef GP_MEM_CACHE_H
#define GP_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/stats.h"

namespace gp::mem {

/** Geometry and behaviour knobs for the cache. */
struct CacheConfig
{
    unsigned banks = 4;       //!< interleave factor (power of two)
    unsigned lineBytes = 32;  //!< line size (power of two)
    unsigned setsPerBank = 512; //!< sets in each bank (power of two)
    unsigned ways = 2;        //!< associativity
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false;    //!< a dirty victim was evicted
    uint64_t victimLineAddr = 0; //!< line address of the victim
    /**
     * Address space the victim line belonged to. A victim writeback
     * must be attributed (and, in ASID-tagged baselines, translated)
     * against the *victim's* address space, not the accessing
     * thread's — the two differ whenever a miss in one domain evicts
     * another domain's line.
     */
    uint16_t victimAsid = 0;
};

/** Outcome of invalidating one page's worth of lines. */
struct PageInvalidation
{
    unsigned invalidated = 0; //!< lines removed from the array
    /**
     * Of those, dirty lines whose contents must be written back
     * before the page translation disappears. Dropping these on the
     * floor would be silent data loss on revocation/relocation.
     */
    unsigned writebacks = 0;
};

/** Set-associative banked cache with per-set LRU and write-back. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** @return which bank services the given byte address. Inline:
     * the timed hit path computes this once per access. */
    unsigned
    bankOf(uint64_t vaddr) const
    {
        return (vaddr >> lineShift_) & (config_.banks - 1);
    }

    /**
     * Perform one access: on hit, update LRU (and dirty on writes); on
     * miss, choose a victim, install the line, and report any dirty
     * writeback. Purely behavioural — data lives in TaggedMemory.
     */
    CacheResult access(uint64_t vaddr, bool is_write, uint16_t asid = 0);

    /**
     * Hot-path hit probe+update in one tag search: if the line is
     * resident, perform exactly the hit half of access() (LRU stamp,
     * dirty bit, hit counter) and return true; otherwise change
     * nothing — no install, no stamp advance, no miss counted — and
     * return false. Equivalent to `probe() && access().hit` at half
     * the tag-search cost; the caller runs access() afterwards for
     * the fill if (and only if) the miss path succeeds.
     */
    bool accessHit(uint64_t vaddr, bool is_write, uint16_t asid = 0);

    /** @return true if the line holding vaddr is resident (no LRU touch). */
    bool probe(uint64_t vaddr, uint16_t asid = 0) const;

    /**
     * Invalidate every line within a virtual page (used when the page
     * is unmapped for revocation/relocation, §4.3). Dirty lines are
     * reported as writebacks for the caller to charge/propagate —
     * they are never silently discarded.
     * @param page_shift log2(page size); must be >= log2(line size).
     */
    PageInvalidation invalidatePage(uint64_t vaddr, unsigned page_shift,
                                    uint16_t asid = 0);

    /**
     * Invalidate the whole cache (the paged-baseline context switch).
     * @return number of dirty lines that needed writeback.
     */
    unsigned flushAll();

    /** Total data capacity in bytes. */
    uint64_t capacityBytes() const;

    const CacheConfig &config() const { return config_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t lineAddr = 0; //!< vaddr >> log2(lineBytes)
        uint16_t asid = 0;
        uint64_t lruStamp = 0;
    };

    /** Map a byte address to (bank, set, lineAddr). */
    void locate(uint64_t vaddr, unsigned &bank, unsigned &set,
                uint64_t &line_addr) const;

    Line *findLine(unsigned bank, unsigned set, uint64_t line_addr,
                   uint16_t asid);
    const Line *findLine(unsigned bank, unsigned set, uint64_t line_addr,
                         uint16_t asid) const;

    CacheConfig config_;
    unsigned lineShift_;
    unsigned bankShift_;
    std::vector<Line> lines_; //!< [bank][set][way] flattened
    uint64_t stamp_ = 0;
    sim::StatGroup stats_{"cache"};

    // Cached stat handles (stable for the life of stats_), so the
    // per-access hot path pays a plain increment, never a
    // string-keyed map lookup. See docs/OBSERVABILITY.md ("stat
    // handles"): never call counter("...") in a per-event path.
    sim::Counter *hits_ = nullptr;
    sim::Counter *misses_ = nullptr;
    sim::Counter *writebacks_ = nullptr;
    sim::Counter *pageInvalidations_ = nullptr;
    sim::Counter *linesInvalidated_ = nullptr;
    sim::Counter *invalidationWritebacks_ = nullptr;
    sim::Counter *fullFlushes_ = nullptr;
    sim::Counter *flushWritebacks_ = nullptr;
};

} // namespace gp::mem

#endif // GP_MEM_CACHE_H
