/**
 * @file
 * The single global page table of the guarded-pointer memory system.
 *
 * Because protection lives entirely in pointers, translation carries no
 * per-process state: one table maps 54-bit virtual pages to physical
 * frames for every process on the machine (paper §2). Unmapping a page
 * is the revocation/relocation hook of §4.3.
 */

#ifndef GP_MEM_PAGE_TABLE_H
#define GP_MEM_PAGE_TABLE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "sim/stats.h"

namespace gp::mem {

/** Global virtual-to-physical page mapping with a frame allocator. */
class PageTable
{
  public:
    /** @param page_bytes page size; must be a power of two. */
    explicit PageTable(uint64_t page_bytes = 4096);

    /** @return log2(page size). */
    unsigned pageShift() const { return pageShift_; }
    uint64_t pageBytes() const { return uint64_t(1) << pageShift_; }

    /** @return the virtual page number containing vaddr. */
    uint64_t vpn(uint64_t vaddr) const { return vaddr >> pageShift_; }

    /**
     * Map a virtual page to a freshly allocated physical frame.
     * @return the frame number. Remapping an already-mapped page keeps
     * its existing frame.
     */
    uint64_t map(uint64_t vpn);

    /** Map a virtual page to a specific frame (used for aliasing). */
    void mapTo(uint64_t vpn, uint64_t pfn);

    /**
     * Remove a translation. Subsequent accesses fault, which is how a
     * segment's pointers are revoked or relocated en masse (§4.3). The
     * page is also blocked from demand allocation until map()ed again,
     * so revocation cannot be undone by a stray touch.
     * @return true if the page was mapped.
     */
    bool unmap(uint64_t vpn);

    /** @return the frame for vpn, or nullopt if unmapped. */
    std::optional<uint64_t> translate(uint64_t vpn) const;

    /**
     * Translate a full virtual byte address to a physical byte address,
     * mapping the page on demand when allocate_on_touch is set.
     */
    std::optional<uint64_t> translateAddr(uint64_t vaddr);

    /** Demand-map pages touched through translateAddr(). */
    void setAllocateOnTouch(bool on) { allocateOnTouch_ = on; }

    size_t mappedPages() const { return table_.size(); }

    sim::StatGroup &stats() { return stats_; }

  private:
    /// Sentinel VPN that can never match (addresses are 54-bit).
    static constexpr uint64_t kNoMru = ~uint64_t(0);

    /// Direct-mapped translation-memo size; must be a power of two.
    /// Sized so that one hot page per hardware thread slot (16) plus
    /// code pages fits without conflict in the common case.
    static constexpr size_t kMemoEntries = 64;

    /// One slot of the translateAddr() memo. Purely a host-speed
    /// cache: the timed hit path performs a functional translation
    /// per access, and the working set of pages is tiny. A positive
    /// translation can only change via unmap()/mapTo(), which evict
    /// the affected slot, so a memo hit is always identical to the
    /// map lookup.
    struct MemoEntry
    {
        uint64_t vpn = kNoMru;
        uint64_t pfn = 0;
    };

    unsigned pageShift_;
    bool allocateOnTouch_ = true;
    uint64_t nextFrame_ = 0;
    MemoEntry memo_[kMemoEntries];
    std::unordered_map<uint64_t, uint64_t> table_;
    /// Frames of unmapped pages, restored on re-map (reinstatement).
    std::unordered_map<uint64_t, uint64_t> suspended_;
    std::unordered_set<uint64_t> blocked_;
    sim::StatGroup stats_{"page_table"};

    // Cached stat handles: map() runs on the demand-allocation path
    // under translateAddr(), so it must not pay a string-keyed
    // lookup per event (docs/OBSERVABILITY.md).
    sim::Counter *pagesMapped_ = nullptr;
    sim::Counter *pagesUnmapped_ = nullptr;
};

} // namespace gp::mem

#endif // GP_MEM_PAGE_TABLE_H
