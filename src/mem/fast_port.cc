#include "mem/fast_port.h"

namespace gp::mem {

bool
FastPort::resolve(Word ptr, gp::Access kind, unsigned size,
                  bool elide_check, MemAccess &acc, uint64_t *paddr)
{
    // Same pre-issue pointer check as the timed path's timedAccess(),
    // with the same elision contract (verifier/superblock proofs).
    if (!elide_check) {
        acc.fault = gp::checkAccess(ptr, kind, size);
        if (acc.fault != Fault::None)
            return false;
    }
    // Functional translation with demand allocation — identical
    // mapping behaviour to the timed miss path, including the
    // UnmappedAddress fault for revoked (unmapped + blocked) pages.
    auto pa = mem_.pageTable().translateAddr(ptr.addr());
    if (!pa) {
        acc.fault = Fault::UnmappedAddress;
        return false;
    }
    *paddr = *pa;
    return true;
}

MemAccess
FastPort::portLoad(Word ptr, unsigned size, uint64_t now,
                   bool elide_check)
{
    MemAccess acc;
    acc.startCycle = now;
    acc.completeCycle = now;
    uint64_t paddr = 0;
    if (!resolve(ptr, gp::Access::Load, size, elide_check, acc,
                 &paddr))
        return acc;
    if (size == 8) {
        acc.data = mem_.phys().readWord(paddr);
    } else {
        // Sub-word extraction mirrors MemorySystem::load exactly:
        // read the containing word, shift, mask, and drop the tag.
        const Word w = mem_.phys().readWord(paddr & ~uint64_t(7));
        const unsigned shift = unsigned(paddr & 7) * 8;
        const uint64_t mask = (uint64_t(1) << (size * 8)) - 1;
        acc.data = Word::fromInt((w.bits() >> shift) & mask);
    }
    return acc;
}

MemAccess
FastPort::portStore(Word ptr, Word value, unsigned size, uint64_t now,
                    bool elide_check)
{
    MemAccess acc;
    acc.startCycle = now;
    acc.completeCycle = now;
    uint64_t paddr = 0;
    if (!resolve(ptr, gp::Access::Store, size, elide_check, acc,
                 &paddr))
        return acc;
    if (size == 8)
        mem_.phys().writeWord(paddr, value);
    else
        mem_.phys().writeBytes(paddr, size, value.bits());
    return acc;
}

MemAccess
FastPort::portFetch(Word ip, uint64_t now, bool elide_check)
{
    MemAccess acc;
    acc.startCycle = now;
    acc.completeCycle = now;
    uint64_t paddr = 0;
    if (!resolve(ip, gp::Access::InstFetch, 8, elide_check, acc,
                 &paddr))
        return acc;
    acc.data = mem_.phys().readWord(paddr);
    return acc;
}

void
FastPort::portPoke(uint64_t vaddr, Word w)
{
    mem_.pokeWord(vaddr, w);
}

Word
FastPort::portPeek(uint64_t vaddr)
{
    return mem_.peekWord(vaddr);
}

} // namespace gp::mem
