/**
 * @file
 * Software job scheduler over the machine's hardware thread slots.
 *
 * The MAP offers 16 hardware thread slots; a real system runs many
 * more protection domains than that. This scheduler multiplexes a
 * queue of jobs onto free slots as they open. The salient point —
 * and the reason it is this short — is what a "context switch"
 * consists of here: starting a thread is nothing but loading an
 * entry pointer and initial registers. No page-table base, no ASID,
 * no segment-table reload, no flush: the registers *are* the
 * protection domain (paper §3, §6).
 */

#ifndef GP_OS_SCHEDULER_H
#define GP_OS_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "gp/word.h"
#include "isa/machine.h"
#include "sim/stats.h"

namespace gp::os {

class Kernel;

/** A schedulable unit: entry point plus its protection domain. */
struct Job
{
    Word entry; //!< execute pointer to the job's code
    std::vector<std::pair<unsigned, Word>> regs; //!< initial domain
    uint64_t id = 0; //!< caller-assigned identifier
};

/** Completion record for one job. */
struct JobResult
{
    uint64_t id = 0;
    bool faulted = false;
    Fault fault = Fault::None;
    uint64_t instructions = 0;
};

/** FIFO multiplexer of jobs onto hardware thread slots. */
class Scheduler
{
  public:
    explicit Scheduler(Kernel &kernel);

    /** Queue a job for execution. */
    void submit(Job job);

    /** @return number of jobs not yet completed. */
    size_t pending() const;

    /**
     * Run until every submitted job has halted or faulted, or the
     * cycle budget is exhausted. Jobs are dispatched into free slots
     * as earlier jobs finish. @return cycles consumed.
     */
    uint64_t runAll(uint64_t max_cycles = 10'000'000);

    /** Results of all completed jobs, in completion-scan order. */
    const std::vector<JobResult> &results() const { return results_; }

    sim::StatGroup &stats() { return stats_; }

  private:
    /** Dispatch queued jobs into free hardware slots. */
    void dispatch();

    /** Harvest finished threads into results_. */
    void harvest();

    Kernel &kernel_;
    std::deque<Job> queue_;
    /// live (thread, job id) pairs
    std::vector<std::pair<isa::Thread *, uint64_t>> running_;
    std::vector<JobResult> results_;
    sim::StatGroup stats_{"scheduler"};
};

} // namespace gp::os

#endif // GP_OS_SCHEDULER_H
