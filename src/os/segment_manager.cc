#include "os/segment_manager.h"

#include "sim/log.h"

namespace gp::os {

SegmentManager::SegmentManager(mem::MemorySystem &mem,
                               uint64_t heap_base, uint64_t heap_log2)
    : mem_(mem), buddy_(heap_base, heap_log2)
{
}

Result<Word>
SegmentManager::allocate(uint64_t bytes, Perm perm)
{
    if (bytes == 0)
        return Result<Word>::fail(Fault::BoundsViolation);

    auto block = buddy_.allocateBytes(bytes);
    if (!block)
        return Result<Word>::fail(Fault::BoundsViolation);

    auto [base, order] = *block;
    auto ptr = makePointer(perm, order, base);
    if (!ptr) {
        buddy_.free(base, order);
        return ptr;
    }

    // Ensure the pages are mapped (and unblocked if previously freed).
    mem_.mapRange(base, uint64_t(1) << order);

    Segment seg;
    seg.base = base;
    seg.lenLog2 = order;
    seg.requestedBytes = bytes;
    segments_[base] = seg;
    requestedBytes_ += bytes;
    allocatedBytes_ += uint64_t(1) << order;
    stats_.counter("segments_allocated")++;
    return ptr;
}

bool
SegmentManager::free(Word ptr)
{
    auto dec = decode(ptr);
    if (!dec)
        return false;
    return freeBase(dec.value.segmentBase());
}

bool
SegmentManager::freeBase(uint64_t base)
{
    auto it = segments_.find(base);
    if (it == segments_.end())
        return false;
    const Segment seg = it->second;

    // Unmap so dangling pointers fault instead of silently reading a
    // future occupant of the same virtual range.
    mem_.unmapRange(seg.base, uint64_t(1) << seg.lenLog2);
    buddy_.free(seg.base, seg.lenLog2);
    requestedBytes_ -= seg.requestedBytes;
    allocatedBytes_ -= uint64_t(1) << seg.lenLog2;
    segments_.erase(it);
    stats_.counter("segments_freed")++;
    return true;
}

bool
SegmentManager::revoke(uint64_t base)
{
    auto it = segments_.find(base);
    if (it == segments_.end())
        return false;
    mem_.unmapRange(it->second.base,
                    uint64_t(1) << it->second.lenLog2);
    it->second.revoked = true;
    stats_.counter("segments_revoked")++;
    return true;
}

bool
SegmentManager::reinstate(uint64_t base)
{
    auto it = segments_.find(base);
    if (it == segments_.end() || !it->second.revoked)
        return false;
    mem_.mapRange(it->second.base, uint64_t(1) << it->second.lenLog2);
    it->second.revoked = false;
    stats_.counter("segments_reinstated")++;
    return true;
}

Result<Word>
SegmentManager::relocate(uint64_t base, Perm perm)
{
    auto it = segments_.find(base);
    if (it == segments_.end())
        return Result<Word>::fail(Fault::UnmappedAddress);
    const Segment old = it->second;
    const uint64_t bytes = uint64_t(1) << old.lenLog2;

    auto fresh = allocate(old.requestedBytes, perm);
    if (!fresh)
        return fresh;
    const uint64_t new_base = PointerView(fresh.value).segmentBase();

    // Copy word-by-word (tags included), then cut off the old range.
    for (uint64_t off = 0; off < bytes; off += 8)
        mem_.pokeWord(new_base + off, mem_.peekWord(base + off));
    mem_.unmapRange(base, bytes);
    it = segments_.find(base); // allocate() may invalidate iterators
    if (it != segments_.end())
        it->second.revoked = true;
    stats_.counter("segments_relocated")++;
    return fresh;
}

std::optional<Segment>
SegmentManager::segmentContaining(uint64_t addr) const
{
    auto it = segments_.upper_bound(addr);
    if (it == segments_.begin())
        return std::nullopt;
    --it;
    const Segment &seg = it->second;
    if (addr < seg.base + (uint64_t(1) << seg.lenLog2))
        return seg;
    return std::nullopt;
}

} // namespace gp::os
