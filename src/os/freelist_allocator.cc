#include "os/freelist_allocator.h"

#include "sim/log.h"

namespace gp::os {

FreeListAllocator::FreeListAllocator(uint64_t base, uint64_t bytes)
{
    if (bytes == 0)
        sim::fatal("freelist: empty region");
    freeByAddr_.emplace(base, bytes);
    freeBytes_ = bytes;
}

std::optional<uint64_t>
FreeListAllocator::allocate(uint64_t bytes)
{
    if (bytes == 0)
        return std::nullopt;
    bytes = (bytes + 7) & ~uint64_t(7);

    // Best fit: smallest free block that holds the request.
    auto best = freeByAddr_.end();
    for (auto it = freeByAddr_.begin(); it != freeByAddr_.end();
         ++it) {
        if (it->second >= bytes &&
            (best == freeByAddr_.end() ||
             it->second < best->second)) {
            best = it;
        }
    }
    if (best == freeByAddr_.end()) {
        stats_.counter("failed_allocations")++;
        return std::nullopt;
    }

    const uint64_t base = best->first;
    const uint64_t remainder = best->second - bytes;
    freeByAddr_.erase(best);
    if (remainder > 0)
        freeByAddr_.emplace(base + bytes, remainder);

    live_.emplace(base, bytes);
    freeBytes_ -= bytes;
    stats_.counter("allocations")++;
    return base;
}

bool
FreeListAllocator::free(uint64_t base)
{
    auto it = live_.find(base);
    if (it == live_.end())
        return false;
    uint64_t addr = base;
    uint64_t size = it->second;
    const uint64_t released = it->second;
    live_.erase(it);

    // Coalesce with the free neighbour on each side if adjacent.
    auto next = freeByAddr_.lower_bound(addr);
    if (next != freeByAddr_.end() && addr + size == next->first) {
        size += next->second;
        freeByAddr_.erase(next);
        stats_.counter("coalesces")++;
    }
    if (!freeByAddr_.empty()) {
        auto prev = freeByAddr_.lower_bound(addr);
        if (prev != freeByAddr_.begin()) {
            --prev;
            if (prev->first + prev->second == addr) {
                addr = prev->first;
                size += prev->second;
                freeByAddr_.erase(prev);
                stats_.counter("coalesces")++;
            }
        }
    }

    freeByAddr_.emplace(addr, size);
    freeBytes_ += released;
    stats_.counter("frees")++;
    return true;
}

uint64_t
FreeListAllocator::largestFreeBlock() const
{
    uint64_t best = 0;
    for (const auto &[base, size] : freeByAddr_)
        best = std::max(best, size);
    return best;
}

} // namespace gp::os
