#include "os/gc.h"

#include <deque>
#include <unordered_set>

#include "gp/pointer.h"

namespace gp::os {

std::optional<uint64_t>
AddressSpaceGc::referent(Word w) const
{
    uint64_t addr;
    if (mode_ == Mode::TagAccurate) {
        if (!w.isPointer())
            return std::nullopt;
        addr = w.addr();
    } else {
        // Conservative: any word whose low 54 bits land inside a live
        // segment might be a pointer, so it must be treated as one.
        addr = w.bits() & kAddrMask;
    }
    auto seg = segments_.segmentContaining(addr);
    if (!seg)
        return std::nullopt;
    return seg->base;
}

GcStats
AddressSpaceGc::collect(const std::vector<Word> &roots)
{
    GcStats stats;
    std::unordered_set<uint64_t> marked;
    std::deque<uint64_t> worklist;

    auto mark = [&](Word w) {
        auto base = referent(w);
        if (!base)
            return;
        stats.pointersSeen++;
        if (marked.insert(*base).second)
            worklist.push_back(*base);
    };

    for (const Word &root : roots)
        mark(root);

    while (!worklist.empty()) {
        const uint64_t base = worklist.front();
        worklist.pop_front();
        auto seg = segments_.segmentContaining(base);
        if (!seg)
            continue;
        stats.segmentsScanned++;

        const uint64_t bytes = uint64_t(1) << seg->lenLog2;
        for (uint64_t off = 0; off < bytes; off += 8) {
            auto word = mem_.tryPeekWord(seg->base + off);
            if (!word)
                continue; // unmapped page: holds no pointers
            stats.wordsScanned++;
            mark(*word);
        }
    }

    // Sweep: free every live segment the mark phase never reached.
    std::vector<uint64_t> doomed;
    for (const auto &[base, seg] : segments_.segments()) {
        if (marked.count(base))
            stats.segmentsLive++;
        else
            doomed.push_back(base);
    }
    for (uint64_t base : doomed) {
        auto seg = segments_.segmentContaining(base);
        stats.bytesFreed += uint64_t(1) << seg->lenLog2;
        segments_.freeBase(base);
        stats.segmentsFreed++;
    }
    return stats;
}

GcStats
AddressSpaceGc::collectFromMachine(const isa::Machine &machine,
                                   const std::vector<Word> &extra_roots)
{
    std::vector<Word> roots = extra_roots;
    for (const isa::Thread &t : machine.threads()) {
        if (t.state() == isa::ThreadState::Idle)
            continue;
        roots.push_back(t.ip());
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            roots.push_back(t.reg(r));
    }
    return collect(roots);
}

} // namespace gp::os
