/**
 * @file
 * Best-fit free-list allocator over arbitrary-size blocks.
 *
 * This is the *counterfactual* to the paper's buddy system: guarded
 * pointers force power-of-two aligned segments because the bounds are
 * encoded in a 6-bit log2 length field, trading internal
 * fragmentation for a one-word capability. An architecture with full
 * base+limit bounds (e.g. 128-bit capabilities) could allocate exact
 * sizes with an allocator like this one. The A2 ablation bench runs
 * both over identical request streams to quantify exactly what the
 * 6-bit encoding costs and buys.
 *
 * Blocks are byte-granular (rounded to 8 bytes), best-fit selected,
 * and coalesced with free neighbours on release.
 */

#ifndef GP_OS_FREELIST_ALLOCATOR_H
#define GP_OS_FREELIST_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <optional>

#include "sim/stats.h"

namespace gp::os {

/** Best-fit allocator with address-ordered coalescing. */
class FreeListAllocator
{
  public:
    /** Manage [base, base + bytes). */
    FreeListAllocator(uint64_t base, uint64_t bytes);

    /**
     * Allocate exactly `bytes` (rounded up to 8).
     * @return block base or nullopt if no free block fits.
     */
    std::optional<uint64_t> allocate(uint64_t bytes);

    /**
     * Release a block previously returned by allocate().
     * @return false if base is not a live allocation.
     */
    bool free(uint64_t base);

    uint64_t freeBytes() const { return freeBytes_; }

    /** Size of the largest free block (0 if none). */
    uint64_t largestFreeBlock() const;

    size_t freeBlockCount() const { return freeByAddr_.size(); }
    size_t liveAllocations() const { return live_.size(); }

    sim::StatGroup &stats() { return stats_; }

  private:
    /// free blocks keyed by base -> size
    std::map<uint64_t, uint64_t> freeByAddr_;
    /// live allocations keyed by base -> size
    std::map<uint64_t, uint64_t> live_;
    uint64_t freeBytes_ = 0;
    sim::StatGroup stats_{"freelist"};
};

} // namespace gp::os

#endif // GP_OS_FREELIST_ALLOCATOR_H
