/**
 * @file
 * Call-gate helpers: the Fig. 4 return segment as a reusable ABI.
 *
 * A return segment lets a caller protect its own protection domain
 * from a subsystem it calls (two-way protection): before the call it
 * spills its live pointers into the segment and scrubs its registers;
 * the subsystem receives only an enter pointer to the segment's
 * reload stub, which restores the spilled state and jumps to the
 * saved continuation.
 *
 * Layout (fixed ABI, one 256-byte segment):
 *   word 0            continuation IP (execute pointer)
 *   words 1..5        five spill slots (r4..r8 by convention)
 *   byte 64 onwards   the reload stub (read via the stub's own IP)
 *
 * The stub restores r2 (the return segment's own RW pointer), r4..r8,
 * and jumps to the continuation; r15 is used as scratch and scrubbed.
 */

#ifndef GP_OS_CALL_GATE_H
#define GP_OS_CALL_GATE_H

#include "gp/fault.h"
#include "gp/word.h"

namespace gp::os {

class Kernel;

/** A ready-to-use Fig. 4 return segment. */
struct ReturnSegment
{
    Word rwPtr;    //!< read/write pointer (caller spills through it)
    Word enterPtr; //!< gateway to the reload stub (give to subsystem)
    uint64_t base = 0;

    /// Byte offset of spill slot i (0 = continuation IP).
    static constexpr uint64_t
    slotOffset(unsigned i)
    {
        return uint64_t(i) * 8;
    }

    /// Byte offset of the reload stub inside the segment.
    static constexpr uint64_t kStubOffset = 64;
};

/**
 * Allocate a return segment and install the reload stub. The stub
 * reloads r2 (this segment's RW pointer, from slot 6), r4..r8 (slots
 * 1..5), and jumps to the continuation IP in slot 0.
 */
Result<ReturnSegment> buildReturnSegment(Kernel &kernel);

} // namespace gp::os

#endif // GP_OS_CALL_GATE_H
