/**
 * @file
 * Virtual-address-space garbage collector (paper §4.3, "Address
 * Garbage Collection").
 *
 * Without enforced indirection, virtual addresses are allocated "for
 * all time", so the system software periodically reclaims unreachable
 * segments. Guarded pointers make this tractable because pointers are
 * self-identifying via the tag bit: the collector recursively scans
 * reachable segments from the root set, following exactly the tagged
 * words.
 *
 * A conservative mode (treating every word whose value lands in a live
 * segment as a potential pointer, as a tagless architecture must) is
 * provided for the C4 experiment, quantifying the precision the tag
 * bit buys.
 */

#ifndef GP_OS_GC_H
#define GP_OS_GC_H

#include <cstdint>
#include <vector>

#include "gp/word.h"
#include "isa/machine.h"
#include "mem/memory_system.h"
#include "os/segment_manager.h"

namespace gp::os {

/** Outcome of one collection. */
struct GcStats
{
    uint64_t segmentsScanned = 0;
    uint64_t wordsScanned = 0;
    uint64_t pointersSeen = 0;   //!< words treated as references
    uint64_t segmentsLive = 0;
    uint64_t segmentsFreed = 0;
    uint64_t bytesFreed = 0;
};

/** Mark-and-sweep collector over the segment manager's segments. */
class AddressSpaceGc
{
  public:
    /** Pointer-identification policy. */
    enum class Mode
    {
        TagAccurate,  //!< follow only tagged words (guarded pointers)
        Conservative, //!< follow any word that decodes into a segment
    };

    AddressSpaceGc(mem::MemorySystem &mem, SegmentManager &segments,
                   Mode mode = Mode::TagAccurate)
        : mem_(mem), segments_(segments), mode_(mode)
    {
    }

    /**
     * Mark from the given roots and free every unmarked segment.
     * Typically the roots are the registers of all live threads plus
     * any pointers the embedding system pins.
     */
    GcStats collect(const std::vector<Word> &roots);

    /**
     * Convenience: roots = every register and IP of every non-idle
     * thread of the machine, plus extra_roots.
     */
    GcStats collectFromMachine(const isa::Machine &machine,
                               const std::vector<Word> &extra_roots = {});

    Mode mode() const { return mode_; }

  private:
    /**
     * If the word references a live segment under the current mode,
     * @return that segment's base.
     */
    std::optional<uint64_t> referent(Word w) const;

    mem::MemorySystem &mem_;
    SegmentManager &segments_;
    Mode mode_;
};

} // namespace gp::os

#endif // GP_OS_GC_H
