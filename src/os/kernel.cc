#include "os/kernel.h"

#include "gp/ops.h"
#include "gp/pointer.h"
#include "isa/assembler.h"
#include "sim/log.h"
#include "sim/profile.h"

namespace gp::os {

Kernel::Kernel(const KernelConfig &config)
    : machine_(config.machine),
      segments_(machine_.mem(), config.heapBase, config.heapLog2)
{
}

Result<ProgramImage>
Kernel::loadWords(const std::vector<Word> &words, bool privileged)
{
    auto code = segments_.allocate(words.size() * 8,
                                   privileged
                                       ? Perm::ExecutePrivileged
                                       : Perm::ExecuteUser);
    if (!code)
        return Result<ProgramImage>::fail(code.fault);

    const PointerView view(code.value);
    for (size_t i = 0; i < words.size(); ++i)
        mem().pokeWord(view.segmentBase() + i * 8, words[i]);

    ProgramImage image;
    image.execPtr = code.value;
    image.base = view.segmentBase();
    image.lenLog2 = view.lenLog2();
    image.words = words.size();

    auto enter = makePointer(privileged ? Perm::EnterPrivileged
                                        : Perm::EnterUser,
                             image.lenLog2, image.base);
    if (!enter)
        return Result<ProgramImage>::fail(enter.fault);
    image.enterPtr = enter.value;
    return Result<ProgramImage>::ok(image);
}

Result<ProgramImage>
Kernel::loadAssembly(std::string_view source, bool privileged)
{
    const isa::Assembly assembly = isa::assemble(source);
    if (!assembly.ok) {
        sim::warn("loadAssembly: %s", assembly.error.c_str());
        return Result<ProgramImage>::fail(Fault::InvalidInstruction);
    }
    auto image = loadWords(assembly.words, privileged);
    if (image) {
        stats_.counter("programs_loaded")++;
        // Name the new protection domain for the profiler (cold
        // path: one registration per program load). Assembler labels
        // at instruction index 0 name the domain after the program's
        // entry label when one exists.
        std::string name =
            "prog" +
            std::to_string(stats_.counter("programs_loaded").value());
        for (const auto &[label, index] : assembly.labels) {
            if (index == 0) {
                name = label;
                break;
            }
        }
        sim::Profiler::instance().registerDomain(image.value.base,
                                                 std::move(name));
        for (const auto &[label, index] : assembly.labels)
            sim::Profiler::instance().registerSymbol(
                label, image.value.base + index * 8);
    }
    return image;
}

Result<SubsystemImage>
Kernel::buildSubsystem(std::string_view source,
                       const std::vector<Word> &table, bool privileged)
{
    const isa::Assembly assembly = isa::assemble(source);
    if (!assembly.ok) {
        sim::warn("buildSubsystem: %s", assembly.error.c_str());
        return Result<SubsystemImage>::fail(Fault::InvalidInstruction);
    }

    // Capability table first, then code. Table words fetched as
    // instructions would fault (tagged words never decode), so a
    // malicious caller cannot enter the table region usefully even if
    // it could forge an enter pointer — which it cannot.
    std::vector<Word> words = table;
    words.insert(words.end(), assembly.words.begin(),
                 assembly.words.end());

    auto image = loadWords(words, privileged);
    if (!image)
        return Result<SubsystemImage>::fail(image.fault);

    SubsystemImage sub;
    sub.base = image.value.base;
    sub.lenLog2 = image.value.lenLog2;
    sub.tableWords = table.size();

    auto enter = makePointer(privileged ? Perm::EnterPrivileged
                                        : Perm::EnterUser,
                             sub.lenLog2, sub.base + table.size() * 8);
    if (!enter)
        return Result<SubsystemImage>::fail(enter.fault);
    sub.enterPtr = enter.value;
    stats_.counter("subsystems_built")++;
    sim::Profiler::instance().registerDomain(
        sub.base,
        "sub" +
            std::to_string(stats_.counter("subsystems_built").value()));
    for (const auto &[label, index] : assembly.labels)
        sim::Profiler::instance().registerSymbol(
            label, sub.base + (table.size() + index) * 8);
    return Result<SubsystemImage>::ok(sub);
}

isa::Thread *
Kernel::spawn(Word exec_ptr,
              const std::vector<std::pair<unsigned, Word>> &regs)
{
    isa::Thread *thread = machine_.spawn(exec_ptr);
    if (!thread)
        return nullptr;
    for (const auto &[index, value] : regs)
        thread->setReg(index, value);
    stats_.counter("threads_spawned")++;
    return thread;
}

} // namespace gp::os
