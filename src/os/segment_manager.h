/**
 * @file
 * Segment manager: the OS service that mints guarded pointers.
 *
 * Allocates power-of-two segments from the shared virtual space via
 * the buddy allocator, returns guarded pointers of the requested
 * permission, and implements the §4.3 lifecycle operations: revocation
 * and relocation by page unmapping, and freeing back to the buddy
 * system. It also accounts internal fragmentation (requested vs
 * allocated bytes) for the C2 experiment.
 */

#ifndef GP_OS_SEGMENT_MANAGER_H
#define GP_OS_SEGMENT_MANAGER_H

#include <cstdint>
#include <map>
#include <optional>

#include "gp/fault.h"
#include "gp/pointer.h"
#include "mem/memory_system.h"
#include "os/buddy_allocator.h"
#include "sim/stats.h"

namespace gp::os {

/** Book-keeping record for one live segment. */
struct Segment
{
    uint64_t base = 0;
    uint64_t lenLog2 = 0;
    uint64_t requestedBytes = 0;
    bool revoked = false;
};

/** Allocates and tracks segments of the shared address space. */
class SegmentManager
{
  public:
    /**
     * @param mem        the memory system whose pages back segments
     * @param heap_base  start of the managed region (aligned)
     * @param heap_log2  log2 size of the managed region
     */
    SegmentManager(mem::MemorySystem &mem, uint64_t heap_base,
                   uint64_t heap_log2);

    /**
     * Allocate a segment of at least bytes and mint a pointer to its
     * base with the given permission.
     */
    Result<Word> allocate(uint64_t bytes, Perm perm);

    /**
     * Free the segment containing the pointer's base address. The
     * pages are unmapped so stale pointers fault rather than aliasing
     * future allocations.
     * @return false if no such segment is live.
     */
    bool free(Word ptr);

    /** Free by base address. */
    bool freeBase(uint64_t base);

    /**
     * Revoke all outstanding pointers to a segment by unmapping its
     * pages (§4.3). The segment stays allocated; subsequent accesses
     * through any copy of any pointer into it fault.
     */
    bool revoke(uint64_t base);

    /** Undo a revocation (e.g. after relocation bookkeeping). */
    bool reinstate(uint64_t base);

    /**
     * Relocate a segment's backing: copy contents to a fresh segment
     * of the same order and unmap the old pages. Old pointers fault;
     * the returned pointer addresses the new location.
     */
    Result<Word> relocate(uint64_t base, Perm perm);

    /** @return the live segment containing addr, if any. */
    std::optional<Segment> segmentContaining(uint64_t addr) const;

    /** All live segments keyed by base. */
    const std::map<uint64_t, Segment> &segments() const
    {
        return segments_;
    }

    /** Sum of requested bytes across live segments. */
    uint64_t requestedBytes() const { return requestedBytes_; }

    /** Sum of allocated (power-of-two) bytes across live segments. */
    uint64_t allocatedBytes() const { return allocatedBytes_; }

    BuddyAllocator &buddy() { return buddy_; }
    sim::StatGroup &stats() { return stats_; }

  private:
    mem::MemorySystem &mem_;
    BuddyAllocator buddy_;
    std::map<uint64_t, Segment> segments_;
    uint64_t requestedBytes_ = 0;
    uint64_t allocatedBytes_ = 0;
    sim::StatGroup stats_{"segman"};
};

} // namespace gp::os

#endif // GP_OS_SEGMENT_MANAGER_H
