#include "os/buddy_allocator.h"

#include "sim/log.h"

namespace gp::os {

BuddyAllocator::BuddyAllocator(uint64_t base, uint64_t len_log2,
                               uint64_t min_log2)
    : base_(base), regionLog2_(len_log2), minLog2_(min_log2)
{
    if (min_log2 > len_log2)
        sim::fatal("buddy: min order exceeds region order");
    if (base & ((uint64_t(1) << len_log2) - 1))
        sim::fatal("buddy: region base not aligned to its size");
    freeLists_.resize(len_log2 - min_log2 + 1);
    freeLists_.back().insert(base);
}

std::optional<uint64_t>
BuddyAllocator::allocate(uint64_t order)
{
    if (order < minLog2_)
        order = minLog2_;
    if (order > regionLog2_)
        return std::nullopt;

    // Find the smallest free block of order >= the request.
    uint64_t from = order;
    while (from <= regionLog2_ &&
           freeLists_[from - minLog2_].empty()) {
        from++;
    }
    if (from > regionLog2_) {
        stats_.counter("failed_allocations")++;
        return std::nullopt;
    }

    auto &list = freeLists_[from - minLog2_];
    const uint64_t block = *list.begin();
    list.erase(list.begin());

    // Split down to the requested order, freeing the upper halves.
    while (from > order) {
        from--;
        freeLists_[from - minLog2_].insert(block +
                                           (uint64_t(1) << from));
        stats_.counter("splits")++;
    }

    stats_.counter("allocations")++;
    return block;
}

std::optional<std::pair<uint64_t, uint64_t>>
BuddyAllocator::allocateBytes(uint64_t bytes)
{
    uint64_t order = minLog2_;
    while ((uint64_t(1) << order) < bytes && order < regionLog2_)
        order++;
    if ((uint64_t(1) << order) < bytes)
        return std::nullopt;
    auto base = allocate(order);
    if (!base)
        return std::nullopt;
    return std::make_pair(*base, order);
}

bool
BuddyAllocator::free(uint64_t base, uint64_t order)
{
    if (order < minLog2_ || order > regionLog2_)
        return false;
    if ((base - base_) & ((uint64_t(1) << order) - 1))
        return false;

    // Coalesce with the buddy as long as it is also free.
    uint64_t addr = base;
    while (order < regionLog2_) {
        const uint64_t buddy = buddyOf(addr, order);
        auto &list = freeLists_[order - minLog2_];
        auto it = list.find(buddy);
        if (it == list.end())
            break;
        list.erase(it);
        addr = std::min(addr, buddy);
        order++;
        stats_.counter("coalesces")++;
    }
    freeLists_[order - minLog2_].insert(addr);
    stats_.counter("frees")++;
    return true;
}

uint64_t
BuddyAllocator::freeBytes() const
{
    uint64_t total = 0;
    for (size_t i = 0; i < freeLists_.size(); ++i) {
        total += freeLists_[i].size() *
                 (uint64_t(1) << (i + minLog2_));
    }
    return total;
}

std::optional<uint64_t>
BuddyAllocator::largestFreeOrder() const
{
    for (size_t i = freeLists_.size(); i-- > 0;) {
        if (!freeLists_[i].empty())
            return i + minLog2_;
    }
    return std::nullopt;
}

size_t
BuddyAllocator::freeBlockCount() const
{
    size_t count = 0;
    for (const auto &list : freeLists_)
        count += list.size();
    return count;
}

} // namespace gp::os
