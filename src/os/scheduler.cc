#include "os/scheduler.h"

#include "os/kernel.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace gp::os {

Scheduler::Scheduler(Kernel &kernel) : kernel_(kernel) {}

void
Scheduler::submit(Job job)
{
    queue_.push_back(std::move(job));
    stats_.counter("jobs_submitted")++;
}

size_t
Scheduler::pending() const
{
    return queue_.size() + running_.size();
}

void
Scheduler::dispatch()
{
    while (!queue_.empty()) {
        Job &job = queue_.front();
        isa::Thread *t = kernel_.spawn(job.entry, job.regs);
        if (!t)
            return; // no free slot; try again after progress
        running_.emplace_back(t, job.id);
        GP_TRACE(Sched, kernel_.machine().cycle(),
                 uint32_t(job.id), "dispatch", "job=%llu thread=%u",
                 static_cast<unsigned long long>(job.id), t->id());
        queue_.pop_front();
        stats_.counter("jobs_dispatched")++;
    }
}

void
Scheduler::harvest()
{
    for (auto it = running_.begin(); it != running_.end();) {
        isa::Thread *t = it->first;
        // Ready and Pending (parked on a cross-shard split
        // transaction under the sharded mesh engine) threads are
        // both live: only Halted/Faulted jobs are harvested, so a
        // job blocked on remote memory is never reaped early.
        if (t->state() == isa::ThreadState::Halted ||
            t->state() == isa::ThreadState::Faulted) {
            JobResult result;
            result.id = it->second;
            result.faulted = t->state() == isa::ThreadState::Faulted;
            result.fault = t->faultRecord().fault;
            result.instructions = t->instsRetired();
            results_.push_back(result);
            GP_TRACE(Sched, kernel_.machine().cycle(),
                     uint32_t(result.id),
                     result.faulted ? "job-faulted" : "job-completed",
                     "job=%llu insts=%llu fault=%s",
                     static_cast<unsigned long long>(result.id),
                     static_cast<unsigned long long>(
                         result.instructions),
                     std::string(faultName(result.fault)).c_str());
            stats_.counter(result.faulted ? "jobs_faulted"
                                          : "jobs_completed")++;
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
}

uint64_t
Scheduler::runAll(uint64_t max_cycles)
{
    const uint64_t start = kernel_.machine().cycle();
    dispatch();
    uint64_t spent = 0;
    while (pending() > 0 && spent < max_cycles) {
        // Advance in small batches: enough to amortize the scan,
        // small enough to refill slots promptly.
        for (int i = 0; i < 64 && !kernel_.machine().allDone(); ++i)
            kernel_.machine().step();
        if (kernel_.machine().allDone() && running_.empty() &&
            !queue_.empty()) {
            // All slots idle but jobs queued: dispatch makes progress.
        } else if (kernel_.machine().allDone() && queue_.empty()) {
            harvest();
            break;
        }
        harvest();
        dispatch();
        spent = kernel_.machine().cycle() - start;
    }
    harvest();
    if (pending() > 0)
        sim::warn("scheduler: cycle budget exhausted with %zu jobs "
                  "pending",
                  pending());
    return kernel_.machine().cycle() - start;
}

} // namespace gp::os
