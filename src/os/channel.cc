#include "os/channel.h"

#include "gp/ops.h"
#include "os/kernel.h"

namespace gp::os {

namespace {

uint64_t
roundPow2(uint64_t v)
{
    uint64_t p = 2;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Result<Channel>
Channel::create(Kernel &kernel, uint64_t slots)
{
    Channel ch(kernel);
    ch.slots_ = roundPow2(std::max<uint64_t>(slots, 2));

    auto ring =
        kernel.segments().allocate(ch.slots_ * 8, Perm::ReadWrite);
    auto head = kernel.segments().allocate(8, Perm::ReadWrite);
    auto tail = kernel.segments().allocate(8, Perm::ReadWrite);
    if (!ring || !head || !tail) {
        return Result<Channel>::fail(ring ? (head ? tail.fault
                                                  : head.fault)
                                          : ring.fault);
    }

    ch.ringBase_ = PointerView(ring.value).segmentBase();
    ch.headBase_ = PointerView(head.value).segmentBase();
    ch.tailBase_ = PointerView(tail.value).segmentBase();

    // Narrowing a fresh RW capability to RO can only fail if the
    // allocator handed back a non-pointer or an already-narrowed
    // word; that is an error to report to the caller, not a reason
    // to kill the simulator.
    Fault narrow_fault = Fault::None;
    auto ro = [&narrow_fault](Word w) {
        auto r = restrictPerm(w, Perm::ReadOnly);
        if (!r) {
            narrow_fault = r.fault;
            return Word{};
        }
        return r.value;
    };

    ch.sender_ = ChannelEndpoint{ring.value, head.value,
                                 ro(tail.value)};
    ch.receiver_ = ChannelEndpoint{ro(ring.value), ro(head.value),
                                   tail.value};
    if (narrow_fault != Fault::None)
        return Result<Channel>::fail(narrow_fault);

    // Counters start at zero (memory is zero-filled on first touch,
    // but make it explicit).
    kernel.mem().pokeWord(ch.headBase_, Word::fromInt(0));
    kernel.mem().pokeWord(ch.tailBase_, Word::fromInt(0));
    return Result<Channel>::ok(ch);
}

uint64_t
Channel::depth() const
{
    const uint64_t head = kernel_->mem().peekWord(headBase_).bits();
    const uint64_t tail = kernel_->mem().peekWord(tailBase_).bits();
    return head - tail;
}

bool
Channel::send(Word value)
{
    const uint64_t head = kernel_->mem().peekWord(headBase_).bits();
    const uint64_t tail = kernel_->mem().peekWord(tailBase_).bits();
    if (head - tail >= slots_)
        return false;
    kernel_->mem().pokeWord(ringBase_ + (head & (slots_ - 1)) * 8,
                            value);
    kernel_->mem().pokeWord(headBase_, Word::fromInt(head + 1));
    return true;
}

std::optional<Word>
Channel::tryRecv()
{
    const uint64_t head = kernel_->mem().peekWord(headBase_).bits();
    const uint64_t tail = kernel_->mem().peekWord(tailBase_).bits();
    if (head == tail)
        return std::nullopt;
    const Word value =
        kernel_->mem().peekWord(ringBase_ + (tail & (slots_ - 1)) * 8);
    kernel_->mem().pokeWord(tailBase_, Word::fromInt(tail + 1));
    return value;
}

} // namespace gp::os
