/**
 * @file
 * Capability-passing channels: single-producer single-consumer rings
 * built entirely from guarded-pointer primitives.
 *
 * The paper's sharing model (§6): "A thread can grant another thread
 * access to private data by passing a guarded pointer to it." This
 * module packages that as a typed channel. Because memory words carry
 * the tag bit, *capabilities themselves* travel through the ring —
 * a receiver can be granted segments at runtime by an untrusting
 * sender, with the permissions the sender chose (typically narrowed
 * with RESTRICT/SUBSEG first).
 *
 * Protection is asymmetric by construction, with no locks or kernel
 * mediation:
 *   - the sender holds read/write on the ring and head counter but
 *     only read-only on the tail counter;
 *   - the receiver holds read-only on the ring and head but
 *     read/write on the tail.
 * Neither side can corrupt the other's cursor, and the receiver can
 * never fabricate ring contents.
 */

#ifndef GP_OS_CHANNEL_H
#define GP_OS_CHANNEL_H

#include <cstdint>
#include <optional>

#include "gp/fault.h"
#include "gp/word.h"

namespace gp::os {

class Kernel;

/** The three pointers one side of a channel holds. */
struct ChannelEndpoint
{
    Word ring; //!< ring buffer (RW for sender, RO for receiver)
    Word head; //!< producer counter (RW sender, RO receiver)
    Word tail; //!< consumer counter (RO sender, RW receiver)
};

/** An SPSC capability channel. */
class Channel
{
  public:
    /**
     * Create a channel with the given number of one-word slots
     * (rounded up to a power of two, min 2).
     */
    static Result<Channel> create(Kernel &kernel, uint64_t slots);

    /** Pointers to hand to the sending thread. */
    const ChannelEndpoint &sender() const { return sender_; }

    /** Pointers to hand to the receiving thread. */
    const ChannelEndpoint &receiver() const { return receiver_; }

    uint64_t slots() const { return slots_; }

    /**
     * Host-side send (functional, for tests and host/guest mixing).
     * @return false if the ring is full.
     */
    bool send(Word value);

    /** Host-side receive. @return nullopt if the ring is empty. */
    std::optional<Word> tryRecv();

    /** Words currently queued. */
    uint64_t depth() const;

  private:
    friend struct gp::Result<Channel>;

    /** Empty channel: placeholder value inside a faulting Result. */
    Channel() = default;

    explicit Channel(Kernel &kernel) : kernel_(&kernel) {}

    Kernel *kernel_ = nullptr;
    ChannelEndpoint sender_;
    ChannelEndpoint receiver_;
    uint64_t slots_ = 0;
    uint64_t ringBase_ = 0;
    uint64_t headBase_ = 0;
    uint64_t tailBase_ = 0;
};

} // namespace gp::os

#endif // GP_OS_CHANNEL_H
