#include "os/call_gate.h"

#include "gp/pointer.h"
#include "isa/assembler.h"
#include "os/kernel.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace gp::os {

Result<ReturnSegment>
buildReturnSegment(Kernel &kernel)
{
    auto rw = kernel.segments().allocate(256, Perm::ReadWrite);
    if (!rw)
        return Result<ReturnSegment>::fail(rw.fault);

    ReturnSegment gate;
    gate.rwPtr = rw.value;
    gate.base = PointerView(rw.value).segmentBase();

    // The reload stub. Loads go through the stub's own IP-derived
    // pointer (execute grants read); unspilled slots restore as 0,
    // which conveniently scrubs those registers.
    const isa::Assembly stub = isa::assemble(R"(
        getip r15
        leabi r15, r15, 0
        ld r14, 0(r15)   ; continuation IP
        ld r4, 8(r15)
        ld r5, 16(r15)
        ld r6, 24(r15)
        ld r7, 32(r15)
        ld r8, 40(r15)
        ld r2, 48(r15)   ; this segment's own RW pointer
        movi r15, 0
        jmp r14
    )");
    if (!stub.ok)
        sim::panic("return-segment stub failed to assemble: %s",
                   stub.error.c_str());

    for (size_t i = 0; i < stub.words.size(); ++i) {
        kernel.mem().pokeWord(gate.base + ReturnSegment::kStubOffset +
                                  i * 8,
                              stub.words[i]);
    }

    auto enter =
        makePointer(Perm::EnterUser, PointerView(rw.value).lenLog2(),
                    gate.base + ReturnSegment::kStubOffset);
    if (!enter)
        return Result<ReturnSegment>::fail(enter.fault);
    gate.enterPtr = enter.value;
    kernel.stats().counter("return_segments_built")++;
    GP_TRACE(Gate, kernel.machine().cycle(), 0, "return-segment",
             "base=0x%llx stub=+0x%x",
             static_cast<unsigned long long>(gate.base),
             unsigned(ReturnSegment::kStubOffset));
    return Result<ReturnSegment>::ok(gate);
}

} // namespace gp::os
