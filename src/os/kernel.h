/**
 * @file
 * The minimal privileged runtime ("kernel") of the guarded-pointer
 * machine.
 *
 * The paper's thesis is that almost nothing needs to be privileged:
 * the kernel here only (a) allocates segments and mints their initial
 * pointers — the role SETPTR-bearing boot code plays on real hardware —
 * and (b) assembles/loads programs and protected subsystems. Everything
 * else (sharing, subsystem entry, permission restriction) happens in
 * unprivileged simulated code through pointer operations.
 */

#ifndef GP_OS_KERNEL_H
#define GP_OS_KERNEL_H

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "gp/fault.h"
#include "gp/word.h"
#include "isa/machine.h"
#include "os/segment_manager.h"
#include "sim/stats.h"

namespace gp::os {

/** Kernel-level configuration. */
struct KernelConfig
{
    isa::MachineConfig machine;
    uint64_t heapBase = uint64_t(1) << 32; //!< managed VA region base
    uint64_t heapLog2 = 32;                //!< managed VA region size
};

/** A loaded program's linkage pointers. */
struct ProgramImage
{
    Word execPtr;  //!< execute pointer at the code base
    Word enterPtr; //!< enter pointer at the code base
    uint64_t base = 0;
    uint64_t lenLog2 = 0;
    size_t words = 0;
};

/**
 * A protected subsystem (Fig. 3): a code segment whose leading words
 * are a capability table (pointers to the subsystem's private data),
 * followed by the code. Callers receive only the enter pointer, which
 * targets the first instruction; the subsystem reads its capability
 * table through its own instruction pointer.
 */
struct SubsystemImage
{
    Word enterPtr;   //!< the only pointer callers ever hold
    uint64_t base = 0;
    uint64_t lenLog2 = 0;
    size_t tableWords = 0; //!< capability-table size in words
};

/** The privileged runtime. */
class Kernel
{
  public:
    explicit Kernel(const KernelConfig &config = KernelConfig{});

    isa::Machine &machine() { return machine_; }
    mem::MemorySystem &mem() { return machine_.mem(); }
    SegmentManager &segments() { return segments_; }
    sim::StatGroup &stats() { return stats_; }

    /**
     * Assemble source and load it into a fresh code segment.
     * @param privileged mint execute-/enter-privileged pointers
     */
    Result<ProgramImage> loadAssembly(std::string_view source,
                                      bool privileged = false);

    /**
     * Build a protected subsystem: capability-table words are placed at
     * the segment base, code follows, and the returned enter pointer
     * targets the first instruction. Subsystem code addresses table
     * entry i as segment offset 8*i via GETIP + LEABI (see the Fig. 3
     * example).
     */
    Result<SubsystemImage>
    buildSubsystem(std::string_view source,
                   const std::vector<Word> &table,
                   bool privileged = false);

    /**
     * Start a thread at an execute pointer with initial register
     * values (the caller's protection domain).
     * @return nullptr when every hardware slot is busy.
     */
    isa::Thread *
    spawn(Word exec_ptr,
          const std::vector<std::pair<unsigned, Word>> &regs = {});

  private:
    /** Allocate a code segment, poke words, mint pointers. */
    Result<ProgramImage> loadWords(const std::vector<Word> &words,
                                   bool privileged);

    isa::Machine machine_;
    SegmentManager segments_;
    sim::StatGroup stats_{"kernel"};
};

} // namespace gp::os

#endif // GP_OS_KERNEL_H
