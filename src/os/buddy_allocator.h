/**
 * @file
 * Buddy allocator for the shared virtual address space.
 *
 * Guarded-pointer segments must be power-of-two sized and aligned on
 * their length, and §4.2 of the paper prescribes exactly this buddy
 * scheme to bound external fragmentation of the virtual space: freed
 * blocks coalesce with their buddies back into larger blocks. The C2
 * fragmentation bench measures both internal waste (power-of-two
 * rounding) and external fragmentation under churn using this
 * allocator.
 */

#ifndef GP_OS_BUDDY_ALLOCATOR_H
#define GP_OS_BUDDY_ALLOCATOR_H

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "sim/stats.h"

namespace gp::os {

/** Power-of-two buddy allocator over [base, base + 2^len_log2). */
class BuddyAllocator
{
  public:
    /**
     * @param base       start of the managed region; must be aligned
     *                   to 2^len_log2
     * @param len_log2   log2 of the managed region size in bytes
     * @param min_log2   smallest block order handed out (default one
     *                   8-byte word)
     */
    BuddyAllocator(uint64_t base, uint64_t len_log2,
                   uint64_t min_log2 = 3);

    /**
     * Allocate a block of exactly 2^order bytes, aligned on its size.
     * @return the block base, or nullopt when no block fits.
     */
    std::optional<uint64_t> allocate(uint64_t order);

    /**
     * Allocate the smallest power-of-two block holding bytes.
     * @return (base, order) or nullopt.
     */
    std::optional<std::pair<uint64_t, uint64_t>>
    allocateBytes(uint64_t bytes);

    /**
     * Return a block to the allocator, coalescing with free buddies.
     * @return false if the block was not an allocated block boundary.
     */
    bool free(uint64_t base, uint64_t order);

    /** @return total free bytes. */
    uint64_t freeBytes() const;

    /** @return the order of the largest free block, or nullopt. */
    std::optional<uint64_t> largestFreeOrder() const;

    /** @return number of free blocks (fragmentation indicator). */
    size_t freeBlockCount() const;

    uint64_t regionBase() const { return base_; }
    uint64_t regionLog2() const { return regionLog2_; }
    uint64_t minLog2() const { return minLog2_; }

    sim::StatGroup &stats() { return stats_; }

  private:
    /** @return the buddy address of a block of the given order. */
    uint64_t
    buddyOf(uint64_t addr, uint64_t order) const
    {
        return ((addr - base_) ^ (uint64_t(1) << order)) + base_;
    }

    uint64_t base_;
    uint64_t regionLog2_;
    uint64_t minLog2_;
    /// freeLists_[order - minLog2_] = set of free block bases.
    std::vector<std::set<uint64_t>> freeLists_;
    sim::StatGroup stats_{"buddy"};
};

} // namespace gp::os

#endif // GP_OS_BUDDY_ALLOCATOR_H
