/**
 * @file
 * Experiment R3 (§5.1): HP PA-RISC page-group protection.
 *
 * Only four page groups are fast (the PID registers) plus one global
 * group. This bench sweeps the per-domain active-segment working set
 * past four and measures the PID-reload trap rate and its cost, next
 * to guarded pointers which have no equivalent limit — a thread can
 * actively use any number of segments.
 */

#include "baselines/guarded_scheme.h"
#include "baselines/page_group_scheme.h"
#include "baselines/runner.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload(uint32_t segments_per_domain)
{
    sim::WorkloadConfig w;
    w.numDomains = 4;
    w.segmentsPerDomain = segments_per_domain;
    w.sharedSegments = 1;
    w.segmentBytes = 4096;
    w.sharedFraction = 0.05;
    w.switchInterval = 128;
    w.jumpFraction = 0.3; // hop between segments often
    w.localityMean = 8.0;
    w.seed = 31;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R3: page-group PID thrash vs active segments per domain",
        {"active segs/domain", "pid traps/kiloref",
         "page-group cyc/ref", "guarded cyc/ref", "slowdown"});

    for (uint32_t segs : {2u, 4u, 5u, 8u, 16u, 32u}) {
        const auto w = workload(segs);

        PageGroupScheme pg(cache, 64, costs);
        sim::TraceGenerator gen1(w);
        RunResult rpg = runTrace(pg, gen1.generate(kRefs));

        GuardedScheme g(cache, 64, costs);
        sim::TraceGenerator gen2(w);
        RunResult rg = runTrace(g, gen2.generate(kRefs));

        const double traps =
            1000.0 * double(pg.stats().get("pid_traps")) /
            double(kRefs);
        t.addRow({gp::bench::fmt("%u", segs),
                  gp::bench::fmt("%.2f", traps),
                  gp::bench::fmt("%.2f", rpg.cyclesPerRef()),
                  gp::bench::fmt("%.2f", rg.cyclesPerRef()),
                  gp::bench::fmt("%.2fx", rpg.cyclesPerRef() /
                                              rg.cyclesPerRef())});
    }
    t.print();

    std::printf(
        "\nClaims under test (SS5.1): with <=4 active page groups the "
        "schemes tie (beyond the per-access TLB probe);\n"
        "past 4 the PID registers thrash and the trap cost grows, "
        "while guarded pointers have no working-set cliff —\n"
        "'guarded pointers eliminate the need for special registers "
        "and provide protection at more flexible granularities'.\n");
    return 0;
}
