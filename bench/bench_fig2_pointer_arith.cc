/**
 * @file
 * Experiment F2 (Fig. 2): pointer derivation with the masked
 * comparator.
 *
 * Measures the LEA/LEAB validation datapath against a raw unchecked
 * 64-bit add, in-bounds and out-of-bounds, plus the §2.2 cast
 * sequences. The claim under test: segment-bounds checking costs a
 * mask-and-compare, not a table walk, so checked pointer arithmetic
 * is within a small constant of unchecked arithmetic.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gp/ops.h"
#include "sim/rng.h"

namespace {

using namespace gp;

void
printValidationTable()
{
    // Sweep derivation across segment lengths: fraction of random
    // offsets that fault, confirming the comparator triggers exactly
    // when the fixed bits change.
    bench::Table t("F2: LEA masked-comparator behaviour (Fig. 2)",
                   {"seg len", "offset range", "derivations",
                    "in-bounds ok", "out-of-bounds faulted"});
    sim::Rng rng(42);
    for (uint64_t len : {4, 8, 12, 16, 24}) {
        const uint64_t bytes = uint64_t(1) << len;
        const uint64_t base = bytes * 7;
        auto p = makePointer(Perm::ReadWrite, len, base + bytes / 2);
        uint64_t ok = 0, fault = 0, wrong = 0;
        const uint64_t trials = 20000;
        for (uint64_t i = 0; i < trials; ++i) {
            const int64_t delta =
                int64_t(rng.below(4 * bytes)) - int64_t(2 * bytes);
            const uint64_t target =
                PointerView(p.value).addr() + uint64_t(delta);
            const bool in_bounds =
                target >= base && target < base + bytes;
            auto r = lea(p.value, delta);
            if (bool(r) == in_bounds)
                in_bounds ? ok++ : fault++;
            else
                wrong++;
        }
        t.addRow({bench::fmt("2^%llu", (unsigned long long)len),
                  bench::fmt("+/-2^%llu", (unsigned long long)(len + 1)),
                  bench::fmt("%llu", (unsigned long long)trials),
                  bench::fmt("%llu", (unsigned long long)ok),
                  bench::fmt("%llu (mispredicted: %llu)",
                             (unsigned long long)fault,
                             (unsigned long long)wrong)});
    }
    t.print();
}

void
BM_UncheckedAdd(benchmark::State &state)
{
    uint64_t addr = 0x10000;
    for (auto _ : state) {
        addr += 8;
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_UncheckedAdd);

void
BM_LeaInBounds(benchmark::State &state)
{
    Word p = makePointer(Perm::ReadWrite, 20, 0x100000).value;
    int64_t delta = 8;
    for (auto _ : state) {
        auto r = lea(p, delta);
        benchmark::DoNotOptimize(r);
        delta = (delta + 8) & 0xffff;
    }
}
BENCHMARK(BM_LeaInBounds);

void
BM_LeaOutOfBounds(benchmark::State &state)
{
    // Fault path: the comparator fires and no result is produced.
    Word p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    for (auto _ : state) {
        auto r = lea(p, 1 << 20);
        benchmark::DoNotOptimize(r.fault);
    }
}
BENCHMARK(BM_LeaOutOfBounds);

void
BM_Leab(benchmark::State &state)
{
    Word p = makePointer(Perm::ReadWrite, 20, 0x123456).value;
    for (auto _ : state) {
        auto r = leab(p, 64);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Leab);

void
BM_PtrIntCastRoundTrip(benchmark::State &state)
{
    // The §2.2 C-cast sequences: ptr -> int -> ptr.
    Word p = makePointer(Perm::ReadWrite, 20, 0x123456).value;
    for (auto _ : state) {
        auto i = ptrToInt(p);
        auto q = intToPtr(p, i.value.bits());
        benchmark::DoNotOptimize(q);
    }
}
BENCHMARK(BM_PtrIntCastRoundTrip);

void
BM_RestrictSubseg(benchmark::State &state)
{
    Word p = makePointer(Perm::ReadWrite, 20, 0x123456).value;
    for (auto _ : state) {
        auto r = restrictPerm(p, Perm::ReadOnly);
        auto s = subseg(p, 10);
        benchmark::DoNotOptimize(r);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_RestrictSubseg);

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);
    printValidationTable();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
