/**
 * @file
 * Ablation A1: robustness of the R1 conclusion to the cost model.
 *
 * The trace-model benches charge specific cycle counts for walks,
 * fills, and flushes (baselines/scheme.h Costs). This ablation sweeps
 * those constants across an order of magnitude and re-runs the
 * central guarded-vs-paged-flush comparison at a small scheduling
 * quantum: if the paper's conclusion only held for one lucky set of
 * constants, it would show here. Expected: the *ratio* moves, the
 * *ordering* never does — guarded pointers win at every point because
 * their switch cost is identically zero, not merely small.
 */

#include "baselines/runner.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload()
{
    sim::WorkloadConfig w;
    w.numDomains = 8;
    w.segmentsPerDomain = 6;
    w.sharedSegments = 4;
    w.segmentBytes = 8192;
    w.switchInterval = 32;
    w.seed = 555;
    return w;
}

double
cyclesPerRef(SchemeKind kind, const Costs &costs)
{
    auto scheme = makeScheme(kind, gp::bench::mapCache(), 64, costs);
    sim::TraceGenerator gen(workload());
    return runTrace(*scheme, gen, 100000).cyclesPerRef();
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    gp::bench::Table t(
        "A1: guarded vs paged-flush across cost models (q=32)",
        {"pt walk", "ext fill", "flush fixed", "guarded cyc/ref",
         "flush cyc/ref", "ratio"});

    for (uint64_t walk : {5u, 20u, 80u}) {
        for (uint64_t fill : {2u, 8u, 32u}) {
            for (uint64_t switch_fixed : {1u, 5u, 25u}) {
                Costs costs;
                costs.tlbWalk = walk;
                costs.extMem = fill;
                costs.switchFixed = switch_fixed;
                const double g =
                    cyclesPerRef(SchemeKind::Guarded, costs);
                const double f =
                    cyclesPerRef(SchemeKind::PagedFlush, costs);
                t.addRow({gp::bench::fmt("%llu",
                                         (unsigned long long)walk),
                          gp::bench::fmt("%llu",
                                         (unsigned long long)fill),
                          gp::bench::fmt(
                              "%llu",
                              (unsigned long long)switch_fixed),
                          gp::bench::fmt("%.2f", g),
                          gp::bench::fmt("%.2f", f),
                          gp::bench::fmt("%.2fx", f / g)});
            }
        }
    }
    t.print();

    std::printf(
        "\nAblation conclusion: the guarded-pointer advantage is "
        "structural (0 switch work, translation only on miss),\nnot "
        "an artifact of the chosen constants — the ordering holds at "
        "every point of the sweep.\n");
    return 0;
}
