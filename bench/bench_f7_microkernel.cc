/**
 * @file
 * Experiment F7 (§2.3): the microkernel claim.
 *
 * "Modules of an operating system, e.g., the file-system, can be
 * implemented as unprivileged protected subsystems ... This can bring
 * higher efficiency to modern microkernel operating systems such as
 * Mach."
 *
 * A request in a microkernel typically crosses several servers. This
 * bench runs a three-server chain (VFS -> FS -> block driver), each
 * an unprivileged protected subsystem with private state, end to end
 * on the MAP simulator — and compares cycles/request against the
 * trap-based IPC models of the day (per crossing: trap + domain
 * switch, with and without TLB/cache flush).
 */

#include <string>

#include "baselines/runner.h"
#include "bench_util.h"
#include "os/kernel.h"
#include "sim/log.h"

namespace {

using namespace gp;

constexpr int kRequests = 256;

double
runChain(os::Kernel &kernel, Word vfs_enter, int depth_marker)
{
    (void)depth_marker;
    auto caller = kernel.loadAssembly(R"(
        movi r10, 0
        movi r11, )" + std::to_string(kRequests) +
                                      R"(
        loop:
        getip r14
        leai r14, r14, 24
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");
    if (!caller)
        sim::fatal("F7: caller failed");
    const uint64_t before = kernel.machine().cycle();
    isa::Thread *t =
        kernel.spawn(caller.value.execPtr, {{1, vfs_enter}});
    if (!t)
        sim::fatal("F7: no slot");
    kernel.machine().run(50'000'000);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("F7: chain faulted: %s",
                   std::string(faultName(t->faultRecord().fault))
                       .c_str());
    return double(kernel.machine().cycle() - before) / kRequests;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    os::Kernel kernel;

    // Bottom server: the "block driver" — touches its private buffer
    // and returns via r13.
    auto buffer = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto driver = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)
        ld r4, 0(r3)
        addi r4, r4, 1
        st r4, 0(r3)
        jmp r13
    )",
                                        {buffer.value});

    // Middle server: the "file system" — consults its private table,
    // then calls the driver (enter pointer from its own capability
    // table), then returns to its caller via r12.
    auto fs_table = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto fs = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)       ; private fs table
        ld r4, 8(r2)       ; driver enter pointer
        ld r5, 0(r3)       ; touch fs state
        getip r13
        leai r13, r13, 24
        jmp r4
        jmp r12
    )",
                                    {fs_table.value,
                                     driver ? driver.value.enterPtr
                                            : Word{}});

    // Top server: the "VFS" — resolves, calls the FS, returns via r14.
    auto vfs_table = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto vfs = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)       ; private vfs table
        ld r4, 8(r2)       ; fs enter pointer
        ld r5, 0(r3)
        getip r12
        leai r12, r12, 24
        jmp r4
        jmp r14
    )",
                                     {vfs_table.value,
                                      fs ? fs.value.enterPtr
                                         : Word{}});
    if (!buffer || !driver || !fs_table || !fs || !vfs_table || !vfs)
        sim::fatal("F7: setup failed");

    const double chain = runChain(kernel, vfs.value.enterPtr, 3);

    // Loop overhead control.
    auto nopsub = kernel.buildSubsystem("jmp r14", {});
    const double one_hop = runChain(kernel, nopsub.value.enterPtr, 1);

    // Trap-based equivalents: each request crosses 3 protection
    // domains and back = 6 crossings.
    baselines::Costs costs;
    const double trap = 20;
    const double asid = double(costs.switchFixed);
    const double flush = double(costs.switchFixed) * 2;
    const double trap_asid = chain + 6 * (trap + asid);
    const double trap_flush = chain + 6 * (trap + flush);

    gp::bench::Table t(
        "F7: three-server microkernel request (cycles/request)",
        {"system structure", "cycles/request", "vs guarded chain"});
    t.addRow({"single protected call (control)",
              gp::bench::fmt("%.1f", one_hop), ""});
    t.addRow({"guarded chain: VFS -> FS -> driver (6 crossings)",
              gp::bench::fmt("%.1f", chain), "1.00x"});
    t.addRow({"trap-based IPC, ASID switches (model)",
              gp::bench::fmt("%.1f", trap_asid),
              gp::bench::fmt("%.2fx", trap_asid / chain)});
    t.addRow({"trap-based IPC, TLB+cache flushes (model, refills "
              "excluded)",
              gp::bench::fmt("%.1f", trap_flush),
              gp::bench::fmt("%.2fx", trap_flush / chain)});
    t.print();

    std::printf(
        "\nEach server is UNPRIVILEGED and keeps private state the "
        "others cannot touch; verified: buffer word = %llu after "
        "%d requests.\n",
        (unsigned long long)kernel.mem()
            .peekWord(PointerView(buffer.value).segmentBase())
            .bits(),
        kRequests);
    std::printf("Claim under test (SS2.3): with protected entry to "
                "user-level subsystems, very few services need be "
                "privileged,\nand microkernel-style decomposition "
                "stops costing kernel crossings.\n");
    return 0;
}
