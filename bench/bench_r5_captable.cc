/**
 * @file
 * Experiment R5 (§5.3): traditional capability object-tables
 * (System/38, Intel 432) vs in-pointer capabilities.
 *
 * The paper's historical claim: two-level translation — capability ->
 * object descriptor -> physical — "has prevented traditional
 * capabilities from becoming a widely-used protection method".
 * Measured here as cycles/reference vs capability-cache size and
 * object count, with guarded pointers as the zero-indirection bound.
 */

#include "baselines/cap_table_scheme.h"
#include "baselines/guarded_scheme.h"
#include "baselines/runner.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload(uint32_t objects)
{
    sim::WorkloadConfig w;
    w.numDomains = 4;
    w.segmentsPerDomain = objects;
    w.sharedSegments = 4;
    w.segmentBytes = 4096;
    w.switchInterval = 128;
    w.jumpFraction = 0.25;
    w.localityMean = 8.0;
    w.seed = 432;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R5: capability object-table indirection",
        {"cap cache", "objects/domain", "cap misses/kiloref",
         "cap-table cyc/ref", "guarded cyc/ref", "indirection tax"});

    for (size_t cap_cache : {16u, 64u, 256u}) {
        for (uint32_t objects : {8u, 32u, 128u}) {
            const auto w = workload(objects);

            CapTableScheme ct(cache, 64, cap_cache, costs);
            sim::TraceGenerator gen1(w);
            RunResult rc = runTrace(ct, gen1.generate(kRefs));

            GuardedScheme g(cache, 64, costs);
            sim::TraceGenerator gen2(w);
            RunResult rg = runTrace(g, gen2.generate(kRefs));

            t.addRow(
                {gp::bench::fmt("%zu", cap_cache),
                 gp::bench::fmt("%u", objects),
                 gp::bench::fmt(
                     "%.1f",
                     1000.0 *
                         double(ct.stats().get("cap_cache_misses")) /
                         double(kRefs)),
                 gp::bench::fmt("%.2f", rc.cyclesPerRef()),
                 gp::bench::fmt("%.2f", rg.cyclesPerRef()),
                 gp::bench::fmt("%+.2f cyc/ref",
                                rc.cyclesPerRef() -
                                    rg.cyclesPerRef())});
        }
    }
    t.print();

    gp::bench::Table s("R5b: structural comparison (SS5.3)",
                       {"property", "object-table capabilities",
                        "guarded pointers"});
    s.addRow({"translation levels", "2 (cap table, then paging)",
              "1 (paging, on miss only)"});
    s.addRow({"capability storage", "special registers / segments",
              "any GPR or memory word"});
    s.addRow({"descriptor location", "protected table in memory",
              "encoded in the 64-bit word"});
    s.addRow({"switch cost", "~0", "0"});
    s.print();

    std::printf("\nClaim under test: the mandatory extra level costs "
                ">=1 cycle/ref even with a perfect capability cache, "
                "and grows with object-set size; guarded pointers "
                "remove the level, not just its misses.\n");
    return 0;
}
