/**
 * @file
 * Experiment C3 (§4.3): revocation and relocation costs.
 *
 * Without protected indirection, revoking a capability means either
 * (a) unmapping the segment's pages — cheap, but page-granular, so
 * small co-resident segments take collateral faults — or (b) sweeping
 * all addressable memory to overwrite pointer copies. This bench
 * measures both, plus the relocation path and the protected-subsystem
 * indirection alternative's per-access cost.
 */

#include <vector>

#include "bench_util.h"
#include "gp/ops.h"
#include "mem/memory_system.h"
#include "os/segment_manager.h"
#include "sim/rng.h"

namespace {

using namespace gp;

void
unmapVsSweep()
{
    gp::bench::Table t(
        "C3a: revoke-by-unmap vs sweep-all-memory",
        {"segment size", "pages unmapped", "lines flushed",
         "sweep words scanned", "sweep/unmap work ratio"});

    for (uint64_t seg_bytes :
         {uint64_t(256), uint64_t(4096), uint64_t(1) << 16,
          uint64_t(1) << 20}) {
        mem::MemConfig cfg;
        mem::MemorySystem mem(cfg);
        os::SegmentManager segman(mem, uint64_t(1) << 40, 30);

        // Populate a "system" of segments holding scattered copies of
        // the doomed pointer: the sweep must visit all of them.
        sim::Rng rng(5);
        auto doomed = segman.allocate(seg_bytes, Perm::ReadWrite);
        std::vector<Word> others;
        const int kOthers = 64;
        for (int i = 0; i < kOthers; ++i) {
            auto p = segman.allocate(4096, Perm::ReadWrite);
            others.push_back(p.value);
            // Sprinkle copies of the doomed capability.
            for (int c = 0; c < 4; ++c) {
                mem.pokeWord(PointerView(p.value).segmentBase() +
                                 rng.below(512) * 8,
                             doomed.value);
            }
        }

        // Warm the cache with the doomed segment.
        uint64_t now = 0;
        Word cursor = doomed.value;
        for (uint64_t off = 0; off < std::min<uint64_t>(seg_bytes,
                                                        32768);
             off += 32) {
            auto r = lea(doomed.value, int64_t(off));
            if (r)
                now = mem.load(r.value, 8, now).completeCycle;
        }
        (void)cursor;

        // (a) Unmap: count the real work done.
        const uint64_t unmapped_before =
            mem.pageTable().stats().get("pages_unmapped");
        const uint64_t lines_before =
            mem.cache().stats().get("lines_invalidated");
        segman.revoke(PointerView(doomed.value).segmentBase());
        const uint64_t pages =
            mem.pageTable().stats().get("pages_unmapped") -
            unmapped_before;
        const uint64_t lines =
            mem.cache().stats().get("lines_invalidated") -
            lines_before;

        // (b) Sweep: scan every word of every segment, overwrite
        // matching capabilities.
        uint64_t scanned = 0, overwritten = 0;
        for (const Word &p : others) {
            const uint64_t base = PointerView(p).segmentBase();
            const uint64_t bytes = PointerView(p).segmentBytes();
            for (uint64_t off = 0; off < bytes; off += 8) {
                auto w = mem.tryPeekWord(base + off);
                scanned++;
                if (w && w->isPointer() &&
                    PointerView(*w).segmentBase() ==
                        PointerView(doomed.value).segmentBase()) {
                    mem.pokeWord(base + off, Word::fromInt(0));
                    overwritten++;
                }
            }
        }

        t.addRow(
            {gp::bench::fmt("%llu B", (unsigned long long)seg_bytes),
             gp::bench::fmt("%llu", (unsigned long long)pages),
             gp::bench::fmt("%llu", (unsigned long long)lines),
             gp::bench::fmt("%llu (found %llu copies)",
                            (unsigned long long)scanned,
                            (unsigned long long)overwritten),
             gp::bench::fmt("%.0fx", double(scanned) /
                                         double(pages + lines + 1))});
    }
    t.print();
}

void
collateralFaults()
{
    // Page-granularity collateral: pack many sub-page segments into
    // one page; revoking one victimizes its page-mates.
    gp::bench::Table t(
        "C3b: collateral damage of page-granular revocation",
        {"segment size", "segments/page", "revoked", "innocent "
         "segments faulting"});

    for (uint64_t seg_bytes : {uint64_t(256), uint64_t(1024),
                               uint64_t(4096)}) {
        mem::MemConfig cfg;
        mem::MemorySystem mem(cfg);
        os::SegmentManager segman(mem, uint64_t(1) << 40, 24);

        const unsigned per_page = unsigned(4096 / seg_bytes);
        std::vector<Word> segs;
        for (unsigned i = 0; i < std::max(per_page, 1u); ++i) {
            auto p = segman.allocate(seg_bytes, Perm::ReadWrite);
            segs.push_back(p.value);
            mem.store(p.value, Word::fromInt(i), 8);
        }

        // Revoke the first segment by unmapping its pages.
        mem.unmapRange(PointerView(segs[0]).segmentBase(), seg_bytes);

        unsigned innocent_faulting = 0;
        for (size_t i = 1; i < segs.size(); ++i) {
            if (mem.load(segs[i], 8).fault != Fault::None)
                innocent_faulting++;
        }
        t.addRow(
            {gp::bench::fmt("%llu B", (unsigned long long)seg_bytes),
             gp::bench::fmt("%u", std::max(per_page, 1u)),
             "1",
             gp::bench::fmt("%u", innocent_faulting)});
    }
    t.print();
}

void
relocationAndIndirection()
{
    mem::MemConfig cfg;
    mem::MemorySystem mem(cfg);
    os::SegmentManager segman(mem, uint64_t(1) << 40, 28);

    auto obj = segman.allocate(uint64_t(1) << 16, Perm::ReadWrite);
    for (uint64_t off = 0; off < (uint64_t(1) << 16); off += 8)
        mem.pokeWord(PointerView(obj.value).segmentBase() + off,
                     Word::fromInt(off));

    auto fresh = segman.relocate(PointerView(obj.value).segmentBase(),
                                 Perm::ReadWrite);

    gp::bench::Table t("C3c: relocation & indirection alternatives",
                       {"approach", "one-time cost",
                        "per-access adder", "granularity"});
    t.addRow({"revoke-by-unmap + lazy fixup", "pages + TLB/cache inval",
              "0 (fault-driven)", "page"});
    t.addRow({"eager relocate (copy 64KB)",
              gp::bench::fmt("%llu word copies",
                             (unsigned long long)(uint64_t(1) << 13)),
              "0", "segment"});
    t.addRow({"explicit base-pointer indirection", "1 pointer update",
              "1 LEA (user-mode, compiler-visible)", "segment"});
    t.addRow({"protected subsystem access methods", "1 table update",
              "1 enter call (~F3 cycles)", "object"});
    t.print();

    std::printf("\nRelocated segment verified: first word via new "
                "pointer = %llu, old pointer faults = %s\n",
                (unsigned long long)mem.load(fresh.value, 8).data.bits(),
                std::string(faultName(mem.load(obj.value, 8).fault))
                    .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    unmapVsSweep();
    collateralFaults();
    relocationAndIndirection();
    return 0;
}
