; Integer AXPY kernel: y[i] = a * x[i] + y[i] over 16 elements.
; x lives in the first 128 bytes of the data segment, y at offset
; 2048. Exercises the per-iteration LEA/LD/ST guarded-pointer path
; the paper's figure 2 prices out.
        movi r3, 0          ; i
        movi r4, 16         ; n
        mov  r5, r1         ; x cursor
        leai r6, r1, 2048   ; y cursor
        movi r7, 3          ; a
loop:   ld   r2, 0(r5)
        mul  r2, r2, r7
        ld   r0, 0(r6)
        add  r2, r2, r0
        st   r2, 0(r6)
        leai r5, r5, 8
        leai r6, r6, 8
        addi r3, r3, 1
        bne  r3, r4, loop
        halt
