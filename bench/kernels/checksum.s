; XOR checksum of the first 256 slots (2 KiB) of the data segment,
; folded into slot 0. A pure load-heavy kernel: one guarded LD plus
; pointer bump per element.
        movi r3, 0          ; i
        movi r4, 256        ; slots
        mov  r5, r1         ; cursor
        movi r6, 0          ; checksum
loop:   ld   r7, 0(r5)
        xor  r6, r6, r7
        leai r5, r5, 8
        addi r3, r3, 1
        bne  r3, r4, loop
        st   r6, 0(r1)
        halt
