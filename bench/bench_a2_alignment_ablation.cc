/**
 * @file
 * Ablation A2: the power-of-two segment decision.
 *
 * Guarded pointers encode segment bounds in a 6-bit log2 length
 * field, forcing power-of-two aligned segments (paper §2, §4.2). The
 * alternative — exact base+limit bounds — needs ~108 extra bits and a
 * double-word capability (the road CHERI later took). This ablation
 * runs the paper's buddy allocator against a best-fit exact-size
 * allocator over identical request streams and tabulates both sides
 * of the trade: memory waste vs capability width.
 */

#include <memory>
#include <vector>

#include "bench_util.h"
#include "os/buddy_allocator.h"
#include "os/freelist_allocator.h"
#include "sim/rng.h"

namespace {

using namespace gp;

uint64_t
sampleSize(sim::Rng &rng)
{
    // The mixed distribution from C2: mostly small, occasional large.
    return rng.chance(0.9) ? 16 + rng.below(256)
                           : 4096 + rng.below(64 * 1024);
}

struct ChurnResult
{
    uint64_t requested = 0;
    uint64_t consumed = 0;
    uint64_t failures = 0;
    double fragIndex = 0;
};

ChurnResult
churnBuddy(uint64_t steps, uint64_t seed)
{
    os::BuddyAllocator buddy(0, 27); // 128MB
    sim::Rng rng(seed);
    struct Block
    {
        uint64_t base, order, requested;
    };
    std::vector<Block> live;
    ChurnResult r;
    uint64_t live_req = 0, live_con = 0;

    for (uint64_t i = 0; i < steps; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const uint64_t bytes = sampleSize(rng);
            auto block = buddy.allocateBytes(bytes);
            if (!block) {
                r.failures++;
                continue;
            }
            live.push_back({block->first, block->second, bytes});
            live_req += bytes;
            live_con += uint64_t(1) << block->second;
        } else {
            const size_t idx = rng.below(live.size());
            buddy.free(live[idx].base, live[idx].order);
            live_req -= live[idx].requested;
            live_con -= uint64_t(1) << live[idx].order;
            live.erase(live.begin() + idx);
        }
    }
    r.requested = live_req;
    r.consumed = live_con;
    const uint64_t free_bytes = buddy.freeBytes();
    const uint64_t largest =
        buddy.largestFreeOrder()
            ? uint64_t(1) << *buddy.largestFreeOrder()
            : 0;
    r.fragIndex =
        free_bytes ? 1.0 - double(largest) / double(free_bytes) : 0;
    return r;
}

ChurnResult
churnFreeList(uint64_t steps, uint64_t seed)
{
    os::FreeListAllocator fl(0, uint64_t(1) << 27);
    sim::Rng rng(seed);
    std::vector<std::pair<uint64_t, uint64_t>> live; // (base, bytes)
    ChurnResult r;
    uint64_t live_req = 0;

    for (uint64_t i = 0; i < steps; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const uint64_t bytes = sampleSize(rng);
            auto base = fl.allocate(bytes);
            if (!base) {
                r.failures++;
                continue;
            }
            live.emplace_back(*base, bytes);
            live_req += bytes;
        } else {
            const size_t idx = rng.below(live.size());
            fl.free(live[idx].first);
            live_req -= live[idx].second;
            live.erase(live.begin() + idx);
        }
    }
    r.requested = live_req;
    r.consumed = (uint64_t(1) << 27) - fl.freeBytes();
    const uint64_t free_bytes = fl.freeBytes();
    r.fragIndex = free_bytes
                      ? 1.0 - double(fl.largestFreeBlock()) /
                                  double(free_bytes)
                      : 0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    gp::bench::Table t(
        "A2: buddy (power-of-two, 64-bit caps) vs best-fit (exact, "
        "wide caps)",
        {"churn steps", "allocator", "internal waste",
         "ext frag index", "failed allocs"});

    for (uint64_t steps : {20000u, 80000u}) {
        const ChurnResult b = churnBuddy(steps, 42);
        const ChurnResult f = churnFreeList(steps, 42);
        auto row = [&](const char *name, const ChurnResult &r) {
            const double waste =
                r.consumed
                    ? 100.0 * (1.0 - double(r.requested) /
                                         double(r.consumed))
                    : 0.0;
            t.addRow({gp::bench::fmt("%llu",
                                     (unsigned long long)steps),
                      name, gp::bench::fmt("%.1f%%", waste),
                      gp::bench::fmt("%.3f", r.fragIndex),
                      gp::bench::fmt("%llu",
                                     (unsigned long long)r.failures)});
        };
        row("buddy / pow2", b);
        row("best-fit / exact", f);
    }
    t.print();

    gp::bench::Table w("A2b: what exact bounds would cost the ISA",
                       {"design", "bounds encoding",
                        "capability width", "fits a 64-bit GPR?"});
    w.addRow({"guarded pointers (this paper)",
              "6-bit log2 length, aligned", "64 + 1 tag", "yes"});
    w.addRow({"exact base+limit", "54-bit base + 54-bit limit",
              "~162 + tag", "no - double-word regs/loads"});
    w.addRow({"compressed bounds (CHERI-style, later work)",
              "floating-point bounds relative to address",
              "128 + tag", "no - but half the exact cost"});
    w.print();

    std::printf(
        "\nAblation conclusion: the 6-bit length field costs ~25%% "
        "internal VA fragmentation (virtual space only —\nphysical "
        "pages are allocated on touch) and buys single-word "
        "capabilities that fit every existing register,\ncache line "
        "and datapath — the paper's central engineering trade.\n");
    return 0;
}
