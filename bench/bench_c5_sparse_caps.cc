/**
 * @file
 * Experiment C5 (§4.2): the opportunity cost of shrinking the virtual
 * address space — sparse software capabilities vs guarded pointers.
 *
 * The paper concedes that dropping from 64 to 54 address bits makes
 * Amoeba-style "security through sparsity" 1000x weaker, then argues
 * the point is moot: the hardware capability mechanism replaces it
 * outright. This bench quantifies both halves: the success
 * probability of an adversary guessing sparse capabilities at a given
 * probe budget (simulated and analytic), and the *zero* success of
 * forging a guarded pointer, demonstrated by direct attack on the
 * simulator.
 */

#include <cmath>
#include <set>

#include "bench_util.h"
#include "gp/ops.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "isa/machine.h"
#include "sim/rng.h"

namespace {

using namespace gp;

void
sparsityTable()
{
    gp::bench::Table t(
        "C5: guessing sparse capabilities (2^20 live objects)",
        {"scheme", "space", "P(hit) per probe", "expected probes "
         "to first hit"});

    const double live = std::pow(2.0, 20);
    for (unsigned bits : {64u, 54u, 44u}) {
        const double space = std::pow(2.0, double(bits));
        const double p = live / space;
        t.addRow({gp::bench::fmt("sparse software caps, %u-bit",
                                 bits),
                  gp::bench::fmt("2^%u", bits),
                  gp::bench::fmt("%.3g", p),
                  gp::bench::fmt("%.3g", 1.0 / p)});
    }
    t.addRow({"guarded pointers (tag bit)", "n/a", "0",
              "impossible - tag not addressable"});
    t.print();
}

void
simulatedGuessingAttack()
{
    // Empirical version at laptop scale: 2^10 live objects in a 2^30
    // space (same density as 2^20-in-2^40); count probes to first
    // hit over a few trials, and run the identical attack against
    // guarded pointers on the machine.
    sim::Rng rng(31337);
    const uint64_t space_bits = 30;
    const uint64_t live_objects = 1 << 10;

    // Place live "capabilities" at random sparse addresses.
    std::set<uint64_t> live;
    while (live.size() < live_objects)
        live.insert(rng.next() & ((uint64_t(1) << space_bits) - 1));

    uint64_t total_probes = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
        uint64_t probes = 0;
        while (true) {
            probes++;
            const uint64_t guess =
                rng.next() & ((uint64_t(1) << space_bits) - 1);
            if (live.count(guess))
                break;
        }
        total_probes += probes;
    }

    // The same attack against the hardware: spray SETPTR-free forgery
    // attempts — every integer-to-pointer path is checked, so count
    // the faults.
    isa::MachineConfig cfg;
    cfg.clusters = 1;
    isa::Machine machine(cfg);
    auto assembly = isa::assemble(R"(
        movi r2, 0
        movi r3, 1000
        loop:
        ; r4 = some attacker-chosen integer "capability"
        lui r4, 0x12345678
        or r4, r4, r2
        ld r5, 0(r4)       ; every attempt faults: not a pointer
        addi r2, r2, 1
        bne r2, r3, loop
        halt
    )");
    auto prog =
        isa::loadProgram(machine.mem(), 1 << 20, assembly.words);
    // Fault handler that counts and skips, so the loop keeps probing.
    uint64_t hw_attempts = 0, hw_successes = 0;
    machine.setFaultHandler(
        [&](isa::Thread &thread, const isa::FaultRecord &rec) {
            hw_attempts++;
            auto next = gp::lea(rec.ip, 8);
            if (next)
                thread.setIp(next.value);
            return isa::FaultAction::Resume;
        });
    machine.spawn(prog.execPtr);
    machine.run(10'000'000);

    gp::bench::Table t("C5b: guessing attacks, measured",
                       {"target", "probes", "successes"});
    t.addRow({gp::bench::fmt("sparse 2^10-in-2^%llu (simulated)",
                             (unsigned long long)space_bits),
              gp::bench::fmt("%llu (mean to first hit: %llu)",
                             (unsigned long long)total_probes,
                             (unsigned long long)(total_probes /
                                                  trials)),
              gp::bench::fmt("%d", trials)});
    t.addRow({"guarded pointers on the MAP simulator",
              gp::bench::fmt("%llu", (unsigned long long)hw_attempts),
              gp::bench::fmt("%llu", (unsigned long long)hw_successes)});
    t.print();

    std::printf(
        "\nClaim under test (SS4.2): sparsity is probabilistic and "
        "weakens by exactly the address bits surrendered;\nthe tag "
        "bit is categorical — \"this particular use of a sparse "
        "virtual address space can be replaced by the\ncapability "
        "mechanism provided by guarded pointers.\"\n");
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    sparsityTable();
    simulatedGuessingAttack();
    return 0;
}
