/**
 * @file
 * Experiment F1 (Fig. 1): the guarded-pointer format.
 *
 * Regenerates the figure's content quantitatively: the field layout
 * is exercised across the full range of segment lengths, and the host
 * cost of the encode/decode/field-extraction datapath is measured —
 * the paper's argument is that everything a capability check needs is
 * derivable from the pointer with mask/shift logic.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "gp/ops.h"
#include "sim/rng.h"

namespace {

using namespace gp;

void
printFormatTable()
{
    bench::Table t("F1: guarded pointer format coverage (Fig. 1)",
                   {"len field", "segment bytes", "segments in space",
                    "example pointer"});
    for (uint64_t len : {0, 1, 3, 6, 12, 20, 30, 42, 54}) {
        const uint64_t addr =
            len >= 54 ? 0x123456 : (uint64_t(5) << len) + 0x10;
        auto p = makePointer(Perm::ReadWrite, len,
                             addr & kAddrMask);
        const double segs = std::pow(2.0, double(54 - len));
        t.addRow({bench::fmt("%2llu", (unsigned long long)len),
                  bench::fmt("2^%llu", (unsigned long long)len),
                  bench::fmt("%.3g", segs),
                  p ? toString(p.value) : "(invalid)"});
    }
    t.print();

    bench::Table bits("F1: field widths",
                      {"field", "bits", "purpose"});
    bits.addRow({"tag", "1", "unforgeability (out of band)"});
    bits.addRow({"permission", "4", "rights set"});
    bits.addRow({"segment length", "6", "log2 bytes"});
    bits.addRow({"address", "54", "1.8e16 byte space"});
    bits.print();
}

void
BM_EncodeDecode(benchmark::State &state)
{
    sim::Rng rng(1);
    uint64_t addr = 0x10000;
    for (auto _ : state) {
        auto p = makePointer(Perm::ReadWrite, 12, addr & kAddrMask);
        benchmark::DoNotOptimize(p);
        auto d = decode(p.value);
        benchmark::DoNotOptimize(d);
        addr += 8;
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_FieldExtraction(benchmark::State &state)
{
    auto p = makePointer(Perm::ReadWrite, 20, 0x12345678).value;
    for (auto _ : state) {
        PointerView v(p);
        benchmark::DoNotOptimize(v.segmentBase());
        benchmark::DoNotOptimize(v.offset());
        benchmark::DoNotOptimize(v.segmentBytes());
        benchmark::DoNotOptimize(v.perm());
    }
}
BENCHMARK(BM_FieldExtraction);

void
BM_AccessCheck(benchmark::State &state)
{
    // The complete pre-issue load check: the hardware this models is
    // one decoder + mask compare (§4.1); the software model should be
    // a few ns and, crucially, touches no tables.
    auto p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    for (auto _ : state) {
        benchmark::DoNotOptimize(checkAccess(p, Access::Load, 8));
        benchmark::DoNotOptimize(checkAccess(p, Access::Store, 8));
    }
}
BENCHMARK(BM_AccessCheck);

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);
    printFormatTable();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
