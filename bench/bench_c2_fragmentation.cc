/**
 * @file
 * Experiment C2 (§4.2): virtual-address-space fragmentation from
 * power-of-two segments.
 *
 * Internal fragmentation: waste from rounding object sizes up to the
 * next power of two, over several object-size distributions. The
 * paper notes this wastes *virtual* space, not physical memory
 * (physical allocation is page-by-page) — also measured.
 *
 * External fragmentation: free-space shattering under alloc/free
 * churn with the buddy system, measured as the largest allocatable
 * block vs. total free space. The paper prescribes exactly this buddy
 * scheme to keep it bounded.
 */

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "mem/memory_system.h"
#include "os/segment_manager.h"
#include "sim/rng.h"

namespace {

using namespace gp;

/** Object-size distributions typical of the workloads §1 motivates. */
uint64_t
sampleSize(sim::Rng &rng, int dist)
{
    switch (dist) {
      case 0: // uniform 1B..64KB
        return 1 + rng.below(64 * 1024);
      case 1: // small objects, geometric around 64B (LISP-like heaps)
        return 8 * rng.geometric(8.0);
      case 2: // mixed: mostly small, occasional large buffers
        return rng.chance(0.9) ? 16 + rng.below(256)
                               : 4096 + rng.below(256 * 1024);
      default: // exact powers of two (best case)
        return uint64_t(1) << (3 + rng.below(14));
    }
}

const char *kDistNames[] = {"uniform 1B-64KB", "geometric ~64B",
                            "90% small / 10% large", "powers of two"};

void
internalFragmentation()
{
    gp::bench::Table t(
        "C2a: internal fragmentation by object-size distribution",
        {"distribution", "objects", "requested MB", "allocated MB",
         "VA waste", "physical waste (4KB pages)"});

    for (int dist = 0; dist < 4; ++dist) {
        mem::MemorySystem mem{mem::MemConfig{}};
        os::SegmentManager segman(mem, uint64_t(1) << 40, 34);
        sim::Rng rng(1000 + dist);

        uint64_t requested = 0, allocated = 0, phys_pages = 0,
                 used_pages = 0;
        int objects = 0;
        for (int i = 0; i < 4000; ++i) {
            const uint64_t bytes = sampleSize(rng, dist);
            auto p = segman.allocate(bytes, Perm::ReadWrite);
            if (!p)
                break;
            objects++;
            requested += bytes;
            const uint64_t seg = PointerView(p.value).segmentBytes();
            allocated += seg;
            // Physical frames are only consumed for touched pages:
            // pages fully inside the rounded-up tail are never mapped.
            used_pages += (bytes + 4095) / 4096;
            phys_pages += (seg + 4095) / 4096;
        }
        const double va_waste =
            100.0 * (1.0 - double(requested) / double(allocated));
        // Physical waste if the allocator maps only touched pages.
        const double phys_waste =
            100.0 * (1.0 - double(used_pages) / double(phys_pages));
        t.addRow({kDistNames[dist], gp::bench::fmt("%d", objects),
                  gp::bench::fmt("%.1f", requested / 1048576.0),
                  gp::bench::fmt("%.1f", allocated / 1048576.0),
                  gp::bench::fmt("%.1f%%", va_waste),
                  gp::bench::fmt("%.1f%% (upper bound)", phys_waste)});
    }
    t.print();
}

void
externalFragmentation()
{
    gp::bench::Table t(
        "C2b: external fragmentation under buddy churn",
        {"churn steps", "live segs", "free MB", "largest free block",
         "free blocks", "frag index"});

    mem::MemorySystem mem{mem::MemConfig{}};
    os::SegmentManager segman(mem, uint64_t(1) << 40, 28); // 256MB
    sim::Rng rng(77);
    std::vector<Word> live;

    for (int step = 1; step <= 50000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            auto p = segman.allocate(sampleSize(rng, 2),
                                     Perm::ReadWrite);
            if (p)
                live.push_back(p.value);
        } else {
            const size_t i = rng.below(live.size());
            segman.free(live[i]);
            live.erase(live.begin() + i);
        }

        if (step % 10000 == 0) {
            auto &buddy = segman.buddy();
            const uint64_t free_bytes = buddy.freeBytes();
            const uint64_t largest =
                buddy.largestFreeOrder()
                    ? uint64_t(1) << *buddy.largestFreeOrder()
                    : 0;
            // Fragmentation index: 1 - largest/total free. 0 = one
            // contiguous block; ->1 = shattered.
            const double frag =
                free_bytes == 0
                    ? 0.0
                    : 1.0 - double(largest) / double(free_bytes);
            t.addRow({gp::bench::fmt("%d", step),
                      gp::bench::fmt("%zu", live.size()),
                      gp::bench::fmt("%.1f", free_bytes / 1048576.0),
                      gp::bench::fmt("%.1f MB", largest / 1048576.0),
                      gp::bench::fmt(
                          "%zu", buddy.freeBlockCount()),
                      gp::bench::fmt("%.3f", frag)});
        }
    }
    t.print();

    std::printf("\nClaims under test (SS4.2): power-of-two rounding "
                "wastes virtual space (<=50%%, ~25%% typical) but "
                "little physical memory;\nbuddy coalescing keeps the "
                "fragmentation index well below 1 under churn.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    internalFragmentation();
    externalFragmentation();
    return 0;
}
