/**
 * @file
 * X1: fault-coverage of the guarded-pointer hardware (ISSUE 4).
 *
 * The paper's single tag bit is the whole security argument: a
 * capability cannot be forged because user code cannot set the tag.
 * But a *hardware* fault can — a cosmic-ray upset in DRAM or a
 * flipped bit on a mesh link touches the tag like any other stored
 * bit. This experiment quantifies what the machine does about it:
 *
 *  - X1.1: the at-rest truth table. One stored capability, one
 *    deliberate bit strike, read back under each protection mode.
 *    With ECC off a tag strike *mints or destroys a capability
 *    silently*; parity detects all single strikes; SECDED corrects
 *    them and still detects doubles.
 *  - X1.2: per-site campaign coverage. 60-run campaigns with exactly
 *    one fault site active each, classified into the five-way
 *    taxonomy {masked, corrected, detected, SDC, crash/hang}.
 *  - X1.3: the hardening ablation — the headline table. The same
 *    stored-bit campaign swept over {off, parity, secded} x
 *    {0, 3 walk retries}: SECDED drives single-bit SDC *and*
 *    detected-faults to zero (everything is corrected or masked),
 *    and walk retries absorb transient page-walk failures.
 *  - X1.4: NoC link storms. Raw links lose or silently corrupt
 *    messages; the retransmission protocol converts storms into
 *    latency (retries + acks) with zero corrupted deliveries.
 *  - X1.5: mesh-scale fail-stop campaigns (ISSUE 9). Node deaths and
 *    persistent link failures swept over a 2x2x2 mesh: link-only
 *    storms are absorbed by route-around (degraded-but-correct),
 *    node deaths surface as typed NodeUnreachable detections, and
 *    the silent-data-corruption column stays zero in every arm.
 *
 * Every table is deterministic: same seed, same numbers.
 */

#include <string>

#include "bench_util.h"
#include "fault/campaign.h"
#include "fault/mesh_campaign.h"
#include "gp/ops.h"
#include "mem/tagged_memory.h"
#include "noc/retransmit.h"
#include "sim/faultinject.h"
#include "sim/log.h"

namespace {

using namespace gp;
using fault::CampaignConfig;
using fault::CampaignRunner;
using fault::CampaignTotals;
using fault::Outcome;
using sim::FaultInjector;
using sim::FaultSite;

/** X1.1: what one stored-bit strike does under each ECC mode. */
std::string
strikeVerdict(mem::EccMode mode, const unsigned *bits, unsigned n)
{
    mem::TaggedMemory pm;
    pm.setEccMode(mode);
    auto cap = makePointer(Perm::ReadWrite, 12, uint64_t(1) << 30);
    if (!cap)
        sim::fatal("X1: bad pointer");
    pm.writeWord(0, cap.value);
    for (unsigned i = 0; i < n; ++i)
        pm.flipStoredBit(0, bits[i]);
    const mem::CheckedWord cw = pm.readWordChecked(0);
    if (cw.status == mem::EccStatus::Detected)
        return "detected (faults)";
    const bool clean = cw.word.bits() == cap.value.bits() &&
                       cw.word.isPointer();
    if (cw.status == mem::EccStatus::Corrected)
        return clean ? "corrected" : "miscorrected!";
    if (clean)
        return "intact";
    return cw.word.isPointer() == cap.value.isPointer()
               ? "SILENT data flip"
               : "SILENT tag forgery";
}

void
truthTable()
{
    gp::bench::Table t(
        "X1.1: one stored capability, deliberate bit strikes at rest",
        {"strike", "ecc=off", "ecc=parity", "ecc=secded"});
    struct Case
    {
        const char *name;
        unsigned bits[2];
        unsigned n;
    };
    const Case cases[] = {
        {"payload bit 17", {17}, 1},
        {"perm-field bit 61", {61}, 1},
        {"tag bit", {64}, 1},
        {"double payload bits", {5, 41}, 2},
        {"payload + tag", {23, 64}, 2},
    };
    for (const Case &c : cases) {
        t.addRow({c.name,
                  strikeVerdict(mem::EccMode::None, c.bits, c.n),
                  strikeVerdict(mem::EccMode::Parity, c.bits, c.n),
                  strikeVerdict(mem::EccMode::Secded, c.bits, c.n)});
    }
    t.print();
}

/** Run one campaign and return its totals. */
CampaignTotals
runCampaign(const CampaignConfig &cc)
{
    CampaignRunner runner(cc);
    return runner.runAll();
}

std::vector<std::string>
outcomeCells(const CampaignTotals &t)
{
    std::vector<std::string> cells;
    for (unsigned o = 0; o < fault::kOutcomeCount; ++o)
        cells.push_back(gp::bench::fmt(
            "%llu", (unsigned long long)t.perOutcome[o]));
    return cells;
}

void
perSiteCoverage()
{
    gp::bench::Table t(
        "X1.2: per-site coverage, 60 runs each (counts)",
        {"fault site", "rate", "ecc", "injected", "masked",
         "corrected", "detected", "SDC", "crash/hang"});
    struct Site
    {
        FaultSite site;
        double rate;
        mem::EccMode ecc;
    };
    const Site sites[] = {
        {FaultSite::MemDataBit, 3e-4, mem::EccMode::None},
        {FaultSite::MemDataBit, 3e-4, mem::EccMode::Secded},
        {FaultSite::MemTagBit, 3e-4, mem::EccMode::None},
        {FaultSite::MemPermField, 3e-4, mem::EccMode::None},
        {FaultSite::CacheLineBurst, 3e-4, mem::EccMode::None},
        {FaultSite::TlbCorrupt, 2e-4, mem::EccMode::None},
        {FaultSite::TlbInvalidate, 2e-4, mem::EccMode::None},
        {FaultSite::PtWalkTransient, 5e-2, mem::EccMode::None},
    };
    for (const Site &s : sites) {
        CampaignConfig cc;
        cc.runs = 60;
        cc.seed = 42;
        cc.ecc = s.ecc;
        // Tight hang budget: a spinning run must be *converted* by
        // the watchdog before a later incidental flip kills it with
        // an architectural fault (which would misfile the hang as
        // detected). 30k cycles is ~8x the golden runtime.
        cc.watchdogCycles = 30000;
        cc.faults.rate[unsigned(s.site)] = s.rate;
        const CampaignTotals totals = runCampaign(cc);
        std::vector<std::string> row = {
            std::string(sim::faultSiteName(s.site)),
            gp::bench::fmt("%g", s.rate),
            std::string(mem::eccModeName(s.ecc)),
            gp::bench::fmt("%llu",
                           (unsigned long long)
                               totals.totalInjections)};
        for (const std::string &c : outcomeCells(totals))
            row.push_back(c);
        t.addRow(row);
    }
    t.print();
}

void
hardeningAblation()
{
    gp::bench::Table t(
        "X1.3: hardening ablation, stored-bit + walk faults, "
        "120 runs (counts)",
        {"configuration", "masked", "corrected", "detected", "SDC",
         "crash/hang", "ecc corr", "ecc det"});
    struct Arm
    {
        const char *name;
        mem::EccMode ecc;
        unsigned walkRetries;
    };
    const Arm arms[] = {
        {"unprotected", mem::EccMode::None, 0},
        {"parity", mem::EccMode::Parity, 0},
        {"secded", mem::EccMode::Secded, 0},
        {"secded + walk-retry=3", mem::EccMode::Secded, 3},
    };
    uint64_t unprotectedSdc = 0, secdedSdc = 0;
    for (const Arm &a : arms) {
        CampaignConfig cc;
        cc.runs = 120;
        cc.seed = 7;
        cc.watchdogCycles = 30000;
        cc.ecc = a.ecc;
        cc.walkRetries = a.walkRetries;
        // Single stored-bit flips (data or tag) plus transient
        // page-walk failures: the exact threat SECDED + bounded
        // retry are designed to kill.
        cc.faults.rate[unsigned(FaultSite::MemDataBit)] = 3e-4;
        cc.faults.rate[unsigned(FaultSite::MemTagBit)] = 1e-4;
        cc.faults.rate[unsigned(FaultSite::PtWalkTransient)] = 2e-2;
        const CampaignTotals totals = runCampaign(cc);
        if (a.ecc == mem::EccMode::None)
            unprotectedSdc = totals.outcome(Outcome::Sdc);
        if (a.ecc == mem::EccMode::Secded)
            secdedSdc += totals.outcome(Outcome::Sdc);
        std::vector<std::string> row = {a.name};
        for (const std::string &c : outcomeCells(totals))
            row.push_back(c);
        row.push_back(gp::bench::fmt(
            "%llu", (unsigned long long)totals.totalEccCorrected));
        row.push_back(gp::bench::fmt(
            "%llu", (unsigned long long)totals.totalEccDetected));
        t.addRow(row);
    }
    t.print();

    std::printf("\nheadline: unprotected single-bit SDC runs = %llu; "
                "with SECDED = %llu\n",
                (unsigned long long)unprotectedSdc,
                (unsigned long long)secdedSdc);
    gp::bench::Table h("X1 headline: single-bit SDC runs by ECC mode",
                       {"ecc", "SDC runs"});
    h.addRow({"off", gp::bench::fmt(
                         "%llu",
                         (unsigned long long)unprotectedSdc)});
    h.addRow({"secded", gp::bench::fmt(
                            "%llu", (unsigned long long)secdedSdc)});
    h.print();
}

void
nocStorms()
{
    gp::bench::Table t(
        "X1.4: 2000 one-line transfers over a faulty mesh link",
        {"storm (drop/corrupt rate)", "protocol", "delivered",
         "corrupted", "abandoned", "retransmits", "crc discards",
         "avg cycles"});
    const double storms[] = {0.0, 0.01, 0.05, 0.2};
    for (const double p : storms) {
        for (const bool reliable : {false, true}) {
            noc::Mesh mesh;
            noc::RetransConfig rc;
            rc.enabled = reliable;
            noc::Retransmitter rt(mesh, rc, "x1_retrans");

            sim::FaultConfig fc;
            fc.seed = 99;
            fc.rate[unsigned(FaultSite::NocDrop)] = p;
            fc.rate[unsigned(FaultSite::NocCorrupt)] = p;
            fc.rate[unsigned(FaultSite::NocDelay)] = p;
            FaultInjector::instance().arm(fc);

            const unsigned kMsgs = 2000;
            uint64_t delivered = 0, corrupted = 0, cycles = 0;
            uint64_t now = 0;
            for (unsigned m = 0; m < kMsgs; ++m) {
                const noc::Delivery d =
                    rt.transfer(0, 13, now, 4);
                if (d.delivered && !d.corrupted)
                    delivered++;
                if (d.delivered && d.corrupted)
                    corrupted++;
                cycles += d.cycle - now;
                now = d.cycle + 1;
            }
            FaultInjector::instance().disarm();

            t.addRow({gp::bench::fmt("%g", p),
                      reliable ? "retransmit" : "raw",
                      gp::bench::fmt("%llu",
                                     (unsigned long long)delivered),
                      gp::bench::fmt("%llu",
                                     (unsigned long long)corrupted),
                      gp::bench::fmt(
                          "%llu",
                          (unsigned long long)rt.abandoned()),
                      gp::bench::fmt(
                          "%llu",
                          (unsigned long long)rt.retransmissions()),
                      gp::bench::fmt(
                          "%llu",
                          (unsigned long long)rt.crcDiscards()),
                      gp::bench::fmt("%.1f", double(cycles) /
                                                 double(kMsgs))});
        }
    }
    t.print();
}

void
meshFailStop()
{
    gp::bench::Table t(
        "X1.5: mesh fail-stop campaigns, 2x2x2 mesh, 20 runs each "
        "(counts)",
        {"arm", "retrans", "injected", "dead", "links down",
         "detours", "masked", "degraded", "detected", "SDC", "hang"});
    struct Arm
    {
        const char *name;
        double nodeRate;
        double linkRate;
        bool retrans;
    };
    const Arm arms[] = {
        {"link storms only", 0.0, 2e-3, true},
        {"node deaths only", 1e-3, 0.0, true},
        {"deaths + link storms", 1e-3, 2e-3, true},
        {"deaths, raw links", 1e-3, 0.0, false},
    };
    uint64_t totalSdc = 0, totalHang = 0;
    for (const Arm &a : arms) {
        fault::MeshCampaignConfig cc;
        cc.seed = 31;
        cc.runs = 20;
        cc.iterations = 24;
        cc.retrans.enabled = a.retrans;
        cc.faults.rate[unsigned(FaultSite::NodeFailStop)] =
            a.nodeRate;
        cc.faults.rate[unsigned(FaultSite::LinkDown)] = a.linkRate;
        fault::MeshCampaignRunner runner(cc);
        const fault::MeshCampaignTotals totals = runner.runAll();
        totalSdc += totals.outcome(fault::MeshOutcome::Sdc);
        totalHang += totals.outcome(fault::MeshOutcome::Hang);
        t.addRow({a.name, a.retrans ? "on" : "off",
                  gp::bench::fmt("%llu", (unsigned long long)
                                             totals.totalInjections),
                  gp::bench::fmt("%llu", (unsigned long long)
                                             totals.totalDeadNodes),
                  gp::bench::fmt("%llu", (unsigned long long)
                                             totals.totalDownLinks),
                  gp::bench::fmt("%llu", (unsigned long long)
                                             totals.totalDetours),
                  gp::bench::fmt(
                      "%llu", (unsigned long long)totals.outcome(
                                  fault::MeshOutcome::Masked)),
                  gp::bench::fmt(
                      "%llu", (unsigned long long)totals.outcome(
                                  fault::MeshOutcome::Degraded)),
                  gp::bench::fmt(
                      "%llu", (unsigned long long)totals.outcome(
                                  fault::MeshOutcome::DetectedFault)),
                  gp::bench::fmt(
                      "%llu", (unsigned long long)totals.outcome(
                                  fault::MeshOutcome::Sdc)),
                  gp::bench::fmt(
                      "%llu", (unsigned long long)totals.outcome(
                                  fault::MeshOutcome::Hang))});
    }
    t.print();
    std::printf("\nheadline: mesh fail-stop SDC runs = %llu, "
                "hangs = %llu (both must be zero)\n",
                (unsigned long long)totalSdc,
                (unsigned long long)totalHang);
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);
    truthTable();
    perSiteCoverage();
    hardeningAblation();
    nocStorms();
    meshFailStop();
    return 0;
}
