/**
 * @file
 * Experiment R7 (§2.2): the paper's array-loop example.
 *
 *   for (i = 0; i < N; i++) a[i] = i;
 *
 * Under conventional segmentation the hardware re-adds the segment
 * base for every a[i]; with guarded pointers the add happens once and
 * the pointer is stepped incrementally ("the resulting pointer can be
 * incrementally stepped through the array, avoiding the additional
 * level of indirection"). Both code shapes run on the MAP simulator;
 * a third variant shows the rebase-per-access form a compiler is
 * forced into when the base add is implicit.
 */

#include <string>

#include "bench_util.h"
#include "sim/log.h"
#include "os/kernel.h"

namespace {

using namespace gp;

constexpr int kIters = 1024;

double
runLoop(const std::string &src)
{
    os::Kernel kernel;
    // One extra line of slack: the stepped loop's final LEA lands
    // one-past-the-end, which a guarded pointer (like any capability)
    // cannot represent outside its segment. Real compilers reorder
    // the increment or use displacement addressing; the bench just
    // sizes the segment with headroom.
    auto seg =
        kernel.segments().allocate((kIters + 4) * 8, Perm::ReadWrite);
    auto prog = kernel.loadAssembly(src);
    if (!prog || !seg)
        sim::fatal("R7: setup failed");
    isa::Thread *t =
        kernel.spawn(prog.value.execPtr, {{1, seg.value}});
    const uint64_t before = kernel.machine().cycle();
    kernel.machine().run(50'000'000);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("R7: loop faulted: %s",
                   std::string(faultName(t->faultRecord().fault))
                       .c_str());
    return double(kernel.machine().cycle() - before) / kIters;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const std::string n = std::to_string(kIters);

    // Guarded pointers, strength-reduced: one LEA per element.
    const double stepped = runLoop(R"(
        movi r10, 0
        movi r11, )" + n + R"(
        mov r2, r1
        loop:
        st r10, 0(r2)
        leai r2, r2, 8
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");

    // Segmentation-style: recompute base+offset for every access
    // (the add the segmentation hardware performs implicitly, made
    // visible as instructions).
    const double rebased = runLoop(R"(
        movi r10, 0
        movi r11, )" + n + R"(
        loop:
        shli r6, r10, 3
        itop r2, r1, r6     ; base + i*8, bounds-checked
        st r10, 0(r2)
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");

    // Displacement addressing from a stepped pointer: the common
    // compiled form (one LEA carries several displaced accesses).
    const double displaced = runLoop(R"(
        movi r10, 0
        movi r11, )" + n + R"(
        mov r2, r1
        loop:
        st r10, 0(r2)
        st r10, 8(r2)
        st r10, 16(r2)
        st r10, 24(r2)
        leai r2, r2, 32
        addi r10, r10, 4
        bne r10, r11, loop
        halt
    )");

    gp::bench::Table t(
        "R7: the SS2.2 array-loop example on the MAP simulator",
        {"addressing style", "cycles/element", "vs stepped"});
    t.addRow({"stepped guarded pointer (paper's form)",
              gp::bench::fmt("%.2f", stepped), "1.00x"});
    t.addRow({"rebase per access (segmentation's implicit add)",
              gp::bench::fmt("%.2f", rebased),
              gp::bench::fmt("%.2fx", rebased / stepped)});
    t.addRow({"4x unrolled, displacement addressing",
              gp::bench::fmt("%.2f", displaced),
              gp::bench::fmt("%.2fx", displaced / stepped)});
    t.print();

    std::printf(
        "\nClaim under test (SS2.2): exposing the address add to "
        "software lets the compiler hoist and strength-reduce it;\n"
        "the implicit per-reference segment add cannot be optimized "
        "away and costs extra issue slots on every access.\n");
    return 0;
}
