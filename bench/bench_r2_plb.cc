/**
 * @file
 * Experiment R2 (§5.1): Domain-Page PLB pressure vs guarded pointers.
 *
 * Koldinger et al.'s scheme keeps switches free but needs a
 * Protection Lookaside Buffer probed on every reference. This bench
 * measures (a) PLB miss cost as the number of domains and working-set
 * pages grow against a fixed PLB, and (b) the port-pressure argument:
 * probes per cycle the PLB must sustain on a 4-banked cache, which
 * guarded pointers reduce to zero.
 */

#include "baselines/domain_page_scheme.h"
#include "baselines/guarded_scheme.h"
#include "baselines/runner.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload(uint32_t domains, uint32_t segments)
{
    sim::WorkloadConfig w;
    w.numDomains = domains;
    w.segmentsPerDomain = segments;
    w.sharedSegments = 2;
    w.segmentBytes = 8192; // two pages per segment
    w.switchInterval = 64;
    w.jumpFraction = 0.1;
    w.seed = 7;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R2: PLB behaviour vs domains (64-entry PLB)",
        {"domains", "pages in play", "plb misses/kiloref",
         "domain-page cyc/ref", "guarded cyc/ref"});

    for (uint32_t domains : {2u, 4u, 8u, 16u, 32u}) {
        const auto w = workload(domains, 6);
        const uint64_t pages =
            (uint64_t(domains) * 6 + 2) * (8192 / 4096);

        DomainPageScheme dp(cache, 64, /*plb=*/64, costs);
        sim::TraceGenerator gen1(w);
        RunResult rdp = runTrace(dp, gen1.generate(kRefs));

        GuardedScheme g(cache, 64, costs);
        sim::TraceGenerator gen2(w);
        RunResult rg = runTrace(g, gen2.generate(kRefs));

        const uint64_t probes = dp.stats().get("plb_probes");
        const uint64_t walk_cycles =
            dp.stats().get("plb_miss_cycles");
        const double misses_per_kiloref =
            1000.0 * double(walk_cycles / costs.plbWalk) /
            double(probes);

        t.addRow({gp::bench::fmt("%u", domains),
                  gp::bench::fmt("%llu", (unsigned long long)pages),
                  gp::bench::fmt("%.1f", misses_per_kiloref),
                  gp::bench::fmt("%.2f", rdp.cyclesPerRef()),
                  gp::bench::fmt("%.2f", rg.cyclesPerRef())});
    }
    t.print();

    // Port pressure: structures probed per memory reference. On the
    // 4-banked MAP cache, per-reference structures must be
    // replicated or quad-ported (SS3, SS5.1).
    gp::bench::Table p(
        "R2b: per-reference lookup structures (4 refs/cycle cache)",
        {"scheme", "probes/ref", "ports needed @4 refs/cyc",
         "where the check happens"});
    p.addRow({"domain-page PLB", "1", "4 (replicate or multiport)",
              "PLB, parallel with cache"});
    p.addRow({"PA-RISC page groups", "1 (TLB)", "4",
              "TLB + 4 PID comparators"});
    p.addRow({"guarded pointers", "0", "0",
              "execution unit, from the pointer"});
    p.print();

    std::printf("\nClaim under test: guarded pointers match the "
                "PLB's free switches without any lookaside structure "
                "— the gap grows with PLB pressure.\n");
    return 0;
}
