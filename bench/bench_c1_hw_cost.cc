/**
 * @file
 * Experiment C1 (§4.1): hardware costs of guarded pointers.
 *
 * Quantifies the two costs the paper concedes — the tag-bit storage
 * overhead (1 bit per 64-bit word = 1/65 ~ 1.5%) — and the one it
 * claims is negligible: permission/bounds checking logic, which here
 * is shown to touch no memory and no tables (its entire working set
 * is the pointer operand), measured per check on the host.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gp/ops.h"
#include "mem/memory_system.h"

namespace {

using namespace gp;

void
printStorageTable()
{
    gp::bench::Table t("C1: storage overhead (SS4.1)",
                       {"memory size", "data bits", "tag bits",
                        "overhead"});
    for (uint64_t mb : {8, 128, 1024, 8192}) {
        const uint64_t words = mb * 1024 * 1024 / 8;
        t.addRow({gp::bench::fmt("%llu MB", (unsigned long long)mb),
                  gp::bench::fmt("%llu", (unsigned long long)(words * 64)),
                  gp::bench::fmt("%llu", (unsigned long long)words),
                  gp::bench::fmt("%.3f%%", 100.0 / 65.0)});
    }
    t.print();

    gp::bench::Table hw("C1: checking hardware inventory (SS4.1)",
                        {"structure", "guarded pointers", "baselines"});
    hw.addRow({"permission decoder", "1 (4-bit)", "-"});
    hw.addRow({"masked comparator", "1 (54-bit)", "-"});
    hw.addRow({"segment/capability table", "none",
               "per-process (segmentation, System/38)"});
    hw.addRow({"protection lookaside buffer", "none",
               "multi-ported (Domain-Page)"});
    hw.addRow({"TLB ports for 4 refs/cycle", "1 (miss path only)",
               "4 (PA-RISC page groups)"});
    hw.addRow({"ASID tags in cache/TLB", "none", "paged w/ ASIDs"});
    hw.print();
}

void
printNoTableTraffic()
{
    // Perform a million checked accesses and show the check itself
    // generated zero table lookups: the only memory traffic is the
    // data traffic.
    mem::MemConfig cfg;
    mem::MemorySystem m(cfg);
    Word p = makePointer(Perm::ReadWrite, 16, 0x10000).value;
    uint64_t now = 0;
    for (int i = 0; i < 100000; ++i) {
        auto acc = m.load(p, 8, now);
        now = acc.completeCycle;
    }
    gp::bench::Table t("C1: memory traffic for 100k checked loads",
                       {"event", "count"});
    t.addRow({"data loads",
              gp::bench::fmt("%llu",
                             (unsigned long long)m.stats().get("loads"))});
    t.addRow({"TLB lookups (miss path only)",
              gp::bench::fmt(
                  "%llu",
                  (unsigned long long)(m.tlb().stats().get("hits") +
                                       m.tlb().stats().get("misses")))});
    t.addRow({"protection-table lookups", "0 (structure absent)"});
    t.addRow({"capability-table lookups", "0 (structure absent)"});
    t.print();
}

void
BM_PermissionCheck(benchmark::State &state)
{
    Word p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    for (auto _ : state)
        benchmark::DoNotOptimize(checkAccess(p, Access::Load, 8));
}
BENCHMARK(BM_PermissionCheck);

void
BM_BoundsComparator(benchmark::State &state)
{
    Word p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    for (auto _ : state)
        benchmark::DoNotOptimize(lea(p, 8));
}
BENCHMARK(BM_BoundsComparator);

void
BM_TaggedWordStore(benchmark::State &state)
{
    // Tag maintenance cost on the memory path.
    mem::TaggedMemory mem;
    Word p = makePointer(Perm::ReadWrite, 12, 0x10000).value;
    uint64_t addr = 0;
    for (auto _ : state) {
        mem.writeWord(addr & 0xffff, p);
        benchmark::DoNotOptimize(mem.readWord(addr & 0xffff));
        addr += 8;
    }
}
BENCHMARK(BM_TaggedWordStore);

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);
    printStorageTable();
    printNoTableTraffic();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
