/**
 * @file
 * Experiment F5 (Fig. 5): the MAP chip's interleaved memory system
 * under multithreaded load.
 *
 * Sweeps hardware thread count and cache bank count while every
 * thread streams loads from its own protection domain. Reproduces the
 * figure's architectural points: (a) the 4-bank virtually-addressed
 * cache absorbs the clusters' combined request rate with few bank
 * conflicts while a single bank serializes; (b) threads from
 * different protection domains interleave cycle-by-cycle with zero
 * protection state and zero switch cost — the *machine* stats show no
 * protection-table traffic because none exists.
 */

#include <fstream>
#include <string>

#include "bench_util.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "isa/machine.h"

namespace {

using namespace gp;

struct RunStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t conflicts = 0;
};

RunStats
runThreads(unsigned nthreads, unsigned banks, unsigned issue_width = 1,
           bool profiled = false)
{
    isa::MachineConfig cfg;
    cfg.mem.cache = gp::bench::mapCache();
    cfg.mem.cache.banks = banks;
    cfg.issueWidth = issue_width;
    isa::Machine machine(cfg);

    if (profiled) {
        sim::ProfileConfig pcfg;
        pcfg.pc = pcfg.domain = pcfg.interval = true;
        sim::Profiler::instance().arm(
            cfg.clusters, cfg.clusters * cfg.threadsPerCluster, pcfg);
    }

    // Each thread sweeps a ~4KB window of its segment several times,
    // so the 16-thread working set (64KB) fits the 128KB cache and
    // the sweep isolates bank/port behaviour, not capacity misses.
    const std::string src = R"(
        movi r12, 0
        movi r13, 8
        outer:
        leabi r2, r1, 0
        movi r10, 0
        movi r11, 127
        inner:
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 16(r2)
        ld r6, 24(r2)
        leai r2, r2, 32
        addi r10, r10, 1
        bne r10, r11, inner
        addi r12, r12, 1
        bne r12, r13, outer
        halt
    )";
    auto assembly = isa::assemble(src);
    if (!assembly.ok)
        sim::fatal("F5: %s", assembly.error.c_str());

    for (unsigned i = 0; i < nthreads; ++i) {
        // Stagger code bases by one set each so the tiny code
        // segments spread across sets instead of stacking in set 0.
        const uint64_t code_base =
            ((uint64_t(i) + 1) << 20) + uint64_t(i) * 128;
        auto prog =
            isa::loadProgram(machine.mem(), code_base, assembly.words);
        isa::Thread *t = machine.spawn(prog.execPtr);
        if (!t)
            sim::fatal("F5: out of thread slots");
        // 4KB data segments tiled onto disjoint set windows: +4096
        // per thread advances the set index by 32, so 16 threads
        // exactly tile the 512 sets with no inter-thread conflicts.
        t->setReg(1, isa::dataSegment(((uint64_t(i) + 1) << 30) +
                                          uint64_t(i) * 4096,
                                      12));
        if (profiled) {
            sim::Profiler::instance().registerDomain(
                prog.base, gp::bench::fmt("t%u", i));
            for (const auto &[label, index] : assembly.labels)
                sim::Profiler::instance().registerSymbol(
                    gp::bench::fmt("t%u:%s", i, label.c_str()),
                    prog.base + index * 8);
        }
    }

    machine.run(50'000'000);

    RunStats s;
    s.cycles = machine.cycle();
    s.instructions = machine.stats().get("instructions");
    s.loads = machine.mem().stats().get("loads");
    s.hits = machine.mem().stats().get("hits");
    s.misses = machine.mem().stats().get("misses");
    s.conflicts = machine.mem().stats().get("bank_conflict_stalls");
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    gp::bench::Table t(
        "F5: MAP memory system — threads x banks sweep",
        {"threads", "banks", "cycles", "IPC", "data refs/cycle",
         "hit rate", "bank-conflict stalls/kiloref"});

    for (unsigned banks : {1u, 2u, 4u}) {
        for (unsigned threads : {1u, 4u, 8u, 16u}) {
            const RunStats s = runThreads(threads, banks);
            const uint64_t refs = s.hits + s.misses;
            t.addRow({gp::bench::fmt("%u", threads),
                      gp::bench::fmt("%u", banks),
                      gp::bench::fmt("%llu",
                                     (unsigned long long)s.cycles),
                      gp::bench::fmt("%.2f", double(s.instructions) /
                                                 double(s.cycles)),
                      gp::bench::fmt("%.2f", double(s.loads) /
                                                 double(s.cycles)),
                      gp::bench::fmt("%.1f%%", 100.0 * double(s.hits) /
                                                   double(refs)),
                      gp::bench::fmt("%.1f",
                                     1000.0 * double(s.conflicts) /
                                         double(refs))});
        }
    }
    t.print();

    // Companion sweep: cluster issue width (the MAP's multiple
    // function units) at the full 16-thread load, 4 banks.
    gp::bench::Table w("F5b: issue width x 16 threads (4 banks)",
                       {"issue width", "cycles", "IPC",
                        "data refs/cycle"});
    for (unsigned width : {1u, 2u, 3u, 4u}) {
        const RunStats s = runThreads(16, 4, width);
        w.addRow({gp::bench::fmt("%u", width),
                  gp::bench::fmt("%llu", (unsigned long long)s.cycles),
                  gp::bench::fmt("%.2f", double(s.instructions) /
                                             double(s.cycles)),
                  gp::bench::fmt("%.2f", double(s.loads) /
                                             double(s.cycles))});
    }
    w.print();
    std::printf(
        "(F5b note: this sweep is memory-port-bound, so extra issue "
        "slots go unused — width pays off for compute-bound\nmixes, "
        "measured in tests/isa/test_issue_width.cc. That the limit "
        "is the cache port, not the issue logic, is itself\nthe "
        "Fig. 5 design point: banking, not width, feeds a "
        "multithreaded memory-bound machine.)\n");

    // Profiled mirror: the heaviest sweep point (16 threads, 4
    // banks) rerun under the cycle-attribution profiler. The CPI
    // stack decomposes the same cycles the table above reports —
    // and proves the profiler is observationally invisible by
    // asserting the profiled rerun's signature is bit-identical.
    const RunStats ref = runThreads(16, 4);
    const RunStats prof = runThreads(16, 4, 1, /*profiled=*/true);
    auto &profiler = sim::Profiler::instance();
    profiler.disarm();
    if (prof.cycles != ref.cycles ||
        prof.instructions != ref.instructions)
        sim::fatal("F5: profiling changed simulated behaviour: "
                   "%llu/%llu cycles, %llu/%llu instructions",
                   (unsigned long long)ref.cycles,
                   (unsigned long long)prof.cycles,
                   (unsigned long long)ref.instructions,
                   (unsigned long long)prof.instructions);

    gp::bench::Table c(
        "F5p: CPI stack, 16 threads x 4 banks (profiled rerun; "
        "cycles bit-identical to the unprofiled row above)",
        {"component", "cluster-cycles", "share", "CPI"});
    uint64_t attributed = 0;
    for (unsigned i = 0; i < sim::kProfCompCount; ++i) {
        const uint64_t cc = profiler.comp(sim::ProfComp(i));
        attributed += cc;
        if (!cc)
            continue;
        c.addRow({std::string(sim::profCompName(sim::ProfComp(i))),
                  gp::bench::fmt("%llu", (unsigned long long)cc),
                  gp::bench::fmt("%.1f%%",
                                 100.0 * double(cc) /
                                     double(profiler.clusterCycles())),
                  gp::bench::fmt("%.4f",
                                 double(cc) /
                                     double(prof.instructions))});
    }
    c.print();
    if (attributed != profiler.clusterCycles())
        sim::fatal("F5: CPI components sum to %llu, expected %llu",
                   (unsigned long long)attributed,
                   (unsigned long long)profiler.clusterCycles());

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--profile-out=", 0) == 0) {
            std::ofstream os(arg.substr(14));
            if (!os)
                sim::fatal("F5: cannot write %s",
                           arg.substr(14).c_str());
            profiler.exportJson(os);
        }
    }

    std::printf(
        "\nClaims under test (Fig. 5 / SS3): instruction fetch and "
        "data refs from 4 clusters contend for the array, so one\n"
        "bank serializes (flat IPC vs threads) while 4 banks roughly "
        "double throughput and halve conflict stalls; all of it at\n"
        "zero protection cost — no PLB, no per-thread TLB state, "
        "translation only on cache miss.\n");
    return 0;
}
