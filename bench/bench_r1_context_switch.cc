/**
 * @file
 * Experiment R1 (§5.1): protection-domain switch cost across schemes.
 *
 * The paper's central comparison. Identical multi-domain traces are
 * replayed through every protection scheme while the scheduling
 * quantum shrinks from thousands of references down to the
 * cycle-by-cycle interleaving a multithreaded machine performs.
 * Reported: cycles/reference (total) and the switch-attributable
 * cost. Expected shape: guarded pointers flat at zero switch cost;
 * flush-based paging diverges as quanta shrink; ASIDs fix the switch
 * but lose in-cache sharing; PLB/page-group sit between.
 */

#include "baselines/runner.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload(uint64_t interval)
{
    sim::WorkloadConfig w;
    w.numDomains = 8;
    w.segmentsPerDomain = 6;
    w.sharedSegments = 4;
    w.segmentBytes = 8192;
    w.sharedFraction = 0.15;
    w.switchInterval = interval;
    w.seed = 2024;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R1: cycles/reference vs scheduling quantum (SS5.1)",
        {"scheme", "q=4096", "q=256", "q=64", "q=16", "q=4",
         "switch cost @q=16"});

    for (SchemeKind kind : allSchemeKinds()) {
        std::vector<std::string> row{std::string(schemeName(kind))};
        double switch_cost_q16 = 0;
        for (uint64_t q : {4096u, 256u, 64u, 16u, 4u}) {
            auto scheme = makeScheme(kind, cache, 64, costs);
            sim::TraceGenerator gen(workload(q));
            RunResult r = runTrace(*scheme, gen, kRefs);
            row.push_back(gp::bench::fmt("%.2f", r.cyclesPerRef()));
            if (q == 16)
                switch_cost_q16 = r.cyclesPerSwitch();
        }
        row.push_back(gp::bench::fmt("%.1f cyc/switch",
                                     switch_cost_q16));
        t.addRow(std::move(row));
    }
    t.print();

    // Companion series: in-cache sharing. Same trace, rising shared
    // fraction, guarded vs ASID — the synonym penalty.
    gp::bench::Table s(
        "R1b: in-cache sharing — miss rate vs shared fraction",
        {"scheme", "shared=0%", "shared=25%", "shared=50%",
         "shared=80%"});
    for (SchemeKind kind :
         {SchemeKind::Guarded, SchemeKind::PagedAsid}) {
        std::vector<std::string> row{std::string(schemeName(kind))};
        for (double frac : {0.0, 0.25, 0.5, 0.8}) {
            auto scheme = makeScheme(kind, cache, 64, costs);
            sim::WorkloadConfig w = workload(64);
            w.sharedFraction = frac;
            w.jumpFraction = 0.1;
            sim::TraceGenerator gen(w);
            RunResult r = runTrace(*scheme, gen, kRefs);
            // Infer the miss rate from mean cycles (hit=1).
            row.push_back(
                gp::bench::fmt("%.2f cyc/ref", r.cyclesPerRef()));
        }
        s.addRow(std::move(row));
    }
    s.print();

    std::printf(
        "\nClaims under test: guarded pointers cost 0 cycles/switch "
        "at any quantum (zero-cost context switch, SS3);\n"
        "paged-flush diverges as the quantum shrinks; ASID avoids the "
        "flush but pays the synonym penalty as sharing rises.\n");
    return 0;
}
