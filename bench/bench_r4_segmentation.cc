/**
 * @file
 * Experiment R4 (§5.2): classic segmentation vs guarded pointers.
 *
 * Three claims to regenerate: (1) the serialized segment-descriptor
 * add slows *every* reference; (2) per-process segment tables make
 * descriptor caches thrash under frequent switching; (3) the fixed
 * segment/offset split limits either segment count or segment size,
 * while the floating (length-field) split supports 2^54 one-byte
 * segments or one 2^54-byte segment.
 */

#include <cmath>

#include "baselines/guarded_scheme.h"
#include "baselines/runner.h"
#include "baselines/segmentation_scheme.h"
#include "bench_util.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload(uint64_t interval, uint32_t segs)
{
    sim::WorkloadConfig w;
    w.numDomains = 4;
    w.segmentsPerDomain = segs;
    w.sharedSegments = 2;
    w.segmentBytes = 8192;
    w.switchInterval = interval;
    w.jumpFraction = 0.2;
    w.seed = 1999;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R4: segmentation overhead vs descriptor-cache size",
        {"desc cache", "active segs/domain", "desc misses/kiloref",
         "segm cyc/ref", "guarded cyc/ref"});

    for (size_t desc_cache : {4u, 8u, 16u}) {
        for (uint32_t segs : {4u, 12u, 24u}) {
            const auto w = workload(64, segs);

            SegmentationScheme sg(cache, 64, desc_cache, costs);
            sim::TraceGenerator gen1(w);
            RunResult rs = runTrace(sg, gen1.generate(kRefs));

            GuardedScheme g(cache, 64, costs);
            sim::TraceGenerator gen2(w);
            RunResult rg = runTrace(g, gen2.generate(kRefs));

            t.addRow(
                {gp::bench::fmt("%zu", desc_cache),
                 gp::bench::fmt("%u", segs),
                 gp::bench::fmt(
                     "%.1f",
                     1000.0 *
                         double(sg.stats().get("descriptor_misses")) /
                         double(kRefs)),
                 gp::bench::fmt("%.2f", rs.cyclesPerRef()),
                 gp::bench::fmt("%.2f", rg.cyclesPerRef())});
        }
    }
    t.print();

    // The fixed-vs-floating split (SS5.2's Multics/8086/80386 point).
    gp::bench::Table split(
        "R4b: address-split expressiveness",
        {"scheme", "max segments", "max segment size",
         "both at once?"});
    split.addRow({"Multics (18-bit offset)", "2^18", "2^18 words",
                  "no - fixed split"});
    split.addRow({"8086 (16-bit offset)", "2^16", "2^16 B",
                  "no - fixed split"});
    split.addRow({"80386 (32-bit offset)", "2^16/process", "2^32 B",
                  "no - 48-bit far pointers"});
    split.addRow({"guarded pointers (6-bit length field)", "2^54",
                  "2^54 B", "any power-of-2 split of 54 bits"});
    split.print();

    std::printf(
        "\nClaims under test (SS5.2): the descriptor add taxes every "
        "reference even when descriptors hit; small descriptor\n"
        "caches thrash as active segments grow; the floating split "
        "removes the segment-count/size trade-off entirely.\n");
    return 0;
}
