/**
 * @file
 * Experiment F3 (Fig. 3): one-way protected subsystem call cost.
 *
 * Runs the actual Fig. 3 instruction sequence on the MAP simulator —
 * enter pointer in, RETIP back — and reports cycles per call against
 * (a) an ordinary same-domain call and (b) kernel-mediated
 * cross-domain call models in the style the paper argues against
 * (trap + address-space switch, with and without TLB/cache flush).
 *
 * Expected shape: protected entry costs the same handful of cycles as
 * a plain call; trap-based domain crossings cost tens to hundreds.
 */

#include <fstream>
#include <string>

#include "baselines/runner.h"
#include "bench_util.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "os/kernel.h"

namespace {

using namespace gp;

constexpr int kCalls = 256;

/** Cycles/call for a caller loop invoking the target via jmp. */
double
measureCallLoop(os::Kernel &kernel, Word target_ptr,
                const std::string &label)
{
    (void)label;
    auto caller = kernel.loadAssembly(R"(
        movi r10, 0
        movi r11, )" + std::to_string(kCalls) +
                                      R"(
        loop:
        getip r14
        leai r14, r14, 24
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");
    if (!caller)
        sim::fatal("F3: caller failed to assemble");

    const uint64_t before = kernel.machine().cycle();
    isa::Thread *t =
        kernel.spawn(caller.value.execPtr, {{1, target_ptr}});
    if (!t)
        sim::fatal("F3: no thread slot");
    kernel.machine().run(10'000'000);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("F3: caller did not halt (fault %s)",
                   std::string(faultName(t->faultRecord().fault))
                       .c_str());
    const uint64_t cycles = kernel.machine().cycle() - before;

    // Subtract the loop bookkeeping measured with an empty body of
    // equal trip count: 3 loop instructions + getip + leai per call.
    return double(cycles) / kCalls;
}

/** Loop-only control: same loop with the call replaced by a nop. */
double
measureLoopOverhead(os::Kernel &kernel)
{
    auto prog = kernel.loadAssembly(R"(
        movi r10, 0
        movi r11, )" + std::to_string(kCalls) +
                                    R"(
        loop:
        getip r14
        leai r14, r14, 24
        nop
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");
    const uint64_t before = kernel.machine().cycle();
    isa::Thread *t = kernel.spawn(prog.value.execPtr);
    kernel.machine().run(10'000'000);
    (void)t;
    return double(kernel.machine().cycle() - before) / kCalls;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    os::Kernel kernel;

    // Null subsystem: immediately returns. Measures the pure
    // protection-crossing cost.
    auto null_sub = kernel.buildSubsystem("jmp r14", {});
    // Working subsystem: loads its capability table and touches its
    // private data — the full Fig. 3 sequence (states A-D).
    auto data = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto work_sub = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)
        ld r4, 0(r3)
        addi r4, r4, 1
        st r4, 0(r3)
        jmp r14
    )",
                                          {data.value});
    // Plain same-domain callee for comparison.
    auto plain = kernel.loadAssembly("jmp r14");
    if (!null_sub || !work_sub || !plain || !data)
        sim::fatal("F3: setup failed");

    const double loop = measureLoopOverhead(kernel);
    const double plain_call =
        measureCallLoop(kernel, plain.value.execPtr, "plain");
    const double enter_null =
        measureCallLoop(kernel, null_sub.value.enterPtr, "null-sub");
    const double enter_work =
        measureCallLoop(kernel, work_sub.value.enterPtr, "work-sub");

    // Kernel-mediated cross-domain call models (per §5.1 hardware):
    // trap into the kernel, switch the protection domain, run the
    // callee, switch back, return. The flush variant also purges the
    // TLB and virtual cache both ways (costs from the shared Costs
    // model; refill misses excluded, so this *understates* it).
    baselines::Costs costs;
    const double trap = 20; // pipeline drain + mode switch + vector
    const double asid_switch = double(costs.switchFixed);
    const double flush_switch =
        double(costs.switchFixed) * 2; // TLB + cache purge issue cost
    const double trap_asid =
        (enter_null - loop) + 2 * (trap + asid_switch);
    const double trap_flush =
        (enter_null - loop) + 2 * (trap + flush_switch);

    gp::bench::Table t(
        "F3: one-way protected subsystem call (cycles/call, "
        "loop overhead removed)",
        {"mechanism", "cycles/call", "vs plain call"});
    auto row = [&](const char *name, double c) {
        t.addRow({name, gp::bench::fmt("%.1f", c - loop),
                  gp::bench::fmt("%.2fx",
                                 (c - loop) / (plain_call - loop))});
    };
    row("plain jump/return (same domain)", plain_call);
    row("guarded enter pointer (null subsystem)", enter_null);
    row("guarded enter pointer (capability load + data touch)",
        enter_work);
    t.addRow({"trap-based IPC, ASID switch (model)",
              gp::bench::fmt("%.1f", trap_asid),
              gp::bench::fmt("%.2fx",
                             trap_asid / (plain_call - loop))});
    t.addRow({"trap-based IPC, TLB+cache flush (model, refills "
              "excluded)",
              gp::bench::fmt("%.1f", trap_flush),
              gp::bench::fmt("%.2fx",
                             trap_flush / (plain_call - loop))});
    t.print();

    std::printf("\nloop overhead: %.1f cycles/iteration\n", loop);
    std::printf("Claim under test: protected entry ~= plain call; "
                "kernel-mediated crossing is 1-2 orders costlier.\n");

    // Profiled mirror: rerun the working-subsystem crossing under
    // the cycle-attribution profiler with call-gate stacks on, so
    // the caller->subsystem crossings show up as per-domain cost and
    // as collapsed stacks (gpprof.py --flamegraph renders them).
    // A fresh kernel is built AFTER arm() because arm() clears
    // registered domain/symbol names.
    sim::ProfileConfig pcfg;
    pcfg.pc = pcfg.domain = pcfg.stacks = true;
    os::KernelConfig kcfg;
    sim::Profiler::instance().arm(
        kcfg.machine.clusters,
        kcfg.machine.clusters * kcfg.machine.threadsPerCluster, pcfg);
    {
        os::Kernel pk(kcfg);
        auto pdata = pk.segments().allocate(4096, Perm::ReadWrite);
        auto psub = pk.buildSubsystem(R"(
            getip r2
            leabi r2, r2, 0
            ld r3, 0(r2)
            ld r4, 0(r3)
            addi r4, r4, 1
            st r4, 0(r3)
            jmp r14
        )",
                                      {pdata.value});
        if (!pdata || !psub)
            sim::fatal("F3: profiled setup failed");
        measureCallLoop(pk, psub.value.enterPtr, "profiled");
    }
    auto &profiler = sim::Profiler::instance();
    profiler.disarm();

    gp::bench::Table d("F3p: per-domain cost, profiled "
                       "caller->subsystem crossing",
                       {"domain", "cluster-cycles", "instructions",
                        "enters"});
    for (const auto &dom : profiler.domains()) {
        d.addRow({dom.name.empty()
                      ? gp::bench::fmt("0x%llx",
                                       (unsigned long long)dom.base)
                      : dom.name,
                  gp::bench::fmt("%llu",
                                 (unsigned long long)dom.cycles),
                  gp::bench::fmt("%llu", (unsigned long long)dom.insts),
                  gp::bench::fmt("%llu",
                                 (unsigned long long)dom.enters)});
    }
    d.print();

    size_t crossing_stacks = 0;
    for (const auto &s : profiler.stacks())
        if (s.frames.size() > 1 && s.cycles)
            crossing_stacks++;
    if (!crossing_stacks)
        sim::fatal("F3: no multi-frame call-gate stacks recorded — "
                   "gate-crossing attribution is broken");
    std::printf("\n%zu multi-frame call-gate stack(s) recorded "
                "(flamegraph input: --profile-out=FILE + "
                "tools/gpprof.py --flamegraph).\n",
                crossing_stacks);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--profile-out=", 0) == 0) {
            std::ofstream os(arg.substr(14));
            if (!os)
                sim::fatal("F3: cannot write %s",
                           arg.substr(14).c_str());
            profiler.exportJson(os);
        }
    }
    return 0;
}
