/**
 * @file
 * Experiment R6 (§5.4): software fault isolation (Wahbe et al.) vs
 * hardware guarded pointers.
 *
 * SFI inserts check/sandbox instructions before every reference the
 * compiler cannot prove safe. Swept here: the statically-provable
 * fraction and the per-check instruction count (2 = store sandboxing,
 * 4 = full checking), against the guarded-pointer bound where the
 * check is hardware and costs zero issue slots. Also run natively on
 * the ISA machine: the same loop with and without inlined check
 * instructions.
 */

#include <string>

#include "baselines/guarded_scheme.h"
#include "baselines/runner.h"
#include "baselines/sfi_scheme.h"
#include "bench_util.h"
#include "sim/log.h"
#include "os/kernel.h"

namespace {

using namespace gp;
using namespace gp::baselines;

sim::WorkloadConfig
workload()
{
    sim::WorkloadConfig w;
    w.numDomains = 4;
    w.segmentsPerDomain = 8;
    w.sharedSegments = 2;
    w.segmentBytes = 8192;
    w.switchInterval = 256;
    w.seed = 93;
    return w;
}

/** Run the paper's array loop on the machine, with/without checks. */
double
machineLoop(bool sfi_checks)
{
    os::Kernel kernel;
    auto seg = kernel.segments().allocate(8192, Perm::ReadWrite);
    // The SFI variant emulates Wahbe's sandboxing: two extra ALU
    // instructions (mask to the fault domain, merge base) before each
    // store, issued on the same pipeline.
    const std::string body =
        sfi_checks ? R"(
        movi r10, 0
        movi r11, 512
        loop:
        and r6, r4, r5     ; sandbox: mask offset bits
        or  r6, r6, r7     ; sandbox: force fault-domain bits
        st r10, 0(r2)
        leai r2, r2, 8
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )"
                   : R"(
        movi r10, 0
        movi r11, 512
        loop:
        st r10, 0(r2)
        leai r2, r2, 8
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )";
    auto prog = kernel.loadAssembly(body);
    if (!prog || !seg)
        sim::fatal("R6: setup failed");
    isa::Thread *t =
        kernel.spawn(prog.value.execPtr, {{2, seg.value}});
    const uint64_t before = kernel.machine().cycle();
    kernel.machine().run(10'000'000);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("R6: loop did not halt");
    return double(kernel.machine().cycle() - before) / 512.0;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const auto cache = gp::bench::mapCache();
    const Costs costs;
    constexpr uint64_t kRefs = 200000;

    gp::bench::Table t(
        "R6: SFI overhead vs statically-safe fraction",
        {"check instrs", "static-safe", "sfi cyc/ref",
         "guarded cyc/ref", "overhead"});

    GuardedScheme g(cache, 64, costs);
    sim::TraceGenerator ggen(workload());
    RunResult rg = runTrace(g, ggen.generate(kRefs));

    for (unsigned check : {2u, 4u}) {
        for (double safe : {0.0, 0.3, 0.6, 0.9}) {
            SfiScheme sfi(cache, 64, costs, check, safe, 17);
            sim::TraceGenerator gen(workload());
            RunResult rs = runTrace(sfi, gen.generate(kRefs));
            t.addRow({gp::bench::fmt("%u", check),
                      gp::bench::fmt("%.0f%%", safe * 100),
                      gp::bench::fmt("%.2f", rs.cyclesPerRef()),
                      gp::bench::fmt("%.2f", rg.cyclesPerRef()),
                      gp::bench::fmt("%+.0f%%",
                                     100.0 * (rs.cyclesPerRef() /
                                                  rg.cyclesPerRef() -
                                              1.0))});
        }
    }
    t.print();

    const double plain = machineLoop(false);
    const double sandboxed = machineLoop(true);
    gp::bench::Table m("R6b: store loop on the MAP simulator",
                       {"variant", "cycles/iteration", "overhead"});
    m.addRow({"guarded pointers (hardware check)",
              gp::bench::fmt("%.2f", plain), "baseline"});
    m.addRow({"SFI sandboxed stores (2 extra instrs)",
              gp::bench::fmt("%.2f", sandboxed),
              gp::bench::fmt("%+.0f%%",
                             100.0 * (sandboxed / plain - 1.0))});
    m.print();

    std::printf(
        "\nClaims under test (SS5.4): SFI cost scales with the "
        "unproven-reference fraction and is paid in issue slots;\n"
        "it also relies on toolchain discipline — hand-written code "
        "bypasses it, which no guarded-pointer program can do.\n");
    return 0;
}
