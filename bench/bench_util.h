/**
 * @file
 * Shared helpers for the experiment benches: a fixed-width table
 * printer so every bench emits the paper-style series in a uniform,
 * grep-friendly format, and common hardware configurations so all
 * experiments run over the same simulated machine.
 */

#ifndef GP_BENCH_BENCH_UTIL_H
#define GP_BENCH_BENCH_UTIL_H

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "mem/cache.h"

namespace gp::bench {

/** Fixed-width text table with a title, header, and rows. */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> header)
        : title_(std::move(title)), header_(std::move(header))
    {
    }

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print() const
    {
        std::vector<size_t> widths(header_.size());
        for (size_t c = 0; c < header_.size(); ++c)
            widths[c] = header_[c].size();
        for (const auto &row : rows_) {
            for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());
        }

        std::printf("\n== %s ==\n", title_.c_str());
        printRow(header_, widths);
        std::string rule;
        for (size_t c = 0; c < widths.size(); ++c) {
            rule += std::string(widths[c], '-');
            rule += c + 1 < widths.size() ? "-+-" : "";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            printRow(row, widths);
    }

  private:
    static void
    printRow(const std::vector<std::string> &row,
             const std::vector<size_t> &widths)
    {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            cell.resize(widths[c], ' ');
            line += cell;
            line += c + 1 < widths.size() ? " | " : "";
        }
        std::printf("%s\n", line.c_str());
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style cell formatting. */
inline std::string
fmt(const char *format, ...)
{
    char buf[128];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** The MAP-like cache geometry every experiment uses (Fig. 5). */
inline mem::CacheConfig
mapCache()
{
    mem::CacheConfig c;
    c.banks = 4;
    c.lineBytes = 32;
    c.setsPerBank = 512;
    c.ways = 2;
    return c;
}

} // namespace gp::bench

#endif // GP_BENCH_BENCH_UTIL_H
