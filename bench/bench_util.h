/**
 * @file
 * Shared helpers for the experiment benches: a fixed-width table
 * printer so every bench emits the paper-style series in a uniform,
 * grep-friendly format, common hardware configurations so all
 * experiments run over the same simulated machine, and an opt-in
 * machine-readable JSON report (--json[=FILE]) so result series can be
 * diffed and plotted without scraping the text tables.
 */

#ifndef GP_BENCH_BENCH_UTIL_H
#define GP_BENCH_BENCH_UTIL_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "mem/cache.h"
#include "sim/json.h"

namespace gp::bench {

/**
 * Process-wide JSON report: every Table printed is also recorded here,
 * and written as one JSON document at exit when --json was requested.
 */
class JsonReport
{
  public:
    static JsonReport &
    instance()
    {
        static JsonReport report;
        return report;
    }

    void
    configure(std::string bench_name, std::string path)
    {
        name_ = std::move(bench_name);
        path_ = std::move(path);
        enabled_ = true;
    }

    bool enabled() const { return enabled_; }

    void
    record(const std::string &title,
           const std::vector<std::string> &header,
           const std::vector<std::vector<std::string>> &rows)
    {
        if (!enabled_)
            return;
        tables_.push_back(Recorded{title, header, rows});
    }

    void
    write() const
    {
        if (!enabled_)
            return;
        std::ofstream os(path_, std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path_.c_str());
            return;
        }
        os << "{\"bench\":\"" << sim::jsonEscape(name_)
           << "\",\"tables\":[";
        for (size_t t = 0; t < tables_.size(); ++t) {
            const Recorded &tab = tables_[t];
            if (t)
                os << ",";
            os << "{\"title\":\"" << sim::jsonEscape(tab.title)
               << "\",\"header\":[";
            for (size_t c = 0; c < tab.header.size(); ++c) {
                os << (c ? "," : "") << "\""
                   << sim::jsonEscape(tab.header[c]) << "\"";
            }
            os << "],\"rows\":[";
            for (size_t r = 0; r < tab.rows.size(); ++r) {
                os << (r ? "," : "") << "[";
                for (size_t c = 0; c < tab.rows[r].size(); ++c) {
                    os << (c ? "," : "") << "\""
                       << sim::jsonEscape(tab.rows[r][c]) << "\"";
                }
                os << "]";
            }
            os << "]}";
        }
        os << "]}\n";
    }

  private:
    struct Recorded
    {
        std::string title;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };

    bool enabled_ = false;
    std::string name_;
    std::string path_;
    std::vector<Recorded> tables_;
};

/**
 * Parse and strip the shared bench flags (--json[=FILE]) from argv.
 * Call first thing in main(); the JSON report (named <bench>.json
 * unless overridden) is written at process exit. Flags are removed
 * from argv so google-benchmark argument parsing never sees them.
 */
inline void
init(int &argc, char **argv)
{
    std::string_view prog = argc > 0 ? argv[0] : "bench";
    if (const size_t slash = prog.rfind('/');
        slash != std::string_view::npos) {
        prog = prog.substr(slash + 1);
    }

    bool enabled = false;
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json") {
            enabled = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            enabled = true;
            path = std::string(arg.substr(7));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;

    if (enabled) {
        if (path.empty())
            path = std::string(prog) + ".json";
        JsonReport::instance().configure(std::string(prog),
                                         std::move(path));
        std::atexit(+[] { JsonReport::instance().write(); });
    }
}

/** Fixed-width text table with a title, header, and rows. */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> header)
        : title_(std::move(title)), header_(std::move(header))
    {
    }

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print() const
    {
        std::vector<size_t> widths(header_.size());
        for (size_t c = 0; c < header_.size(); ++c)
            widths[c] = header_[c].size();
        for (const auto &row : rows_) {
            for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());
        }

        std::printf("\n== %s ==\n", title_.c_str());
        printRow(header_, widths);
        std::string rule;
        for (size_t c = 0; c < widths.size(); ++c) {
            rule += std::string(widths[c], '-');
            rule += c + 1 < widths.size() ? "-+-" : "";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            printRow(row, widths);

        JsonReport::instance().record(title_, header_, rows_);
    }

  private:
    static void
    printRow(const std::vector<std::string> &row,
             const std::vector<size_t> &widths)
    {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            cell.resize(widths[c], ' ');
            line += cell;
            line += c + 1 < widths.size() ? " | " : "";
        }
        std::printf("%s\n", line.c_str());
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style cell formatting. */
inline std::string
fmt(const char *format, ...)
{
    char buf[128];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** The MAP-like cache geometry every experiment uses (Fig. 5). */
inline mem::CacheConfig
mapCache()
{
    mem::CacheConfig c;
    c.banks = 4;
    c.lineBytes = 32;
    c.setsPerBank = 512;
    c.ways = 2;
    return c;
}

} // namespace gp::bench

#endif // GP_BENCH_BENCH_UTIL_H
