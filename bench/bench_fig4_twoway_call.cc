/**
 * @file
 * Experiment F4 (Fig. 4): two-way protected subsystem call cost.
 *
 * Runs the full Fig. 4 sequence — spill live pointers to the return
 * segment, scrub registers, enter the subsystem, return through the
 * return-segment gateway which reloads the caller's pointers — and
 * compares cycles/call against the one-way call (F3) and a plain
 * call. The extra cost of two-way protection is the spill/scrub/
 * reload work, all of it ordinary user-mode instructions.
 */

#include <string>

#include "bench_util.h"
#include "sim/log.h"
#include "isa/assembler.h"
#include "os/kernel.h"

namespace {

using namespace gp;

constexpr int kCalls = 256;
constexpr uint64_t kStubOffset = 64;

/** Build a return segment with the reload stub; returns (rw, enter). */
std::pair<Word, Word>
makeReturnSegment(os::Kernel &kernel)
{
    auto rw = kernel.segments().allocate(256, Perm::ReadWrite);
    if (!rw)
        sim::fatal("F4: return segment allocation failed");
    const uint64_t base = PointerView(rw.value).segmentBase();

    auto stub = isa::assemble(R"(
        getip r15
        leabi r15, r15, 0
        ld r14, 0(r15)   ; continuation IP
        ld r4, 8(r15)    ; caller's protected pointer
        ld r2, 16(r15)   ; caller's return-segment RW pointer
        movi r15, 0
        jmp r14
    )");
    if (!stub.ok)
        sim::fatal("F4: stub failed: %s", stub.error.c_str());
    for (size_t i = 0; i < stub.words.size(); ++i)
        kernel.mem().pokeWord(base + kStubOffset + i * 8,
                              stub.words[i]);

    auto enter = makePointer(Perm::EnterUser,
                             PointerView(rw.value).lenLog2(),
                             base + kStubOffset);
    if (!enter)
        sim::fatal("F4: enter pointer mint failed");
    return {rw.value, enter.value};
}

double
runCaller(os::Kernel &kernel, const std::string &src,
          const std::vector<std::pair<unsigned, Word>> &regs)
{
    auto caller = kernel.loadAssembly(src);
    if (!caller)
        sim::fatal("F4: caller failed to assemble");
    const uint64_t before = kernel.machine().cycle();
    isa::Thread *t = kernel.spawn(caller.value.execPtr, regs);
    if (!t)
        sim::fatal("F4: no thread slot");
    kernel.machine().run(50'000'000);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("F4: caller did not halt (fault %s)",
                   std::string(faultName(t->faultRecord().fault))
                       .c_str());
    return double(kernel.machine().cycle() - before) / kCalls;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    os::Kernel kernel;
    const std::string n = std::to_string(kCalls);

    auto priv = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto one_way_sub = kernel.buildSubsystem("jmp r14", {});
    auto two_way_sub = kernel.buildSubsystem("jmp r3", {});
    auto plain = kernel.loadAssembly("jmp r14");
    if (!priv || !one_way_sub || !two_way_sub || !plain)
        sim::fatal("F4: setup failed");
    auto [ret_rw, ret_enter] = makeReturnSegment(kernel);

    const double loop = runCaller(kernel, R"(
        movi r10, 0
        movi r11, )" + n + R"(
        loop:
        nop
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )",
                                  {});

    const double plain_call = runCaller(kernel, R"(
        movi r10, 0
        movi r11, )" + n + R"(
        loop:
        getip r14
        leai r14, r14, 24
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )",
                                        {{1, plain.value.execPtr}});

    const double one_way = runCaller(kernel, R"(
        movi r10, 0
        movi r11, )" + n + R"(
        loop:
        getip r14
        leai r14, r14, 24
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )",
                                     {{1, one_way_sub.value.enterPtr}});

    // Fig. 4 A->D per iteration: save continuation + 2 pointers,
    // scrub 3 registers, call; the gateway stub reloads everything.
    const double two_way = runCaller(kernel, R"(
        movi r10, 0
        movi r11, )" + n + R"(
        loop:
        getip r14
        leai r14, r14, 72
        st r14, 0(r2)
        st r4, 8(r2)
        st r2, 16(r2)
        movi r14, 0
        movi r4, 0
        movi r2, 0
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )",
                                     {{1, two_way_sub.value.enterPtr},
                                      {2, ret_rw},
                                      {3, ret_enter},
                                      {4, priv.value}});

    gp::bench::Table t("F4: two-way protected call (cycles/call, loop "
                       "overhead removed)",
                       {"mechanism", "cycles/call", "vs plain",
                        "protects"});
    auto row = [&](const char *name, double c, const char *prot) {
        t.addRow({name, gp::bench::fmt("%.1f", c - loop),
                  gp::bench::fmt("%.2fx",
                                 (c - loop) / (plain_call - loop)),
                  prot});
    };
    row("plain jump/return", plain_call, "nothing");
    row("one-way enter call (Fig. 3)", one_way, "subsystem from caller");
    row("two-way call w/ return segment (Fig. 4)", two_way,
        "both directions");
    t.print();

    std::printf("\nTwo-way adder = %.1f cycles: 3 stores + 3 register "
                "scrubs + gateway reload, all unprivileged.\n",
                two_way - one_way);
    return 0;
}
