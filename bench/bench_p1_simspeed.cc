/**
 * @file
 * Experiment P1: host simulation speed (the perf-CI anchor).
 *
 * Unlike every other bench, P1's primary metric is *host* work per
 * simulated instruction: it runs three representative workloads —
 * the Fig. 5 multithreaded memory sweep, the F7 microkernel server
 * chain, and a fault-injection campaign — and reports simulated
 * instructions (or runs) per host second, timed tightly around the
 * simulation loop so loader/assembler setup is excluded.
 *
 * The output is split into two tables on purpose:
 *
 *  - "P1 signature (deterministic)": simulated cycles, instruction
 *    counts, and campaign outcome classes. These are pure functions
 *    of the simulator and must be *bit-identical* on every host and
 *    every commit that claims to be observationally invisible.
 *    tools/perfgate.py hard-fails CI when they drift from the
 *    checked-in bench/BENCH_PERF.json baseline.
 *
 *  - "P1 host speed (host-dependent)": wall time and derived rates.
 *    Informational / warn-only in CI — machines differ; the
 *    committed baseline documents the reference machine's numbers.
 *
 * See docs/ARCHITECTURE.md ("Performance & perf-CI") for the
 * conventions this bench enforces.
 */

#include <chrono>
#include <string>

#include "bench_util.h"
#include "fault/campaign.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "isa/machine.h"
#include "os/kernel.h"
#include "sim/log.h"
#include "sim/profile.h"
#include "verify/verifier.h"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ArmResult
{
    uint64_t cycles = 0;       //!< simulated cycles (deterministic)
    uint64_t instructions = 0; //!< simulated instructions (det.)
    double wallSeconds = 0;    //!< host time around the sim loop only
};

/**
 * Arm 1: the Fig. 5 memory-system workload at its heaviest point
 * (16 threads, 4 banks) plus the most serialized one (16 threads,
 * 1 bank), so both the hit-dominated and conflict-dominated paths
 * are exercised. Workload mirrors bench_fig5_map_memsys.
 */
ArmResult
runFig5Arm()
{
    ArmResult r;
    const std::string src = R"(
        movi r12, 0
        movi r13, 8
        outer:
        leabi r2, r1, 0
        movi r10, 0
        movi r11, 127
        inner:
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 16(r2)
        ld r6, 24(r2)
        leai r2, r2, 32
        addi r10, r10, 1
        bne r10, r11, inner
        addi r12, r12, 1
        bne r12, r13, outer
        halt
    )";
    auto assembly = isa::assemble(src);
    if (!assembly.ok)
        sim::fatal("P1: %s", assembly.error.c_str());

    for (unsigned banks : {4u, 1u}) {
        isa::MachineConfig cfg;
        cfg.mem.cache = gp::bench::mapCache();
        cfg.mem.cache.banks = banks;
        isa::Machine machine(cfg);
        for (unsigned i = 0; i < 16; ++i) {
            const uint64_t code_base =
                ((uint64_t(i) + 1) << 20) + uint64_t(i) * 128;
            auto prog = isa::loadProgram(machine.mem(), code_base,
                                         assembly.words);
            isa::Thread *t = machine.spawn(prog.execPtr);
            if (!t)
                sim::fatal("P1: out of thread slots");
            t->setReg(1,
                      isa::dataSegment(((uint64_t(i) + 1) << 30) +
                                           uint64_t(i) * 4096,
                                       12));
        }
        const auto t0 = Clock::now();
        machine.run(50'000'000);
        r.wallSeconds += secondsSince(t0);
        r.cycles += machine.cycle();
        r.instructions += machine.stats().get("instructions");
    }
    return r;
}

/**
 * Arm 2: the F7 microkernel chain — a caller crossing two protected
 * subsystems per request via enter pointers, exercising the OS
 * layer, gate crossings, and the fault-free control-flow paths.
 */
ArmResult
runMicrokernelArm()
{
    constexpr int kRequests = 512;

    os::Kernel kernel;
    auto state = kernel.segments().allocate(4096, Perm::ReadWrite);
    auto server = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)
        ld r4, 0(r3)
        addi r4, r4, 1
        st r4, 0(r3)
        jmp r12
    )",
                                        {state.value});
    auto front_table =
        kernel.segments().allocate(4096, Perm::ReadWrite);
    auto front = kernel.buildSubsystem(R"(
        getip r2
        leabi r2, r2, 0
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 0(r3)
        getip r12
        leai r12, r12, 24
        jmp r4
        jmp r14
    )",
                                       {front_table.value,
                                        server ? server.value.enterPtr
                                               : Word{}});
    if (!state || !server || !front_table || !front)
        sim::fatal("P1: microkernel setup failed");

    auto caller = kernel.loadAssembly(R"(
        movi r10, 0
        movi r11, )" + std::to_string(kRequests) +
                                      R"(
        loop:
        getip r14
        leai r14, r14, 24
        jmp r1
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )");
    if (!caller)
        sim::fatal("P1: caller failed");
    isa::Thread *t =
        kernel.spawn(caller.value.execPtr,
                     {{1, front.value.enterPtr}});
    if (!t)
        sim::fatal("P1: no slot");

    ArmResult r;
    const auto t0 = Clock::now();
    kernel.machine().run(50'000'000);
    r.wallSeconds = secondsSince(t0);
    if (t->state() != isa::ThreadState::Halted)
        sim::fatal("P1: chain faulted: %s",
                   std::string(faultName(t->faultRecord().fault))
                       .c_str());
    r.cycles = kernel.machine().cycle();
    r.instructions = kernel.machine().stats().get("instructions");
    return r;
}

/**
 * Arm 4: the profiler contract. Runs the heaviest Fig. 5 point
 * (16 threads, 4 banks) twice — profiling off, then fully on — and
 * fatals unless the simulated signature is bit-identical and the
 * profiled run's CPI components sum exactly to clusters x cycles.
 * The off run's wall time lands in the host table next to the on
 * run's, making any host-speed cost of the disarmed hooks (which
 * must be one static-bool branch per site) visible to perfgate.
 */
struct ProfiledArm
{
    ArmResult off;
    ArmResult on;
};

ProfiledArm
runFig5ProfiledArm()
{
    const std::string src = R"(
        movi r12, 0
        movi r13, 8
        outer:
        leabi r2, r1, 0
        movi r10, 0
        movi r11, 127
        inner:
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 16(r2)
        ld r6, 24(r2)
        leai r2, r2, 32
        addi r10, r10, 1
        bne r10, r11, inner
        addi r12, r12, 1
        bne r12, r13, outer
        halt
    )";
    auto assembly = isa::assemble(src);
    if (!assembly.ok)
        sim::fatal("P1: %s", assembly.error.c_str());

    auto run_once = [&](bool profiled) {
        ArmResult r;
        isa::MachineConfig cfg;
        cfg.mem.cache = gp::bench::mapCache();
        cfg.mem.cache.banks = 4;
        isa::Machine machine(cfg);
        if (profiled) {
            sim::ProfileConfig pcfg;
            pcfg.pc = pcfg.domain = pcfg.interval = pcfg.stacks = true;
            sim::Profiler::instance().arm(
                cfg.clusters, cfg.clusters * cfg.threadsPerCluster,
                pcfg);
        }
        for (unsigned i = 0; i < 16; ++i) {
            const uint64_t code_base =
                ((uint64_t(i) + 1) << 20) + uint64_t(i) * 128;
            auto prog = isa::loadProgram(machine.mem(), code_base,
                                         assembly.words);
            isa::Thread *t = machine.spawn(prog.execPtr);
            if (!t)
                sim::fatal("P1: out of thread slots");
            t->setReg(1,
                      isa::dataSegment(((uint64_t(i) + 1) << 30) +
                                           uint64_t(i) * 4096,
                                       12));
        }
        const auto t0 = Clock::now();
        machine.run(50'000'000);
        r.wallSeconds = secondsSince(t0);
        r.cycles = machine.cycle();
        r.instructions = machine.stats().get("instructions");
        if (profiled)
            sim::Profiler::instance().disarm();
        return r;
    };

    ProfiledArm arm;
    arm.off = run_once(false);
    arm.on = run_once(true);

    if (arm.off.cycles != arm.on.cycles ||
        arm.off.instructions != arm.on.instructions)
        sim::fatal("P1: profiling changed simulated behaviour: "
                   "%llu/%llu cycles, %llu/%llu instructions",
                   (unsigned long long)arm.off.cycles,
                   (unsigned long long)arm.on.cycles,
                   (unsigned long long)arm.off.instructions,
                   (unsigned long long)arm.on.instructions);

    const auto &prof = sim::Profiler::instance();
    uint64_t sum = 0;
    for (unsigned i = 0; i < sim::kProfCompCount; ++i)
        sum += prof.comp(sim::ProfComp(i));
    if (sum != prof.clusterCycles() ||
        sum != uint64_t(prof.clusters()) * prof.cycles())
        sim::fatal("P1: CPI components sum to %llu, expected %llu",
                   (unsigned long long)sum,
                   (unsigned long long)prof.clusterCycles());
    if (prof.instructions() != arm.on.instructions)
        sim::fatal("P1: profiler counted %llu instructions, "
                   "machine %llu",
                   (unsigned long long)prof.instructions(),
                   (unsigned long long)arm.on.instructions);
    return arm;
}

/**
 * Arm 5: verifier-driven check elision (ISSUE 7). An elide-friendly
 * variant of the Fig. 5 sweep — constant-offset loads plus fresh
 * (non-loop-carried) pointer arithmetic the verifier can discharge —
 * runs once with full checks and once with the proof registered.
 * Deterministic contract: instruction counts are identical, elide-on
 * cycles never exceed elide-off cycles, and the elided/executed/saved
 * counters are pure functions of the simulator. The two host rows
 * make the host-speed gain of skipping proven check work visible.
 */
struct ElideArm
{
    ArmResult off;
    ArmResult on;
    uint64_t elided = 0;
    uint64_t executed = 0;
    uint64_t cyclesSaved = 0;
};

ElideArm
runFig5ElideArm()
{
    const std::string src = R"(
        movi r10, 0
        movi r11, 1024
        loop:
        leabi r2, r1, 0
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 16(r2)
        ld r6, 24(r2)
        leai r7, r2, 32
        addi r10, r10, 1
        bne r10, r11, loop
        halt
    )";
    auto assembly = isa::assemble(src);
    if (!assembly.ok)
        sim::fatal("P1: %s", assembly.error.c_str());

    verify::VerifyOptions vopts;
    vopts.entryRegs = verify::defaultEntryRegs(4096);
    const verify::VerifyResult vres =
        verify::verifyProgram(assembly, vopts);

    ElideArm arm;
    auto run_once = [&](bool elide) {
        ArmResult r;
        isa::MachineConfig cfg;
        cfg.mem.cache = gp::bench::mapCache();
        cfg.mem.cache.banks = 4;
        cfg.elideChecks = elide;
        isa::Machine machine(cfg);
        for (unsigned i = 0; i < 16; ++i) {
            const uint64_t code_base =
                ((uint64_t(i) + 1) << 20) + uint64_t(i) * 128;
            if (elide)
                machine.registerElideProof(verify::makeElideProof(
                    vres, assembly.words, false, code_base));
            auto prog = isa::loadProgram(machine.mem(), code_base,
                                         assembly.words);
            isa::Thread *t = machine.spawn(prog.execPtr);
            if (!t)
                sim::fatal("P1: out of thread slots");
            t->setReg(1,
                      isa::dataSegment(((uint64_t(i) + 1) << 30) +
                                           uint64_t(i) * 4096,
                                       12));
        }
        const auto t0 = Clock::now();
        machine.run(50'000'000);
        r.wallSeconds = secondsSince(t0);
        r.cycles = machine.cycle();
        r.instructions = machine.stats().get("instructions");
        if (elide) {
            arm.elided =
                machine.stats().get("elide_checks_elided");
            arm.executed =
                machine.stats().get("elide_checks_executed");
            arm.cyclesSaved =
                machine.stats().get("elide_cycles_saved");
        }
        return r;
    };

    arm.off = run_once(false);
    arm.on = run_once(true);

    if (arm.off.instructions != arm.on.instructions)
        sim::fatal("P1: elision changed the instruction count: "
                   "%llu -> %llu",
                   (unsigned long long)arm.off.instructions,
                   (unsigned long long)arm.on.instructions);
    if (arm.on.cycles > arm.off.cycles)
        sim::fatal("P1: elision made the run slower: %llu -> %llu "
                   "cycles",
                   (unsigned long long)arm.off.cycles,
                   (unsigned long long)arm.on.cycles);
    if (arm.elided == 0 || arm.cyclesSaved == 0)
        sim::fatal("P1: elide arm proved nothing (elided=%llu, "
                   "saved=%llu)",
                   (unsigned long long)arm.elided,
                   (unsigned long long)arm.cyclesSaved);
    return arm;
}

/**
 * Arm 6: the superblock threaded-code interpreter (ISSUE 10). The
 * heaviest Fig. 5 point runs three ways — legacy dispatch,
 * --superblocks, and functional-only --fast — timed separately.
 * Deterministic contract (fatal on violation): superblocks leave the
 * cycle count AND instruction count bit-identical to legacy, --fast
 * preserves the instruction count, and the trace engine actually ran
 * (hits > 0). The host rows expose the speedup; perfgate
 * additionally requires the in-run fig5-fast rate to be >= 2x the
 * in-run fig5-memsys rate (a same-host ratio, robust to machine
 * differences).
 */
struct SuperblockArm
{
    ArmResult off;
    ArmResult on;
    ArmResult fast;
    uint64_t hits = 0;
    uint64_t installs = 0;
};

SuperblockArm
runFig5SuperblockArm()
{
    const std::string src = R"(
        movi r12, 0
        movi r13, 8
        outer:
        leabi r2, r1, 0
        movi r10, 0
        movi r11, 127
        inner:
        ld r3, 0(r2)
        ld r4, 8(r2)
        ld r5, 16(r2)
        ld r6, 24(r2)
        leai r2, r2, 32
        addi r10, r10, 1
        bne r10, r11, inner
        addi r12, r12, 1
        bne r12, r13, outer
        halt
    )";
    auto assembly = isa::assemble(src);
    if (!assembly.ok)
        sim::fatal("P1: %s", assembly.error.c_str());

    SuperblockArm arm;
    auto run_once = [&](bool superblocks, bool fast) {
        ArmResult r;
        isa::MachineConfig cfg;
        cfg.mem.cache = gp::bench::mapCache();
        cfg.mem.cache.banks = 4;
        cfg.superblocks = superblocks;
        cfg.fastMode = fast;
        isa::Machine machine(cfg);
        for (unsigned i = 0; i < 16; ++i) {
            const uint64_t code_base =
                ((uint64_t(i) + 1) << 20) + uint64_t(i) * 128;
            auto prog = isa::loadProgram(machine.mem(), code_base,
                                         assembly.words);
            isa::Thread *t = machine.spawn(prog.execPtr);
            if (!t)
                sim::fatal("P1: out of thread slots");
            t->setReg(1,
                      isa::dataSegment(((uint64_t(i) + 1) << 30) +
                                           uint64_t(i) * 4096,
                                       12));
        }
        const auto t0 = Clock::now();
        machine.run(50'000'000);
        r.wallSeconds = secondsSince(t0);
        r.cycles = machine.cycle();
        r.instructions = machine.stats().get("instructions");
        if (superblocks && !fast) {
            arm.hits = machine.stats().get("superblock_hits");
            arm.installs =
                machine.stats().get("superblock_installs");
        }
        return r;
    };

    arm.off = run_once(false, false);
    arm.on = run_once(true, false);
    arm.fast = run_once(true, true);

    if (arm.on.cycles != arm.off.cycles ||
        arm.on.instructions != arm.off.instructions)
        sim::fatal("P1: superblocks changed simulated behaviour: "
                   "%llu/%llu cycles, %llu/%llu instructions",
                   (unsigned long long)arm.off.cycles,
                   (unsigned long long)arm.on.cycles,
                   (unsigned long long)arm.off.instructions,
                   (unsigned long long)arm.on.instructions);
    if (arm.fast.instructions != arm.off.instructions)
        sim::fatal("P1: fast mode changed the instruction count: "
                   "%llu -> %llu",
                   (unsigned long long)arm.off.instructions,
                   (unsigned long long)arm.fast.instructions);
    if (arm.hits == 0)
        sim::fatal("P1: superblock arm never entered a trace");
    return arm;
}

/** Arm 3: a small deterministic fault campaign (hardened config). */
struct CampaignArm
{
    fault::CampaignTotals totals;
    uint64_t goldenCycles = 0;
    double wallSeconds = 0;
};

CampaignArm
runCampaignArm()
{
    fault::CampaignConfig cfg;
    cfg.seed = 12345;
    cfg.runs = 24;
    cfg.ecc = mem::EccMode::Secded;
    cfg.walkRetries = 2;
    cfg.faults.rate[unsigned(sim::FaultSite::MemDataBit)] = 3e-4;
    cfg.faults.rate[unsigned(sim::FaultSite::MemTagBit)] = 1e-4;
    cfg.faults.rate[unsigned(sim::FaultSite::TlbCorrupt)] = 1e-3;
    cfg.faults.rate[unsigned(sim::FaultSite::PtWalkTransient)] = 2e-2;

    fault::CampaignRunner runner(cfg);
    CampaignArm arm;
    const auto t0 = Clock::now();
    arm.totals = runner.runAll();
    arm.wallSeconds = secondsSince(t0);
    arm.goldenCycles = runner.goldenCycles();
    return arm;
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    const ArmResult fig5 = runFig5Arm();
    const ArmResult mk = runMicrokernelArm();
    const CampaignArm camp = runCampaignArm();
    const ProfiledArm prof = runFig5ProfiledArm();
    const ElideArm elide = runFig5ElideArm();
    const SuperblockArm sb = runFig5SuperblockArm();

    // ---- Table 1: deterministic signature (hard CI gate). --------
    // Every cell here is a pure function of the simulator: any drift
    // means a change was NOT observationally invisible.
    gp::bench::Table det(
        "P1 signature (deterministic)",
        {"arm", "cycles", "instructions", "extra"});
    det.addRow({"fig5-memsys",
                gp::bench::fmt("%llu",
                               (unsigned long long)fig5.cycles),
                gp::bench::fmt("%llu",
                               (unsigned long long)fig5.instructions),
                "-"});
    det.addRow({"f7-microkernel",
                gp::bench::fmt("%llu", (unsigned long long)mk.cycles),
                gp::bench::fmt("%llu",
                               (unsigned long long)mk.instructions),
                "-"});
    det.addRow(
        {"fault-campaign",
         gp::bench::fmt("%llu",
                        (unsigned long long)camp.goldenCycles),
         gp::bench::fmt("%llu",
                        (unsigned long long)camp.totals.runs),
         gp::bench::fmt(
             "masked=%llu corrected=%llu detected=%llu sdc=%llu "
             "hang=%llu",
             (unsigned long long)camp.totals.outcome(
                 fault::Outcome::Masked),
             (unsigned long long)camp.totals.outcome(
                 fault::Outcome::Corrected),
             (unsigned long long)camp.totals.outcome(
                 fault::Outcome::DetectedFault),
             (unsigned long long)camp.totals.outcome(
                 fault::Outcome::Sdc),
             (unsigned long long)camp.totals.outcome(
                 fault::Outcome::CrashHang))});
    det.addRow({"fig5-profiled",
                gp::bench::fmt("%llu",
                               (unsigned long long)prof.on.cycles),
                gp::bench::fmt(
                    "%llu",
                    (unsigned long long)prof.on.instructions),
                "profiled==off; cpi-sum exact"});
    det.addRow(
        {"fig5-elide",
         gp::bench::fmt("%llu", (unsigned long long)elide.on.cycles),
         gp::bench::fmt("%llu",
                        (unsigned long long)elide.on.instructions),
         gp::bench::fmt("off=%llu saved=%llu elided=%llu "
                        "executed=%llu",
                        (unsigned long long)elide.off.cycles,
                        (unsigned long long)elide.cyclesSaved,
                        (unsigned long long)elide.elided,
                        (unsigned long long)elide.executed)});
    det.addRow(
        {"fig5-superblock",
         gp::bench::fmt("%llu", (unsigned long long)sb.on.cycles),
         gp::bench::fmt("%llu",
                        (unsigned long long)sb.on.instructions),
         gp::bench::fmt("off=%llu hits=%llu installs=%llu",
                        (unsigned long long)sb.off.cycles,
                        (unsigned long long)sb.hits,
                        (unsigned long long)sb.installs)});
    det.addRow(
        {"fig5-fast",
         gp::bench::fmt("%llu", (unsigned long long)sb.fast.cycles),
         gp::bench::fmt("%llu",
                        (unsigned long long)sb.fast.instructions),
         "functional-only; timing model bypassed"});
    det.print();

    // ---- Table 2: host speed (warn-only in CI). ------------------
    gp::bench::Table host(
        "P1 host speed (host-dependent)",
        {"arm", "wall ms", "sim Minst/s", "sim Mcycles/s"});
    auto hostRow = [&](const char *name, const ArmResult &r) {
        host.addRow(
            {name, gp::bench::fmt("%.1f", r.wallSeconds * 1e3),
             gp::bench::fmt("%.2f", double(r.instructions) /
                                        r.wallSeconds / 1e6),
             gp::bench::fmt("%.2f",
                            double(r.cycles) / r.wallSeconds / 1e6)});
    };
    hostRow("fig5-memsys", fig5);
    hostRow("f7-microkernel", mk);
    hostRow("fig5-prof-off", prof.off);
    hostRow("fig5-prof-on", prof.on);
    hostRow("fig5-elide-off", elide.off);
    hostRow("fig5-elide-on", elide.on);
    hostRow("fig5-sb-off", sb.off);
    hostRow("fig5-sb-on", sb.on);
    hostRow("fig5-fast", sb.fast);
    host.addRow({"fault-campaign",
                 gp::bench::fmt("%.1f", camp.wallSeconds * 1e3),
                 gp::bench::fmt("%.1f runs/s",
                                double(camp.totals.runs) /
                                    camp.wallSeconds),
                 "-"});
    host.print();

    std::printf(
        "\nPerf-CI contract: the deterministic table must match "
        "bench/BENCH_PERF.json bit-for-bit (tools/perfgate.py\n"
        "hard-fails on drift — a perf change must not change "
        "simulated behaviour). The host-speed table is warn-only;\n"
        "the committed baseline records the reference machine.\n");
    return 0;
}
