/**
 * @file
 * Experiment F6 (§3): the multicomputer — guarded pointers across a
 * 3-D mesh.
 *
 * The M-Machine is a multicomputer whose 54-bit space is global: a
 * guarded pointer works identically on every node, so protection and
 * sharing need no per-node capability state. This bench measures the
 * remote-access cost surface (latency vs hop distance, caching of
 * remote lines, link contention under all-to-all traffic) and
 * verifies the invariance property: the same capability word, byte
 * for byte, is dereferenced from every node of the mesh.
 */

#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/loader.h"
#include "noc/node_memory.h"
#include "noc/shard.h"
#include "sim/rng.h"

namespace {

using namespace gp;
using namespace gp::noc;

void
latencyVsDistance()
{
    MeshConfig mcfg;
    mcfg.dimX = 4;
    mcfg.dimY = 2;
    mcfg.dimZ = 2;
    Mesh mesh(mcfg);
    GlobalMemory global;
    mem::MemConfig cfg;
    cfg.cache = gp::bench::mapCache();
    NodeMemory origin(0, mesh, global, cfg);

    gp::bench::Table t(
        "F6: access latency vs home-node distance (from node 0)",
        {"home node", "hops", "miss latency", "hit latency",
         "vs local miss"});

    double local_miss = 0;
    for (unsigned target : {0u, 1u, 3u, 7u, 15u}) {
        auto p = makePointer(Perm::ReadWrite, 12,
                             nodeBase(target) + 0x10000);
        const auto miss = origin.load(p.value, 8, 0);
        const auto hit = origin.load(p.value, 8, miss.completeCycle);
        if (target == 0)
            local_miss = double(miss.latency());
        t.addRow({gp::bench::fmt("%u", target),
                  gp::bench::fmt("%u", mesh.hops(0, target)),
                  gp::bench::fmt("%llu",
                                 (unsigned long long)miss.latency()),
                  gp::bench::fmt("%llu",
                                 (unsigned long long)hit.latency()),
                  gp::bench::fmt("%.2fx",
                                 double(miss.latency()) /
                                     local_miss)});
    }
    t.print();
}

void
allToAllTraffic()
{
    // Every node streams reads from every other node's partition:
    // aggregate mesh pressure, remote-hit caching, link stalls.
    MeshConfig mcfg;
    mcfg.dimX = 4;
    mcfg.dimY = 2;
    mcfg.dimZ = 2;
    Mesh mesh(mcfg);
    GlobalMemory global;
    mem::MemConfig cfg;
    cfg.cache = gp::bench::mapCache();

    std::vector<std::unique_ptr<NodeMemory>> nodes;
    for (unsigned n = 0; n < mesh.nodeCount(); ++n)
        nodes.push_back(
            std::make_unique<NodeMemory>(n, mesh, global, cfg));

    sim::Rng rng(6);
    const int kRefsPerNode = 2000;
    std::vector<uint64_t> now(mesh.nodeCount(), 0);
    for (int i = 0; i < kRefsPerNode; ++i) {
        for (unsigned n = 0; n < mesh.nodeCount(); ++n) {
            const unsigned target =
                unsigned(rng.below(mesh.nodeCount()));
            // 64 lines per target, each target in its own cache-set
            // window so capacity (not conflicts) governs hit rate.
            const uint64_t offset =
                0x10000 + uint64_t(target) * 4096 +
                rng.below(64) * 64;
            auto p = makePointer(Perm::ReadOnly, 20,
                                 nodeBase(target) + offset);
            const auto acc = nodes[n]->load(p.value, 8, now[n]);
            now[n] = acc.completeCycle;
        }
    }

    uint64_t remote = 0, local = 0, hits = 0;
    for (auto &node : nodes) {
        remote += node->stats().get("remote_misses");
        local += node->stats().get("local_misses");
        hits += node->stats().get("hits");
    }
    const uint64_t total =
        uint64_t(kRefsPerNode) * mesh.nodeCount();

    gp::bench::Table t("F6b: all-to-all random reads, 16 nodes",
                       {"metric", "value"});
    t.addRow({"references", gp::bench::fmt("%llu",
                                           (unsigned long long)total)});
    t.addRow({"cache hits (incl. cached remote lines)",
              gp::bench::fmt("%llu (%.1f%%)", (unsigned long long)hits,
                             100.0 * double(hits) / double(total))});
    t.addRow({"local misses",
              gp::bench::fmt("%llu", (unsigned long long)local)});
    t.addRow({"remote misses",
              gp::bench::fmt("%llu", (unsigned long long)remote)});
    t.addRow({"mesh messages",
              gp::bench::fmt("%llu", (unsigned long long)
                                         mesh.stats().get("messages"))});
    t.addRow({"link stall cycles",
              gp::bench::fmt("%llu",
                             (unsigned long long)mesh.stats().get(
                                 "link_stall_cycles"))});
    t.addRow({"per-node protection state", "0 words (the point)"});
    t.print();
}

void
invarianceCheck()
{
    // The same capability word dereferenced from every node.
    MeshConfig mcfg;
    Mesh mesh(mcfg);
    GlobalMemory global;
    std::vector<std::unique_ptr<NodeMemory>> nodes;
    for (unsigned n = 0; n < mesh.nodeCount(); ++n)
        nodes.push_back(
            std::make_unique<NodeMemory>(n, mesh, global));

    auto p = makePointer(Perm::ReadWrite, 12, nodeBase(5) + 0x8000);
    nodes[5]->store(p.value, Word::fromInt(0x600D), 8);

    unsigned agree = 0;
    for (auto &node : nodes) {
        if (node->load(p.value, 8).data.bits() == 0x600D)
            agree++;
    }
    std::printf("\nF6c: capability invariance — %u/%u nodes "
                "dereferenced the identical 64-bit word "
                "0x%016llx successfully.\n",
                agree, mesh.nodeCount(),
                (unsigned long long)p.value.bits());
    std::printf(
        "Claims under test (SS3): one global space means capabilities "
        "cross the mesh as plain data; remote cost is\npure topology "
        "(hops + contention), with the virtually-addressed cache "
        "absorbing re-references to remote lines.\n");
}

/**
 * Sharded epoch engine over a 4x4x4 mesh: 64 full machines running a
 * pseudo-random all-to-all load/store loop. The deterministic table
 * (signature, cycles, instructions, traffic) must be byte-identical
 * for EVERY host-thread count; the host table reports wall time for
 * the requested --threads=N and is load-dependent by nature.
 */
void
shardedEpochEngine(unsigned host_threads)
{
    // One node's traffic loop: target rotates with the iteration and
    // the node id, so every node touches many remote partitions.
    // r1 = full-space RW pointer, r2 = node id.
    constexpr const char *kSrc = R"(
        movi r3, 0
        movi r4, 96
    loop:
        add r7, r3, r2
        andi r7, r7, 63
        shli r7, r7, 48
        shli r8, r3, 3
        andi r8, r8, 2040
        addi r8, r8, 4096
        add r7, r7, r8
        leab r9, r1, r7
        ld r10, 0(r9)
        add r10, r10, r2
        st r10, 0(r9)
        addi r3, r3, 1
        bne r3, r4, loop
        halt
    )";

    auto build = [](unsigned threads) {
        ShardConfig cfg;
        cfg.mesh.dimX = 4;
        cfg.mesh.dimY = 4;
        cfg.mesh.dimZ = 4;
        cfg.node.cache = gp::bench::mapCache();
        cfg.machine.clusters = 1;
        cfg.hostThreads = threads;
        return std::make_unique<ShardedMesh>(cfg);
    };

    isa::Assembly a = isa::assemble(kSrc);
    if (!a.ok)
        std::abort();
    auto full = makePointer(Perm::ReadWrite, 54, 0);

    auto load = [&](ShardedMesh &shard) {
        for (unsigned n = 0; n < shard.nodeCount(); ++n) {
            auto prog = isa::loadProgram(
                shard.node(n), nodeBase(n) + 0x20000, a.words);
            isa::Thread *t = shard.machine(n).spawn(prog.execPtr);
            t->setReg(1, full.value);
            t->setReg(2, Word::fromInt(n));
        }
    };

    auto shard = build(host_threads);
    load(*shard);
    const auto t0 = std::chrono::steady_clock::now();
    shard->run(2'000'000);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    uint64_t insts = 0, remote = 0;
    for (unsigned n = 0; n < shard->nodeCount(); ++n) {
        insts += shard->machine(n).stats().get("instructions");
        remote += shard->node(n).stats().get("remote_misses");
    }

    // The deterministic table deliberately omits the host-thread
    // count: the whole point is that these values do not depend on
    // it, so perfgate can compare a --threads=1 run against a
    // --threads=4 run row for row.
    gp::bench::Table det(
        "F6d: sharded epoch engine, 64 nodes (deterministic)",
        {"metric", "value"});
    det.addRow({"nodes",
                gp::bench::fmt("%u", shard->nodeCount())});
    det.addRow({"epoch horizon",
                gp::bench::fmt("%llu", (unsigned long long)
                                           shard->epochHorizon())});
    det.addRow({"simulated cycles",
                gp::bench::fmt("%llu",
                               (unsigned long long)shard->cycle())});
    det.addRow({"instructions",
                gp::bench::fmt("%llu", (unsigned long long)insts)});
    det.addRow({"remote misses",
                gp::bench::fmt("%llu", (unsigned long long)remote)});
    det.addRow(
        {"mesh messages",
         gp::bench::fmt("%llu", (unsigned long long)shard->mesh()
                                    .stats()
                                    .get("messages"))});
    det.addRow({"signature",
                gp::bench::fmt("%016llx", (unsigned long long)
                                              shard->signature())});
    det.print();

    const double mcps = double(shard->cycle()) *
                        double(shard->nodeCount()) / wall / 1e6;
    gp::bench::Table host(
        "F6e: sharded engine host scaling (host-dependent)",
        {"metric", "value"});
    host.addRow({"host threads",
                 gp::bench::fmt("%u", shard->hostThreads())});
    host.addRow({"wall seconds", gp::bench::fmt("%.3f", wall)});
    host.addRow({"node-Mcycles/s", gp::bench::fmt("%.2f", mcps)});
    host.print();
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    unsigned host_threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            host_threads =
                std::max(1u, unsigned(std::atoi(argv[i] + 10)));
    }

    latencyVsDistance();
    allToAllTraffic();
    invarianceCheck();
    shardedEpochEngine(host_threads);
    return 0;
}
