/**
 * @file
 * Experiment C4 (§4.3): virtual-address-space garbage collection.
 *
 * The paper argues GC of the 54-bit space is tractable because
 * "pointers are self identifying via the tag bit". This bench builds
 * pointer-dense heaps, then compares the tag-accurate collector with
 * a conservative collector (what a tagless architecture must run):
 * precision (false retention) and scan work, across heap shapes.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "gp/ops.h"
#include "mem/memory_system.h"
#include "os/gc.h"
#include "os/segment_manager.h"
#include "sim/rng.h"

namespace {

using namespace gp;

struct Heap
{
    std::unique_ptr<mem::MemorySystem> mem;
    std::unique_ptr<os::SegmentManager> segman;
    std::vector<Word> roots;
    size_t liveTarget = 0;
    size_t garbage = 0;
};

/**
 * Build a heap: `live` segments reachable from the roots in a random
 * graph, `garbage` unreachable ones, and integer "lookalikes" of
 * garbage pointers scattered into live segments with the given
 * density (per segment).
 */
Heap
buildHeap(size_t live, size_t garbage, unsigned lookalikes,
          uint64_t seed)
{
    Heap h;
    h.mem = std::make_unique<mem::MemorySystem>(mem::MemConfig{});
    h.segman = std::make_unique<os::SegmentManager>(
        *h.mem, uint64_t(1) << 40, 32);
    sim::Rng rng(seed);

    std::vector<Word> live_segs, garbage_segs;
    for (size_t i = 0; i < live; ++i)
        live_segs.push_back(
            h.segman->allocate(4096, Perm::ReadWrite).value);
    for (size_t i = 0; i < garbage; ++i)
        garbage_segs.push_back(
            h.segman->allocate(4096, Perm::ReadWrite).value);

    // Random edges among live segments (each reachable from root 0
    // via a chain to guarantee connectivity).
    for (size_t i = 1; i < live_segs.size(); ++i) {
        const Word &from = live_segs[rng.below(i)];
        h.mem->pokeWord(PointerView(from).segmentBase() +
                            rng.below(500) * 8,
                        live_segs[i]);
    }
    // Integer lookalikes of garbage pointers inside live segments.
    for (const Word &g : garbage_segs) {
        for (unsigned c = 0; c < lookalikes; ++c) {
            const Word &host = live_segs[rng.below(live_segs.size())];
            h.mem->pokeWord(PointerView(host).segmentBase() +
                                rng.below(500) * 8,
                            Word::fromInt(g.bits()));
        }
    }

    h.roots.push_back(live_segs[0]);
    h.liveTarget = live;
    h.garbage = garbage;
    return h;
}

void
precisionTable()
{
    gp::bench::Table t(
        "C4: tag-accurate vs conservative address-space GC",
        {"heap (live+garbage)", "lookalike density", "mode",
         "words scanned", "freed", "falsely retained"});

    for (unsigned lookalikes : {0u, 1u, 4u}) {
        for (auto mode : {os::AddressSpaceGc::Mode::TagAccurate,
                          os::AddressSpaceGc::Mode::Conservative}) {
            Heap h = buildHeap(64, 64, lookalikes, 99);
            os::AddressSpaceGc gc(*h.mem, *h.segman, mode);
            auto stats = gc.collect(h.roots);
            const uint64_t retained = h.garbage - stats.segmentsFreed;
            t.addRow(
                {gp::bench::fmt("%zu+%zu", h.liveTarget, h.garbage),
                 gp::bench::fmt("%u/garbage seg", lookalikes),
                 mode == os::AddressSpaceGc::Mode::TagAccurate
                     ? "tag-accurate"
                     : "conservative",
                 gp::bench::fmt("%llu",
                                (unsigned long long)stats.wordsScanned),
                 gp::bench::fmt("%llu",
                                (unsigned long long)stats.segmentsFreed),
                 gp::bench::fmt("%llu",
                                (unsigned long long)retained)});
        }
    }
    t.print();

    std::printf("\nClaim under test (SS4.3): the tag bit makes the "
                "collector exact — conservative collection retains "
                "garbage as lookalike density rises.\n");
}

void
BM_GcTagAccurate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Heap h = buildHeap(size_t(state.range(0)), 32, 1, 7);
        os::AddressSpaceGc gc(*h.mem, *h.segman);
        state.ResumeTiming();
        auto stats = gc.collect(h.roots);
        benchmark::DoNotOptimize(stats);
    }
}
BENCHMARK(BM_GcTagAccurate)->Arg(16)->Arg(64)->Arg(256);

void
BM_GcConservative(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Heap h = buildHeap(size_t(state.range(0)), 32, 1, 7);
        os::AddressSpaceGc gc(*h.mem, *h.segman,
                              os::AddressSpaceGc::Mode::Conservative);
        state.ResumeTiming();
        auto stats = gc.collect(h.roots);
        benchmark::DoNotOptimize(stats);
    }
}
BENCHMARK(BM_GcConservative)->Arg(16)->Arg(64)->Arg(256);

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);
    precisionTable();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
