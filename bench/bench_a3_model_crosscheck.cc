/**
 * @file
 * Ablation A3: cross-checking the trace model against the machine.
 *
 * The R-series comparisons use fast trace-driven scheme models; the
 * F-series runs the cycle-level machine. This bench replays the same
 * workload through both guarded-pointer implementations — the trace
 * model's additive accounting and the MemorySystem's contention-aware
 * timing — and reports the gap. If the models disagreed wildly, the
 * R-series conclusions would be suspect; the expectation is agreement
 * within the contention effects the trace model deliberately omits.
 */

#include "baselines/guarded_scheme.h"
#include "baselines/runner.h"
#include "bench_util.h"
#include "gp/ops.h"
#include "mem/memory_system.h"
#include "sim/log.h"

namespace {

using namespace gp;

/** Replay the trace through the real MemorySystem with real pointers. */
double
machineCyclesPerRef(const std::vector<sim::MemRef> &trace,
                    const sim::TraceGenerator &gen)
{
    mem::MemConfig cfg;
    cfg.cache = gp::bench::mapCache();
    mem::MemorySystem msys(cfg);

    // Mint one RW pointer per workload segment, exactly as the OS
    // would. Segment size from the workload config (power of two).
    const uint64_t seg_bytes = gen.config().segmentBytes;
    uint64_t len = 3;
    while ((uint64_t(1) << len) < seg_bytes)
        len++;

    uint64_t now = 0;
    uint64_t busy_cycles = 0;
    for (const sim::MemRef &ref : trace) {
        auto ptr = makePointer(Perm::ReadWrite, len,
                               ref.vaddr & ~uint64_t(7));
        if (!ptr)
            sim::fatal("A3: bad pointer");
        const mem::MemAccess acc =
            ref.isWrite
                ? msys.store(ptr.value, Word::fromInt(1), 8, now)
                : msys.load(ptr.value, 8, now);
        busy_cycles += acc.latency();
        now = acc.completeCycle;
    }
    return double(busy_cycles) / double(trace.size());
}

} // namespace

int
main(int argc, char **argv)
{
    gp::bench::init(argc, argv);

    gp::bench::Table t(
        "A3: trace model vs cycle-level memory system (guarded)",
        {"workload", "trace model cyc/ref", "machine cyc/ref",
         "gap"});

    struct Case
    {
        const char *name;
        double locality;
        double jump;
        uint64_t seg_bytes;
    };
    const Case cases[] = {
        {"high locality", 64.0, 0.01, 8192},
        {"medium locality", 16.0, 0.05, 8192},
        {"low locality", 4.0, 0.3, 4096},
    };

    for (const Case &c : cases) {
        sim::WorkloadConfig w;
        w.numDomains = 4;
        w.segmentsPerDomain = 6;
        w.sharedSegments = 2;
        w.segmentBytes = c.seg_bytes;
        w.localityMean = c.locality;
        w.jumpFraction = c.jump;
        w.seed = 99;
        sim::TraceGenerator gen(w);
        const auto trace = gen.generate(100000);

        baselines::GuardedScheme scheme(gp::bench::mapCache(), 64,
                                        baselines::Costs{});
        const double model =
            baselines::runTrace(scheme, trace).cyclesPerRef();
        const double machine = machineCyclesPerRef(trace, gen);

        t.addRow({c.name, gp::bench::fmt("%.2f", model),
                  gp::bench::fmt("%.2f", machine),
                  gp::bench::fmt("%+.0f%%",
                                 100.0 * (machine / model - 1.0))});
    }
    t.print();

    std::printf(
        "\nAblation conclusion: the additive trace model tracks the "
        "contention-aware machine within the bank/port effects it\n"
        "omits, so the R-series scheme comparisons rest on a model "
        "that agrees with the executable one.\n");
    return 0;
}
