/**
 * @file
 * Unit tests for the shared VirtualCachePath the baseline schemes are
 * built on — its correctness underpins every R-series comparison.
 */

#include <gtest/gtest.h>

#include "baselines/mem_path.h"

namespace gp::baselines {
namespace {

mem::CacheConfig
smallCache()
{
    mem::CacheConfig c;
    c.banks = 2;
    c.lineBytes = 32;
    c.setsPerBank = 8;
    c.ways = 2;
    return c;
}

TEST(MemPath, ColdMissWarmHitCosts)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    EXPECT_EQ(path.access(0x1000, false), 1u + 1 + 20 + 8)
        << "cold: hit-time + tlb + walk + fill";
    EXPECT_EQ(path.access(0x1000, false), 1u) << "warm";
}

TEST(MemPath, TlbHitSkipsWalk)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    path.access(0x1000, false);
    EXPECT_EQ(path.access(0x1020, false), 1u + 1 + 8)
        << "same page, new line: no walk";
}

TEST(MemPath, DirtyEvictionAddsWriteback)
{
    mem::CacheConfig c = smallCache();
    c.banks = 1;
    c.setsPerBank = 1;
    c.ways = 1;
    VirtualCachePath path(c, 8, Costs{});
    path.access(0x0, true); // dirty
    const uint64_t cycles = path.access(0x20, false); // evicts dirty
    EXPECT_EQ(cycles, 1u + 1 + 8 + 4) << "writeback charged";
}

TEST(MemPath, AsidIsolationOnBothStructures)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    path.access(0x1000, false, /*cache_asid=*/1, /*tlb_asid=*/1);
    // Different ASID: cold again (cache AND TLB partitioned).
    EXPECT_EQ(path.access(0x1000, false, 2, 2), 1u + 1 + 20 + 8);
    // Same ASID: warm.
    EXPECT_EQ(path.access(0x1000, false, 1, 1), 1u);
}

TEST(MemPath, SharedAsidZeroIsGlobal)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    path.access(0x1000, false, 0, 0);
    EXPECT_EQ(path.access(0x1000, false, 0, 0), 1u);
}

TEST(MemPath, FlushCacheChargesWritebacks)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    const uint64_t clean = path.flushCache();
    EXPECT_EQ(clean, Costs{}.switchFixed) << "nothing dirty";
    path.access(0x0, true);
    path.access(0x20, true);
    const uint64_t dirty = path.flushCache();
    EXPECT_EQ(dirty, Costs{}.switchFixed + 2 * Costs{}.writeback);
    // Everything cold afterwards.
    EXPECT_GT(path.access(0x0, false), 1u);
}

TEST(MemPath, FlushTlbForcesRewalks)
{
    VirtualCachePath path(smallCache(), 8, Costs{});
    path.access(0x1000, false);
    path.flushTlb();
    // Cache still warm (flushTlb does not purge the cache)...
    EXPECT_EQ(path.access(0x1000, false), 1u);
    // ...but a new line in the same page re-walks.
    EXPECT_EQ(path.access(0x1040, false), 1u + 1 + 20 + 8);
}

TEST(MemPath, CustomCostsPropagate)
{
    Costs costs;
    costs.cacheHit = 3;
    costs.tlbWalk = 100;
    costs.extMem = 50;
    VirtualCachePath path(smallCache(), 8, costs);
    EXPECT_EQ(path.access(0x1000, false), 3u + 1 + 100 + 50);
    EXPECT_EQ(path.access(0x1000, false), 3u);
}

} // namespace
} // namespace gp::baselines
