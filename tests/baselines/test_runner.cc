/**
 * @file
 * Tests for the trace runner and scheme factory, plus shape-level
 * checks of the R1 context-switch comparison the benches report.
 */

#include <gtest/gtest.h>

#include "baselines/runner.h"

namespace gp::baselines {
namespace {

mem::CacheConfig
smallCache()
{
    mem::CacheConfig c;
    c.banks = 4;
    c.lineBytes = 32;
    c.setsPerBank = 64;
    c.ways = 2;
    return c;
}

sim::WorkloadConfig
workload(uint64_t switch_interval = 64)
{
    sim::WorkloadConfig w;
    w.numDomains = 4;
    w.segmentsPerDomain = 4;
    w.sharedSegments = 2;
    w.segmentBytes = 2048;
    w.switchInterval = switch_interval;
    w.seed = 42;
    return w;
}

TEST(Runner, CountsRefsAndSwitches)
{
    auto scheme = makeScheme(SchemeKind::Guarded, smallCache(), 64,
                             Costs{});
    sim::TraceGenerator gen(workload(100));
    RunResult r = runTrace(*scheme, gen, 1000);
    EXPECT_EQ(r.refs, 1000u);
    EXPECT_EQ(r.switches, 9u) << "domain changes every 100 refs";
    EXPECT_GT(r.accessCycles, 1000u);
    EXPECT_EQ(r.switchCycles, 0u) << "guarded switches are free";
}

TEST(Runner, SameTraceSameResult)
{
    auto s1 = makeScheme(SchemeKind::Guarded, smallCache(), 64,
                         Costs{});
    auto s2 = makeScheme(SchemeKind::Guarded, smallCache(), 64,
                         Costs{});
    sim::TraceGenerator gen(workload());
    const auto trace = gen.generate(2000);
    EXPECT_EQ(runTrace(*s1, trace).totalCycles(),
              runTrace(*s2, trace).totalCycles());
}

TEST(Runner, FactoryProducesEveryScheme)
{
    for (SchemeKind kind : allSchemeKinds()) {
        auto scheme = makeScheme(kind, smallCache(), 64, Costs{});
        ASSERT_NE(scheme, nullptr);
        EXPECT_EQ(scheme->name(), schemeName(kind));
        sim::TraceGenerator gen(workload());
        RunResult r = runTrace(*scheme, gen, 500);
        EXPECT_EQ(r.refs, 500u) << scheme->name();
        EXPECT_GT(r.accessCycles, 0u) << scheme->name();
    }
}

TEST(Runner, R1ShapeGuardedBeatsFlushUnderFrequentSwitching)
{
    // The central §5.1 comparison: as switch frequency rises, the
    // flush-based paged scheme degrades while guarded pointers do not.
    auto run_with = [&](SchemeKind kind, uint64_t interval) {
        auto scheme = makeScheme(kind, smallCache(), 64, Costs{});
        sim::TraceGenerator gen(workload(interval));
        return runTrace(*scheme, gen, 20000);
    };

    const auto guarded = run_with(SchemeKind::Guarded, 16);
    const auto flush = run_with(SchemeKind::PagedFlush, 16);
    EXPECT_LT(guarded.cyclesPerRef() * 1.5, flush.cyclesPerRef())
        << "frequent switching murders the flush scheme";

    // With very rare switches the gap narrows substantially.
    const auto guarded_rare = run_with(SchemeKind::Guarded, 10000);
    const auto flush_rare = run_with(SchemeKind::PagedFlush, 10000);
    const double gap_frequent =
        flush.cyclesPerRef() / guarded.cyclesPerRef();
    const double gap_rare =
        flush_rare.cyclesPerRef() / guarded_rare.cyclesPerRef();
    EXPECT_LT(gap_rare, gap_frequent);
}

TEST(Runner, R1ShapeAsidAvoidsFlushButLosesSharing)
{
    auto run_with = [&](SchemeKind kind, double shared_frac) {
        sim::WorkloadConfig w = workload(16);
        w.sharedFraction = shared_frac;
        w.jumpFraction = 0.2;
        auto scheme = makeScheme(kind, smallCache(), 64, Costs{});
        sim::TraceGenerator gen(w);
        return runTrace(*scheme, gen, 20000);
    };

    // Heavy sharing: guarded benefits from in-cache sharing, ASID
    // duplicates lines.
    const auto guarded = run_with(SchemeKind::Guarded, 0.8);
    const auto asid = run_with(SchemeKind::PagedAsid, 0.8);
    EXPECT_LT(guarded.cyclesPerRef(), asid.cyclesPerRef());
}

TEST(Runner, R5ShapeCapTablePaysIndirection)
{
    auto run_with = [&](SchemeKind kind) {
        auto scheme = makeScheme(kind, smallCache(), 64, Costs{});
        sim::TraceGenerator gen(workload(256));
        return runTrace(*scheme, gen, 20000);
    };
    const auto guarded = run_with(SchemeKind::Guarded);
    const auto cap = run_with(SchemeKind::CapTable);
    EXPECT_GE(cap.cyclesPerRef(), guarded.cyclesPerRef() + 0.9)
        << "at least the serialized lookup cycle per access";
}

TEST(Runner, EmptyTrace)
{
    auto scheme = makeScheme(SchemeKind::Guarded, smallCache(), 64,
                             Costs{});
    RunResult r = runTrace(*scheme, std::vector<sim::MemRef>{});
    EXPECT_EQ(r.refs, 0u);
    EXPECT_EQ(r.cyclesPerRef(), 0.0);
    EXPECT_EQ(r.cyclesPerSwitch(), 0.0);
}

} // namespace
} // namespace gp::baselines
