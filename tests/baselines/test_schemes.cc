/**
 * @file
 * Unit tests for the §5 baseline scheme models: each scheme's
 * characteristic cost structure must appear in its cycle accounting.
 */

#include <gtest/gtest.h>

#include "baselines/cap_table_scheme.h"
#include "baselines/domain_page_scheme.h"
#include "baselines/guarded_scheme.h"
#include "baselines/page_group_scheme.h"
#include "baselines/paged_schemes.h"
#include "baselines/segmentation_scheme.h"
#include "baselines/sfi_scheme.h"

namespace gp::baselines {
namespace {

mem::CacheConfig
smallCache()
{
    mem::CacheConfig c;
    c.banks = 4;
    c.lineBytes = 32;
    c.setsPerBank = 64;
    c.ways = 2;
    return c;
}

sim::MemRef
ref(uint64_t vaddr, uint32_t domain = 0, bool write = false,
    uint32_t segment = 0, bool shared = false)
{
    sim::MemRef r;
    r.vaddr = vaddr;
    r.domain = domain;
    r.isWrite = write;
    r.segment = segment;
    r.isShared = shared;
    return r;
}

TEST(GuardedScheme, HitIsOneCycleAndSwitchIsFree)
{
    GuardedScheme s(smallCache(), 64, Costs{});
    const uint64_t miss = s.access(ref(0x1000));
    EXPECT_EQ(miss, 1u + 1 + 20 + 8) << "cold miss: walk + fill";
    EXPECT_EQ(s.access(ref(0x1000)), 1u) << "hit";
    EXPECT_EQ(s.contextSwitch(0, 1), 0u) << "the headline claim";
}

TEST(GuardedScheme, SharedLinesAcrossDomains)
{
    GuardedScheme s(smallCache(), 64, Costs{});
    s.access(ref(0x1000, /*domain=*/0));
    EXPECT_EQ(s.access(ref(0x1000, /*domain=*/3)), 1u)
        << "another domain hits the same line (in-cache sharing)";
}

TEST(PagedFlush, SwitchPurgesCacheAndTlb)
{
    PagedFlushScheme s(smallCache(), 64, Costs{});
    s.access(ref(0x1000));
    EXPECT_EQ(s.access(ref(0x1000)), 1u);
    const uint64_t sw = s.contextSwitch(0, 1);
    EXPECT_GE(sw, 10u) << "two fixed flush costs at least";
    EXPECT_EQ(s.access(ref(0x1000)), 1u + 1 + 20 + 8)
        << "everything cold after the switch";
}

TEST(PagedFlush, DirtyLinesRaiseSwitchCost)
{
    PagedFlushScheme s(smallCache(), 64, Costs{});
    const uint64_t clean_switch = s.contextSwitch(0, 1);
    for (int i = 0; i < 16; ++i)
        s.access(ref(0x1000 + i * 32, 1, /*write=*/true));
    const uint64_t dirty_switch = s.contextSwitch(1, 0);
    EXPECT_GT(dirty_switch, clean_switch)
        << "writebacks charged on purge";
}

TEST(PagedAsid, SwitchCheapButNoSharing)
{
    PagedAsidScheme s(smallCache(), 64, Costs{});
    EXPECT_EQ(s.contextSwitch(0, 1), Costs{}.switchFixed);
    // Domain 0 warms a line; domain 1 misses on the same address.
    s.access(ref(0x1000, 0));
    EXPECT_EQ(s.access(ref(0x1000, 0)), 1u);
    EXPECT_GT(s.access(ref(0x1000, 1)), 1u) << "synonym, not shared";
}

TEST(PagedAsid, PteBlowupCounted)
{
    PagedAsidScheme s(smallCache(), 64, Costs{});
    // Three domains touch the same shared page: 3 PTEs (n x m).
    for (uint32_t d = 0; d < 3; ++d)
        s.access(ref(0x5000, d, false, 9, /*shared=*/true));
    EXPECT_EQ(s.stats().get("pte_entries"), 3u);
    EXPECT_EQ(s.stats().get("pte_entries_shared"), 3u);
}

TEST(DomainPage, PlbMissWalksProtectionTable)
{
    DomainPageScheme s(smallCache(), 64, 64, Costs{});
    const uint64_t first = s.access(ref(0x1000, 0));
    EXPECT_GE(first, Costs{}.plbWalk) << "cold PLB walk included";
    EXPECT_EQ(s.access(ref(0x1000, 0)), 1u) << "PLB + cache hot";
    EXPECT_EQ(s.stats().get("plb_probes"), 2u)
        << "every access probes the PLB";
}

TEST(DomainPage, SwitchFreeButPerDomainPlbEntries)
{
    DomainPageScheme s(smallCache(), 64, 64, Costs{});
    EXPECT_EQ(s.contextSwitch(0, 1), 0u);
    s.access(ref(0x1000, 0));
    // Same page, new domain: cache hits but the PLB must re-walk.
    const uint64_t other = s.access(ref(0x1000, 1));
    EXPECT_EQ(other, 1u + Costs{}.plbWalk)
        << "protection state is per-domain even in one space";
}

TEST(PageGroup, PidRegisterThrash)
{
    PageGroupScheme s(smallCache(), 64, Costs{}, /*pid_registers=*/4);
    // Four active segments fit the PID registers...
    for (uint32_t seg = 0; seg < 4; ++seg)
        s.access(ref(0x1000 * (seg + 1), 0, false, seg));
    const uint64_t traps_4 = s.stats().get("pid_traps");
    EXPECT_EQ(traps_4, 4u) << "one install each";
    for (int round = 0; round < 3; ++round) {
        for (uint32_t seg = 0; seg < 4; ++seg)
            s.access(ref(0x1000 * (seg + 1), 0, false, seg));
    }
    EXPECT_EQ(s.stats().get("pid_traps"), 4u) << "steady state: none";

    // ...a fifth thrashes (LRU rotation faults every time).
    for (int round = 0; round < 3; ++round) {
        for (uint32_t seg = 0; seg < 5; ++seg)
            s.access(ref(0x1000 * (seg + 1), 0, false, seg));
    }
    EXPECT_GT(s.stats().get("pid_traps"), 10u) << "working set > 4";
}

TEST(PageGroup, SharedSegmentsUseGlobalGroup)
{
    PageGroupScheme s(smallCache(), 64, Costs{});
    for (int i = 0; i < 10; ++i)
        s.access(ref(0x9000, 0, false, 7, /*shared=*/true));
    EXPECT_EQ(s.stats().get("pid_traps"), 0u);
}

TEST(PageGroup, EveryAccessProbesTlb)
{
    PageGroupScheme s(smallCache(), 64, Costs{});
    s.access(ref(0x1000, 0, false, 0));
    s.access(ref(0x1000, 0, false, 0));
    EXPECT_EQ(s.stats().get("tlb_probes"), 2u)
        << "page-group check forces TLB on hits too (§5.1)";
}

TEST(Segmentation, EveryAccessPaysTheSegmentAdd)
{
    SegmentationScheme s(smallCache(), 64, 8, Costs{});
    s.access(ref(0x1000, 0, false, 1));
    // Hot everything: still 1 (cache) + 1 (segment add).
    EXPECT_EQ(s.access(ref(0x1000, 0, false, 1)), 2u)
        << "two-level translation tax on the fast path";
}

TEST(Segmentation, DescriptorMissCost)
{
    SegmentationScheme s(smallCache(), 64, /*descriptors=*/2,
                         Costs{});
    const uint64_t cold = s.access(ref(0x1000, 0, false, 1));
    EXPECT_GE(cold, Costs{}.descLoad);
    // Cycle through 3 segments with a 2-entry descriptor cache.
    for (int round = 0; round < 3; ++round) {
        for (uint32_t seg = 1; seg <= 3; ++seg)
            s.access(ref(0x1000 * seg, 0, false, seg));
    }
    EXPECT_GT(s.stats().get("descriptor_misses"), 5u);
}

TEST(CapTable, IndirectionOnEveryAccess)
{
    CapTableScheme s(smallCache(), 64, 64, Costs{});
    s.access(ref(0x1000, 0, false, 1));
    EXPECT_EQ(s.access(ref(0x1000, 0, false, 1)), 2u)
        << "capability lookup serialized before the access";
    EXPECT_EQ(s.contextSwitch(0, 1), 0u)
        << "capability systems do switch freely";
}

TEST(CapTable, CapCacheMissLoadsObjectTable)
{
    CapTableScheme s(smallCache(), 64, /*cap_cache=*/2, Costs{});
    for (int round = 0; round < 3; ++round) {
        for (uint32_t seg = 1; seg <= 3; ++seg)
            s.access(ref(0x1000 * seg, 0, false, seg));
    }
    EXPECT_GT(s.stats().get("cap_cache_misses"), 5u);
}

TEST(Sfi, CheckInstructionTax)
{
    // static_safe = 0: every access pays the full check cost.
    SfiScheme all_checked(smallCache(), 64, Costs{}, 4, 0.0);
    all_checked.access(ref(0x1000));
    EXPECT_EQ(all_checked.access(ref(0x1000)), 1u + 4);

    // static_safe = 1: no checks ever.
    SfiScheme none_checked(smallCache(), 64, Costs{}, 4, 1.0);
    none_checked.access(ref(0x1000));
    EXPECT_EQ(none_checked.access(ref(0x1000)), 1u);
    EXPECT_EQ(none_checked.stats().get("check_instructions"), 0u);
}

TEST(Sfi, SwitchFree)
{
    SfiScheme s(smallCache(), 64, Costs{});
    EXPECT_EQ(s.contextSwitch(0, 1), 0u);
}

TEST(AllSchemes, HitPathOrdering)
{
    // The paper's §5 summary in one assertion set: steady-state cost
    // per reference — guarded pointers match the best and beat every
    // scheme with mandatory per-access machinery.
    const auto costs = Costs{};
    GuardedScheme guarded(smallCache(), 64, costs);
    SegmentationScheme segm(smallCache(), 64, 8, costs);
    CapTableScheme cap(smallCache(), 64, 64, costs);
    SfiScheme sfi(smallCache(), 64, costs, 4, 0.5, 7);

    auto steady = [&](Scheme &s) {
        uint64_t total = 0;
        s.access(ref(0x1000, 0, false, 1)); // warm
        for (int i = 0; i < 100; ++i)
            total += s.access(ref(0x1000, 0, false, 1));
        return total;
    };

    const uint64_t g = steady(guarded);
    EXPECT_LT(g, steady(segm));
    EXPECT_LT(g, steady(cap));
    EXPECT_LT(g, steady(sfi));
}

} // namespace
} // namespace gp::baselines
